//! # crosslight-server
//!
//! A load-shedding TCP/JSON-lines front-end over the
//! [`crosslight-runtime`](crosslight_runtime) evaluation service — the
//! network surface that turns the in-process [`EvalService`] into a
//! datacenter-style inference endpoint, the deployment scenario the
//! paper's FPS/EPB metrics (Fig. 6–8, Table III) are meant to answer.
//!
//! Layering:
//!
//! * [`json`] — self-contained JSON tree/parser/writer with exact `f64`
//!   round-tripping (the workspace is offline, so no `serde_json`).
//! * [`wire`] — the versioned frame vocabulary: `eval`/`stats`/`ping`
//!   requests, `ok`/`err` responses, typed [`ErrorKind`]s, and the exact
//!   report encoding, proven bit-identical to in-process evaluation.
//! * [`poller`] — readiness primitives over `poll(2)` (via the offline
//!   `libc` compat shim): a reusable poll set, a loopback wake channel,
//!   and an incremental length-limited line scanner, shared by the server
//!   reactor and the swarm load generator.
//! * [`server`] — a poll-based reactor: one acceptor, a fixed pool of
//!   event-loop threads multiplexing all connections, a micro-batcher
//!   coalescing admitted evals across connections into pool submissions,
//!   and one responder; bounded admission with explicit `overloaded`
//!   shedding, a `stats` endpoint exposing [`RuntimeStats`] plus queue
//!   depths and shed counts, and graceful drain-on-shutdown.
//! * [`loadgen`] — the reference [`Client`], a deterministic seeded
//!   multi-connection load generator behind `examples/serve.rs`,
//!   `bench_server` and the stress tests, and a poll-driven connection
//!   swarm for ten-thousand-connection stress runs.
//!
//! See the **Serving** section of `RUNTIME.md` at the repository root for
//! the protocol specification and an example transcript.
//!
//! [`EvalService`]: crosslight_runtime::EvalService
//! [`RuntimeStats`]: crosslight_runtime::RuntimeStats
//! [`ErrorKind`]: wire::ErrorKind
//! [`Client`]: loadgen::Client

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod json;
pub mod loadgen;
pub mod poller;
pub mod server;
pub mod wire;

pub use loadgen::{Client, ClientOptions, LoadGenOptions, LoadReport};
pub use server::{Server, ServerOptions, ServerStats};
pub use wire::{
    ArchRequest, ErrorFrame, ErrorKind, EvalSpec, Request, RequestBody, Response, ResponseBody,
    RestoredFrame, SnapshotChunk, SnapshotEnd, SnapshotEntry,
};

/// Convenient re-exports for downstream users.
pub mod prelude {
    pub use crate::loadgen::{Client, ClientOptions, LoadGenOptions, LoadReport};
    pub use crate::server::{Server, ServerOptions, ServerStats};
    pub use crate::wire::{
        ArchRequest, ErrorFrame, ErrorKind, EvalSpec, Request, RequestBody, Response, ResponseBody,
        RestoredFrame, SnapshotChunk, SnapshotEnd, SnapshotEntry, WorkloadRef,
    };
}
