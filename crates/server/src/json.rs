//! Minimal JSON tree, parser and writer for the wire protocol.
//!
//! The offline workspace has no `serde_json`, so the JSON-lines protocol is
//! implemented on this self-contained module.  Design points that matter for
//! the protocol guarantees:
//!
//! * **Exact floats.**  Finite `f64`s are written with Rust's shortest
//!   round-trip formatting and parsed with the standard correctly-rounding
//!   parser, so `decode(encode(x))` returns the bit-identical value for every
//!   finite `f64` (including `-0.0` and subnormals).  Non-finite values are
//!   encoded as the strings `"NaN"`, `"inf"` and `"-inf"` (JSON has no
//!   literal for them) and accepted back by [`Json::as_f64`].
//! * **Typed errors, no panics.**  The parser returns [`JsonError`] with a
//!   byte offset for every malformed input; it never panics and is bounded
//!   by an explicit nesting-depth limit, so adversarial input cannot blow
//!   the stack.
//! * **Order-preserving objects.** Objects are stored as insertion-ordered
//!   `(key, value)` vectors, so encoding is deterministic — identical
//!   requests always serialize to identical bytes, which the loadgen relies
//!   on for reproducible traffic.

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts (arrays + objects combined).
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal (fits `u64`).
    Uint(u64),
    /// A negative integer literal (fits `i64`).
    Int(i64),
    /// Any other number literal (fraction, exponent, or out of integer
    /// range).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered members.
    Object(Vec<(String, Json)>),
}

/// A parse error with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input line.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Member lookup on an object (first match; `None` on other variants).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Uint(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an `f64`: accepts any number plus the non-finite string
    /// encodings (`"NaN"`, `"inf"`, `"-inf"`).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Uint(v) => Some(*v as f64),
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            Json::Str(s) => match s.as_str() {
                "NaN" => Some(f64::NAN),
                "inf" => Some(f64::INFINITY),
                "-inf" => Some(f64::NEG_INFINITY),
                _ => None,
            },
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Wraps a float in its wire encoding (number when finite, tagged string
    /// otherwise).
    #[must_use]
    pub fn from_f64(value: f64) -> Json {
        if value.is_finite() {
            Json::Float(value)
        } else if value.is_nan() {
            Json::Str("NaN".to_string())
        } else if value > 0.0 {
            Json::Str("inf".to_string())
        } else {
            Json::Str("-inf".to_string())
        }
    }

    /// Serializes the value to a single-line JSON string.
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = String::with_capacity(64);
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Uint(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => write_f64(*v, out),
            Json::Str(s) => write_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON value from `input`, requiring it to span the whole
    /// string (surrounding whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] for any syntactically invalid input, trailing
    /// garbage, or nesting deeper than [`MAX_DEPTH`].
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value(0)?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

/// Appends the wire encoding of one `f64` to `out` — the allocation-free
/// building block of the hot-path frame encoders in `crate::wire`.
pub fn push_f64(value: f64, out: &mut String) {
    write_f64(value, out);
}

/// Appends a JSON string literal (with escaping) to `out`.
pub fn push_string_literal(s: &str, out: &mut String) {
    write_string(s, out);
}

/// Writes a finite float in shortest-round-trip form; non-finite values fall
/// back to their tagged-string encoding so the output stays valid JSON.
///
/// Integral values get an explicit `.0` so the reader classifies them as
/// floats again — without it `-0.0` would serialize as `-0`, parse as the
/// integer `0`, and silently drop its sign bit.
fn write_f64(value: f64, out: &mut String) {
    if value.is_finite() {
        let start = out.len();
        let _ = write!(out, "{value}");
        if !out[start..].contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        Json::from_f64(value).write(out);
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal (expected `{word}`)")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: require the low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(first)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            // hex4 advanced past the digits already.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Bulk-copy up to the next quote, backslash or control
                    // byte.  Those are all ASCII, so `stop` always lands on
                    // a character boundary of the (already valid UTF-8)
                    // input — this keeps parsing O(n) on long strings.
                    let rest = &self.bytes[self.pos..];
                    let stop = rest
                        .iter()
                        .position(|&b| b == b'"' || b == b'\\' || b < 0x20)
                        .unwrap_or(rest.len());
                    if stop == 0 {
                        // Quote/backslash are handled above, so this byte
                        // is an unescaped control character.
                        return Err(self.err("unescaped control character in string"));
                    }
                    let chunk = std::str::from_utf8(&rest[..stop])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos += stop;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated unicode escape"))?;
        let s = std::str::from_utf8(digits).map_err(|_| self.err("invalid unicode escape"))?;
        let value =
            u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape digits"))?;
        self.pos = end;
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if integral {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::Uint(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>().map(Json::Float).map_err(|_| JsonError {
            offset: start,
            message: "invalid number".to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for input in [
            "null", "true", "false", "0", "-7", "42", "1.5", "-0.125", "1e300",
        ] {
            let parsed = Json::parse(input).unwrap();
            let reparsed = Json::parse(&parsed.encode()).unwrap();
            assert_eq!(parsed, reparsed, "{input}");
        }
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for value in [
            0.0,
            -0.0,
            1.0,
            std::f64::consts::PI,
            1.0e-308,
            4.9e-324, // smallest subnormal
            1.797e308,
            -123.456_789_012_345_67,
        ] {
            let encoded = Json::from_f64(value).encode();
            let decoded = Json::parse(&encoded).unwrap().as_f64().unwrap();
            assert_eq!(decoded.to_bits(), value.to_bits(), "{value} via {encoded}");
        }
    }

    #[test]
    fn non_finite_floats_use_tagged_strings() {
        assert_eq!(Json::from_f64(f64::NAN).encode(), "\"NaN\"");
        assert_eq!(Json::from_f64(f64::INFINITY).encode(), "\"inf\"");
        assert_eq!(Json::from_f64(f64::NEG_INFINITY).encode(), "\"-inf\"");
        assert!(Json::parse("\"NaN\"").unwrap().as_f64().unwrap().is_nan());
        assert_eq!(
            Json::parse("\"-inf\"").unwrap().as_f64(),
            Some(f64::NEG_INFINITY)
        );
    }

    #[test]
    fn objects_preserve_order_and_support_lookup() {
        let parsed = Json::parse(r#"{"b": 1, "a": [true, "x\n"], "c": {"d": null}}"#).unwrap();
        assert_eq!(parsed.get("b").and_then(Json::as_u64), Some(1));
        assert_eq!(parsed.get("missing"), None);
        let encoded = parsed.encode();
        assert_eq!(encoded, r#"{"b":1,"a":[true,"x\n"],"c":{"d":null}}"#);
        assert_eq!(Json::parse(&encoded).unwrap(), parsed);
    }

    #[test]
    fn escapes_and_unicode_round_trip() {
        let parsed = Json::parse(r#""quote \" slash \\ tab \t unicode é 😀""#);
        let s = parsed.unwrap();
        assert_eq!(s.as_str(), Some("quote \" slash \\ tab \t unicode é 😀"));
        let roundtrip = Json::parse(&s.encode()).unwrap();
        assert_eq!(roundtrip, s);
    }

    #[test]
    fn malformed_inputs_return_typed_errors() {
        for input in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "nul",
            "truthy",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\ud800 lonely\"",
            "1 2",
            "--3",
            "1.2.3",
            "[1]]",
            "{\"a\":1,}",
            "\u{1}",
        ] {
            let outcome = Json::parse(input);
            assert!(outcome.is_err(), "`{input}` should fail, got {outcome:?}");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let deep = "[".repeat(MAX_DEPTH + 8) + &"]".repeat(MAX_DEPTH + 8);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"));
    }
}
