//! In-crate load generator: a blocking client plus a multi-connection
//! driver with deterministic seeded request mixes.
//!
//! [`Client`] is the protocol's reference client: one TCP connection,
//! pipelined JSON-lines frames, typed decoding.  [`run`] fans a
//! deterministic scenario mix over `clients` concurrent connections and
//! aggregates a [`LoadReport`] — the tool behind `examples/serve.rs`, the
//! `bench_server` trajectory bin, and the stress tests, so every
//! throughput/shedding claim is produced by the same code path.
//! [`connect_swarm`]/[`Swarm`] multiplex thousands of connections over
//! `poll(2)` on a single thread — the client side of the
//! ten-thousand-connection stress runs, where a thread per connection
//! would blow the process budget the test is asserting.
//!
//! Determinism: client `c` of a run with seed `s` draws its scenario
//! sequence from `StdRng::seed_from_u64(s + c)` and uses ids
//! `c * requests_per_client + i`, so a mix can be replayed exactly and
//! every response can be mapped back to the spec that produced it.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crosslight_core::variants::CrossLightVariant;
use crosslight_neural::zoo::PaperModel;
use crosslight_telemetry::{Histogram, HistogramSnapshot};

use crate::poller::{fd_of, LineScanner, PollSet, ScanEvent};
use crate::wire::{
    self, ErrorFrame, ErrorKind, EvalSpec, MetricsFormat, Request, RequestBody, Response,
    ResponseBody,
};

/// Socket-deadline knobs of a [`Client`].  The defaults (`None`
/// everywhere) preserve the original fully-blocking behaviour; any bound
/// turns the corresponding blocking call into a typed
/// [`std::io::ErrorKind::WouldBlock`]/[`std::io::ErrorKind::TimedOut`]
/// error instead of an indefinite hang on a vanished or wedged peer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientOptions {
    /// Bound on establishing the TCP connection.
    pub connect_timeout: Option<Duration>,
    /// Bound on each blocking read (one response line may span several).
    pub read_timeout: Option<Duration>,
    /// Bound on each blocking write.
    pub write_timeout: Option<Duration>,
}

impl ClientOptions {
    /// One bound for connect, read and write alike — the common case.
    #[must_use]
    pub fn with_deadline(timeout: Duration) -> Self {
        Self {
            connect_timeout: Some(timeout),
            read_timeout: Some(timeout),
            write_timeout: Some(timeout),
        }
    }
}

/// A blocking JSON-lines client over one TCP connection.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    options: ClientOptions,
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a server with no socket deadlines (a vanished peer can
    /// block reads indefinitely; use [`Client::connect_with`] to bound
    /// every socket operation).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        Self::connect_with(addr, ClientOptions::default())
    }

    /// Connects to a server with explicit connect/read/write deadlines.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; a connect that exceeds
    /// `options.connect_timeout` fails with a timeout error.
    pub fn connect_with(addr: SocketAddr, options: ClientOptions) -> std::io::Result<Self> {
        let stream = match options.connect_timeout {
            Some(timeout) => TcpStream::connect_timeout(&addr, timeout)?,
            None => TcpStream::connect(addr)?,
        };
        stream.set_nodelay(true)?;
        stream.set_read_timeout(options.read_timeout)?;
        stream.set_write_timeout(options.write_timeout)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            addr,
            options,
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// The address this client dialed (and [`Client::reconnect`] redials).
    #[must_use]
    pub fn peer_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Tears the current connection down and dials the same address again
    /// with the same [`ClientOptions`] — the recovery path after a read
    /// timeout or a peer that died mid-conversation.  Any responses still
    /// in flight on the old connection are lost; callers re-send what they
    /// still need (safe: evals are idempotent and errors are typed).
    ///
    /// # Errors
    ///
    /// Propagates socket errors from the fresh dial; on error the client
    /// keeps the (dead) old connection so a later retry can try again.
    pub fn reconnect(&mut self) -> std::io::Result<()> {
        let fresh = Self::connect_with(self.addr, self.options)?;
        *self = fresh;
        Ok(())
    }

    /// Sends one request without waiting for the response (pipelining).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn send(&mut self, request: &Request) -> std::io::Result<()> {
        self.writer
            .write_all(wire::encode_request(request).as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Flushes buffered requests to the socket.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }

    /// Sends one raw line verbatim (for protocol testing).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn send_raw(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Flushes and half-closes the write side, signalling EOF to the
    /// server while keeping the read side open — the client-initiated
    /// drain: the server answers everything already pipelined, then closes.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn shutdown_write(&mut self) -> std::io::Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().shutdown(std::net::Shutdown::Write)
    }

    /// Receives and decodes one response line.
    ///
    /// # Errors
    ///
    /// Returns an I/O error on EOF/socket failure — including a peer that
    /// closes **mid-frame** (bytes arrived but the line never terminated),
    /// which is a transport fault, not a server answer; a decode failure
    /// on a *complete* line is returned as a typed [`ErrorFrame`]
    /// response so callers see exactly what the server sent.
    pub fn recv(&mut self) -> std::io::Result<Response> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        if !line.ends_with('\n') {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-frame",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(wire::decode_response(&line).unwrap_or_else(|frame| Response::error(None, frame)))
    }

    /// Sends a request and waits for the next response line.
    ///
    /// Only valid when no other responses are pending on the connection
    /// (the protocol itself correlates by id, not order).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn call(&mut self, request: &Request) -> std::io::Result<Response> {
        self.send(request)?;
        self.flush()?;
        self.recv()
    }

    /// Sugar: evaluates one spec.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn eval(&mut self, id: u64, spec: &EvalSpec) -> std::io::Result<Response> {
        self.call(&Request {
            id,
            body: RequestBody::Eval(spec.clone()),
        })
    }

    /// Sugar: fetches a stats snapshot.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn stats(&mut self, id: u64) -> std::io::Result<Response> {
        self.call(&Request {
            id,
            body: RequestBody::Stats,
        })
    }

    /// Sugar: scrapes the server's merged metric registries in the given
    /// format (JSON snapshot, Prometheus-style text, or trace spans).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn metrics(&mut self, id: u64, format: MetricsFormat) -> std::io::Result<Response> {
        self.call(&Request {
            id,
            body: RequestBody::Metrics { format },
        })
    }

    /// Pulls the peer's full warm-state snapshot: one `snapshot` request,
    /// then chunks are streamed until the terminal frame, with sequence
    /// numbers, entry counts and the checksum re-verified locally.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.  A truncated, reordered or corrupt
    /// stream — or a typed error frame from the peer — is reported as
    /// [`std::io::ErrorKind::InvalidData`]; the connection may still
    /// carry stale snapshot frames afterwards, so use a dedicated
    /// connection per transfer.
    pub fn snapshot_entries(&mut self, id: u64) -> std::io::Result<Vec<wire::SnapshotEntry>> {
        self.snapshot_entries_limited(id, None)
    }

    /// [`Client::snapshot_entries`] advertising this client's own line
    /// budget, so a server with a larger `max_line_bytes` still sizes its
    /// chunk frames under what this side can decode.
    ///
    /// # Errors
    ///
    /// As [`Client::snapshot_entries`].
    pub fn snapshot_entries_limited(
        &mut self,
        id: u64,
        max_chunk_bytes: Option<u64>,
    ) -> std::io::Result<Vec<wire::SnapshotEntry>> {
        fn corrupt(detail: String) -> std::io::Error {
            std::io::Error::new(std::io::ErrorKind::InvalidData, detail)
        }
        self.send(&Request {
            id,
            body: RequestBody::Snapshot { max_chunk_bytes },
        })?;
        self.flush()?;
        let mut entries = Vec::new();
        let mut next_seq = 0u64;
        loop {
            match self.recv()?.body {
                ResponseBody::Snapshot(chunk) => {
                    if chunk.seq != next_seq {
                        return Err(corrupt(format!(
                            "snapshot chunk out of sequence: expected {next_seq}, got {}",
                            chunk.seq
                        )));
                    }
                    next_seq += 1;
                    entries.extend(chunk.entries);
                }
                ResponseBody::SnapshotEnd(end) => {
                    if next_seq != end.chunks || entries.len() as u64 != end.entries {
                        return Err(corrupt(format!(
                            "truncated snapshot stream: got {next_seq} chunks / {} \
                             entries, terminal frame promised {} / {}",
                            entries.len(),
                            end.chunks,
                            end.entries
                        )));
                    }
                    if wire::snapshot_checksum(&entries) != end.checksum {
                        return Err(corrupt("snapshot stream checksum mismatch".into()));
                    }
                    return Ok(entries);
                }
                ResponseBody::Error(frame) => {
                    return Err(corrupt(format!(
                        "snapshot refused ({}): {}",
                        frame.kind.as_str(),
                        frame.detail
                    )));
                }
                other => {
                    return Err(corrupt(format!(
                        "unexpected frame in snapshot stream: {other:?}"
                    )));
                }
            }
        }
    }

    /// Pushes a warm-state snapshot into the peer: chunks the entries
    /// under `max_chunk_bytes`, pipelines every `restore` frame plus the
    /// `restore_end` terminal, and waits for the single `restored`
    /// response.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.  A typed rejection from the peer
    /// (truncated/corrupt stream, invalid entries, schema mismatch) is
    /// reported as [`std::io::ErrorKind::InvalidData`] carrying the
    /// frame's kind and message; the restore was not applied.
    pub fn restore_entries(
        &mut self,
        id: u64,
        entries: Vec<wire::SnapshotEntry>,
        max_chunk_bytes: usize,
    ) -> std::io::Result<wire::RestoredFrame> {
        let checksum = wire::snapshot_checksum(&entries);
        let total = entries.len() as u64;
        let chunks = wire::chunk_snapshot_entries(entries, max_chunk_bytes);
        let chunk_count = chunks.len() as u64;
        for chunk in chunks {
            self.send(&Request {
                id,
                body: RequestBody::Restore(chunk),
            })?;
        }
        self.send(&Request {
            id,
            body: RequestBody::RestoreEnd(wire::SnapshotEnd {
                chunks: chunk_count,
                entries: total,
                checksum,
            }),
        })?;
        self.flush()?;
        match self.recv()?.body {
            ResponseBody::Restored(frame) => Ok(frame),
            ResponseBody::Error(frame) => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "restore rejected ({}): {}",
                    frame.kind.as_str(),
                    frame.detail
                ),
            )),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unexpected frame in restore stream: {other:?}"),
            )),
        }
    }

    /// Pipelines a whole mix of specs (ids `base_id + index`) and collects
    /// every response, in **arrival order** — pipelined responses complete
    /// out of order, so callers correlate by [`Response::id`].
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn eval_pipelined(
        &mut self,
        specs: &[EvalSpec],
        base_id: u64,
    ) -> std::io::Result<Vec<Response>> {
        let latency = Histogram::new();
        self.eval_pipelined_timed(specs, base_id, &latency)
    }

    /// [`Client::eval_pipelined`], recording each response's
    /// client-observed latency — elapsed time from the pipeline flush to
    /// that response's arrival — into `latency`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn eval_pipelined_timed(
        &mut self,
        specs: &[EvalSpec],
        base_id: u64,
        latency: &Histogram,
    ) -> std::io::Result<Vec<Response>> {
        for (index, spec) in specs.iter().enumerate() {
            self.send(&Request {
                id: base_id + index as u64,
                body: RequestBody::Eval(spec.clone()),
            })?;
        }
        self.flush()?;
        let flushed = Instant::now();
        let mut responses = Vec::with_capacity(specs.len());
        for _ in 0..specs.len() {
            let response = self.recv()?;
            latency.record(u64::try_from(flushed.elapsed().as_nanos()).unwrap_or(u64::MAX));
            responses.push(response);
        }
        Ok(responses)
    }
}

/// Options of a load-generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadGenOptions {
    /// Number of concurrent client connections.
    pub clients: usize,
    /// Requests sent by each client.
    pub requests_per_client: usize,
    /// Base RNG seed; client `c` uses `seed + c`.
    pub seed: u64,
    /// The scenario pool each client draws from uniformly.
    pub scenarios: Vec<EvalSpec>,
    /// How many times a response whose error frame is
    /// [retryable](ErrorKind::retryable) is re-sent (0 disables the retry
    /// loop; non-retryable errors are never re-sent).
    pub retries: u32,
    /// Base delay between retry rounds; round `n` (1-based) waits
    /// `retry_backoff * n` — linear backoff, bounded by `retries`.
    pub retry_backoff: Duration,
}

impl LoadGenOptions {
    /// A mixed paper-scenario pool: every variant × every Table I model ×
    /// two architectures × two resolutions (64 distinct scenarios).
    #[must_use]
    pub fn paper_mix(clients: usize, requests_per_client: usize, seed: u64) -> Self {
        let mut scenarios = Vec::new();
        for variant in CrossLightVariant::all() {
            for model in PaperModel::all() {
                for dims in [crosslight_core::config::BEST_CONFIG, (10, 100, 50, 30)] {
                    for resolution_bits in [16u32, 8] {
                        scenarios.push(EvalSpec::crosslight(
                            variant,
                            dims,
                            resolution_bits,
                            crate::wire::WorkloadRef::Model(model),
                        ));
                    }
                }
            }
        }
        Self {
            clients: clients.max(1),
            requests_per_client: requests_per_client.max(1),
            seed,
            scenarios,
            retries: 0,
            retry_backoff: Duration::from_millis(10),
        }
    }

    /// Returns a copy that retries retryable error responses up to
    /// `retries` times with linear `retry_backoff` between rounds.
    #[must_use]
    pub fn with_retries(mut self, retries: u32, retry_backoff: Duration) -> Self {
        self.retries = retries;
        self.retry_backoff = retry_backoff;
        self
    }

    /// The deterministic spec sequence of one client (what [`run`] sends).
    #[must_use]
    pub fn client_specs(&self, client: usize) -> Vec<EvalSpec> {
        let mut rng = StdRng::seed_from_u64(self.seed + client as u64);
        (0..self.requests_per_client)
            .map(|_| self.scenarios[rng.gen_range(0..self.scenarios.len())].clone())
            .collect()
    }

    /// The id of request `index` of `client` (unique across the run).
    #[must_use]
    pub fn request_id(&self, client: usize, index: usize) -> u64 {
        (client * self.requests_per_client + index) as u64
    }
}

/// What one load-generation run observed.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Requests sent across all clients.
    pub sent: u64,
    /// Successful eval responses.
    pub ok: u64,
    /// Responses shed with `overloaded`.
    pub shed: u64,
    /// Individual re-sends performed by the retry loop (0 when
    /// [`LoadGenOptions::retries`] is 0 or nothing needed retrying).
    pub retried: u64,
    /// Any other error responses (by kind name), including id-less error
    /// frames (e.g. `oversized` rejections, which cannot echo an id).
    pub errors: Vec<(ErrorKind, u64)>,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Client-observed response latencies (flush-to-arrival, nanoseconds)
    /// merged across all clients — the demand side of the latency story,
    /// complementing the server's own `server_request_ns`.
    pub latency: HistogramSnapshot,
    /// Every `(id, response)` pair for responses that carried an id,
    /// sorted by id.  Id-less error frames are counted in
    /// [`LoadReport::errors`] only.
    pub responses: Vec<(u64, Response)>,
}

impl LoadReport {
    /// Aggregate requests per second over the run.
    #[must_use]
    pub fn throughput_rps(&self) -> f64 {
        if self.elapsed.as_secs_f64() == 0.0 {
            0.0
        } else {
            self.sent as f64 / self.elapsed.as_secs_f64()
        }
    }
}

/// Drives `options.clients` concurrent connections against `addr`, each
/// pipelining its deterministic seeded mix, and aggregates the outcome.
///
/// # Errors
///
/// Propagates the first client I/O error.
///
/// # Panics
///
/// Panics if a client thread itself panicked.
pub fn run(addr: SocketAddr, options: &LoadGenOptions) -> std::io::Result<LoadReport> {
    let start = Instant::now();
    let outcomes: Vec<std::io::Result<(Vec<Response>, HistogramSnapshot, u64)>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..options.clients)
                .map(|client| {
                    scope.spawn(move || {
                        let specs = options.client_specs(client);
                        let base_id = options.request_id(client, 0);
                        let mut connection = Client::connect(addr)?;
                        let latency = Histogram::new();
                        let mut responses =
                            connection.eval_pipelined_timed(&specs, base_id, &latency)?;
                        let retried = retry_retryable(
                            &mut connection,
                            &specs,
                            base_id,
                            &mut responses,
                            options,
                        )?;
                        Ok((responses, latency.snapshot(), retried))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("load-generator client panicked"))
                .collect()
        });
    let elapsed = start.elapsed();

    let mut ok = 0u64;
    let mut shed = 0u64;
    let mut retried = 0u64;
    let mut errors: Vec<(ErrorKind, u64)> = Vec::new();
    let mut responses: Vec<(u64, Response)> = Vec::new();
    let mut latency = HistogramSnapshot::empty();
    for outcome in outcomes {
        let (client_responses, client_latency, client_retried) = outcome?;
        latency = latency.merge(&client_latency);
        retried += client_retried;
        for response in client_responses {
            match &response.body {
                ResponseBody::Eval(_) => ok += 1,
                ResponseBody::Error(ErrorFrame {
                    kind: ErrorKind::Overloaded,
                    ..
                }) => shed += 1,
                ResponseBody::Error(frame) => {
                    match errors.iter_mut().find(|(kind, _)| *kind == frame.kind) {
                        Some((_, count)) => *count += 1,
                        None => errors.push((frame.kind, 1)),
                    }
                }
                _ => {}
            }
            // Pipelined completions arrive out of order; the protocol's
            // ids are the correlation mechanism.  Id-less frames (e.g.
            // `oversized` rejections) stay countable above but cannot be
            // correlated, so they are not in `responses`.
            if let Some(id) = response.id {
                responses.push((id, response));
            }
        }
    }
    responses.sort_by_key(|(id, _)| *id);

    Ok(LoadReport {
        sent: (options.clients * options.requests_per_client) as u64,
        ok,
        shed,
        retried,
        errors,
        elapsed,
        latency,
        responses,
    })
}

/// The client-side retry loop: re-sends every response whose error frame
/// is [retryable](ErrorKind::retryable) — and only those — for up to
/// `options.retries` rounds with linear backoff, replacing the failed
/// response in place.  Returns how many individual re-sends happened.
/// A connection that died in the meantime is re-established through
/// [`Client::reconnect`].
fn retry_retryable(
    connection: &mut Client,
    specs: &[EvalSpec],
    base_id: u64,
    responses: &mut [Response],
    options: &LoadGenOptions,
) -> std::io::Result<u64> {
    let mut retried = 0u64;
    for round in 1..=options.retries {
        // Correlate by id (pipelined responses arrive out of order); only
        // id-carrying retryable error frames can be mapped back to a spec.
        let pending: Vec<usize> = responses
            .iter()
            .enumerate()
            .filter_map(|(index, response)| match (&response.body, response.id) {
                (ResponseBody::Error(frame), Some(id)) if frame.kind.retryable() => {
                    let offset = id.checked_sub(base_id)?;
                    (offset < specs.len() as u64).then_some(index)
                }
                _ => None,
            })
            .collect();
        if pending.is_empty() {
            break;
        }
        std::thread::sleep(options.retry_backoff * round);
        for index in pending {
            let id = responses[index].id.expect("filtered on id presence");
            let spec = &specs[(id - base_id) as usize];
            retried += 1;
            let replacement = match connection.eval(id, spec) {
                Ok(response) => response,
                Err(_) => {
                    // The peer vanished mid-retry: dial again, then re-send
                    // (evals are idempotent, so a duplicate is harmless).
                    connection.reconnect()?;
                    connection.eval(id, spec)?
                }
            };
            responses[index] = replacement;
        }
    }
    Ok(retried)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_are_deterministic_and_ids_unique() {
        let options = LoadGenOptions::paper_mix(3, 5, 42);
        assert_eq!(options.scenarios.len(), 64);
        for client in 0..3 {
            assert_eq!(options.client_specs(client), options.client_specs(client));
        }
        assert_ne!(options.client_specs(0), options.client_specs(1));
        let mut ids = std::collections::HashSet::new();
        for client in 0..3 {
            for index in 0..5 {
                assert!(ids.insert(options.request_id(client, index)));
            }
        }
    }

    #[test]
    fn empty_report_throughput_is_zero() {
        let report = LoadReport {
            sent: 0,
            ok: 0,
            shed: 0,
            retried: 0,
            errors: vec![],
            elapsed: Duration::ZERO,
            latency: HistogramSnapshot::empty(),
            responses: vec![],
        };
        assert_eq!(report.throughput_rps(), 0.0);
        assert_eq!(report.latency.count(), 0);
    }
}

/// One connection of a [`Swarm`]: a pre-encoded request pipeline on the
/// write side, an incremental line scanner on the read side.
#[derive(Debug)]
struct SwarmConn {
    stream: TcpStream,
    scanner: LineScanner,
    /// Every request line of this connection, pre-encoded back to back.
    outbox: Vec<u8>,
    written: usize,
    expected: usize,
    received: usize,
    ok: u64,
    errors: u64,
    /// Set when the socket died; the remaining expected responses are
    /// counted as errors.
    failed: bool,
}

impl SwarmConn {
    fn finished(&self) -> bool {
        self.failed || (self.written >= self.outbox.len() && self.received >= self.expected)
    }

    fn fail(&mut self) {
        if !self.failed {
            self.errors += (self.expected - self.received) as u64;
            self.failed = true;
        }
    }
}

/// What one [`Swarm::run`] pass observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwarmReport {
    /// Responses decoded as successful evals.
    pub ok: u64,
    /// Error frames, undecodable lines, and responses lost to dead
    /// sockets.
    pub errors: u64,
    /// Wall-clock time of the request pass.
    pub elapsed: Duration,
}

/// A poll-driven swarm of concurrent connections, all multiplexed on the
/// caller's thread — the client-side counterpart of the server reactor,
/// built for ten-thousand-connection stress runs where a thread per
/// connection is not an option.
///
/// Lifecycle: [`connect_swarm`] establishes every connection (in staggered
/// waves, so the listener backlog is never overrun), the caller may hold
/// the swarm open while it inspects the server, then [`Swarm::run`] sends
/// `requests_per_conn` evals down every connection and reads the
/// responses back.  Connections stay open until the swarm is dropped.
#[derive(Debug)]
pub struct Swarm {
    conns: Vec<SwarmConn>,
}

/// Establishes `connections` nonblocking loopback connections in waves of
/// `connect_batch` (clamped to at least 1) with a short pause between
/// waves, retrying transient refusals while the listener's backlog drains.
///
/// # Errors
///
/// Propagates the first connection that still fails after retries.
pub fn connect_swarm(
    addr: SocketAddr,
    connections: usize,
    connect_batch: usize,
) -> std::io::Result<Swarm> {
    let batch = connect_batch.max(1);
    let mut conns = Vec::with_capacity(connections);
    for index in 0..connections {
        if index > 0 && index % batch == 0 {
            std::thread::sleep(Duration::from_millis(10));
        }
        let stream = connect_with_retry(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        conns.push(SwarmConn {
            stream,
            scanner: LineScanner::new(),
            outbox: Vec::new(),
            written: 0,
            expected: 0,
            received: 0,
            ok: 0,
            errors: 0,
            failed: false,
        });
    }
    Ok(Swarm { conns })
}

/// A backlog-overrun-tolerant connect: the listener accepts in waves, so
/// a refused or timed-out attempt is retried with linear-ish backoff
/// before giving up.
fn connect_with_retry(addr: SocketAddr) -> std::io::Result<TcpStream> {
    let mut delay = Duration::from_millis(20);
    for _ in 0..20 {
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(_) => {
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(500));
            }
        }
    }
    TcpStream::connect(addr)
}

impl Swarm {
    /// Live connections in the swarm.
    #[must_use]
    pub fn connected(&self) -> usize {
        self.conns.iter().filter(|conn| !conn.failed).count()
    }

    /// Sends `requests_per_conn` copies of `spec` down every connection
    /// (ids `start_id + conn_index * requests_per_conn + i`, so every
    /// response maps back to its connection) and reads all responses
    /// back, multiplexed over `poll(2)` on this thread.
    pub fn run(&mut self, spec: &EvalSpec, requests_per_conn: usize, start_id: u64) -> SwarmReport {
        for (index, conn) in self.conns.iter_mut().enumerate() {
            conn.outbox.clear();
            conn.written = 0;
            conn.expected = requests_per_conn;
            conn.received = 0;
            for i in 0..requests_per_conn {
                let id = start_id + (index * requests_per_conn + i) as u64;
                let line = wire::encode_request(&Request {
                    id,
                    body: RequestBody::Eval(spec.clone()),
                });
                conn.outbox.extend_from_slice(line.as_bytes());
                conn.outbox.push(b'\n');
            }
        }
        let start = Instant::now();
        let mut poll_set = PollSet::new();
        let mut slots: Vec<usize> = Vec::new();
        let mut scratch = vec![0u8; 16 * 1024];
        loop {
            poll_set.clear();
            slots.clear();
            for (index, conn) in self.conns.iter().enumerate() {
                if conn.finished() {
                    continue;
                }
                let want_write = conn.written < conn.outbox.len();
                poll_set.push(fd_of(&conn.stream), true, want_write);
                slots.push(index);
            }
            if slots.is_empty() {
                break;
            }
            let _ = poll_set.poll(Some(Duration::from_millis(250)));
            for (slot, &index) in slots.iter().enumerate() {
                let readiness = poll_set.readiness(slot);
                if !readiness.any() {
                    continue;
                }
                let conn = &mut self.conns[index];
                if readiness.error {
                    conn.fail();
                    continue;
                }
                if readiness.writable && conn.written < conn.outbox.len() {
                    swarm_write(conn);
                }
                if readiness.readable {
                    swarm_read(conn, &mut scratch);
                }
            }
        }
        SwarmReport {
            ok: self.conns.iter().map(|conn| conn.ok).sum(),
            errors: self.conns.iter().map(|conn| conn.errors).sum(),
            elapsed: start.elapsed(),
        }
    }
}

fn swarm_write(conn: &mut SwarmConn) {
    while conn.written < conn.outbox.len() {
        match (&conn.stream).write(&conn.outbox[conn.written..]) {
            Ok(0) => {
                conn.fail();
                return;
            }
            Ok(n) => conn.written += n,
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.fail();
                return;
            }
        }
    }
}

fn swarm_read(conn: &mut SwarmConn, scratch: &mut [u8]) {
    loop {
        if conn.received >= conn.expected {
            return;
        }
        let read = match std::io::Read::read(&mut (&conn.stream), scratch) {
            Ok(0) => {
                conn.fail();
                return;
            }
            Ok(read) => read,
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.fail();
                return;
            }
        };
        let SwarmConn {
            scanner,
            received,
            ok,
            errors,
            ..
        } = conn;
        scanner.push(&scratch[..read], wire::DEFAULT_MAX_LINE_BYTES, |event| {
            *received += 1;
            match event {
                ScanEvent::Line(line) => match wire::decode_response(&line) {
                    Ok(Response {
                        body: ResponseBody::Eval(_),
                        ..
                    }) => *ok += 1,
                    _ => *errors += 1,
                },
                ScanEvent::Oversized | ScanEvent::InvalidUtf8 => *errors += 1,
            }
            true
        });
    }
}
