//! Readiness and nonblocking-I/O primitives shared by the server's poll
//! reactor and the high-connection-count swarm load generator.
//!
//! Three small pieces:
//!
//! * [`PollSet`] — a safe, reusable wrapper over `poll(2)` (via the offline
//!   `libc` compat shim): register descriptors with read/write interest,
//!   block until something is ready, inspect per-slot [`Readiness`].  On
//!   targets without a C-library `poll`, the shim's portable fallback
//!   reports every descriptor ready after a short sleep, degrading callers
//!   to a polling loop over nonblocking sockets without changing behaviour.
//! * [`Waker`] / [`WakeReceiver`] — a loopback socket pair that lets any
//!   thread interrupt a [`PollSet::poll`] sleep (the portable equivalent of
//!   a self-pipe).
//! * [`LineScanner`] — an incremental, length-limited `\n`-frame decoder
//!   for nonblocking reads, with the same oversized-resync and UTF-8
//!   semantics as the blocking [`read_line_limited`] discipline.
//!
//! [`read_line_limited`]: crate::server::read_line_limited

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

#[cfg(unix)]
use std::os::unix::io::AsRawFd;

/// The raw descriptor type handed to `poll(2)`.
pub type RawFd = libc::c_int;

/// The descriptor of a socket, as registered with [`PollSet::push`].
///
/// On non-Unix targets (where the compat shim's portable `poll` fallback
/// never inspects descriptors) this returns a placeholder.
#[must_use]
pub fn fd_of(stream: &TcpStream) -> RawFd {
    #[cfg(unix)]
    {
        stream.as_raw_fd()
    }
    #[cfg(not(unix))]
    {
        let _ = stream;
        0
    }
}

/// What `poll(2)` reported for one registered slot.
#[derive(Debug, Clone, Copy, Default)]
pub struct Readiness {
    /// Data (or EOF/hangup) can be read without blocking.
    pub readable: bool,
    /// The socket can accept writes without blocking.
    pub writable: bool,
    /// The descriptor is in an error state (`POLLERR`/`POLLNVAL`).
    pub error: bool,
}

impl Readiness {
    /// Whether anything at all was reported.
    #[must_use]
    pub fn any(&self) -> bool {
        self.readable || self.writable || self.error
    }
}

/// A reusable `poll(2)` registration set.
///
/// The intended cadence is: [`PollSet::clear`], [`PollSet::push`] every
/// descriptor of interest (remembering the returned slot), [`PollSet::poll`],
/// then [`PollSet::readiness`] per slot.  The backing array is reused across
/// iterations, so a steady-state reactor allocates nothing per tick.
#[derive(Debug, Default)]
pub struct PollSet {
    fds: Vec<libc::pollfd>,
}

impl PollSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops every registration, keeping the allocation.
    pub fn clear(&mut self) {
        self.fds.clear();
    }

    /// Registers a descriptor with the given interests; returns its slot
    /// index for [`PollSet::readiness`] after the next poll.
    pub fn push(&mut self, fd: RawFd, read: bool, write: bool) -> usize {
        let mut events: libc::c_short = 0;
        if read {
            events |= libc::POLLIN;
        }
        if write {
            events |= libc::POLLOUT;
        }
        self.fds.push(libc::pollfd {
            fd,
            events,
            revents: 0,
        });
        self.fds.len() - 1
    }

    /// Number of registered slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fds.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }

    /// Blocks until at least one slot is ready or the timeout elapses
    /// (`None` = wait forever).  Returns the number of ready slots; `0` on
    /// timeout.  An `EINTR` wakeup is reported as `0` ready slots rather
    /// than an error, so callers simply re-enter their loop.
    ///
    /// # Errors
    ///
    /// Any `poll(2)` failure other than `EINTR`.
    pub fn poll(&mut self, timeout: Option<Duration>) -> io::Result<usize> {
        for entry in &mut self.fds {
            entry.revents = 0;
        }
        let timeout_ms: libc::c_int = match timeout {
            None => -1,
            Some(t) => {
                libc::c_int::try_from(t.as_millis().clamp(0, 3_600_000)).unwrap_or(3_600_000)
            }
        };
        let rc = unsafe {
            libc::poll(
                self.fds.as_mut_ptr(),
                self.fds.len() as libc::nfds_t,
                timeout_ms,
            )
        };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(rc as usize)
    }

    /// Readiness of one slot after the last [`PollSet::poll`].  A hangup
    /// (`POLLHUP`) is reported as readable: the pending EOF (or queued data
    /// ahead of it) is collected by reading.
    #[must_use]
    pub fn readiness(&self, slot: usize) -> Readiness {
        let revents = self.fds[slot].revents;
        Readiness {
            readable: revents & (libc::POLLIN | libc::POLLHUP) != 0,
            writable: revents & libc::POLLOUT != 0,
            error: revents & (libc::POLLERR | libc::POLLNVAL) != 0,
        }
    }
}

/// The write end of a wake pair: any thread can interrupt the owning
/// reactor's poll sleep.  Cloneable across threads via `try_clone` on the
/// inner stream is unnecessary — `wake` takes `&self`.
#[derive(Debug)]
pub struct Waker {
    tx: TcpStream,
}

impl Waker {
    /// Interrupts the paired [`WakeReceiver`]'s poll.  Best-effort: a full
    /// pipe means a wakeup is already pending, and a closed pipe means the
    /// reactor already exited — both are fine to ignore.
    pub fn wake(&self) {
        let _ = (&self.tx).write(&[1]);
    }
}

/// The read end of a wake pair, registered in the owning reactor's
/// [`PollSet`].
#[derive(Debug)]
pub struct WakeReceiver {
    rx: TcpStream,
}

impl WakeReceiver {
    /// The descriptor to register for read interest.
    #[must_use]
    pub fn fd(&self) -> RawFd {
        fd_of(&self.rx)
    }

    /// Consumes every pending wake byte so the next poll sleeps again.
    pub fn drain(&self) {
        let mut sink = [0u8; 64];
        loop {
            match (&self.rx).read(&mut sink) {
                Ok(0) => return,
                Ok(_) => {}
                Err(ref e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }
}

/// Builds a connected, nonblocking loopback socket pair used as a poll
/// wakeup channel — the portable stand-in for `pipe(2)`/`eventfd(2)`.
///
/// # Errors
///
/// Propagates socket errors from the loopback bind/connect/accept.
pub fn wake_pair() -> io::Result<(Waker, WakeReceiver)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx }, WakeReceiver { rx }))
}

/// One framing event from a [`LineScanner`].
#[derive(Debug)]
pub enum ScanEvent {
    /// A complete line (without the newline).
    Line(String),
    /// A line exceeded the limit; its bytes were discarded and the stream
    /// is re-synchronized at the next newline.
    Oversized,
    /// A complete line that was not valid UTF-8.
    InvalidUtf8,
}

/// Incremental, length-limited `\n`-frame decoder for nonblocking reads.
///
/// Feed it whatever chunks `read` returns; it buffers partial lines
/// (bounded by the limit), emits one [`ScanEvent`] per completed line, and
/// discards the remainder of over-long lines so the stream stays
/// line-synchronized — the same discipline as the blocking
/// [`read_line_limited`](crate::server::read_line_limited).
#[derive(Debug, Default)]
pub struct LineScanner {
    buf: Vec<u8>,
    oversized: bool,
}

impl LineScanner {
    /// A fresh scanner with no buffered bytes.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes one chunk of input, invoking `emit` for each completed
    /// line event.  `emit` returning `false` stops the scan early (the
    /// connection died mid-handling); unconsumed input is discarded, which
    /// is fine because the connection never reads again.  Returns whether
    /// the scan ran to completion.
    pub fn push(
        &mut self,
        mut data: &[u8],
        max_bytes: usize,
        mut emit: impl FnMut(ScanEvent) -> bool,
    ) -> bool {
        while let Some(newline) = data.iter().position(|&b| b == b'\n') {
            let (head, rest) = data.split_at(newline);
            data = &rest[1..];
            let event = if self.oversized || self.buf.len() + head.len() > max_bytes {
                self.buf.clear();
                self.oversized = false;
                ScanEvent::Oversized
            } else {
                self.buf.extend_from_slice(head);
                match String::from_utf8(std::mem::take(&mut self.buf)) {
                    Ok(line) => ScanEvent::Line(line),
                    Err(_) => ScanEvent::InvalidUtf8,
                }
            };
            if !emit(event) {
                return false;
            }
        }
        if !self.oversized {
            if self.buf.len() + data.len() > max_bytes {
                // Mark and discard now so a frame streamed in many small
                // chunks cannot hold more than the limit in memory.
                self.buf.clear();
                self.oversized = true;
            } else {
                self.buf.extend_from_slice(data);
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_pair_interrupts_a_poll_sleep() {
        let (waker, receiver) = wake_pair().expect("loopback wake pair");
        let mut set = PollSet::new();
        let slot = set.push(receiver.fd(), true, false);
        // Nothing pending: a short poll times out.
        assert_eq!(set.poll(Some(Duration::from_millis(10))).unwrap(), 0);
        waker.wake();
        let ready = set.poll(Some(Duration::from_secs(5))).unwrap();
        assert!(ready >= 1);
        assert!(set.readiness(slot).readable);
        receiver.drain();
        // Drained: the next short poll times out again.
        set.clear();
        set.push(receiver.fd(), true, false);
        assert_eq!(set.poll(Some(Duration::from_millis(10))).unwrap(), 0);
    }

    #[test]
    fn line_scanner_frames_across_arbitrary_chunk_boundaries() {
        let mut scanner = LineScanner::new();
        let mut events = Vec::new();
        let input = b"hello\nwor";
        assert!(scanner.push(input, 1024, |e| {
            events.push(format!("{e:?}"));
            true
        }));
        assert!(scanner.push(b"ld\n", 1024, |e| {
            events.push(format!("{e:?}"));
            true
        }));
        assert_eq!(events, [r#"Line("hello")"#, r#"Line("world")"#]);
    }

    #[test]
    fn line_scanner_discards_oversized_and_resynchronizes() {
        let mut scanner = LineScanner::new();
        let mut events = Vec::new();
        // 10-byte limit; a 32-byte line arrives in two chunks, then a
        // short line follows on the same chunk as the resync newline.
        let long = [b'x'; 32];
        assert!(scanner.push(&long[..16], 10, |_| panic!("no event mid-line")));
        assert!(scanner.push(&long[16..], 10, |_| panic!("still mid-line")));
        assert!(scanner.push(b"\nok\n", 10, |e| {
            events.push(format!("{e:?}"));
            true
        }));
        assert_eq!(events, ["Oversized", r#"Line("ok")"#]);
        // Exactly at the limit passes.
        let mut exact = Vec::new();
        assert!(scanner.push(b"0123456789\n", 10, |e| {
            exact.push(format!("{e:?}"));
            true
        }));
        assert_eq!(exact, [r#"Line("0123456789")"#]);
    }

    #[test]
    fn line_scanner_reports_invalid_utf8_per_line() {
        let mut scanner = LineScanner::new();
        let mut events = Vec::new();
        assert!(scanner.push(b"bad \xff byte\nnext\n", 1024, |e| {
            events.push(format!("{e:?}"));
            true
        }));
        assert_eq!(events, ["InvalidUtf8", r#"Line("next")"#]);
    }
}
