//! The versioned JSON-lines wire protocol of `crosslight-server`.
//!
//! Every frame is one line of JSON.  Requests carry a protocol version `v`,
//! a caller-chosen correlation id, and an operation:
//!
//! ```text
//! {"v":1,"id":7,"op":"eval","config":{"variant":"Cross_opt_TED","dims":[20,150,100,60],
//!   "resolution_bits":16},"model":"lenet5_sign_mnist"}
//! {"v":1,"id":8,"op":"stats"}
//! {"v":1,"id":9,"op":"ping"}
//! ```
//!
//! The `config` object optionally names an architecture via `"arch"`; when
//! absent the request is a CrossLight evaluation, so every version-1 frame
//! from before the architecture zoo decodes (and answers) unchanged:
//!
//! ```text
//! {"v":1,"id":10,"op":"eval","config":{"arch":"holylight","units":250},"model":"cnn_cifar10"}
//! {"v":1,"id":11,"op":"eval","config":{"arch":"electronic","platform":"P100"},"model":"cnn_stl10"}
//! {"v":1,"id":12,"op":"eval","config":{"arch":"symmetric-crossbar","dims":[64,64],
//!   "resolution_bits":8},"model":"lenet5_sign_mnist"}
//! ```
//!
//! Unknown architecture, variant or platform names are answered with a
//! typed `unsupported` error frame (they are well-formed requests for
//! backends this server does not simulate), while structurally bad frames
//! stay `malformed`.
//!
//! Responses echo the id and carry either an `ok` payload or a typed `err`
//! frame:
//!
//! ```text
//! {"v":1,"id":7,"ok":{"type":"eval","cache_hit":false,"worker":2,"report":{...}}}
//! {"v":1,"id":7,"err":{"kind":"overloaded","detail":"admission queue full (capacity 256)"}}
//! ```
//!
//! Numbers round-trip exactly (see [`crate::json`]), so a decoded
//! [`SimulationReport`] is bit-identical to the one the in-process
//! [`EvalService`](crosslight_runtime::EvalService) produced — the protocol
//! never changes results, only transport.
//!
//! Decoding is total: any malformed, truncated or unsupported input maps to
//! an [`ErrorFrame`] (never a panic), which the server sends back with the
//! offending request's id when it could be parsed.

use std::fmt::Write as _;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crosslight_baselines::holylight::HOLYLIGHT_UNITS;
use crosslight_baselines::litecon::{
    LITECON_DEFAULT_BITS, LITECON_DEFAULT_UNITS, LITECON_DEFAULT_UNIT_SIZE,
};
use crosslight_baselines::symmetric_crossbar::{
    SYMMETRIC_DEFAULT_BITS, SYMMETRIC_DEFAULT_COLS, SYMMETRIC_DEFAULT_ROWS,
};
use crosslight_baselines::{
    ArchSpec, DeapCnn, ElectronicPlatform, HolyLight, LiteCon, SymmetricCrossbar,
};
use crosslight_core::cache::ModelCacheEntry;
use crosslight_core::canonical::{
    ArchKey, BackendKey, ConfigKey, ResolutionKey, VdpUnitKey, CONFIG_KEY_WORDS,
    RESOLUTION_KEY_WORDS, VDP_UNIT_KEY_WORDS,
};
use crosslight_core::config::CrossLightConfig;
use crosslight_core::performance::{InferenceLatency, InferenceMetrics};
use crosslight_core::simulator::SimulationReport;
use crosslight_core::variants::CrossLightVariant;
use crosslight_core::vdp::VdpUnitReport;
use crosslight_neural::fingerprint::StableHasher;
use crosslight_neural::layers::DotProductWorkload;
use crosslight_neural::workload::NetworkWorkload;
use crosslight_neural::zoo::PaperModel;
use crosslight_photonics::units::{MilliWatts, Picojoules, Seconds, SquareMillimeters, Watts};
use crosslight_runtime::pool::RuntimeStats;
use crosslight_runtime::request::EvalRequest;
use crosslight_telemetry::{
    FamilySnapshot, HistogramSnapshot, MetricKind, RegistrySnapshot, SeriesSnapshot, SeriesValue,
};

use crate::json::{self, Json, JsonError};

/// The protocol version this build speaks.
pub const PROTOCOL_VERSION: u64 = 1;

/// Schema tag carried by every structured `metrics` snapshot, so scrapers
/// can detect vocabulary changes without diffing family lists.
pub const METRICS_SCHEMA: &str = "crosslight-metrics/v1";

/// Default maximum accepted line length (bytes, excluding the newline).
pub const DEFAULT_MAX_LINE_BYTES: usize = 64 * 1024;

/// Schema tag carried by every cache-snapshot frame (`snapshot` chunks and
/// `restore` streams), so a restore can reject snapshots produced by an
/// incompatible cache export format.
pub const SNAPSHOT_SCHEMA: &str = "crosslight-snapshot/v1";

/// The typed error kinds of the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// The line was not a valid frame (bad JSON, missing/ill-typed fields,
    /// unknown op, unknown variant/model name).
    Malformed,
    /// The frame declared a protocol version this server does not speak.
    UnsupportedVersion,
    /// The line exceeded the server's maximum line length.
    Oversized,
    /// The admission queue was full; the request was shed, not queued.
    Overloaded,
    /// The simulator rejected the request (e.g. invalid architecture
    /// dimensions).
    Evaluation,
    /// The server is draining and no longer accepts new work.
    ShuttingDown,
    /// The frame named an architecture, design variant or platform this
    /// server does not simulate.  Distinct from [`ErrorKind::Malformed`]:
    /// the frame itself was well-formed.
    Unsupported,
    /// No backend able to serve the request is currently reachable (every
    /// replica of the request's shard is down, the retry budget ran out, or
    /// the request's deadline expired first).  The request was *not*
    /// evaluated; retrying later is safe and expected.
    Unavailable,
}

impl ErrorKind {
    /// The stable wire name of the kind.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Malformed => "malformed",
            Self::UnsupportedVersion => "unsupported_version",
            Self::Oversized => "oversized",
            Self::Overloaded => "overloaded",
            Self::Evaluation => "evaluation",
            Self::ShuttingDown => "shutting_down",
            Self::Unsupported => "unsupported",
            Self::Unavailable => "unavailable",
        }
    }

    /// Parses a wire name back into the kind.
    #[must_use]
    pub fn from_wire_name(name: &str) -> Option<Self> {
        [
            Self::Malformed,
            Self::UnsupportedVersion,
            Self::Oversized,
            Self::Overloaded,
            Self::Evaluation,
            Self::ShuttingDown,
            Self::Unsupported,
            Self::Unavailable,
        ]
        .into_iter()
        .find(|k| k.as_str() == name)
    }

    /// Whether a client may safely retry the request.  Retryable kinds are
    /// transient serving-capacity conditions (`overloaded`,
    /// `shutting_down`, `unavailable`): the request was never evaluated, so
    /// resending it cannot change any answer.  Content errors (`malformed`,
    /// `evaluation`, …) are deterministic and retrying them is useless.
    ///
    /// Encoded as `"retryable":true` on error frames of these kinds only —
    /// non-retryable frames stay byte-identical to every earlier v1 build.
    #[must_use]
    pub fn retryable(self) -> bool {
        matches!(
            self,
            Self::Overloaded | Self::ShuttingDown | Self::Unavailable
        )
    }
}

/// A typed error frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorFrame {
    /// What went wrong, as a closed enum clients can switch on.
    pub kind: ErrorKind,
    /// Human-readable detail (never required for dispatch).
    pub detail: String,
}

impl ErrorFrame {
    /// Builds an error frame.
    #[must_use]
    pub fn new(kind: ErrorKind, detail: impl Into<String>) -> Self {
        Self {
            kind,
            detail: detail.into(),
        }
    }

    fn malformed(detail: impl Into<String>) -> Self {
        Self::new(ErrorKind::Malformed, detail)
    }

    fn unsupported(detail: impl Into<String>) -> Self {
        Self::new(ErrorKind::Unsupported, detail)
    }
}

impl From<JsonError> for ErrorFrame {
    fn from(err: JsonError) -> Self {
        Self::malformed(format!("invalid JSON: {err}"))
    }
}

/// How a request names its workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadRef {
    /// One of the four Table I models, by
    /// [`PaperModel::wire_name`](crosslight_neural::zoo::PaperModel::wire_name).
    Model(PaperModel),
    /// A full inline workload (per-layer dot-product jobs).
    Inline(NetworkWorkload),
}

/// The architecture named by one `eval` request — the wire-level mirror of
/// the [`ArchSpec`] zoo.  Name resolution (architecture, variant, platform)
/// happens at decode time; numeric validation is deferred to
/// [`ArchRequest::to_arch_spec`], so a well-formed frame for an invalid
/// design point gets a typed `evaluation` error, not a decode failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArchRequest {
    /// A CrossLight design point (the only architecture of protocol
    /// version 1's original vocabulary; encoded without an `"arch"` field
    /// so those frames stay byte-identical).
    CrossLight {
        /// Cross-layer design variant, transmitted by paper label.
        variant: CrossLightVariant,
        /// Architecture dimensions `(N, K, n, m)`.
        dims: (usize, usize, usize, usize),
        /// Energy-accounting resolution in bits.
        resolution_bits: u32,
    },
    /// DEAP-CNN (fixed published design, no knobs).
    DeapCnn,
    /// HolyLight with an explicit microdisk-unit count.
    HolyLight {
        /// Number of dot-product units (`"units"`, defaults to the
        /// published 250).
        units: usize,
    },
    /// A literature electronic platform, by name (`"platform"`).
    Electronic {
        /// The platform's reference numbers.
        platform: ElectronicPlatform,
    },
    /// The symmetric add–drop MRR crossbar.
    SymmetricCrossbar {
        /// Crossbar dimensions `(rows, cols)` (`"dims"`).
        dims: (usize, usize),
        /// Weight resolution in bits.
        resolution_bits: u32,
    },
    /// LiteCON.
    LiteCon {
        /// Array dimensions `(units, unit_size)` (`"dims"`).
        dims: (usize, usize),
        /// Weight resolution in bits.
        resolution_bits: u32,
    },
}

impl ArchRequest {
    /// The wire-level request naming an [`ArchSpec`], so in-process zoo
    /// sweeps can be replayed over the wire verbatim.  Returns `None` only
    /// for a CrossLight spec whose design choices match no named paper
    /// variant (the wire transmits variants by label).
    #[must_use]
    pub fn for_spec(spec: &ArchSpec) -> Option<Self> {
        Some(match spec {
            ArchSpec::CrossLight(config) => {
                let variant = CrossLightVariant::all()
                    .into_iter()
                    .find(|v| v.design() == config.design)?;
                Self::CrossLight {
                    variant,
                    dims: (
                        config.conv_unit_size,
                        config.fc_unit_size,
                        config.conv_units,
                        config.fc_units,
                    ),
                    resolution_bits: config.resolution_bits,
                }
            }
            ArchSpec::DeapCnn(_) => Self::DeapCnn,
            ArchSpec::HolyLight(holylight) => Self::HolyLight {
                units: holylight.units(),
            },
            ArchSpec::Electronic(platform) => Self::Electronic {
                platform: *platform,
            },
            ArchSpec::SymmetricCrossbar(crossbar) => Self::SymmetricCrossbar {
                dims: (crossbar.rows(), crossbar.cols()),
                resolution_bits: crossbar.resolution_bits(),
            },
            ArchSpec::LiteCon(litecon) => Self::LiteCon {
                dims: (litecon.units(), litecon.unit_size()),
                resolution_bits: litecon.resolution_bits(),
            },
        })
    }

    /// Builds the validated [`ArchSpec`] this request names.
    ///
    /// # Errors
    ///
    /// Returns an [`ErrorFrame`] of kind [`ErrorKind::Evaluation`] if the
    /// parameters are architecturally invalid.
    pub fn to_arch_spec(&self) -> Result<ArchSpec, ErrorFrame> {
        let evaluation =
            |err: &dyn std::fmt::Display| ErrorFrame::new(ErrorKind::Evaluation, err.to_string());
        match *self {
            Self::CrossLight {
                variant,
                dims: (n, k, conv_units, fc_units),
                resolution_bits,
            } => CrossLightConfig::new(n, k, conv_units, fc_units, variant.design())
                .map(|c| ArchSpec::CrossLight(c.with_resolution_bits(resolution_bits)))
                .map_err(|err| evaluation(&err)),
            Self::DeapCnn => Ok(ArchSpec::DeapCnn(DeapCnn::new())),
            Self::HolyLight { units } => Ok(ArchSpec::HolyLight(HolyLight::with_units(units))),
            Self::Electronic { platform } => Ok(ArchSpec::Electronic(platform)),
            Self::SymmetricCrossbar {
                dims: (rows, cols),
                resolution_bits,
            } => SymmetricCrossbar::with_dims(rows, cols, resolution_bits)
                .map(ArchSpec::SymmetricCrossbar)
                .map_err(|err| evaluation(&err)),
            Self::LiteCon {
                dims: (units, unit_size),
                resolution_bits,
            } => LiteCon::with_dims(units, unit_size, resolution_bits)
                .map(ArchSpec::LiteCon)
                .map_err(|err| evaluation(&err)),
        }
    }
}

/// The scenario named by one `eval` request: an architecture (CrossLight
/// design point or any zoo backend) applied to a workload — the same axes
/// the [`SweepPlanner`](crosslight_runtime::SweepPlanner) expands.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalSpec {
    /// The architecture to evaluate.
    pub arch: ArchRequest,
    /// The workload to evaluate.
    pub workload: WorkloadRef,
}

impl EvalSpec {
    /// A spec for a paper model on the given variant with the paper-best
    /// architecture at 16 bits.
    #[must_use]
    pub fn paper(variant: CrossLightVariant, model: PaperModel) -> Self {
        Self::crosslight(
            variant,
            crosslight_core::config::BEST_CONFIG,
            16,
            WorkloadRef::Model(model),
        )
    }

    /// A CrossLight spec with explicit dimensions and resolution.
    #[must_use]
    pub fn crosslight(
        variant: CrossLightVariant,
        dims: (usize, usize, usize, usize),
        resolution_bits: u32,
        workload: WorkloadRef,
    ) -> Self {
        Self {
            arch: ArchRequest::CrossLight {
                variant,
                dims,
                resolution_bits,
            },
            workload,
        }
    }

    /// A spec for any architecture request.
    #[must_use]
    pub fn for_arch(arch: ArchRequest, workload: WorkloadRef) -> Self {
        Self { arch, workload }
    }

    /// Builds the validated [`CrossLightConfig`] this spec names, when it
    /// names a CrossLight design point.
    ///
    /// # Errors
    ///
    /// Returns an [`ErrorFrame`] of kind [`ErrorKind::Evaluation`] if the
    /// dimensions are architecturally invalid or the spec names a
    /// non-CrossLight backend.
    pub fn config(&self) -> Result<CrossLightConfig, ErrorFrame> {
        match self.arch.to_arch_spec()? {
            ArchSpec::CrossLight(config) => Ok(config),
            other => Err(ErrorFrame::new(
                ErrorKind::Evaluation,
                format!("`{}` is not a CrossLight design point", other.label()),
            )),
        }
    }

    /// Resolves the spec into a runtime [`EvalRequest`], sharing prebuilt
    /// paper workloads from `table` (indexed as [`PaperModel::all`]).
    ///
    /// # Errors
    ///
    /// Returns an [`ErrorFrame`] of kind [`ErrorKind::Evaluation`] if the
    /// architecture parameters are invalid.
    pub fn to_eval_request(
        &self,
        id: u64,
        table: &[Arc<NetworkWorkload>; 4],
    ) -> Result<EvalRequest, ErrorFrame> {
        let arch = self.arch.to_arch_spec()?;
        let workload = match &self.workload {
            WorkloadRef::Model(model) => {
                let index = PaperModel::all()
                    .iter()
                    .position(|m| m == model)
                    .expect("PaperModel::all covers every variant");
                Arc::clone(&table[index])
            }
            WorkloadRef::Inline(workload) => Arc::new(workload.clone()),
        };
        Ok(EvalRequest::for_arch(arch, workload).with_id(id))
    }
}

/// One request frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Caller-chosen correlation id, echoed on the response.
    pub id: u64,
    /// The operation.
    pub body: RequestBody,
}

/// The operations of the protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RequestBody {
    /// Evaluate one scenario.
    Eval(EvalSpec),
    /// Snapshot the server + runtime counters.
    Stats,
    /// Liveness probe.
    Ping,
    /// Scrape the merged server + runtime metric registries.
    Metrics {
        /// Requested payload shape.
        format: MetricsFormat,
    },
    /// Export the full warm state (result + model caches) as a chunked
    /// snapshot stream: `snapshot` chunk responses followed by one
    /// `snapshot_end` frame.
    Snapshot {
        /// The requesting peer's own line-length budget, in bytes.  The
        /// exporter sizes chunk frames under `min(this, its own
        /// max_line_bytes)` so a client with a smaller limit than the
        /// server never receives an undecodable oversized chunk.  Absent
        /// (the default) means "size by the server's limit", the historic
        /// behaviour.
        max_chunk_bytes: Option<u64>,
    },
    /// One chunk of a restore stream.  Chunks must arrive in sequence on
    /// one connection, starting at 0; the server only answers at
    /// `restore_end`.
    Restore(SnapshotChunk),
    /// Terminates a restore stream; the server validates the totals and
    /// checksum, applies the entries, and answers `restored` or a typed
    /// error.
    RestoreEnd(SnapshotEnd),
}

/// The payload shape of one `metrics` scrape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MetricsFormat {
    /// Structured JSON snapshot (the default when `format` is absent).
    #[default]
    Json,
    /// Prometheus-style text exposition page.
    Text,
    /// Drain the sampled trace-span rings as raw JSON lines.
    Spans,
}

impl MetricsFormat {
    /// The stable wire name of the format.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Json => "json",
            Self::Text => "text",
            Self::Spans => "spans",
        }
    }

    /// Parses a wire name back into the format.
    #[must_use]
    pub fn from_wire_name(name: &str) -> Option<Self> {
        match name {
            "json" => Some(Self::Json),
            "text" => Some(Self::Text),
            "spans" => Some(Self::Spans),
            _ => None,
        }
    }
}

/// Server-side counters exposed by the `stats` endpoint.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireServerStats {
    /// Connections accepted since startup.
    pub connections_accepted: u64,
    /// Connections currently open.
    pub connections_active: u64,
    /// Frames received (all ops, including shed/malformed ones).
    pub requests_total: u64,
    /// Eval requests answered with a report.
    pub evals_ok: u64,
    /// Eval requests answered with a typed `evaluation` error.
    pub evals_failed: u64,
    /// Eval requests shed by admission control.
    pub shed_total: u64,
    /// Frames rejected as malformed/unsupported-version.
    pub malformed_total: u64,
    /// Lines rejected as oversized.
    pub oversized_total: u64,
    /// Admission-queue capacity (max in-flight evals).
    pub queue_capacity: u64,
    /// Evals currently admitted and not yet answered.
    pub in_flight: u64,
}

/// Runtime counters as transmitted by the `stats` endpoint (a lossless wire
/// view of [`RuntimeStats`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireRuntimeStats {
    /// See [`RuntimeStats::submitted`].
    pub submitted: u64,
    /// See [`RuntimeStats::completed`].
    pub completed: u64,
    /// See [`RuntimeStats::cache_hits`].
    pub cache_hits: u64,
    /// See [`RuntimeStats::cache_misses`].
    pub cache_misses: u64,
    /// See [`RuntimeStats::cached_entries`].
    pub cached_entries: u64,
    /// See [`RuntimeStats::prepared_configs`].
    pub prepared_configs: u64,
    /// See [`RuntimeStats::per_worker`].
    pub per_worker: Vec<u64>,
    /// See [`RuntimeStats::queue_depths`].
    pub queue_depths: Vec<u64>,
}

impl From<&RuntimeStats> for WireRuntimeStats {
    fn from(stats: &RuntimeStats) -> Self {
        Self {
            submitted: stats.submitted,
            completed: stats.completed,
            cache_hits: stats.cache_hits,
            cache_misses: stats.cache_misses,
            cached_entries: stats.cached_entries as u64,
            prepared_configs: stats.prepared_configs as u64,
            per_worker: stats.per_worker.clone(),
            queue_depths: stats.queue_depths.clone(),
        }
    }
}

/// The payload of a successful `stats` response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsFrame {
    /// Front-end counters.
    pub server: WireServerStats,
    /// Evaluation-pool counters.
    pub runtime: WireRuntimeStats,
}

/// One histogram distribution in wire form: occupied buckets as
/// `(inclusive upper bound, occupancy)` pairs plus the scalar moments —
/// exactly what [`HistogramSnapshot::le_buckets`] produces, so decoded
/// snapshots rebuild losslessly via [`HistogramSnapshot::from_le_buckets`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireHistogram {
    /// Total recorded observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (absent when empty).
    pub min: Option<u64>,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Occupied `(upper bound, occupancy)` buckets, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl From<&HistogramSnapshot> for WireHistogram {
    fn from(snapshot: &HistogramSnapshot) -> Self {
        Self {
            count: snapshot.count(),
            sum: snapshot.sum(),
            min: snapshot.min(),
            max: snapshot.max().unwrap_or(0),
            buckets: snapshot.le_buckets().collect(),
        }
    }
}

impl WireHistogram {
    /// Rebuilds the in-process snapshot form.
    #[must_use]
    pub fn to_snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot::from_le_buckets(&self.buckets, self.sum, self.min, self.max)
    }
}

/// One series value in wire form, interpreted by the family's kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireMetricValue {
    /// A counter reading.
    Counter(u64),
    /// A gauge reading (signed).
    Gauge(i64),
    /// A histogram distribution.
    Histogram(WireHistogram),
}

/// One `(labels, value)` series of a family in wire form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireMetricSeries {
    /// Label key/value pairs in registration order.
    pub labels: Vec<(String, String)>,
    /// The reading.
    pub value: WireMetricValue,
}

/// One metric family in wire form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireMetricFamily {
    /// Family name (e.g. `server_request_ns`).
    pub name: String,
    /// Help text.
    pub help: String,
    /// Metric kind (`counter`/`gauge`/`histogram`).
    pub kind: MetricKind,
    /// All label series of the family.
    pub series: Vec<WireMetricSeries>,
}

/// The structured payload of a `metrics` scrape in `json` format: a
/// lossless wire view of a (merged) [`RegistrySnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireMetricsSnapshot {
    /// Always [`METRICS_SCHEMA`] for this protocol version.
    pub schema: String,
    /// Families sorted by name.
    pub families: Vec<WireMetricFamily>,
}

impl From<&RegistrySnapshot> for WireMetricsSnapshot {
    fn from(snapshot: &RegistrySnapshot) -> Self {
        Self {
            schema: METRICS_SCHEMA.to_string(),
            families: snapshot
                .families
                .iter()
                .map(|family| WireMetricFamily {
                    name: family.name.clone(),
                    help: family.help.clone(),
                    kind: family.kind,
                    series: family
                        .series
                        .iter()
                        .map(|series| WireMetricSeries {
                            labels: series.labels.clone(),
                            value: match &series.value {
                                SeriesValue::Counter(v) => WireMetricValue::Counter(*v),
                                SeriesValue::Gauge(v) => WireMetricValue::Gauge(*v),
                                SeriesValue::Histogram(h) => {
                                    WireMetricValue::Histogram(WireHistogram::from(h))
                                }
                            },
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

impl WireMetricsSnapshot {
    /// Rebuilds the in-process snapshot form (quantiles, merging and text
    /// rendering all work on the result).
    #[must_use]
    pub fn to_registry_snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            families: self
                .families
                .iter()
                .map(|family| FamilySnapshot {
                    name: family.name.clone(),
                    help: family.help.clone(),
                    kind: family.kind,
                    series: family
                        .series
                        .iter()
                        .map(|series| SeriesSnapshot {
                            labels: series.labels.clone(),
                            value: match &series.value {
                                WireMetricValue::Counter(v) => SeriesValue::Counter(*v),
                                WireMetricValue::Gauge(v) => SeriesValue::Gauge(*v),
                                WireMetricValue::Histogram(h) => {
                                    SeriesValue::Histogram(h.to_snapshot())
                                }
                            },
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

/// The payload of a successful `metrics` response, by requested format.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricsFrame {
    /// Structured snapshot (`json` format).
    Snapshot(WireMetricsSnapshot),
    /// Prometheus-style exposition page (`text` format).
    Text(String),
    /// Drained trace-span JSON lines (`spans` format).
    Spans(Vec<String>),
}

/// The payload of a successful `eval` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalFrame {
    /// The simulation result, bit-identical to in-process evaluation.
    pub report: SimulationReport,
    /// Whether the report came from the memoizing cache.
    pub cache_hit: bool,
    /// The worker that served the request.
    pub worker: u64,
}

/// One exported cache entry in wire form: either a result-cache entry (the
/// full `(architecture, workload) → report` pair) or a model-cache entry.
/// Keys travel as their canonical `u64` words, values as the same exact-f64
/// encodings every other frame uses, so a restored entry is bit-identical
/// to the organically-computed one.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotEntry {
    /// One runtime result-cache entry.
    Result {
        /// Canonical architecture identity (fingerprint is recomputed on
        /// restore, never transported).
        arch: ArchKey,
        /// The full workload component of the key.
        workload: NetworkWorkload,
        /// The memoized report.
        report: SimulationReport,
    },
    /// One core model-cache entry.
    Model(ModelCacheEntry),
}

/// One numbered chunk of a snapshot stream.  Chunks are sized under the
/// transport's line limit by [`chunk_snapshot_entries`] and carry
/// consecutive sequence numbers starting at 0, so a receiver detects any
/// truncation or reordering.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotChunk {
    /// 0-based chunk sequence number.
    pub seq: u64,
    /// The entries of this chunk, in stream order.
    pub entries: Vec<SnapshotEntry>,
}

/// The terminal frame of a snapshot stream: totals plus a checksum over
/// every entry's canonical encoding (see [`snapshot_checksum`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotEnd {
    /// Number of chunks that preceded this frame.
    pub chunks: u64,
    /// Total entries across all chunks.
    pub entries: u64,
    /// FNV-1a checksum of the concatenated canonical entry encodings.
    pub checksum: u64,
}

/// The payload of a successful `restore_end` response: how many transported
/// entries were applied to each cache (entries already present on the
/// receiver are counted as applied — the caches converge either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestoredFrame {
    /// Total entries in the validated stream.
    pub entries: u64,
    /// Result-cache entries newly inserted.
    pub results: u64,
    /// Model-cache entries newly inserted.
    pub model: u64,
}

/// One response frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Correlation id, when the request's id could be parsed.
    pub id: Option<u64>,
    /// The outcome.
    pub body: ResponseBody,
}

/// The response payloads of the protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ResponseBody {
    /// A completed evaluation.
    Eval(EvalFrame),
    /// A stats snapshot.
    Stats(StatsFrame),
    /// A metrics scrape.
    Metrics(MetricsFrame),
    /// One chunk of a snapshot stream.
    Snapshot(SnapshotChunk),
    /// The terminal frame of a snapshot stream.
    SnapshotEnd(SnapshotEnd),
    /// A completed restore.
    Restored(RestoredFrame),
    /// Answer to `ping`.
    Pong,
    /// A typed error.
    Error(ErrorFrame),
}

impl Response {
    /// Builds an error response.
    #[must_use]
    pub fn error(id: Option<u64>, frame: ErrorFrame) -> Self {
        Self {
            id,
            body: ResponseBody::Error(frame),
        }
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Object(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Appends the workload object to the line being built.
fn encode_workload_into(workload: &NetworkWorkload, out: &mut String) {
    let layers = |layers: &[DotProductWorkload], out: &mut String| {
        out.push('[');
        for (i, l) in layers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{},{}]", l.dot_length, l.dot_count);
        }
        out.push(']');
    };
    out.push_str("{\"name\":");
    json::push_string_literal(&workload.name, out);
    let _ = write!(out, ",\"towers\":{},\"conv_layers\":", workload.towers);
    layers(&workload.conv_layers, out);
    out.push_str(",\"fc_layers\":");
    layers(&workload.fc_layers, out);
    out.push('}');
}

/// Appends the power object (`{"laser":…,…,"control":…}`) to the line.
fn encode_power_into(power: &crosslight_core::power::AcceleratorPower, out: &mut String) {
    let f = |label: &str, value: f64, out: &mut String| {
        out.push_str(label);
        json::push_f64(value, out);
    };
    f("{\"laser\":", power.laser.value(), out);
    f(",\"tuning\":", power.tuning.value(), out);
    f(",\"detection\":", power.detection.value(), out);
    f(",\"conversion\":", power.conversion.value(), out);
    f(",\"control\":", power.control.value(), out);
    out.push('}');
}

/// Appends the area object (`{"mr_banks":…,…}`) to the line.
fn encode_area_into(area: &crosslight_core::area::AcceleratorArea, out: &mut String) {
    let f = |label: &str, value: f64, out: &mut String| {
        out.push_str(label);
        json::push_f64(value, out);
    };
    f("{\"mr_banks\":", area.mr_banks.value(), out);
    f(",\"arm_devices\":", area.arm_devices.value(), out);
    f(",\"unit_electronics\":", area.unit_electronics.value(), out);
    out.push('}');
}

/// Appends the report object to the line being built.  Frames are encoded by
/// direct string writing (not via a [`Json`] tree) because this runs once
/// per response on the serving hot path.
fn encode_report_into(report: &SimulationReport, out: &mut String) {
    let f = |label: &str, value: f64, out: &mut String| {
        out.push_str(label);
        json::push_f64(value, out);
    };
    out.push_str("{\"power_mw\":");
    encode_power_into(&report.power, out);
    out.push_str(",\"area_mm2\":");
    encode_area_into(&report.area, out);
    f(
        ",\"metrics\":{\"conv_time_s\":",
        report.metrics.latency.conv_time.value(),
        out,
    );
    f(
        ",\"fc_time_s\":",
        report.metrics.latency.fc_time.value(),
        out,
    );
    f(
        ",\"electronic_time_s\":",
        report.metrics.latency.electronic_time.value(),
        out,
    );
    f(",\"fps\":", report.metrics.fps, out);
    f(
        ",\"energy_per_inference_pj\":",
        report.metrics.energy_per_inference.value(),
        out,
    );
    f(
        ",\"energy_per_bit_pj\":",
        report.metrics.energy_per_bit_pj,
        out,
    );
    f(",\"kfps_per_watt\":", report.metrics.kfps_per_watt, out);
    f(",\"power_w\":", report.metrics.power.value(), out);
    let _ = write!(out, "}},\"resolution_bits\":{}}}", report.resolution_bits);
}

/// Appends the `config` object of an eval request to the line being built.
/// CrossLight requests are encoded exactly as protocol version 1 always
/// encoded them (no `"arch"` field), so pre-zoo frames are byte-identical.
fn encode_arch_request_into(arch: &ArchRequest, out: &mut String) {
    match *arch {
        ArchRequest::CrossLight {
            variant,
            dims: (n, k, conv_units, fc_units),
            resolution_bits,
        } => {
            let _ = write!(
                out,
                "{{\"variant\":\"{}\",\"dims\":[{n},{k},{conv_units},{fc_units}],\
                 \"resolution_bits\":{resolution_bits}}}",
                variant.label(),
            );
        }
        ArchRequest::DeapCnn => out.push_str("{\"arch\":\"deap-cnn\"}"),
        ArchRequest::HolyLight { units } => {
            let _ = write!(out, "{{\"arch\":\"holylight\",\"units\":{units}}}");
        }
        ArchRequest::Electronic { platform } => {
            out.push_str("{\"arch\":\"electronic\",\"platform\":");
            json::push_string_literal(platform.name, out);
            out.push('}');
        }
        ArchRequest::SymmetricCrossbar {
            dims: (rows, cols),
            resolution_bits,
        } => {
            let _ = write!(
                out,
                "{{\"arch\":\"symmetric-crossbar\",\"dims\":[{rows},{cols}],\
                 \"resolution_bits\":{resolution_bits}}}"
            );
        }
        ArchRequest::LiteCon {
            dims: (units, unit_size),
            resolution_bits,
        } => {
            let _ = write!(
                out,
                "{{\"arch\":\"litecon\",\"dims\":[{units},{unit_size}],\
                 \"resolution_bits\":{resolution_bits}}}"
            );
        }
    }
}

/// Appends a canonical-word array (`[w0,w1,…]`) to the line.
fn encode_words_into(words: &[u64], out: &mut String) {
    out.push('[');
    for (i, word) in words.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{word}");
    }
    out.push(']');
}

/// Appends a canonical architecture key to the line.
fn encode_arch_key_into(arch: &ArchKey, out: &mut String) {
    match arch {
        ArchKey::CrossLight(key) => {
            out.push_str("{\"kind\":\"crosslight\",\"words\":");
            encode_words_into(&key.to_words(), out);
            out.push('}');
        }
        ArchKey::Backend(key) => {
            let _ = write!(
                out,
                "{{\"kind\":\"backend\",\"tag\":{},\"params\":",
                key.arch_tag()
            );
            encode_words_into(&key.params(), out);
            out.push('}');
        }
    }
}

/// Appends one snapshot entry object to the line.  This encoding is the
/// canonical checksum domain: it is deterministic (keys in fixed order,
/// exact-f64 numbers), so [`snapshot_checksum`] agrees between the exporter
/// and a receiver that re-encodes what it decoded.
fn encode_snapshot_entry_into(entry: &SnapshotEntry, out: &mut String) {
    match entry {
        SnapshotEntry::Result {
            arch,
            workload,
            report,
        } => {
            out.push_str("{\"kind\":\"result\",\"arch\":");
            encode_arch_key_into(arch, out);
            out.push_str(",\"workload\":");
            encode_workload_into(workload, out);
            out.push_str(",\"report\":");
            encode_report_into(report, out);
            out.push('}');
        }
        SnapshotEntry::Model(ModelCacheEntry::Unit { key, report }) => {
            out.push_str("{\"kind\":\"unit\",\"key\":");
            encode_words_into(&key.to_words(), out);
            let f = |label: &str, value: f64, out: &mut String| {
                out.push_str(label);
                json::push_f64(value, out);
            };
            let _ = write!(out, ",\"report\":{{\"arms\":{}", report.arms);
            f(",\"pass_latency_s\":", report.pass_latency.value(), out);
            f(",\"laser_mw\":", report.laser_power.value(), out);
            f(",\"tuning_mw\":", report.tuning_power.value(), out);
            f(",\"detection_mw\":", report.detection_power.value(), out);
            f(",\"conversion_mw\":", report.conversion_power.value(), out);
            out.push_str("}}");
        }
        SnapshotEntry::Model(ModelCacheEntry::Resolution { key, bits }) => {
            out.push_str("{\"kind\":\"resolution\",\"key\":");
            encode_words_into(&key.to_words(), out);
            let _ = write!(out, ",\"bits\":{bits}}}");
        }
        SnapshotEntry::Model(ModelCacheEntry::Prepared {
            config,
            power,
            area,
            resolution_bits,
        }) => {
            out.push_str("{\"kind\":\"prepared\",\"config\":");
            encode_words_into(&config.to_canonical_words(), out);
            out.push_str(",\"power_mw\":");
            encode_power_into(power, out);
            out.push_str(",\"area_mm2\":");
            encode_area_into(area, out);
            let _ = write!(out, ",\"resolution_bits\":{resolution_bits}}}");
        }
    }
}

/// The canonical encoding of one snapshot entry, as it appears inside a
/// chunk's `entries` array.
#[must_use]
pub fn encode_snapshot_entry(entry: &SnapshotEntry) -> String {
    let mut out = String::with_capacity(256);
    encode_snapshot_entry_into(entry, &mut out);
    out
}

/// FNV-1a checksum over the canonical encodings of a snapshot's entries, in
/// stream order.  Both sides of a transfer compute this over the same
/// deterministic encoding, so any corruption, loss or reordering that
/// survives the per-chunk sequence check is caught at the terminal frame.
#[must_use]
pub fn snapshot_checksum(entries: &[SnapshotEntry]) -> u64 {
    let mut hasher = StableHasher::new();
    let mut buf = String::with_capacity(512);
    for entry in entries {
        buf.clear();
        encode_snapshot_entry_into(entry, &mut buf);
        std::hash::Hasher::write(&mut hasher, buf.as_bytes());
    }
    std::hash::Hasher::finish(&hasher)
}

/// Packs entries greedily into chunks whose encoded `entries` arrays stay
/// under `max_chunk_bytes`, preserving order and numbering the chunks from
/// 0.  A single entry larger than the budget still ships alone (the caller
/// picks a budget comfortably under the transport's line limit, and every
/// cache entry the workspace produces encodes far below it).
#[must_use]
pub fn chunk_snapshot_entries(
    entries: Vec<SnapshotEntry>,
    max_chunk_bytes: usize,
) -> Vec<SnapshotChunk> {
    let budget = max_chunk_bytes.max(1);
    let mut chunks: Vec<SnapshotChunk> = Vec::new();
    let mut current: Vec<SnapshotEntry> = Vec::new();
    let mut bytes = 0usize;
    for entry in entries {
        let encoded = encode_snapshot_entry(&entry).len() + 1;
        if !current.is_empty() && bytes + encoded > budget {
            chunks.push(SnapshotChunk {
                seq: chunks.len() as u64,
                entries: std::mem::take(&mut current),
            });
            bytes = 0;
        }
        bytes += encoded;
        current.push(entry);
    }
    if !current.is_empty() {
        chunks.push(SnapshotChunk {
            seq: chunks.len() as u64,
            entries: current,
        });
    }
    chunks
}

fn encode_snapshot_chunk_into(chunk: &SnapshotChunk, out: &mut String) {
    let _ = write!(
        out,
        "\"schema\":\"{SNAPSHOT_SCHEMA}\",\"seq\":{}",
        chunk.seq
    );
    out.push_str(",\"entries\":[");
    for (i, entry) in chunk.entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        encode_snapshot_entry_into(entry, out);
    }
    out.push(']');
}

fn encode_snapshot_end_into(end: &SnapshotEnd, out: &mut String) {
    let _ = write!(
        out,
        "\"schema\":\"{SNAPSHOT_SCHEMA}\",\"chunks\":{},\"entries\":{},\"checksum\":\"{:016x}\"",
        end.chunks, end.entries, end.checksum
    );
}

/// Encodes a request as one JSON line (no trailing newline).
#[must_use]
pub fn encode_request(request: &Request) -> String {
    let mut out = String::with_capacity(192);
    let _ = write!(out, "{{\"v\":{PROTOCOL_VERSION},\"id\":{}", request.id);
    match &request.body {
        RequestBody::Eval(spec) => {
            out.push_str(",\"op\":\"eval\",\"config\":");
            encode_arch_request_into(&spec.arch, &mut out);
            match &spec.workload {
                WorkloadRef::Model(model) => {
                    let _ = write!(out, ",\"model\":\"{}\"", model.wire_name());
                }
                WorkloadRef::Inline(workload) => {
                    out.push_str(",\"workload\":");
                    encode_workload_into(workload, &mut out);
                }
            }
        }
        RequestBody::Stats => out.push_str(",\"op\":\"stats\""),
        RequestBody::Ping => out.push_str(",\"op\":\"ping\""),
        RequestBody::Metrics { format } => {
            out.push_str(",\"op\":\"metrics\"");
            // The default format is omitted, mirroring the implicit
            // CrossLight `"arch"`: a plain `{"op":"metrics"}` frame scrapes
            // the JSON snapshot.
            if *format != MetricsFormat::Json {
                let _ = write!(out, ",\"format\":\"{}\"", format.as_str());
            }
        }
        RequestBody::Snapshot { max_chunk_bytes } => {
            out.push_str(",\"op\":\"snapshot\"");
            // Omitted when absent so pre-existing frames (and the golden
            // backcompat corpus) stay byte-identical.
            if let Some(limit) = max_chunk_bytes {
                let _ = write!(out, ",\"max_chunk_bytes\":{limit}");
            }
        }
        RequestBody::Restore(chunk) => {
            out.push_str(",\"op\":\"restore\",");
            encode_snapshot_chunk_into(chunk, &mut out);
        }
        RequestBody::RestoreEnd(end) => {
            out.push_str(",\"op\":\"restore_end\",");
            encode_snapshot_end_into(end, &mut out);
        }
    }
    out.push('}');
    out
}

fn encode_wire_histogram(histogram: &WireHistogram) -> Json {
    let mut members = vec![
        ("count", Json::Uint(histogram.count)),
        ("sum", Json::Uint(histogram.sum)),
    ];
    if let Some(min) = histogram.min {
        members.push(("min", Json::Uint(min)));
    }
    members.push(("max", Json::Uint(histogram.max)));
    members.push((
        "buckets",
        Json::Array(
            histogram
                .buckets
                .iter()
                .map(|&(le, n)| Json::Array(vec![Json::Uint(le), Json::Uint(n)]))
                .collect(),
        ),
    ));
    obj(members)
}

fn encode_metrics_snapshot(snapshot: &WireMetricsSnapshot) -> Json {
    let families = snapshot
        .families
        .iter()
        .map(|family| {
            let series = family
                .series
                .iter()
                .map(|series| {
                    let labels = Json::Object(
                        series
                            .labels
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                            .collect(),
                    );
                    let value = match &series.value {
                        WireMetricValue::Counter(v) => Json::Uint(*v),
                        WireMetricValue::Gauge(v) => match u64::try_from(*v) {
                            Ok(unsigned) => Json::Uint(unsigned),
                            Err(_) => Json::Int(*v),
                        },
                        WireMetricValue::Histogram(h) => encode_wire_histogram(h),
                    };
                    obj(vec![("labels", labels), ("value", value)])
                })
                .collect();
            obj(vec![
                ("name", Json::Str(family.name.clone())),
                ("help", Json::Str(family.help.clone())),
                ("kind", Json::Str(family.kind.as_str().to_string())),
                ("series", Json::Array(series)),
            ])
        })
        .collect();
    obj(vec![
        ("type", Json::Str("metrics".to_string())),
        (
            "format",
            Json::Str(MetricsFormat::Json.as_str().to_string()),
        ),
        ("schema", Json::Str(snapshot.schema.clone())),
        ("families", Json::Array(families)),
    ])
}

fn encode_server_stats(stats: &WireServerStats) -> Json {
    obj(vec![
        (
            "connections_accepted",
            Json::Uint(stats.connections_accepted),
        ),
        ("connections_active", Json::Uint(stats.connections_active)),
        ("requests_total", Json::Uint(stats.requests_total)),
        ("evals_ok", Json::Uint(stats.evals_ok)),
        ("evals_failed", Json::Uint(stats.evals_failed)),
        ("shed_total", Json::Uint(stats.shed_total)),
        ("malformed_total", Json::Uint(stats.malformed_total)),
        ("oversized_total", Json::Uint(stats.oversized_total)),
        ("queue_capacity", Json::Uint(stats.queue_capacity)),
        ("in_flight", Json::Uint(stats.in_flight)),
    ])
}

fn encode_runtime_stats(stats: &WireRuntimeStats) -> Json {
    let counts = |values: &[u64]| Json::Array(values.iter().map(|&v| Json::Uint(v)).collect());
    obj(vec![
        ("submitted", Json::Uint(stats.submitted)),
        ("completed", Json::Uint(stats.completed)),
        ("cache_hits", Json::Uint(stats.cache_hits)),
        ("cache_misses", Json::Uint(stats.cache_misses)),
        ("cached_entries", Json::Uint(stats.cached_entries)),
        ("prepared_configs", Json::Uint(stats.prepared_configs)),
        ("per_worker", counts(&stats.per_worker)),
        ("queue_depths", counts(&stats.queue_depths)),
    ])
}

/// Encodes a response as one JSON line (no trailing newline).
#[must_use]
pub fn encode_response(response: &Response) -> String {
    let mut out = String::with_capacity(640);
    let _ = write!(out, "{{\"v\":{PROTOCOL_VERSION}");
    if let Some(id) = response.id {
        let _ = write!(out, ",\"id\":{id}");
    }
    match &response.body {
        ResponseBody::Eval(frame) => {
            let _ = write!(
                out,
                ",\"ok\":{{\"type\":\"eval\",\"cache_hit\":{},\"worker\":{},\"report\":",
                frame.cache_hit, frame.worker
            );
            encode_report_into(&frame.report, &mut out);
            out.push('}');
        }
        ResponseBody::Stats(frame) => {
            out.push_str(",\"ok\":");
            let body = obj(vec![
                ("type", Json::Str("stats".to_string())),
                ("server", encode_server_stats(&frame.server)),
                ("runtime", encode_runtime_stats(&frame.runtime)),
            ]);
            out.push_str(&body.encode());
        }
        ResponseBody::Metrics(frame) => {
            out.push_str(",\"ok\":");
            let body = match frame {
                MetricsFrame::Snapshot(snapshot) => encode_metrics_snapshot(snapshot),
                MetricsFrame::Text(page) => obj(vec![
                    ("type", Json::Str("metrics".to_string())),
                    (
                        "format",
                        Json::Str(MetricsFormat::Text.as_str().to_string()),
                    ),
                    ("page", Json::Str(page.clone())),
                ]),
                MetricsFrame::Spans(lines) => obj(vec![
                    ("type", Json::Str("metrics".to_string())),
                    (
                        "format",
                        Json::Str(MetricsFormat::Spans.as_str().to_string()),
                    ),
                    (
                        "spans",
                        Json::Array(lines.iter().map(|l| Json::Str(l.clone())).collect()),
                    ),
                ]),
            };
            out.push_str(&body.encode());
        }
        ResponseBody::Snapshot(chunk) => {
            out.push_str(",\"ok\":{\"type\":\"snapshot\",");
            encode_snapshot_chunk_into(chunk, &mut out);
            out.push('}');
        }
        ResponseBody::SnapshotEnd(end) => {
            out.push_str(",\"ok\":{\"type\":\"snapshot_end\",");
            encode_snapshot_end_into(end, &mut out);
            out.push('}');
        }
        ResponseBody::Restored(frame) => {
            let _ = write!(
                out,
                ",\"ok\":{{\"type\":\"restored\",\"entries\":{},\"results\":{},\"model\":{}}}",
                frame.entries, frame.results, frame.model
            );
        }
        ResponseBody::Pong => out.push_str(",\"ok\":{\"type\":\"pong\"}"),
        ResponseBody::Error(frame) => {
            let _ = write!(
                out,
                ",\"err\":{{\"kind\":\"{}\",\"detail\":",
                frame.kind.as_str()
            );
            json::push_string_literal(&frame.detail, &mut out);
            // Only retryable kinds carry the flag: frames of every kind the
            // committed backcompat corpus contains stay byte-identical.
            if frame.kind.retryable() {
                out.push_str(",\"retryable\":true");
            }
            out.push('}');
        }
    }
    out.push('}');
    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

fn field<'a>(value: &'a Json, key: &str) -> Result<&'a Json, ErrorFrame> {
    value
        .get(key)
        .ok_or_else(|| ErrorFrame::malformed(format!("missing field `{key}`")))
}

fn u64_field(value: &Json, key: &str) -> Result<u64, ErrorFrame> {
    field(value, key)?.as_u64().ok_or_else(|| {
        ErrorFrame::malformed(format!("field `{key}` must be a non-negative integer"))
    })
}

fn f64_field(value: &Json, key: &str) -> Result<f64, ErrorFrame> {
    field(value, key)?
        .as_f64()
        .ok_or_else(|| ErrorFrame::malformed(format!("field `{key}` must be a number")))
}

fn str_field<'a>(value: &'a Json, key: &str) -> Result<&'a str, ErrorFrame> {
    field(value, key)?
        .as_str()
        .ok_or_else(|| ErrorFrame::malformed(format!("field `{key}` must be a string")))
}

fn usize_from(value: u64, key: &str) -> Result<usize, ErrorFrame> {
    usize::try_from(value).map_err(|_| ErrorFrame::malformed(format!("field `{key}` out of range")))
}

/// Checks the envelope version and extracts the id, shared by request and
/// response decoding.
fn check_version(value: &Json) -> Result<(), ErrorFrame> {
    let version = u64_field(value, "v")?;
    if version != PROTOCOL_VERSION {
        return Err(ErrorFrame::new(
            ErrorKind::UnsupportedVersion,
            format!(
                "protocol version {version} not supported (this server speaks {PROTOCOL_VERSION})"
            ),
        ));
    }
    Ok(())
}

fn decode_layers(value: &Json, key: &str) -> Result<Vec<DotProductWorkload>, ErrorFrame> {
    let items = field(value, key)?
        .as_array()
        .ok_or_else(|| ErrorFrame::malformed(format!("field `{key}` must be an array")))?;
    items
        .iter()
        .map(|item| {
            let pair = item.as_array().filter(|a| a.len() == 2).ok_or_else(|| {
                ErrorFrame::malformed(format!("entries of `{key}` must be [length, count] pairs"))
            })?;
            let dot_length = pair[0]
                .as_u64()
                .ok_or_else(|| ErrorFrame::malformed("dot_length must be an integer"))?;
            let dot_count = pair[1]
                .as_u64()
                .ok_or_else(|| ErrorFrame::malformed("dot_count must be an integer"))?;
            Ok(DotProductWorkload {
                dot_length: usize_from(dot_length, "dot_length")?,
                dot_count: usize_from(dot_count, "dot_count")?,
            })
        })
        .collect()
}

fn decode_workload(value: &Json) -> Result<NetworkWorkload, ErrorFrame> {
    Ok(NetworkWorkload {
        name: str_field(value, "name")?.to_string(),
        towers: usize_from(u64_field(value, "towers")?, "towers")?,
        conv_layers: decode_layers(value, "conv_layers")?,
        fc_layers: decode_layers(value, "fc_layers")?,
    })
}

fn decode_crosslight_arch(config: &Json) -> Result<ArchRequest, ErrorFrame> {
    let label = str_field(config, "variant")?;
    let variant = CrossLightVariant::from_label(label)
        .ok_or_else(|| ErrorFrame::unsupported(format!("unknown variant `{label}`")))?;
    let dims_json = field(config, "dims")?
        .as_array()
        .filter(|a| a.len() == 4)
        .ok_or_else(|| ErrorFrame::malformed("field `dims` must be a 4-element array"))?;
    let mut dims = [0usize; 4];
    for (slot, item) in dims.iter_mut().zip(dims_json) {
        *slot = usize_from(
            item.as_u64()
                .ok_or_else(|| ErrorFrame::malformed("`dims` entries must be integers"))?,
            "dims",
        )?;
    }
    let resolution_bits = u32::try_from(u64_field(config, "resolution_bits")?)
        .map_err(|_| ErrorFrame::malformed("field `resolution_bits` out of range"))?;
    Ok(ArchRequest::CrossLight {
        variant,
        dims: (dims[0], dims[1], dims[2], dims[3]),
        resolution_bits,
    })
}

/// Decodes an optional `(a, b)` integer-pair field, falling back to the
/// backend's published default when absent.
fn decode_dims_pair(config: &Json, default: (usize, usize)) -> Result<(usize, usize), ErrorFrame> {
    let Some(json) = config.get("dims") else {
        return Ok(default);
    };
    let pair = json
        .as_array()
        .filter(|a| a.len() == 2)
        .ok_or_else(|| ErrorFrame::malformed("field `dims` must be a 2-element array"))?;
    let mut dims = [0usize; 2];
    for (slot, item) in dims.iter_mut().zip(pair) {
        *slot = usize_from(
            item.as_u64()
                .ok_or_else(|| ErrorFrame::malformed("`dims` entries must be integers"))?,
            "dims",
        )?;
    }
    Ok((dims[0], dims[1]))
}

/// Decodes an optional `resolution_bits` field with a backend default.
fn decode_resolution_bits(config: &Json, default: u32) -> Result<u32, ErrorFrame> {
    if config.get("resolution_bits").is_none() {
        return Ok(default);
    }
    u32::try_from(u64_field(config, "resolution_bits")?)
        .map_err(|_| ErrorFrame::malformed("field `resolution_bits` out of range"))
}

/// Decodes the `config` object of an eval request.  An absent `"arch"`
/// field means CrossLight — the protocol's original vocabulary — so every
/// pre-zoo frame decodes unchanged.
fn decode_arch_request(config: &Json) -> Result<ArchRequest, ErrorFrame> {
    let arch_name = match config.get("arch") {
        None => return decode_crosslight_arch(config),
        Some(json) => json
            .as_str()
            .ok_or_else(|| ErrorFrame::malformed("field `arch` must be a string"))?,
    };
    match arch_name {
        "crosslight" => decode_crosslight_arch(config),
        "deap-cnn" => Ok(ArchRequest::DeapCnn),
        "holylight" => {
            let units = match config.get("units") {
                None => HOLYLIGHT_UNITS,
                Some(_) => usize_from(u64_field(config, "units")?, "units")?,
            };
            Ok(ArchRequest::HolyLight { units })
        }
        "electronic" => {
            let name = str_field(config, "platform")?;
            let platform = crosslight_baselines::electronic::all_platforms()
                .into_iter()
                .find(|p| p.name == name)
                .ok_or_else(|| ErrorFrame::unsupported(format!("unknown platform `{name}`")))?;
            Ok(ArchRequest::Electronic { platform })
        }
        "symmetric-crossbar" => Ok(ArchRequest::SymmetricCrossbar {
            dims: decode_dims_pair(config, (SYMMETRIC_DEFAULT_ROWS, SYMMETRIC_DEFAULT_COLS))?,
            resolution_bits: decode_resolution_bits(config, SYMMETRIC_DEFAULT_BITS)?,
        }),
        "litecon" => Ok(ArchRequest::LiteCon {
            dims: decode_dims_pair(config, (LITECON_DEFAULT_UNITS, LITECON_DEFAULT_UNIT_SIZE))?,
            resolution_bits: decode_resolution_bits(config, LITECON_DEFAULT_BITS)?,
        }),
        other => Err(ErrorFrame::unsupported(format!(
            "unknown architecture `{other}`"
        ))),
    }
}

fn decode_eval_spec(value: &Json) -> Result<EvalSpec, ErrorFrame> {
    let config = field(value, "config")?;
    let arch = decode_arch_request(config)?;
    let workload = match (value.get("model"), value.get("workload")) {
        (Some(model), None) => {
            let name = model
                .as_str()
                .ok_or_else(|| ErrorFrame::malformed("field `model` must be a string"))?;
            WorkloadRef::Model(
                PaperModel::from_wire_name(name)
                    .ok_or_else(|| ErrorFrame::malformed(format!("unknown model `{name}`")))?,
            )
        }
        (None, Some(inline)) => WorkloadRef::Inline(decode_workload(inline)?),
        _ => {
            return Err(ErrorFrame::malformed(
                "eval requests need exactly one of `model` or `workload`",
            ))
        }
    };
    Ok(EvalSpec { arch, workload })
}

/// Decodes one request line.
///
/// # Errors
///
/// Returns a typed [`ErrorFrame`] (with the parsed id when available via
/// [`peek_id`]) for malformed or unsupported frames.  Never panics.
pub fn decode_request(line: &str) -> Result<Request, ErrorFrame> {
    let value = Json::parse(line)?;
    check_version(&value)?;
    let id = u64_field(&value, "id")?;
    let body = match str_field(&value, "op")? {
        "eval" => RequestBody::Eval(decode_eval_spec(&value)?),
        "stats" => RequestBody::Stats,
        "ping" => RequestBody::Ping,
        "metrics" => RequestBody::Metrics {
            format: match value.get("format") {
                None => MetricsFormat::Json,
                Some(_) => {
                    let name = str_field(&value, "format")?;
                    MetricsFormat::from_wire_name(name).ok_or_else(|| {
                        ErrorFrame::unsupported(format!("unknown metrics format `{name}`"))
                    })?
                }
            },
        },
        "snapshot" => RequestBody::Snapshot {
            max_chunk_bytes: match value.get("max_chunk_bytes") {
                None => None,
                Some(_) => Some(u64_field(&value, "max_chunk_bytes")?),
            },
        },
        "restore" => RequestBody::Restore(decode_snapshot_chunk(&value)?),
        "restore_end" => RequestBody::RestoreEnd(decode_snapshot_end(&value)?),
        other => return Err(ErrorFrame::malformed(format!("unknown op `{other}`"))),
    };
    Ok(Request { id, body })
}

/// Best-effort extraction of the id from a (possibly malformed) request
/// line, so error responses can still be correlated.
#[must_use]
pub fn peek_id(line: &str) -> Option<u64> {
    Json::parse(line).ok()?.get("id")?.as_u64()
}

fn decode_power(power: &Json) -> Result<crosslight_core::power::AcceleratorPower, ErrorFrame> {
    Ok(crosslight_core::power::AcceleratorPower {
        laser: MilliWatts::new(f64_field(power, "laser")?),
        tuning: MilliWatts::new(f64_field(power, "tuning")?),
        detection: MilliWatts::new(f64_field(power, "detection")?),
        conversion: MilliWatts::new(f64_field(power, "conversion")?),
        control: MilliWatts::new(f64_field(power, "control")?),
    })
}

fn decode_area(area: &Json) -> Result<crosslight_core::area::AcceleratorArea, ErrorFrame> {
    Ok(crosslight_core::area::AcceleratorArea {
        mr_banks: SquareMillimeters::new(f64_field(area, "mr_banks")?),
        arm_devices: SquareMillimeters::new(f64_field(area, "arm_devices")?),
        unit_electronics: SquareMillimeters::new(f64_field(area, "unit_electronics")?),
    })
}

fn decode_report(value: &Json) -> Result<SimulationReport, ErrorFrame> {
    let metrics = field(value, "metrics")?;
    Ok(SimulationReport {
        power: decode_power(field(value, "power_mw")?)?,
        area: decode_area(field(value, "area_mm2")?)?,
        metrics: InferenceMetrics {
            latency: InferenceLatency {
                conv_time: Seconds::new(f64_field(metrics, "conv_time_s")?),
                fc_time: Seconds::new(f64_field(metrics, "fc_time_s")?),
                electronic_time: Seconds::new(f64_field(metrics, "electronic_time_s")?),
            },
            fps: f64_field(metrics, "fps")?,
            energy_per_inference: Picojoules::new(f64_field(metrics, "energy_per_inference_pj")?),
            energy_per_bit_pj: f64_field(metrics, "energy_per_bit_pj")?,
            kfps_per_watt: f64_field(metrics, "kfps_per_watt")?,
            power: Watts::new(f64_field(metrics, "power_w")?),
        },
        resolution_bits: u32::try_from(u64_field(value, "resolution_bits")?)
            .map_err(|_| ErrorFrame::malformed("field `resolution_bits` out of range"))?,
    })
}

/// Decodes a fixed-length canonical-word array.
fn decode_words<const N: usize>(value: &Json, key: &str) -> Result<[u64; N], ErrorFrame> {
    let items = field(value, key)?
        .as_array()
        .filter(|a| a.len() == N)
        .ok_or_else(|| {
            ErrorFrame::malformed(format!("field `{key}` must be a {N}-element integer array"))
        })?;
    let mut words = [0u64; N];
    for (slot, item) in words.iter_mut().zip(items) {
        *slot = item
            .as_u64()
            .ok_or_else(|| ErrorFrame::malformed(format!("`{key}` entries must be integers")))?;
    }
    Ok(words)
}

/// Maps a core canonical-codec rejection into a typed malformed frame.
fn snapshot_entry_error(err: &dyn std::fmt::Display) -> ErrorFrame {
    ErrorFrame::malformed(format!("invalid snapshot entry: {err}"))
}

fn decode_arch_key(value: &Json) -> Result<ArchKey, ErrorFrame> {
    match str_field(value, "kind")? {
        "crosslight" => {
            let words: [u64; CONFIG_KEY_WORDS] = decode_words(value, "words")?;
            ConfigKey::from_words(words)
                .map(ArchKey::CrossLight)
                .map_err(|err| snapshot_entry_error(&err))
        }
        "backend" => {
            let tag = u8::try_from(u64_field(value, "tag")?)
                .map_err(|_| ErrorFrame::malformed("field `tag` out of range"))?;
            let params: [u64; 4] = decode_words(value, "params")?;
            Ok(ArchKey::Backend(BackendKey::new(tag, params)))
        }
        other => Err(ErrorFrame::malformed(format!(
            "unknown arch key kind `{other}`"
        ))),
    }
}

fn decode_snapshot_entry(value: &Json) -> Result<SnapshotEntry, ErrorFrame> {
    match str_field(value, "kind")? {
        "result" => Ok(SnapshotEntry::Result {
            arch: decode_arch_key(field(value, "arch")?)?,
            workload: decode_workload(field(value, "workload")?)?,
            report: decode_report(field(value, "report")?)?,
        }),
        "unit" => {
            let words: [u64; VDP_UNIT_KEY_WORDS] = decode_words(value, "key")?;
            let key = VdpUnitKey::from_words(words).map_err(|err| snapshot_entry_error(&err))?;
            let report = field(value, "report")?;
            Ok(SnapshotEntry::Model(ModelCacheEntry::Unit {
                key,
                report: VdpUnitReport {
                    arms: usize_from(u64_field(report, "arms")?, "arms")?,
                    pass_latency: Seconds::new(f64_field(report, "pass_latency_s")?),
                    laser_power: MilliWatts::new(f64_field(report, "laser_mw")?),
                    tuning_power: MilliWatts::new(f64_field(report, "tuning_mw")?),
                    detection_power: MilliWatts::new(f64_field(report, "detection_mw")?),
                    conversion_power: MilliWatts::new(f64_field(report, "conversion_mw")?),
                },
            }))
        }
        "resolution" => {
            let words: [u64; RESOLUTION_KEY_WORDS] = decode_words(value, "key")?;
            let key = ResolutionKey::from_words(words).map_err(|err| snapshot_entry_error(&err))?;
            let bits = u32::try_from(u64_field(value, "bits")?)
                .map_err(|_| ErrorFrame::malformed("field `bits` out of range"))?;
            Ok(SnapshotEntry::Model(ModelCacheEntry::Resolution {
                key,
                bits,
            }))
        }
        "prepared" => {
            let words: [u64; CONFIG_KEY_WORDS] = decode_words(value, "config")?;
            let config = CrossLightConfig::from_canonical_words(words)
                .map_err(|err| snapshot_entry_error(&err))?;
            Ok(SnapshotEntry::Model(ModelCacheEntry::Prepared {
                config,
                power: decode_power(field(value, "power_mw")?)?,
                area: decode_area(field(value, "area_mm2")?)?,
                resolution_bits: u32::try_from(u64_field(value, "resolution_bits")?)
                    .map_err(|_| ErrorFrame::malformed("field `resolution_bits` out of range"))?,
            }))
        }
        other => Err(ErrorFrame::malformed(format!(
            "unknown snapshot entry kind `{other}`"
        ))),
    }
}

/// Checks the snapshot schema tag; a mismatch is a typed `unsupported`
/// error — the frame is well-formed, this build just speaks a different
/// snapshot format.
fn check_snapshot_schema(value: &Json) -> Result<(), ErrorFrame> {
    let schema = str_field(value, "schema")?;
    if schema != SNAPSHOT_SCHEMA {
        return Err(ErrorFrame::unsupported(format!(
            "unknown snapshot schema `{schema}` (this build speaks {SNAPSHOT_SCHEMA})"
        )));
    }
    Ok(())
}

fn decode_snapshot_chunk(value: &Json) -> Result<SnapshotChunk, ErrorFrame> {
    check_snapshot_schema(value)?;
    let entries = field(value, "entries")?
        .as_array()
        .ok_or_else(|| ErrorFrame::malformed("field `entries` must be an array"))?
        .iter()
        .map(decode_snapshot_entry)
        .collect::<Result<Vec<SnapshotEntry>, ErrorFrame>>()?;
    Ok(SnapshotChunk {
        seq: u64_field(value, "seq")?,
        entries,
    })
}

fn decode_snapshot_end(value: &Json) -> Result<SnapshotEnd, ErrorFrame> {
    check_snapshot_schema(value)?;
    let checksum = str_field(value, "checksum")?;
    let checksum = u64::from_str_radix(checksum, 16)
        .map_err(|_| ErrorFrame::malformed("field `checksum` must be a 64-bit hex string"))?;
    Ok(SnapshotEnd {
        chunks: u64_field(value, "chunks")?,
        entries: u64_field(value, "entries")?,
        checksum,
    })
}

fn decode_counts(value: &Json, key: &str) -> Result<Vec<u64>, ErrorFrame> {
    field(value, key)?
        .as_array()
        .ok_or_else(|| ErrorFrame::malformed(format!("field `{key}` must be an array")))?
        .iter()
        .map(|item| {
            item.as_u64()
                .ok_or_else(|| ErrorFrame::malformed(format!("`{key}` entries must be integers")))
        })
        .collect()
}

fn i64_field(value: &Json, key: &str) -> Result<i64, ErrorFrame> {
    let json = field(value, key)?;
    match *json {
        Json::Uint(v) => i64::try_from(v)
            .map_err(|_| ErrorFrame::malformed(format!("field `{key}` out of range"))),
        Json::Int(v) => Ok(v),
        _ => Err(ErrorFrame::malformed(format!(
            "field `{key}` must be an integer"
        ))),
    }
}

fn decode_wire_histogram(value: &Json) -> Result<WireHistogram, ErrorFrame> {
    let buckets = field(value, "buckets")?
        .as_array()
        .ok_or_else(|| ErrorFrame::malformed("field `buckets` must be an array"))?
        .iter()
        .map(|item| {
            let pair = item.as_array().filter(|a| a.len() == 2).ok_or_else(|| {
                ErrorFrame::malformed("histogram buckets must be [upper_bound, count] pairs")
            })?;
            let le = pair[0]
                .as_u64()
                .ok_or_else(|| ErrorFrame::malformed("bucket bounds must be integers"))?;
            let n = pair[1]
                .as_u64()
                .ok_or_else(|| ErrorFrame::malformed("bucket counts must be integers"))?;
            Ok((le, n))
        })
        .collect::<Result<Vec<(u64, u64)>, ErrorFrame>>()?;
    Ok(WireHistogram {
        count: u64_field(value, "count")?,
        sum: u64_field(value, "sum")?,
        min: match value.get("min") {
            None => None,
            Some(_) => Some(u64_field(value, "min")?),
        },
        max: u64_field(value, "max")?,
        buckets,
    })
}

fn decode_metric_series(kind: MetricKind, value: &Json) -> Result<WireMetricSeries, ErrorFrame> {
    let labels = match field(value, "labels")? {
        Json::Object(members) => members
            .iter()
            .map(|(key, v)| {
                Ok((
                    key.clone(),
                    v.as_str()
                        .ok_or_else(|| ErrorFrame::malformed("label values must be strings"))?
                        .to_string(),
                ))
            })
            .collect::<Result<Vec<(String, String)>, ErrorFrame>>()?,
        _ => return Err(ErrorFrame::malformed("field `labels` must be an object")),
    };
    let value = match kind {
        MetricKind::Counter => WireMetricValue::Counter(u64_field(value, "value")?),
        MetricKind::Gauge => WireMetricValue::Gauge(i64_field(value, "value")?),
        MetricKind::Histogram => {
            WireMetricValue::Histogram(decode_wire_histogram(field(value, "value")?)?)
        }
    };
    Ok(WireMetricSeries { labels, value })
}

fn decode_metrics_snapshot(value: &Json) -> Result<WireMetricsSnapshot, ErrorFrame> {
    let schema = str_field(value, "schema")?;
    if schema != METRICS_SCHEMA {
        return Err(ErrorFrame::unsupported(format!(
            "unknown metrics schema `{schema}` (this client speaks {METRICS_SCHEMA})"
        )));
    }
    let families = field(value, "families")?
        .as_array()
        .ok_or_else(|| ErrorFrame::malformed("field `families` must be an array"))?
        .iter()
        .map(|family| {
            let kind_name = str_field(family, "kind")?;
            let kind = MetricKind::from_wire_name(kind_name).ok_or_else(|| {
                ErrorFrame::malformed(format!("unknown metric kind `{kind_name}`"))
            })?;
            let series = field(family, "series")?
                .as_array()
                .ok_or_else(|| ErrorFrame::malformed("field `series` must be an array"))?
                .iter()
                .map(|s| decode_metric_series(kind, s))
                .collect::<Result<Vec<WireMetricSeries>, ErrorFrame>>()?;
            Ok(WireMetricFamily {
                name: str_field(family, "name")?.to_string(),
                help: str_field(family, "help")?.to_string(),
                kind,
                series,
            })
        })
        .collect::<Result<Vec<WireMetricFamily>, ErrorFrame>>()?;
    Ok(WireMetricsSnapshot {
        schema: schema.to_string(),
        families,
    })
}

fn decode_metrics_frame(ok: &Json) -> Result<MetricsFrame, ErrorFrame> {
    let format_name = str_field(ok, "format")?;
    let format = MetricsFormat::from_wire_name(format_name)
        .ok_or_else(|| ErrorFrame::malformed(format!("unknown metrics format `{format_name}`")))?;
    Ok(match format {
        MetricsFormat::Json => MetricsFrame::Snapshot(decode_metrics_snapshot(ok)?),
        MetricsFormat::Text => MetricsFrame::Text(str_field(ok, "page")?.to_string()),
        MetricsFormat::Spans => MetricsFrame::Spans(
            field(ok, "spans")?
                .as_array()
                .ok_or_else(|| ErrorFrame::malformed("field `spans` must be an array"))?
                .iter()
                .map(|line| {
                    Ok(line
                        .as_str()
                        .ok_or_else(|| ErrorFrame::malformed("span lines must be strings"))?
                        .to_string())
                })
                .collect::<Result<Vec<String>, ErrorFrame>>()?,
        ),
    })
}

fn decode_server_stats(value: &Json) -> Result<WireServerStats, ErrorFrame> {
    Ok(WireServerStats {
        connections_accepted: u64_field(value, "connections_accepted")?,
        connections_active: u64_field(value, "connections_active")?,
        requests_total: u64_field(value, "requests_total")?,
        evals_ok: u64_field(value, "evals_ok")?,
        evals_failed: u64_field(value, "evals_failed")?,
        shed_total: u64_field(value, "shed_total")?,
        malformed_total: u64_field(value, "malformed_total")?,
        oversized_total: u64_field(value, "oversized_total")?,
        queue_capacity: u64_field(value, "queue_capacity")?,
        in_flight: u64_field(value, "in_flight")?,
    })
}

fn decode_runtime_stats(value: &Json) -> Result<WireRuntimeStats, ErrorFrame> {
    Ok(WireRuntimeStats {
        submitted: u64_field(value, "submitted")?,
        completed: u64_field(value, "completed")?,
        cache_hits: u64_field(value, "cache_hits")?,
        cache_misses: u64_field(value, "cache_misses")?,
        cached_entries: u64_field(value, "cached_entries")?,
        prepared_configs: u64_field(value, "prepared_configs")?,
        per_worker: decode_counts(value, "per_worker")?,
        queue_depths: decode_counts(value, "queue_depths")?,
    })
}

/// Decodes one response line.
///
/// # Errors
///
/// Returns a typed [`ErrorFrame`] for malformed or unsupported frames.
/// Never panics.
pub fn decode_response(line: &str) -> Result<Response, ErrorFrame> {
    let value = Json::parse(line)?;
    check_version(&value)?;
    let id =
        match value.get("id") {
            None => None,
            Some(json) => Some(json.as_u64().ok_or_else(|| {
                ErrorFrame::malformed("field `id` must be a non-negative integer")
            })?),
        };
    let body = match (value.get("ok"), value.get("err")) {
        (Some(ok), None) => match str_field(ok, "type")? {
            "eval" => ResponseBody::Eval(EvalFrame {
                report: decode_report(field(ok, "report")?)?,
                cache_hit: field(ok, "cache_hit")?
                    .as_bool()
                    .ok_or_else(|| ErrorFrame::malformed("field `cache_hit` must be a bool"))?,
                worker: u64_field(ok, "worker")?,
            }),
            "stats" => ResponseBody::Stats(StatsFrame {
                server: decode_server_stats(field(ok, "server")?)?,
                runtime: decode_runtime_stats(field(ok, "runtime")?)?,
            }),
            "metrics" => ResponseBody::Metrics(decode_metrics_frame(ok)?),
            "pong" => ResponseBody::Pong,
            "snapshot" => ResponseBody::Snapshot(decode_snapshot_chunk(ok)?),
            "snapshot_end" => ResponseBody::SnapshotEnd(decode_snapshot_end(ok)?),
            "restored" => ResponseBody::Restored(RestoredFrame {
                entries: u64_field(ok, "entries")?,
                results: u64_field(ok, "results")?,
                model: u64_field(ok, "model")?,
            }),
            other => return Err(ErrorFrame::malformed(format!("unknown ok type `{other}`"))),
        },
        (None, Some(err)) => {
            let kind_name = str_field(err, "kind")?;
            let kind = ErrorKind::from_wire_name(kind_name).ok_or_else(|| {
                ErrorFrame::malformed(format!("unknown error kind `{kind_name}`"))
            })?;
            // `retryable` is derived from the kind, never stored: the field
            // is validated when present (it must be a bool) and otherwise
            // ignored, so frames with and without it decode identically.
            if let Some(flag) = err.get("retryable") {
                if flag.as_bool().is_none() {
                    return Err(ErrorFrame::malformed("field `retryable` must be a bool"));
                }
            }
            ResponseBody::Error(ErrorFrame::new(kind, str_field(err, "detail")?))
        }
        _ => {
            return Err(ErrorFrame::malformed(
                "responses need exactly one of `ok` or `err`",
            ))
        }
    };
    Ok(Response { id, body })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crosslight_core::simulator::CrossLightSimulator;

    fn paper_workloads() -> [Arc<NetworkWorkload>; 4] {
        PaperModel::all().map(|m| Arc::new(NetworkWorkload::from_spec(&m.spec()).unwrap()))
    }

    #[test]
    fn request_frames_round_trip() {
        let requests = vec![
            Request {
                id: 0,
                body: RequestBody::Ping,
            },
            Request {
                id: u64::MAX,
                body: RequestBody::Stats,
            },
            Request {
                id: 7,
                body: RequestBody::Eval(EvalSpec::paper(
                    CrossLightVariant::OptTed,
                    PaperModel::CnnCifar10,
                )),
            },
            Request {
                id: 8,
                body: RequestBody::Eval(EvalSpec::crosslight(
                    CrossLightVariant::Base,
                    (10, 100, 50, 30),
                    8,
                    WorkloadRef::Inline(
                        NetworkWorkload::from_spec(&PaperModel::Lenet5SignMnist.spec()).unwrap(),
                    ),
                )),
            },
        ];
        for request in requests {
            let line = encode_request(&request);
            assert_eq!(decode_request(&line).unwrap(), request, "{line}");
            assert_eq!(peek_id(&line), Some(request.id));
        }
    }

    #[test]
    fn zoo_arch_requests_round_trip_for_every_backend() {
        for (id, spec) in ArchSpec::zoo_defaults().iter().enumerate() {
            let arch = ArchRequest::for_spec(spec).expect("zoo specs use named variants");
            let request = Request {
                id: id as u64,
                body: RequestBody::Eval(EvalSpec::for_arch(
                    arch.clone(),
                    WorkloadRef::Model(PaperModel::CnnCifar10),
                )),
            };
            let line = encode_request(&request);
            let decoded = decode_request(&line).unwrap();
            assert_eq!(decoded, request, "{line}");
            // The round-tripped request resolves back to the original spec.
            match decoded.body {
                RequestBody::Eval(decoded_spec) => {
                    assert_eq!(decoded_spec.arch.to_arch_spec().unwrap(), *spec);
                }
                other => panic!("expected eval body, got {other:?}"),
            }
            // CrossLight requests never carry an `"arch"` key; zoo requests
            // always do.
            let has_arch_key = line.contains("\"arch\":");
            assert_eq!(
                has_arch_key,
                !matches!(arch, ArchRequest::CrossLight { .. }),
                "{line}"
            );
        }
    }

    #[test]
    fn zoo_configs_decode_with_published_defaults_when_knobs_are_omitted() {
        let cases = [
            (
                r#"{"v":1,"id":1,"op":"eval","config":{"arch":"holylight"},"model":"cnn_cifar10"}"#,
                ArchRequest::HolyLight {
                    units: HOLYLIGHT_UNITS,
                },
            ),
            (
                r#"{"v":1,"id":2,"op":"eval","config":{"arch":"symmetric-crossbar"},"model":"cnn_cifar10"}"#,
                ArchRequest::SymmetricCrossbar {
                    dims: (SYMMETRIC_DEFAULT_ROWS, SYMMETRIC_DEFAULT_COLS),
                    resolution_bits: SYMMETRIC_DEFAULT_BITS,
                },
            ),
            (
                r#"{"v":1,"id":3,"op":"eval","config":{"arch":"litecon"},"model":"cnn_cifar10"}"#,
                ArchRequest::LiteCon {
                    dims: (LITECON_DEFAULT_UNITS, LITECON_DEFAULT_UNIT_SIZE),
                    resolution_bits: LITECON_DEFAULT_BITS,
                },
            ),
            (
                r#"{"v":1,"id":4,"op":"eval","config":{"arch":"deap-cnn"},"model":"cnn_cifar10"}"#,
                ArchRequest::DeapCnn,
            ),
        ];
        for (line, expected) in cases {
            match decode_request(line).unwrap().body {
                RequestBody::Eval(spec) => assert_eq!(spec.arch, expected, "{line}"),
                other => panic!("expected eval body, got {other:?}"),
            }
        }
        // An explicit `"arch":"crosslight"` decodes like the implicit form.
        let explicit = r#"{"v":1,"id":5,"op":"eval","config":{"arch":"crosslight","variant":"Cross_opt_TED","dims":[20,150,100,60],"resolution_bits":16},"model":"cnn_cifar10"}"#;
        let implicit = r#"{"v":1,"id":5,"op":"eval","config":{"variant":"Cross_opt_TED","dims":[20,150,100,60],"resolution_bits":16},"model":"cnn_cifar10"}"#;
        assert_eq!(
            decode_request(explicit).unwrap(),
            decode_request(implicit).unwrap()
        );
    }

    #[test]
    fn unknown_names_in_well_formed_frames_are_unsupported_not_malformed() {
        for line in [
            // Unknown architecture family.
            r#"{"v":1,"id":1,"op":"eval","config":{"arch":"quantum"},"model":"cnn_cifar10"}"#,
            // Unknown CrossLight variant label (implicit and explicit arch).
            r#"{"v":1,"id":1,"op":"eval","config":{"variant":"nope","dims":[1,2,3,4],"resolution_bits":16},"model":"cnn_cifar10"}"#,
            r#"{"v":1,"id":1,"op":"eval","config":{"arch":"crosslight","variant":"nope","dims":[1,2,3,4],"resolution_bits":16},"model":"cnn_cifar10"}"#,
            // Unknown electronic platform.
            r#"{"v":1,"id":1,"op":"eval","config":{"arch":"electronic","platform":"Z80"},"model":"cnn_cifar10"}"#,
        ] {
            let err = decode_request(line).unwrap_err();
            assert_eq!(err.kind, ErrorKind::Unsupported, "{line} → {err:?}");
        }
    }

    #[test]
    fn eval_responses_round_trip_reports_bit_exactly() {
        let workloads = paper_workloads();
        let report = CrossLightSimulator::new(CrossLightConfig::paper_best())
            .evaluate(&workloads[0])
            .unwrap();
        let response = Response {
            id: Some(42),
            body: ResponseBody::Eval(EvalFrame {
                report,
                cache_hit: true,
                worker: 3,
            }),
        };
        let line = encode_response(&response);
        let decoded = decode_response(&line).unwrap();
        assert_eq!(decoded, response);
        match decoded.body {
            ResponseBody::Eval(frame) => assert_eq!(frame.report, report),
            other => panic!("expected eval frame, got {other:?}"),
        }
    }

    /// A representative snapshot stream: result-cache entries under both
    /// arch-key kinds plus every model-cache entry kind from an
    /// organically warmed [`crosslight_core::cache::ModelCache`].
    fn sample_snapshot_entries() -> Vec<SnapshotEntry> {
        let workloads = paper_workloads();
        let config = CrossLightConfig::paper_best();
        let report = CrossLightSimulator::new(config)
            .evaluate(&workloads[0])
            .unwrap();
        let mut entries = vec![
            SnapshotEntry::Result {
                arch: ArchKey::CrossLight(config.canonical_key()),
                workload: (*workloads[0]).clone(),
                report,
            },
            SnapshotEntry::Result {
                arch: ArchKey::Backend(BackendKey::new(3, [9, 0, u64::MAX, 17])),
                workload: (*workloads[1]).clone(),
                report,
            },
        ];
        let model = crosslight_core::cache::ModelCache::new();
        for variant in CrossLightVariant::all() {
            model.prepare(&variant.config()).unwrap();
        }
        entries.extend(model.export().into_iter().map(SnapshotEntry::Model));
        entries
    }

    #[test]
    fn snapshot_frames_round_trip_bit_exactly() {
        let entries = sample_snapshot_entries();
        assert!(
            entries
                .iter()
                .any(|e| matches!(e, SnapshotEntry::Model(ModelCacheEntry::Prepared { .. }))),
            "a warmed model cache exports prepared entries"
        );
        let checksum = snapshot_checksum(&entries);
        let requests = vec![
            Request {
                id: 1,
                body: RequestBody::Snapshot {
                    max_chunk_bytes: None,
                },
            },
            Request {
                id: 4,
                body: RequestBody::Snapshot {
                    max_chunk_bytes: Some(4096),
                },
            },
            Request {
                id: 2,
                body: RequestBody::Restore(SnapshotChunk {
                    seq: 0,
                    entries: entries.clone(),
                }),
            },
            Request {
                id: 3,
                body: RequestBody::RestoreEnd(SnapshotEnd {
                    chunks: 1,
                    entries: entries.len() as u64,
                    checksum,
                }),
            },
        ];
        for request in requests {
            let line = encode_request(&request);
            assert_eq!(decode_request(&line).unwrap(), request, "{line}");
        }
        let responses = vec![
            Response {
                id: Some(4),
                body: ResponseBody::Snapshot(SnapshotChunk {
                    seq: 5,
                    entries: entries.clone(),
                }),
            },
            Response {
                id: Some(5),
                body: ResponseBody::SnapshotEnd(SnapshotEnd {
                    chunks: 6,
                    entries: entries.len() as u64,
                    checksum,
                }),
            },
            Response {
                id: Some(6),
                body: ResponseBody::Restored(RestoredFrame {
                    entries: 12,
                    results: 7,
                    model: 5,
                }),
            },
        ];
        for response in responses {
            let line = encode_response(&response);
            assert_eq!(decode_response(&line).unwrap(), response, "{line}");
        }
    }

    #[test]
    fn snapshot_checksum_is_deterministic_and_order_sensitive() {
        let entries = sample_snapshot_entries();
        assert_eq!(snapshot_checksum(&entries), snapshot_checksum(&entries));
        let mut reversed = entries.clone();
        reversed.reverse();
        assert_ne!(
            snapshot_checksum(&entries),
            snapshot_checksum(&reversed),
            "reordering a stream must change its checksum"
        );
        // The decoded stream re-encodes to the identical checksum — the
        // property the receiver-side verification relies on.
        let chunk = SnapshotChunk { seq: 0, entries };
        let line = encode_request(&Request {
            id: 1,
            body: RequestBody::Restore(chunk.clone()),
        });
        let Ok(Request {
            body: RequestBody::Restore(decoded),
            ..
        }) = decode_request(&line)
        else {
            panic!("restore frame must decode");
        };
        assert_eq!(
            snapshot_checksum(&decoded.entries),
            snapshot_checksum(&chunk.entries)
        );
    }

    #[test]
    fn snapshot_chunking_respects_the_byte_budget_and_numbers_chunks() {
        let entries = sample_snapshot_entries();
        let budget = 600;
        let chunks = chunk_snapshot_entries(entries.clone(), budget);
        assert!(chunks.len() > 1, "a 600-byte budget must force chunking");
        let mut reassembled = Vec::new();
        for (i, chunk) in chunks.iter().enumerate() {
            assert_eq!(chunk.seq, i as u64);
            assert!(!chunk.entries.is_empty());
            let payload: usize = chunk
                .entries
                .iter()
                .map(|e| encode_snapshot_entry(e).len() + 1)
                .sum();
            assert!(
                payload <= budget || chunk.entries.len() == 1,
                "chunk {i} holds {payload} bytes against a {budget} budget"
            );
            reassembled.extend(chunk.entries.iter().cloned());
        }
        assert_eq!(reassembled, entries, "chunking must preserve the stream");
        // A generous budget yields one chunk.
        assert_eq!(chunk_snapshot_entries(entries, usize::MAX).len(), 1);
        // An empty stream yields no chunks.
        assert!(chunk_snapshot_entries(Vec::new(), budget).is_empty());
    }

    #[test]
    fn snapshot_decode_rejections_are_typed() {
        // A foreign schema is a well-formed frame this build cannot apply.
        let line = r#"{"v":1,"id":1,"op":"restore","schema":"crosslight-snapshot/v9","seq":0,"entries":[]}"#;
        assert_eq!(
            decode_request(line).unwrap_err().kind,
            ErrorKind::Unsupported
        );
        // Everything else about a broken stream is malformed.
        for line in [
            // checksum not a hex string
            r#"{"v":1,"id":1,"op":"restore_end","schema":"crosslight-snapshot/v1","chunks":0,"entries":0,"checksum":"zz"}"#,
            // checksum as a bare number
            r#"{"v":1,"id":1,"op":"restore_end","schema":"crosslight-snapshot/v1","chunks":0,"entries":0,"checksum":7}"#,
            // entries not an array
            r#"{"v":1,"id":1,"op":"restore","schema":"crosslight-snapshot/v1","seq":0,"entries":3}"#,
            // unknown entry kind
            r#"{"v":1,"id":1,"op":"restore","schema":"crosslight-snapshot/v1","seq":0,"entries":[{"kind":"mystery"}]}"#,
            // wrong word-array arity
            r#"{"v":1,"id":1,"op":"restore","schema":"crosslight-snapshot/v1","seq":0,"entries":[{"kind":"resolution","key":[1,2],"bits":8}]}"#,
            // a prepared entry whose config words fail core validation
            r#"{"v":1,"id":1,"op":"restore","schema":"crosslight-snapshot/v1","seq":0,"entries":[{"kind":"prepared","config":[0,0,0,0,0,0,0,0,0,0,0,0,0,0,0],"power_mw":{},"area_mm2":{},"resolution_bits":8}]}"#,
        ] {
            assert_eq!(
                decode_request(line).unwrap_err().kind,
                ErrorKind::Malformed,
                "{line}"
            );
        }
    }

    #[test]
    fn error_stats_and_pong_frames_round_trip() {
        let frames = vec![
            Response::error(None, ErrorFrame::new(ErrorKind::Overloaded, "queue full")),
            Response::error(
                Some(9),
                ErrorFrame::new(ErrorKind::Evaluation, "K < N rejected"),
            ),
            Response {
                id: Some(1),
                body: ResponseBody::Pong,
            },
            Response {
                id: Some(2),
                body: ResponseBody::Stats(StatsFrame {
                    server: WireServerStats {
                        connections_accepted: 3,
                        connections_active: 1,
                        requests_total: 40,
                        evals_ok: 30,
                        evals_failed: 2,
                        shed_total: 5,
                        malformed_total: 2,
                        oversized_total: 1,
                        queue_capacity: 256,
                        in_flight: 4,
                    },
                    runtime: WireRuntimeStats {
                        submitted: 30,
                        completed: 30,
                        cache_hits: 12,
                        cache_misses: 18,
                        cached_entries: 18,
                        prepared_configs: 4,
                        per_worker: vec![10, 20],
                        queue_depths: vec![0, 0],
                    },
                }),
            },
        ];
        for response in frames {
            let line = encode_response(&response);
            assert_eq!(decode_response(&line).unwrap(), response, "{line}");
        }
    }

    #[test]
    fn version_mismatches_and_malformed_frames_are_typed() {
        let err = decode_request(r#"{"v":2,"id":1,"op":"ping"}"#).unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnsupportedVersion);
        for line in [
            "",
            "not json",
            "{}",
            r#"{"v":1}"#,
            r#"{"v":1,"id":1}"#,
            r#"{"v":1,"id":1,"op":"launch"}"#,
            r#"{"v":1,"id":1,"op":"eval"}"#,
            r#"{"v":1,"id":1,"op":"eval","config":{"arch":7},"model":"cnn_cifar10"}"#,
            r#"{"v":1,"id":1,"op":"eval","config":{"arch":"electronic"},"model":"cnn_cifar10"}"#,
            r#"{"v":1,"id":1,"op":"eval","config":{"arch":"litecon","dims":[1,2,3]},"model":"cnn_cifar10"}"#,
            r#"{"v":1,"id":1,"op":"eval","config":{"variant":"Cross_opt_TED","dims":[1,2,3],"resolution_bits":16},"model":"cnn_cifar10"}"#,
            r#"{"v":1,"id":1,"op":"eval","config":{"variant":"Cross_opt_TED","dims":[1,2,3,4],"resolution_bits":16},"model":"vgg16"}"#,
            r#"{"v":1,"id":1,"op":"eval","config":{"variant":"Cross_opt_TED","dims":[1,2,3,4],"resolution_bits":16}}"#,
            r#"{"v":1,"id":-3,"op":"ping"}"#,
        ] {
            let err = decode_request(line).unwrap_err();
            assert_eq!(err.kind, ErrorKind::Malformed, "{line} → {err:?}");
        }
        let err = decode_response(r#"{"v":1,"id":1,"ok":{"type":"eval"},"err":{}}"#).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Malformed);
    }

    #[test]
    fn eval_specs_resolve_to_runtime_requests() {
        let workloads = paper_workloads();
        let spec = EvalSpec::paper(CrossLightVariant::OptTed, PaperModel::CnnStl10);
        let request = spec.to_eval_request(11, &workloads).unwrap();
        assert_eq!(request.id, 11);
        assert_eq!(request.config().unwrap(), CrossLightConfig::paper_best());
        assert!(Arc::ptr_eq(&request.workload, &workloads[2]));

        let invalid = EvalSpec::crosslight(
            CrossLightVariant::OptTed,
            (150, 20, 100, 60), // K < N
            16,
            WorkloadRef::Model(PaperModel::CnnStl10),
        );
        let err = invalid.to_eval_request(0, &workloads).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Evaluation);

        // A zoo spec resolves to a request with no CrossLight config.
        let zoo = EvalSpec::for_arch(
            ArchRequest::DeapCnn,
            WorkloadRef::Model(PaperModel::CnnCifar10),
        );
        let request = zoo.to_eval_request(3, &workloads).unwrap();
        assert!(request.config().is_none());
        assert_eq!(request.arch.arch_name(), "deap-cnn");
        assert_eq!(zoo.config().unwrap_err().kind, ErrorKind::Evaluation);
    }

    #[test]
    fn metrics_request_frames_round_trip_and_default_to_json() {
        for format in [
            MetricsFormat::Json,
            MetricsFormat::Text,
            MetricsFormat::Spans,
        ] {
            let request = Request {
                id: 3,
                body: RequestBody::Metrics { format },
            };
            let line = encode_request(&request);
            assert_eq!(decode_request(&line).unwrap(), request, "{line}");
            // The default format is implicit on the wire.
            assert_eq!(
                line.contains("\"format\""),
                format != MetricsFormat::Json,
                "{line}"
            );
        }
        // A bare metrics frame means the JSON snapshot.
        let bare = decode_request(r#"{"v":1,"id":4,"op":"metrics"}"#).unwrap();
        assert_eq!(
            bare.body,
            RequestBody::Metrics {
                format: MetricsFormat::Json
            }
        );
        // Unknown formats are well-formed but unsupported.
        let err = decode_request(r#"{"v":1,"id":4,"op":"metrics","format":"xml"}"#).unwrap_err();
        assert_eq!(err.kind, ErrorKind::Unsupported);
    }

    #[test]
    fn metrics_snapshot_responses_round_trip_losslessly() {
        use crosslight_telemetry::Registry;

        let registry = Registry::new();
        registry
            .counter("server_requests_total", "Frames received.")
            .add(41);
        registry
            .gauge("server_write_queue_depth", "Queued lines.")
            .set(-2);
        let latency = registry.histogram("server_request_ns", "End-to-end latency.");
        for v in [5u64, 120, 120, 7_000, 1 << 33] {
            latency.record(v);
        }
        let snapshot = registry.snapshot();

        let response = Response {
            id: Some(9),
            body: ResponseBody::Metrics(MetricsFrame::Snapshot(WireMetricsSnapshot::from(
                &snapshot,
            ))),
        };
        let line = encode_response(&response);
        let decoded = decode_response(&line).unwrap();
        assert_eq!(decoded, response, "{line}");

        // The decoded wire form rebuilds the registry snapshot exactly:
        // quantiles, moments and bucket occupancy all survive the wire.
        match decoded.body {
            ResponseBody::Metrics(MetricsFrame::Snapshot(wire)) => {
                assert_eq!(wire.schema, METRICS_SCHEMA);
                assert_eq!(wire.to_registry_snapshot(), snapshot);
            }
            other => panic!("expected a metrics snapshot, got {other:?}"),
        }

        // Text and spans payloads round-trip too (including escaping).
        for frame in [
            MetricsFrame::Text("# TYPE a counter\na 1\n".to_string()),
            MetricsFrame::Spans(vec![
                "{\"id\":7,\"spans\":[]}".to_string(),
                "{\"id\":8,\"spans\":[]}".to_string(),
            ]),
        ] {
            let response = Response {
                id: Some(10),
                body: ResponseBody::Metrics(frame),
            };
            let line = encode_response(&response);
            assert_eq!(decode_response(&line).unwrap(), response, "{line}");
        }

        // A snapshot from a foreign schema is rejected as unsupported.
        let foreign = line.replace(METRICS_SCHEMA, "crosslight-metrics/v9");
        assert_eq!(
            decode_response(&foreign).unwrap_err().kind,
            ErrorKind::Unsupported
        );
    }

    const ALL_ERROR_KINDS: [ErrorKind; 8] = [
        ErrorKind::Malformed,
        ErrorKind::UnsupportedVersion,
        ErrorKind::Oversized,
        ErrorKind::Overloaded,
        ErrorKind::Evaluation,
        ErrorKind::ShuttingDown,
        ErrorKind::Unsupported,
        ErrorKind::Unavailable,
    ];

    #[test]
    fn error_kind_names_round_trip() {
        for kind in ALL_ERROR_KINDS {
            assert_eq!(ErrorKind::from_wire_name(kind.as_str()), Some(kind));
        }
        assert_eq!(ErrorKind::from_wire_name("panic"), None);
    }

    #[test]
    fn retryable_flag_is_encoded_only_for_retryable_kinds_and_round_trips() {
        for kind in ALL_ERROR_KINDS {
            let response = Response::error(Some(3), ErrorFrame::new(kind, "detail"));
            let line = encode_response(&response);
            assert_eq!(
                line.contains("\"retryable\":true"),
                kind.retryable(),
                "{line}"
            );
            // Non-retryable frames carry no flag at all, so every frame the
            // frozen backcompat corpus contains is unchanged.
            assert_eq!(line.contains("retryable"), kind.retryable(), "{line}");
            assert_eq!(decode_response(&line).unwrap(), response, "{line}");
        }
        // Frames without the flag (older servers) decode identically.
        let bare = r#"{"v":1,"id":3,"err":{"kind":"unavailable","detail":"d"}}"#;
        let decoded = decode_response(bare).unwrap();
        assert_eq!(
            decoded.body,
            ResponseBody::Error(ErrorFrame::new(ErrorKind::Unavailable, "d"))
        );
        // A present-but-ill-typed flag is malformed.
        let bad = r#"{"v":1,"id":3,"err":{"kind":"overloaded","detail":"d","retryable":"yes"}}"#;
        assert_eq!(decode_response(bad).unwrap_err().kind, ErrorKind::Malformed);
        // The retryable set is exactly the transient-capacity kinds.
        let retryable: Vec<ErrorKind> = ALL_ERROR_KINDS
            .into_iter()
            .filter(|k| k.retryable())
            .collect();
        assert_eq!(
            retryable,
            [
                ErrorKind::Overloaded,
                ErrorKind::ShuttingDown,
                ErrorKind::Unavailable
            ]
        );
    }
}
