//! The TCP front-end: acceptor, per-connection readers, admission control.
//!
//! # Thread model
//!
//! One **acceptor** thread owns the [`TcpListener`].  Each accepted
//! connection gets three threads:
//!
//! * a **reader** that parses JSON lines, answers `ping`/`stats`/error
//!   frames inline, and feeds admitted `eval` requests to the
//!   fingerprint-sharded [`EvalService`] via
//!   [`EvalService::submit_detached`] (never blocking on evaluation, so
//!   pipelined requests from one client run concurrently);
//! * a **responder** that receives tagged completions from the pool,
//!   encodes them, and releases their admission permits;
//! * a **writer** that owns the socket's write half behind a channel and
//!   batches flushes, so responses from the reader and responder interleave
//!   safely.
//!
//! # Load shedding
//!
//! Admission is a server-wide counting semaphore of `queue_capacity`
//! permits.  An `eval` frame that cannot take a permit is answered
//! *immediately* with an `overloaded` error — the connection never blocks
//! on evaluation and the server never buffers unbounded work.  Non-eval
//! ops (`ping`, `stats`) bypass admission so health checks still work
//! under overload.  The per-connection write queue is *bounded* too: a
//! client that stops reading its responses back-pressures the responder
//! and then the reader (which stops consuming input), and a socket that
//! stays unwritable past `write_timeout` tears the connection down — so a
//! non-reading client can neither grow server memory without bound nor
//! wedge shutdown.
//!
//! # Graceful drain
//!
//! [`Server::shutdown`] stops the acceptor, half-closes every live
//! connection's read side, and joins the connection threads: readers see
//! EOF and stop accepting input, in-flight evaluations complete, responders
//! drain every completion, writers flush, and only then does the underlying
//! [`EvalService`] shut down.  No admitted request is ever dropped.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crosslight_neural::workload::NetworkWorkload;
use crosslight_neural::zoo::PaperModel;
use crosslight_runtime::pool::{CancelToken, EvalService, RuntimeOptions, RuntimeStats};
use crosslight_runtime::request::EvalResponse;
use crosslight_runtime::RuntimeError;
use crosslight_telemetry::{
    render_text, Counter, Gauge, Histogram, Phase, Registry, RegistrySnapshot, RequestTrace,
    SpanRing, TraceSampler,
};

use crosslight_runtime::cache::CacheKey;

use crate::wire::{
    self, ErrorFrame, ErrorKind, EvalFrame, MetricsFormat, MetricsFrame, RequestBody, Response,
    ResponseBody, SnapshotEnd, SnapshotEntry, StatsFrame, WireMetricsSnapshot, WireRuntimeStats,
    WireServerStats, DEFAULT_MAX_LINE_BYTES,
};

/// Tuning knobs of the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerOptions {
    /// Worker threads of the underlying [`EvalService`].
    pub workers: usize,
    /// Cache shards of the underlying [`EvalService`].
    pub cache_shards: usize,
    /// Maximum evals admitted concurrently; everything beyond is shed with
    /// an `overloaded` error frame (clamped to at least 1).
    pub queue_capacity: usize,
    /// Maximum accepted line length in bytes (clamped to at least 1 KiB).
    pub max_line_bytes: usize,
    /// How long a socket write may stall before the connection is torn
    /// down — the bound that keeps a non-reading client from wedging the
    /// writer (and therefore shutdown) forever.
    pub write_timeout: Duration,
    /// Trace one eval request in every `trace_sample_every` per connection
    /// through the full phase pipeline (read → decode → admission → queue →
    /// cache lookup → prepare → evaluate → serialize → write queue → write).
    /// `0` disables tracing entirely; `1` (the default) traces everything.
    pub trace_sample_every: u64,
}

impl ServerOptions {
    /// Returns a copy with a different evaluation worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Returns a copy with a different admission-queue capacity.
    #[must_use]
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity;
        self
    }

    /// Returns a copy with a different maximum line length.
    #[must_use]
    pub fn with_max_line_bytes(mut self, max_line_bytes: usize) -> Self {
        self.max_line_bytes = max_line_bytes;
        self
    }

    /// Returns a copy with a different write-stall bound.
    #[must_use]
    pub fn with_write_timeout(mut self, write_timeout: Duration) -> Self {
        self.write_timeout = write_timeout;
        self
    }

    /// Returns a copy with a different phase-trace sampling period
    /// (`0` = off, `1` = every request, `n` = one in `n`).
    #[must_use]
    pub fn with_trace_sampling(mut self, trace_sample_every: u64) -> Self {
        self.trace_sample_every = trace_sample_every;
        self
    }
}

impl Default for ServerOptions {
    /// Default runtime options, 256 admitted evals, 64 KiB lines, 30 s
    /// write-stall bound, every request traced.
    fn default() -> Self {
        let runtime = RuntimeOptions::default();
        Self {
            workers: runtime.workers,
            cache_shards: runtime.cache_shards,
            queue_capacity: 256,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            write_timeout: Duration::from_secs(30),
            trace_sample_every: 1,
        }
    }
}

/// Point-in-time snapshot of the server and its evaluation pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerStats {
    /// Front-end counters (connections, sheds, malformed frames, …).
    pub server: WireServerStats,
    /// Evaluation-pool counters.
    pub runtime: RuntimeStats,
}

#[derive(Debug)]
struct Admission {
    capacity: usize,
    in_flight: AtomicUsize,
    /// Registered with the server registry as `server_shed_total`.
    shed: Counter,
}

impl Admission {
    fn try_acquire(&self) -> bool {
        let mut current = self.in_flight.load(Ordering::Relaxed);
        loop {
            if current >= self.capacity {
                self.shed.inc();
                return false;
            }
            match self.in_flight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => current = actual,
            }
        }
    }

    fn release(&self) {
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The front-end's metric handles, registered once at bind time under the
/// `server_` name prefix.  The runtime registers its own families under
/// `runtime_`, so [`Shared::metrics_snapshot`] can merge the two registries
/// into one scrape without collisions.
#[derive(Debug)]
struct ServerTelemetry {
    registry: Registry,
    requests_total: Counter,
    evals_ok: Counter,
    evals_failed: Counter,
    /// Admitted evals skipped because their connection died first.
    evals_cancelled: Counter,
    malformed_total: Counter,
    oversized_total: Counter,
    connections_accepted: Counter,
    connections_active: Gauge,
    connections_drained: Counter,
    bytes_read: Counter,
    bytes_written: Counter,
    /// Encoded response lines sitting in per-connection write queues.
    write_queue_depth: Gauge,
    /// Scrape-time mirrors of the admission semaphore.
    admission_in_flight: Gauge,
    admission_capacity: Gauge,
    /// Per-phase latency histograms, indexed by [`Phase::index`].
    phase_ns: Vec<Histogram>,
    /// End-to-end latency of traced requests: decode start (the first
    /// phase whose cost the server controls — `read` waits on the client)
    /// to the post-flush instant of the response write.
    request_ns: Histogram,
    traces_sampled: Counter,
    /// Snapshot streams served (one per `snapshot` op).
    snapshots_total: Counter,
    /// Cache entries exported across all served snapshots.
    snapshot_entries_total: Counter,
    /// Restore streams validated and applied.
    restores_total: Counter,
    /// Cache entries received in validated restore streams.
    restore_entries_total: Counter,
    /// Restore streams rejected (truncated, out of sequence, corrupt, or
    /// carrying invalid entries).
    restore_failed_total: Counter,
    /// Scrape-time mirror of the span ring's drop count.
    spans_dropped: Counter,
    sampler: TraceSampler,
    spans: SpanRing,
}

impl ServerTelemetry {
    fn new(options: &ServerOptions, shed: &Counter) -> Self {
        let registry = Registry::new();
        registry
            .register_counter(
                "server_shed_total",
                "Eval requests refused by admission control.",
                &[],
                shed,
            )
            .expect("the server metric vocabulary has no duplicates");
        let telemetry = Self {
            requests_total: registry.counter(
                "server_requests_total",
                "Request frames received, including malformed and shed ones.",
            ),
            evals_ok: registry.counter(
                "server_evals_ok_total",
                "Eval requests answered with a report.",
            ),
            evals_failed: registry.counter(
                "server_evals_failed_total",
                "Eval requests answered with an error frame.",
            ),
            evals_cancelled: registry.counter(
                "server_evals_cancelled_total",
                "Admitted evals skipped because their connection died before \
                 a worker picked them up.",
            ),
            malformed_total: registry.counter(
                "server_malformed_total",
                "Lines rejected as invalid JSON, UTF-8, or protocol frames.",
            ),
            oversized_total: registry.counter(
                "server_oversized_total",
                "Lines rejected for exceeding the configured length limit.",
            ),
            connections_accepted: registry.counter(
                "server_connections_accepted_total",
                "TCP connections accepted since startup.",
            ),
            connections_active: registry
                .gauge("server_connections_active", "Currently open connections."),
            connections_drained: registry.counter(
                "server_connections_drained_total",
                "Connections that finished and were fully drained.",
            ),
            bytes_read: registry.counter(
                "server_bytes_read_total",
                "Bytes of accepted request lines, including newlines.",
            ),
            bytes_written: registry.counter(
                "server_bytes_written_total",
                "Bytes of response lines written, including newlines.",
            ),
            write_queue_depth: registry.gauge(
                "server_write_queue_depth",
                "Encoded response lines waiting in per-connection write queues.",
            ),
            admission_in_flight: registry.gauge(
                "server_admission_in_flight",
                "Admission permits currently held by in-flight evals.",
            ),
            admission_capacity: registry.gauge(
                "server_admission_capacity",
                "Total admission permits (the queue_capacity option).",
            ),
            phase_ns: Phase::ALL
                .iter()
                .map(|phase| {
                    registry.histogram_with(
                        "server_phase_ns",
                        "Per-phase latency of traced requests, in nanoseconds.",
                        &[("phase", phase.as_str())],
                    )
                })
                .collect(),
            request_ns: registry.histogram(
                "server_request_ns",
                "End-to-end latency of traced requests (decode start to \
                 response flush), in nanoseconds.",
            ),
            traces_sampled: registry.counter(
                "server_traces_sampled_total",
                "Requests that carried a phase trace.",
            ),
            snapshots_total: registry.counter(
                "server_snapshots_total",
                "Warm-state snapshot streams served.",
            ),
            snapshot_entries_total: registry.counter(
                "server_snapshot_entries_total",
                "Cache entries exported across all served snapshots.",
            ),
            restores_total: registry.counter(
                "server_restores_total",
                "Warm-state restore streams validated and applied.",
            ),
            restore_entries_total: registry.counter(
                "server_restore_entries_total",
                "Cache entries received in validated restore streams.",
            ),
            restore_failed_total: registry.counter(
                "server_restore_failed_total",
                "Restore streams rejected as truncated, corrupt, or invalid.",
            ),
            spans_dropped: registry.counter(
                "server_trace_spans_dropped_total",
                "Trace timelines evicted from the span ring before export.",
            ),
            sampler: TraceSampler::new(options.trace_sample_every),
            spans: SpanRing::default(),
            registry,
        };
        telemetry
            .admission_capacity
            .set(options.queue_capacity.max(1) as i64);
        telemetry
    }

    /// Folds a completed per-request timeline into the phase and
    /// end-to-end histograms and queues its JSON line for span export.
    fn finish_trace(&self, trace: &RequestTrace) {
        for phase in Phase::ALL {
            if let Some(ns) = trace.phase_ns(phase) {
                self.phase_ns[phase.index()].record(ns);
            }
        }
        if let Some(start) = trace.first_start_ns(Phase::Decode) {
            self.request_ns
                .record(trace.latest_end_ns().saturating_sub(start));
        }
        self.spans.push(trace.to_json_line());
    }
}

#[derive(Debug)]
struct Shared {
    service: EvalService,
    options: ServerOptions,
    admission: Admission,
    telemetry: ServerTelemetry,
    shutting_down: AtomicBool,
    /// Read-half handles of live connections, so shutdown can interrupt
    /// blocked readers.
    connections: Mutex<HashMap<u64, TcpStream>>,
    /// Prebuilt Table I workloads, indexed as [`PaperModel::all`].
    workloads: [Arc<NetworkWorkload>; 4],
}

impl Shared {
    fn snapshot(&self) -> ServerStats {
        let telemetry = &self.telemetry;
        // Read outcome counters before their causes: each outcome counter
        // increments strictly after the `requests_total` increment of the
        // same request, so reading outcomes first and the total last keeps
        // `requests_total >= evals_ok + evals_failed + shed + malformed +
        // oversized` true in every live snapshot (the same discipline the
        // runtime uses for `submitted >= completed`).
        let evals_ok = telemetry.evals_ok.get();
        let evals_failed = telemetry.evals_failed.get();
        let shed_total = self.admission.shed.get();
        let malformed_total = telemetry.malformed_total.get();
        let oversized_total = telemetry.oversized_total.get();
        let requests_total = telemetry.requests_total.get();
        ServerStats {
            server: WireServerStats {
                connections_accepted: telemetry.connections_accepted.get(),
                connections_active: telemetry.connections_active.get().max(0) as u64,
                requests_total,
                evals_ok,
                evals_failed,
                shed_total,
                malformed_total,
                oversized_total,
                queue_capacity: self.admission.capacity as u64,
                in_flight: self.admission.in_flight.load(Ordering::Relaxed) as u64,
            },
            runtime: self.service.stats(),
        }
    }

    /// One merged scrape of the server and runtime registries, with the
    /// scrape-time mirror gauges synchronized first.
    fn metrics_snapshot(&self) -> RegistrySnapshot {
        let telemetry = &self.telemetry;
        telemetry
            .admission_in_flight
            .set(self.admission.in_flight.load(Ordering::Acquire) as i64);
        telemetry.spans_dropped.store(telemetry.spans.dropped());
        RegistrySnapshot::merged(vec![
            telemetry.registry.snapshot(),
            self.service.telemetry_snapshot(),
        ])
        .expect("the server_ and runtime_ metric prefixes are disjoint")
    }

    /// Exports both warm caches as one deterministic snapshot stream:
    /// result-cache entries first (sorted by key), then model-cache
    /// entries — the same order every replica produces for the same
    /// contents, so the terminal checksum is comparable across servers.
    fn collect_snapshot(&self) -> Vec<SnapshotEntry> {
        let mut entries: Vec<SnapshotEntry> = self
            .service
            .result_cache()
            .export()
            .into_iter()
            .map(|(key, report)| SnapshotEntry::Result {
                arch: *key.arch_key(),
                workload: (**key.workload()).clone(),
                report,
            })
            .collect();
        entries.extend(
            self.service
                .model_cache()
                .export()
                .into_iter()
                .map(SnapshotEntry::Model),
        );
        entries
    }

    /// Reuses the prebuilt Table I workload [`Arc`]s for transported
    /// workloads that match them, so restored result-cache keys share
    /// storage with organically-warmed ones instead of duplicating the
    /// layer tables per entry.
    fn intern_workload(&self, workload: NetworkWorkload) -> Arc<NetworkWorkload> {
        for known in &self.workloads {
            if **known == workload {
                return Arc::clone(known);
            }
        }
        Arc::new(workload)
    }

    /// Validates a completed restore stream against its terminal frame and
    /// applies it to the caches.  Model-cache entries are imported first
    /// (that import validates before touching the cache), so a rejected
    /// stream leaves both caches untouched.
    fn apply_restore(
        &self,
        entries: Vec<SnapshotEntry>,
        chunks: u64,
        end: &SnapshotEnd,
    ) -> Result<wire::RestoredFrame, ErrorFrame> {
        if chunks != end.chunks || entries.len() as u64 != end.entries {
            return Err(ErrorFrame::new(
                ErrorKind::Malformed,
                format!(
                    "truncated restore stream: got {chunks} chunks / {} entries, \
                     terminal frame promised {} / {}",
                    entries.len(),
                    end.chunks,
                    end.entries
                ),
            ));
        }
        if wire::snapshot_checksum(&entries) != end.checksum {
            return Err(ErrorFrame::new(
                ErrorKind::Malformed,
                "restore stream checksum mismatch",
            ));
        }
        let total = entries.len() as u64;
        let mut results = Vec::new();
        let mut model = Vec::new();
        for entry in entries {
            match entry {
                SnapshotEntry::Result {
                    arch,
                    workload,
                    report,
                } => {
                    let workload = self.intern_workload(workload);
                    results.push((CacheKey::from_parts(arch, workload), report));
                }
                SnapshotEntry::Model(entry) => model.push(entry),
            }
        }
        let inserted_model = self.service.model_cache().import(&model).map_err(|err| {
            ErrorFrame::new(
                ErrorKind::Malformed,
                format!("invalid snapshot entry: {err}"),
            )
        })?;
        let inserted_results = self.service.result_cache().import(results);
        Ok(wire::RestoredFrame {
            entries: total,
            results: inserted_results as u64,
            model: inserted_model as u64,
        })
    }
}

/// Per-connection restore-stream state.  Chunks are accumulated silently
/// (one response per *stream*, at `restore_end` — answering every chunk
/// would desynchronize pipelined response correlation); a mid-stream
/// violation poisons the session and surfaces as the terminal response.
enum RestoreSession {
    /// No stream in progress.
    Idle,
    /// Chunks 0..next_seq received and buffered.
    Active {
        next_seq: u64,
        entries: Vec<SnapshotEntry>,
    },
    /// The stream violated the protocol; the error is held until the
    /// terminal frame so the response stream stays aligned.
    Poisoned { frame: ErrorFrame },
}

/// The JSON-lines evaluation server.
///
/// # Example
///
/// ```
/// use crosslight_server::server::{Server, ServerOptions};
/// use crosslight_server::loadgen::Client;
/// use crosslight_server::wire::{EvalSpec, ResponseBody};
/// use crosslight_core::variants::CrossLightVariant;
/// use crosslight_neural::zoo::PaperModel;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let server = Server::bind("127.0.0.1:0", ServerOptions::default().with_workers(2))?;
/// let mut client = Client::connect(server.local_addr())?;
/// let spec = EvalSpec::paper(CrossLightVariant::OptTed, PaperModel::Lenet5SignMnist);
/// let response = client.eval(7, &spec)?;
/// assert!(matches!(response.body, ResponseBody::Eval(_)));
/// server.shutdown();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    connection_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds the listener and spawns the acceptor and evaluation pool.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding or address resolution.
    pub fn bind(addr: impl ToSocketAddrs, options: ServerOptions) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let workloads = PaperModel::all().map(|model| {
            Arc::new(
                NetworkWorkload::from_spec(&model.spec()).expect("the Table I workloads are valid"),
            )
        });
        let service = EvalService::new(
            RuntimeOptions::default()
                .with_workers(options.workers)
                .with_cache_shards(options.cache_shards),
        );
        let options = ServerOptions {
            queue_capacity: options.queue_capacity.max(1),
            max_line_bytes: options.max_line_bytes.max(1024),
            ..options
        };
        let admission = Admission {
            capacity: options.queue_capacity,
            in_flight: AtomicUsize::new(0),
            shed: Counter::new(),
        };
        let telemetry = ServerTelemetry::new(&options, &admission.shed);
        let shared = Arc::new(Shared {
            service,
            options,
            admission,
            telemetry,
            shutting_down: AtomicBool::new(false),
            connections: Mutex::new(HashMap::new()),
            workloads,
        });
        let connection_threads = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let threads = Arc::clone(&connection_threads);
            std::thread::Builder::new()
                .name("crosslight-server-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared, &threads))
                .expect("spawning the acceptor thread succeeds")
        };
        Ok(Self {
            local_addr,
            shared,
            acceptor: Some(acceptor),
            connection_threads,
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the server and runtime counters.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        self.shared.snapshot()
    }

    /// One merged scrape of the server and runtime metric registries —
    /// the in-process equivalent of the `metrics` wire op.
    #[must_use]
    pub fn metrics_snapshot(&self) -> RegistrySnapshot {
        self.shared.metrics_snapshot()
    }

    /// Stops accepting connections, drains every in-flight request, joins
    /// all connection threads, and shuts the evaluation pool down.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the acceptor: it re-checks the flag per connection, so a
        // throwaway local connection unblocks `accept`.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        // Half-close the read side of every live connection: readers see
        // EOF, stop taking input, and drain their in-flight work.
        {
            let connections = self
                .shared
                .connections
                .lock()
                .expect("connection registry lock poisoned");
            for stream in connections.values() {
                let _ = stream.shutdown(Shutdown::Read);
            }
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut threads = self
                .connection_threads
                .lock()
                .expect("connection thread registry lock poisoned");
            threads.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
        // Dropping the service inside `self.shared` when the last Arc goes
        // away also joins the pool; nothing in-flight remains at this point.
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut next_id: u64 = 0;
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        // Responses are small frames on a request/response cycle; Nagle +
        // delayed ACK would add tens of milliseconds per exchange.
        let _ = stream.set_nodelay(true);
        // Bound how long a write may stall on a client that stopped
        // reading, so the writer (and shutdown behind it) cannot hang.
        let _ = stream.set_write_timeout(Some(shared.options.write_timeout));
        // Reap handles of connections that already finished so a
        // long-running server does not accumulate one dead JoinHandle per
        // historical connection (finished threads are safe to detach).
        threads
            .lock()
            .expect("connection thread registry lock poisoned")
            .retain(|handle| !handle.is_finished());
        let connection_id = next_id;
        next_id += 1;
        shared.telemetry.connections_accepted.inc();
        shared.telemetry.connections_active.add(1);
        if let Ok(read_half) = stream.try_clone() {
            shared
                .connections
                .lock()
                .expect("connection registry lock poisoned")
                .insert(connection_id, read_half);
        }
        let shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name(format!("crosslight-conn-{connection_id}"))
            .spawn(move || {
                handle_connection(connection_id, stream, &shared);
                shared
                    .connections
                    .lock()
                    .expect("connection registry lock poisoned")
                    .remove(&connection_id);
                shared.telemetry.connections_active.sub(1);
                shared.telemetry.connections_drained.inc();
            })
            .expect("spawning a connection thread succeeds");
        threads
            .lock()
            .expect("connection thread registry lock poisoned")
            .push(handle);
    }
}

/// Upper bound on encoded response lines queued per connection before the
/// responder (and then the reader) block — the back-pressure bound that
/// keeps a non-reading client from growing server memory.
const WRITE_QUEUE_LINES: usize = 1024;

/// Outcome of reading one length-limited line.
///
/// Public so other front-ends speaking the same protocol (the cluster
/// router) share one line discipline instead of re-deriving it.
#[derive(Debug)]
pub enum LineRead {
    /// A complete line (without the newline).
    Line(String),
    /// The line exceeded the limit; the rest of it was discarded.
    Oversized,
    /// The line was not valid UTF-8.
    InvalidUtf8,
    /// End of stream.
    Eof,
    /// The socket failed.
    Error,
}

/// Reads one `\n`-terminated line of at most `max_bytes`, discarding the
/// remainder of over-long lines so the stream stays line-synchronized.
pub fn read_line_limited<R: BufRead>(reader: &mut R, max_bytes: usize) -> LineRead {
    let mut buf: Vec<u8> = Vec::new();
    let mut oversized = false;
    loop {
        let (done, used) = {
            let available = match reader.fill_buf() {
                Ok(available) => available,
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return LineRead::Error,
            };
            if available.is_empty() {
                // EOF mid-line counts as EOF: the peer hung up before
                // finishing the frame, so there is nothing to answer.
                return LineRead::Eof;
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(newline) => {
                    if !oversized && buf.len() + newline <= max_bytes {
                        buf.extend_from_slice(&available[..newline]);
                    } else {
                        oversized = true;
                    }
                    (true, newline + 1)
                }
                None => {
                    if !oversized && buf.len() + available.len() <= max_bytes {
                        buf.extend_from_slice(available);
                    } else {
                        oversized = true;
                    }
                    (false, available.len())
                }
            }
        };
        reader.consume(used);
        if done {
            if oversized {
                return LineRead::Oversized;
            }
            return match String::from_utf8(buf) {
                Ok(line) => LineRead::Line(line),
                Err(_) => LineRead::InvalidUtf8,
            };
        }
    }
}

/// One unit of writer work: an encoded response line, plus — for the
/// sampled requests — the trace to finish once the line reaches the socket.
struct Outgoing {
    line: String,
    /// The request's phase timeline and the instant it entered the write
    /// queue; `None` for every untraced response.
    trace: Option<(Box<RequestTrace>, Instant)>,
}

impl Outgoing {
    fn plain(line: String) -> Self {
        Self { line, trace: None }
    }
}

/// Sends one line to the (bounded) writer, keeping the queue-depth gauge
/// in step.  Returns `false` when the writer is gone — i.e. the connection
/// is dead and the caller should stop.
fn enqueue_line(telemetry: &ServerTelemetry, lines: &SyncSender<Outgoing>, out: Outgoing) -> bool {
    telemetry.write_queue_depth.add(1);
    if lines.send(out).is_ok() {
        true
    } else {
        telemetry.write_queue_depth.sub(1);
        false
    }
}

fn handle_connection(connection_id: u64, stream: TcpStream, shared: &Arc<Shared>) {
    let write_half = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };

    // One cancel token per connection: when the writer tears down because
    // the socket died (not on a clean drain), queued evaluations whose
    // responses could never be delivered are skipped instead of computed.
    let cancel = CancelToken::new();

    // Writer: owns the socket write half; exits when every Sender is gone.
    // The channel is bounded so a client that stops reading back-pressures
    // the responder/reader instead of buffering responses without limit.
    let (line_tx, line_rx) = mpsc::sync_channel::<Outgoing>(WRITE_QUEUE_LINES);
    let writer = {
        let shared = Arc::clone(shared);
        let cancel = cancel.clone();
        std::thread::Builder::new()
            .name(format!("crosslight-conn-{connection_id}-write"))
            .spawn(move || write_loop(write_half, &line_rx, &shared.telemetry, &cancel))
            .expect("spawning a connection writer succeeds")
    };

    // Responder: turns pool completions into response lines and releases
    // admission permits; exits when the reader and all in-flight jobs have
    // dropped their Senders.
    let (done_tx, done_rx) =
        mpsc::channel::<(u64, Result<EvalResponse, crosslight_runtime::RuntimeError>)>();
    let responder = {
        let shared = Arc::clone(shared);
        let line_tx = line_tx.clone();
        std::thread::Builder::new()
            .name(format!("crosslight-conn-{connection_id}-respond"))
            .spawn(move || respond_loop(&shared, &done_rx, &line_tx))
            .expect("spawning a connection responder succeeds")
    };

    read_loop(shared, &stream, &line_tx, &done_tx, &cancel);

    // EOF (or shutdown): drop our channel ends so responder and writer
    // drain and exit once in-flight work completes — the graceful part of
    // the drain.
    drop(done_tx);
    drop(line_tx);
    let _ = responder.join();
    let _ = writer.join();
    let _ = stream.shutdown(Shutdown::Both);
}

fn write_loop(
    stream: TcpStream,
    lines: &Receiver<Outgoing>,
    telemetry: &ServerTelemetry,
    cancel: &CancelToken,
) {
    let mut writer = BufWriter::new(stream);
    if !pump_lines(&mut writer, lines, telemetry) {
        // The socket failed (or timed out on a non-reading client): no
        // response can ever be delivered again, so queued evaluations for
        // this connection are pure waste — cancel them.  A clean drain
        // (channel closed after EOF) must NOT cancel: in-flight work is
        // still answered through the socket, which is alive.
        cancel.cancel();
    }
    // Whether the channel closed normally or the socket write failed, tear
    // the whole connection down: this unblocks the reader immediately, so
    // the server cannot keep admitting and evaluating requests whose
    // responses can never be delivered.
    let _ = writer.get_ref().shutdown(Shutdown::Both);
}

/// Returns `true` when the channel drained normally, `false` on socket
/// failure.
fn pump_lines(
    writer: &mut BufWriter<TcpStream>,
    lines: &Receiver<Outgoing>,
    telemetry: &ServerTelemetry,
) -> bool {
    // Traces whose lines are buffered but not yet flushed; their `write`
    // phase ends at the flush that actually puts them on the wire.
    let mut pending: Vec<(Box<RequestTrace>, Instant)> = Vec::new();
    while let Ok(out) = lines.recv() {
        if !write_one(writer, out, telemetry, &mut pending) {
            return false;
        }
        // Batch whatever is already queued before paying for a flush.
        while let Ok(more) = lines.try_recv() {
            if !write_one(writer, more, telemetry, &mut pending) {
                return false;
            }
        }
        if writer.flush().is_err() {
            return false;
        }
        if !pending.is_empty() {
            let flushed = Instant::now();
            for (mut trace, write_start) in pending.drain(..) {
                trace.record(Phase::Write, write_start, flushed);
                telemetry.finish_trace(&trace);
            }
        }
    }
    true
}

/// Writes one queued line into the buffered writer, timing the traced
/// ones.  Returns `false` on socket failure (the trace of a failed write
/// is dropped — error paths are not part of the latency story).
fn write_one(
    writer: &mut BufWriter<TcpStream>,
    out: Outgoing,
    telemetry: &ServerTelemetry,
    pending: &mut Vec<(Box<RequestTrace>, Instant)>,
) -> bool {
    telemetry.write_queue_depth.sub(1);
    let trace = out.trace.map(|(mut trace, enqueued)| {
        let write_start = Instant::now();
        trace.record(Phase::WriteQueue, enqueued, write_start);
        (trace, write_start)
    });
    if writer.write_all(out.line.as_bytes()).is_err() || writer.write_all(b"\n").is_err() {
        return false;
    }
    telemetry.bytes_written.add(out.line.len() as u64 + 1);
    if let Some(traced) = trace {
        pending.push(traced);
    }
    true
}

fn respond_loop(
    shared: &Shared,
    completions: &Receiver<(u64, Result<EvalResponse, crosslight_runtime::RuntimeError>)>,
    lines: &SyncSender<Outgoing>,
) {
    while let Ok((tag, outcome)) = completions.recv() {
        let mut trace: Option<Box<RequestTrace>> = None;
        let response = match outcome {
            // A cancelled job means this connection's writer already died:
            // there is nowhere to send a response, so just release the
            // permit and account for the skip.  Not an eval failure — the
            // request was never evaluated.
            Err(RuntimeError::Cancelled) => {
                shared.telemetry.evals_cancelled.inc();
                shared.admission.release();
                continue;
            }
            Ok(mut eval) => {
                shared.telemetry.evals_ok.inc();
                trace = eval.trace.take();
                Response {
                    id: Some(tag),
                    body: ResponseBody::Eval(EvalFrame {
                        report: eval.report,
                        cache_hit: eval.cache_hit,
                        worker: eval.worker as u64,
                    }),
                }
            }
            Err(err) => {
                // The runtime reports failures without the response object,
                // so a failed eval's trace ends here — error paths are not
                // part of the latency story.
                shared.telemetry.evals_failed.inc();
                Response::error(
                    Some(tag),
                    ErrorFrame::new(ErrorKind::Evaluation, err.to_string()),
                )
            }
        };
        let serialize_start = trace.as_ref().map(|_| Instant::now());
        let line = wire::encode_response(&response);
        let out = match (trace, serialize_start) {
            (Some(mut trace), Some(start)) => {
                trace.record_since(Phase::Serialize, start);
                Outgoing {
                    line,
                    trace: Some((trace, Instant::now())),
                }
            }
            _ => Outgoing::plain(line),
        };
        // Hand the line to the (bounded) writer before releasing the
        // admission permit: a non-reading client therefore caps both the
        // write queue and the number of evals in flight.
        let _ = enqueue_line(&shared.telemetry, lines, out);
        shared.admission.release();
    }
}

fn read_loop(
    shared: &Arc<Shared>,
    stream: &TcpStream,
    lines: &SyncSender<Outgoing>,
    completions: &Sender<(u64, Result<EvalResponse, crosslight_runtime::RuntimeError>)>,
    cancel: &CancelToken,
) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let max_bytes = shared.options.max_line_bytes;
    let telemetry = &shared.telemetry;
    let mut restore = RestoreSession::Idle;
    loop {
        // Decide up front whether this request is traced: an untraced
        // request must never read the clock, so the sampling decision has
        // to precede the `read` phase it would time.
        let read_start = if telemetry.sampler.sample() {
            Some(Instant::now())
        } else {
            None
        };
        let line = match read_line_limited(&mut reader, max_bytes) {
            LineRead::Line(line) => line,
            LineRead::Oversized => {
                telemetry.requests_total.inc();
                telemetry.oversized_total.inc();
                let frame = ErrorFrame::new(
                    ErrorKind::Oversized,
                    format!("line exceeds {max_bytes} bytes"),
                );
                let out = Outgoing::plain(wire::encode_response(&Response::error(None, frame)));
                if !enqueue_line(telemetry, lines, out) {
                    // The writer is gone; the connection is dead.
                    return;
                }
                continue;
            }
            LineRead::InvalidUtf8 => {
                telemetry.requests_total.inc();
                telemetry.malformed_total.inc();
                let frame = ErrorFrame::new(ErrorKind::Malformed, "line is not valid UTF-8");
                let out = Outgoing::plain(wire::encode_response(&Response::error(None, frame)));
                if !enqueue_line(telemetry, lines, out) {
                    // The writer is gone; the connection is dead.
                    return;
                }
                continue;
            }
            LineRead::Eof | LineRead::Error => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        // The `read` phase ends when the whole line is in memory; decoding
        // starts here.  The boundary instant serves as both span edges.
        let read_end = read_start.map(|_| Instant::now());
        telemetry.bytes_read.add(line.len() as u64 + 1);
        telemetry.requests_total.inc();
        let request = match wire::decode_request(&line) {
            Ok(request) => request,
            Err(frame) => {
                telemetry.malformed_total.inc();
                let id = wire::peek_id(&line);
                let out = Outgoing::plain(wire::encode_response(&Response::error(id, frame)));
                if !enqueue_line(telemetry, lines, out) {
                    // The writer is gone; the connection is dead.
                    return;
                }
                continue;
            }
        };
        match request.body {
            RequestBody::Ping => {
                let out = Outgoing::plain(wire::encode_response(&Response {
                    id: Some(request.id),
                    body: ResponseBody::Pong,
                }));
                if !enqueue_line(telemetry, lines, out) {
                    // The writer is gone; the connection is dead.
                    return;
                }
            }
            RequestBody::Stats => {
                let stats = shared.snapshot();
                let out = Outgoing::plain(wire::encode_response(&Response {
                    id: Some(request.id),
                    body: ResponseBody::Stats(StatsFrame {
                        server: stats.server,
                        runtime: WireRuntimeStats::from(&stats.runtime),
                    }),
                }));
                if !enqueue_line(telemetry, lines, out) {
                    // The writer is gone; the connection is dead.
                    return;
                }
            }
            RequestBody::Metrics { format } => {
                let frame = match format {
                    MetricsFormat::Json => MetricsFrame::Snapshot(WireMetricsSnapshot::from(
                        &shared.metrics_snapshot(),
                    )),
                    MetricsFormat::Text => {
                        MetricsFrame::Text(render_text(&shared.metrics_snapshot()))
                    }
                    MetricsFormat::Spans => {
                        // Draining hands each exported timeline to exactly
                        // one scraper; server and runtime rings append into
                        // one page.
                        let mut spans = telemetry.spans.drain();
                        spans.extend(shared.service.span_ring().drain());
                        MetricsFrame::Spans(spans)
                    }
                };
                let out = Outgoing::plain(wire::encode_response(&Response {
                    id: Some(request.id),
                    body: ResponseBody::Metrics(frame),
                }));
                if !enqueue_line(telemetry, lines, out) {
                    // The writer is gone; the connection is dead.
                    return;
                }
            }
            RequestBody::Snapshot => {
                telemetry.snapshots_total.inc();
                let entries = shared.collect_snapshot();
                telemetry.snapshot_entries_total.add(entries.len() as u64);
                let total = entries.len() as u64;
                let checksum = wire::snapshot_checksum(&entries);
                // Keep every encoded chunk line comfortably under the peer's
                // line limit: the entries array gets 3/4 of our own budget,
                // leaving headroom for the response envelope.
                let budget = (max_bytes.saturating_mul(3) / 4).max(1);
                let chunks = wire::chunk_snapshot_entries(entries, budget);
                let chunk_count = chunks.len() as u64;
                for chunk in chunks {
                    let out = Outgoing::plain(wire::encode_response(&Response {
                        id: Some(request.id),
                        body: ResponseBody::Snapshot(chunk),
                    }));
                    if !enqueue_line(telemetry, lines, out) {
                        // The writer is gone; the connection is dead.
                        return;
                    }
                }
                let out = Outgoing::plain(wire::encode_response(&Response {
                    id: Some(request.id),
                    body: ResponseBody::SnapshotEnd(SnapshotEnd {
                        chunks: chunk_count,
                        entries: total,
                        checksum,
                    }),
                }));
                if !enqueue_line(telemetry, lines, out) {
                    // The writer is gone; the connection is dead.
                    return;
                }
            }
            RequestBody::Restore(chunk) => {
                // Chunks are acknowledged only by the terminal frame; see
                // `RestoreSession`.  Sequence 0 always starts a fresh
                // stream, so a client can retry on a surviving connection.
                if chunk.seq == 0 {
                    restore = RestoreSession::Active {
                        next_seq: 1,
                        entries: chunk.entries,
                    };
                } else {
                    match &mut restore {
                        RestoreSession::Active { next_seq, entries } if chunk.seq == *next_seq => {
                            *next_seq += 1;
                            entries.extend(chunk.entries);
                        }
                        RestoreSession::Poisoned { .. } => {}
                        RestoreSession::Active { next_seq, .. } => {
                            let frame = ErrorFrame::new(
                                ErrorKind::Malformed,
                                format!(
                                    "restore chunk out of sequence: expected {next_seq}, \
                                     got {}",
                                    chunk.seq
                                ),
                            );
                            restore = RestoreSession::Poisoned { frame };
                        }
                        RestoreSession::Idle => {
                            let frame = ErrorFrame::new(
                                ErrorKind::Malformed,
                                format!("restore stream must start at chunk 0, got {}", chunk.seq),
                            );
                            restore = RestoreSession::Poisoned { frame };
                        }
                    }
                }
            }
            RequestBody::RestoreEnd(end) => {
                let session = std::mem::replace(&mut restore, RestoreSession::Idle);
                // An empty stream (0 chunks) is a legal snapshot of an
                // empty cache, so Idle folds into an empty Active session.
                let response = match session {
                    RestoreSession::Poisoned { frame } => {
                        telemetry.restore_failed_total.inc();
                        Response::error(Some(request.id), frame)
                    }
                    RestoreSession::Idle => match shared.apply_restore(Vec::new(), 0, &end) {
                        Ok(frame) => {
                            telemetry.restores_total.inc();
                            Response {
                                id: Some(request.id),
                                body: ResponseBody::Restored(frame),
                            }
                        }
                        Err(frame) => {
                            telemetry.restore_failed_total.inc();
                            Response::error(Some(request.id), frame)
                        }
                    },
                    RestoreSession::Active { next_seq, entries } => {
                        let received = entries.len() as u64;
                        match shared.apply_restore(entries, next_seq, &end) {
                            Ok(frame) => {
                                telemetry.restores_total.inc();
                                telemetry.restore_entries_total.add(received);
                                Response {
                                    id: Some(request.id),
                                    body: ResponseBody::Restored(frame),
                                }
                            }
                            Err(frame) => {
                                telemetry.restore_failed_total.inc();
                                Response::error(Some(request.id), frame)
                            }
                        }
                    }
                };
                let out = Outgoing::plain(wire::encode_response(&response));
                if !enqueue_line(telemetry, lines, out) {
                    // The writer is gone; the connection is dead.
                    return;
                }
            }
            RequestBody::Eval(spec) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    let frame = ErrorFrame::new(ErrorKind::ShuttingDown, "server is draining");
                    let out = Outgoing::plain(wire::encode_response(&Response::error(
                        Some(request.id),
                        frame,
                    )));
                    if !enqueue_line(telemetry, lines, out) {
                        // The writer is gone; the connection is dead.
                        return;
                    }
                    continue;
                }
                let eval_request = match spec.to_eval_request(request.id, &shared.workloads) {
                    Ok(eval_request) => eval_request,
                    Err(frame) => {
                        telemetry.evals_failed.inc();
                        let out = Outgoing::plain(wire::encode_response(&Response::error(
                            Some(request.id),
                            frame,
                        )));
                        if !enqueue_line(telemetry, lines, out) {
                            // The writer is gone; the connection is dead.
                            return;
                        }
                        continue;
                    }
                };
                // Only successfully decoded evals grow into full traces;
                // `decode` covers frame parsing plus spec resolution.
                let mut trace = match (read_start, read_end) {
                    (Some(start), Some(end)) => {
                        let mut trace = Box::new(RequestTrace::with_origin(request.id, start));
                        trace.record(Phase::Read, start, end);
                        trace.record_since(Phase::Decode, end);
                        Some(trace)
                    }
                    _ => None,
                };
                let admission_start = trace.as_ref().map(|_| Instant::now());
                if !shared.admission.try_acquire() {
                    let frame = ErrorFrame::new(
                        ErrorKind::Overloaded,
                        format!(
                            "admission queue full (capacity {})",
                            shared.admission.capacity
                        ),
                    );
                    let out = Outgoing::plain(wire::encode_response(&Response::error(
                        Some(request.id),
                        frame,
                    )));
                    if !enqueue_line(telemetry, lines, out) {
                        // The writer is gone; the connection is dead.
                        return;
                    }
                    continue;
                }
                if let (Some(trace), Some(start)) = (trace.as_mut(), admission_start) {
                    trace.record_since(Phase::Admission, start);
                }
                let submitted = match trace {
                    Some(trace) => {
                        telemetry.traces_sampled.inc();
                        shared.service.submit_traced_cancellable(
                            request.id,
                            eval_request,
                            completions,
                            trace,
                            cancel.clone(),
                        )
                    }
                    None => shared.service.submit_cancellable(
                        request.id,
                        eval_request,
                        completions,
                        cancel.clone(),
                    ),
                };
                if let Err(err) = submitted {
                    shared.admission.release();
                    telemetry.evals_failed.inc();
                    let frame = ErrorFrame::new(ErrorKind::Evaluation, err.to_string());
                    let out = Outgoing::plain(wire::encode_response(&Response::error(
                        Some(request.id),
                        frame,
                    )));
                    if !enqueue_line(telemetry, lines, out) {
                        // The writer is gone; the connection is dead.
                        return;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn limited_line_reader_handles_lines_oversize_and_eof() {
        let data = b"short\n".to_vec();
        let mut reader = Cursor::new(data);
        assert!(matches!(
            read_line_limited(&mut reader, 1024),
            LineRead::Line(line) if line == "short"
        ));
        assert!(matches!(
            read_line_limited(&mut reader, 1024),
            LineRead::Eof
        ));

        let long = "x".repeat(5000) + "\nnext\n";
        let mut reader = Cursor::new(long.into_bytes());
        assert!(matches!(
            read_line_limited(&mut reader, 1024),
            LineRead::Oversized
        ));
        // The over-long line was discarded; the stream is still synchronized.
        assert!(matches!(
            read_line_limited(&mut reader, 1024),
            LineRead::Line(line) if line == "next"
        ));

        // A line of exactly the limit passes.
        let exact = "y".repeat(8) + "\n";
        let mut reader = Cursor::new(exact.into_bytes());
        assert!(matches!(
            read_line_limited(&mut reader, 8),
            LineRead::Line(line) if line.len() == 8
        ));

        // EOF mid-line is EOF, not a frame.
        let mut reader = Cursor::new(b"unterminated".to_vec());
        assert!(matches!(
            read_line_limited(&mut reader, 1024),
            LineRead::Eof
        ));

        // Invalid UTF-8 is its own outcome (answered as `malformed`, not
        // `oversized`), and the stream stays synchronized past it.
        let mut reader = Cursor::new(b"bad \xff byte\nnext\n".to_vec());
        assert!(matches!(
            read_line_limited(&mut reader, 1024),
            LineRead::InvalidUtf8
        ));
        assert!(matches!(
            read_line_limited(&mut reader, 1024),
            LineRead::Line(line) if line == "next"
        ));
    }

    #[test]
    fn admission_counts_sheds_and_releases() {
        let admission = Admission {
            capacity: 2,
            in_flight: AtomicUsize::new(0),
            shed: Counter::new(),
        };
        assert!(admission.try_acquire());
        assert!(admission.try_acquire());
        assert!(!admission.try_acquire());
        assert!(!admission.try_acquire());
        assert_eq!(admission.shed.get(), 2);
        admission.release();
        assert!(admission.try_acquire());
        assert_eq!(admission.in_flight.load(Ordering::Relaxed), 2);
    }
}
