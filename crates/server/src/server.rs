//! The TCP front-end: a poll-based reactor with cross-connection
//! micro-batching.
//!
//! # Thread model
//!
//! One **acceptor** thread owns the [`TcpListener`] and hands accepted
//! sockets, round-robin, to a fixed pool of **event-loop** threads
//! (`event_loops`, independent of the connection count).  Each loop
//! multiplexes its connections over nonblocking sockets with `poll(2)`
//! (via the offline `libc` compat shim — see [`crate::poller`]), running a
//! per-connection state machine: an incremental length-limited line
//! scanner on the read side and a bounded queue of encoded response lines
//! on the write side.  `ping`/`stats`/error frames are answered inline by
//! the loop; admitted `eval` frames flow to one **micro-batcher** thread
//! that coalesces evals *across connections* into
//! [`EvalService::submit_detached_batch`] windows (flushing at `batch_max`
//! frames, after `batch_window`, or as soon as every admitted eval in the
//! server is already in the batch — whichever comes first, so an
//! unsaturated server adds no latency).  One **responder** thread receives
//! tagged completions from the pool, encodes them, requeues them on their
//! owning connection, and releases admission permits.  Thread count is
//! therefore `4 + event_loops + workers` regardless of how many thousand
//! connections are open.
//!
//! # Load shedding
//!
//! Admission is a server-wide counting semaphore of `queue_capacity`
//! permits.  An `eval` frame that cannot take a permit is answered
//! *immediately* with an `overloaded` error — the connection never blocks
//! on evaluation and the server never buffers unbounded work.  Non-eval
//! ops (`ping`, `stats`) bypass admission so health checks still work
//! under overload.  The per-connection write queue is *bounded* too: a
//! client that stops reading its responses has its read interest dropped
//! once the queue fills (back-pressure instead of buffering), and a socket
//! that stays unwritable past `write_timeout` tears the connection down —
//! so a non-reading client can neither grow server memory without bound
//! nor wedge shutdown.  Queued lines dropped by such a teardown are
//! subtracted from the queue-depth gauge and counted in
//! `server_write_dropped_total`, so the gauge always returns to zero.
//!
//! # Graceful drain
//!
//! [`Server::shutdown`] stops the acceptor and half-closes every live
//! connection's read side: the loops see EOF and stop accepting input,
//! in-flight evaluations complete, the responder drains every completion,
//! the loops flush and close each connection once nothing is in flight,
//! and only then does the underlying [`EvalService`] shut down.  No
//! admitted request is ever dropped.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::{BufRead, IoSlice, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crosslight_neural::workload::NetworkWorkload;
use crosslight_neural::zoo::PaperModel;
use crosslight_runtime::cache::CacheKey;
use crosslight_runtime::pool::{BatchItem, CancelToken, EvalService, RuntimeOptions, RuntimeStats};
use crosslight_runtime::request::{EvalRequest, EvalResponse};
use crosslight_runtime::RuntimeError;
use crosslight_telemetry::{
    render_text, Counter, Gauge, Histogram, Phase, Registry, RegistrySnapshot, RequestTrace,
    SpanRing, TraceSampler,
};

use crate::poller::{fd_of, wake_pair, LineScanner, PollSet, ScanEvent, WakeReceiver, Waker};
use crate::wire::{
    self, ErrorFrame, ErrorKind, EvalFrame, MetricsFormat, MetricsFrame, RequestBody, Response,
    ResponseBody, SnapshotEnd, SnapshotEntry, StatsFrame, WireMetricsSnapshot, WireRuntimeStats,
    WireServerStats, DEFAULT_MAX_LINE_BYTES,
};

/// Tuning knobs of the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerOptions {
    /// Worker threads of the underlying [`EvalService`].
    pub workers: usize,
    /// Cache shards of the underlying [`EvalService`].
    pub cache_shards: usize,
    /// Maximum evals admitted concurrently; everything beyond is shed with
    /// an `overloaded` error frame (clamped to at least 1).
    pub queue_capacity: usize,
    /// Maximum accepted line length in bytes (clamped to at least 1 KiB).
    pub max_line_bytes: usize,
    /// How long a socket write may stall before the connection is torn
    /// down — the bound that keeps a non-reading client from pinning its
    /// write queue (and therefore shutdown) forever.
    pub write_timeout: Duration,
    /// Trace one eval request in every `trace_sample_every` per connection
    /// through the full phase pipeline (read → decode → admission → queue →
    /// cache lookup → prepare → evaluate → serialize → write queue → write).
    /// `0` disables tracing entirely; `1` (the default) traces everything.
    pub trace_sample_every: u64,
    /// Event-loop threads multiplexing the connections (clamped to at
    /// least 1).  Connection count is unrelated: each loop polls all of
    /// its sockets, so thousands of connections share a handful of
    /// threads.
    pub event_loops: usize,
    /// Most admitted evals coalesced into one pool submission (clamped to
    /// at least 1).  `1` disables micro-batching.
    pub batch_max: usize,
    /// Longest an admitted eval may wait for company before its batch is
    /// flushed anyway.  The batcher also flushes early the moment every
    /// admitted eval in the server is already in the batch, so a single
    /// un-pipelined client never waits this long.
    pub batch_window: Duration,
}

impl ServerOptions {
    /// Returns a copy with a different evaluation worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Returns a copy with a different admission-queue capacity.
    #[must_use]
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity;
        self
    }

    /// Returns a copy with a different maximum line length.
    #[must_use]
    pub fn with_max_line_bytes(mut self, max_line_bytes: usize) -> Self {
        self.max_line_bytes = max_line_bytes;
        self
    }

    /// Returns a copy with a different write-stall bound.
    #[must_use]
    pub fn with_write_timeout(mut self, write_timeout: Duration) -> Self {
        self.write_timeout = write_timeout;
        self
    }

    /// Returns a copy with a different phase-trace sampling period
    /// (`0` = off, `1` = every request, `n` = one in `n`).
    #[must_use]
    pub fn with_trace_sampling(mut self, trace_sample_every: u64) -> Self {
        self.trace_sample_every = trace_sample_every;
        self
    }

    /// Returns a copy with a different event-loop thread count.
    #[must_use]
    pub fn with_event_loops(mut self, event_loops: usize) -> Self {
        self.event_loops = event_loops;
        self
    }

    /// Returns a copy with a different micro-batch size cap
    /// (`1` disables micro-batching).
    #[must_use]
    pub fn with_batch_max(mut self, batch_max: usize) -> Self {
        self.batch_max = batch_max;
        self
    }

    /// Returns a copy with a different micro-batch coalescing window.
    #[must_use]
    pub fn with_batch_window(mut self, batch_window: Duration) -> Self {
        self.batch_window = batch_window;
        self
    }
}

impl Default for ServerOptions {
    /// Default runtime options, 256 admitted evals, 64 KiB lines, 30 s
    /// write-stall bound, every request traced, half the cores (at most 4)
    /// as event loops, micro-batches of up to 64 evals coalesced for at
    /// most 100 µs.
    fn default() -> Self {
        let runtime = RuntimeOptions::default();
        let event_loops =
            std::thread::available_parallelism().map_or(1, |cores| (cores.get() / 2).clamp(1, 4));
        Self {
            workers: runtime.workers,
            cache_shards: runtime.cache_shards,
            queue_capacity: 256,
            max_line_bytes: DEFAULT_MAX_LINE_BYTES,
            write_timeout: Duration::from_secs(30),
            trace_sample_every: 1,
            event_loops,
            batch_max: 64,
            batch_window: Duration::from_micros(100),
        }
    }
}

/// Point-in-time snapshot of the server and its evaluation pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerStats {
    /// Front-end counters (connections, sheds, malformed frames, …).
    pub server: WireServerStats,
    /// Evaluation-pool counters.
    pub runtime: RuntimeStats,
}

#[derive(Debug)]
struct Admission {
    capacity: usize,
    in_flight: AtomicUsize,
    /// Registered with the server registry as `server_shed_total`.
    shed: Counter,
}

impl Admission {
    fn try_acquire(&self) -> bool {
        let mut current = self.in_flight.load(Ordering::Relaxed);
        loop {
            if current >= self.capacity {
                self.shed.inc();
                return false;
            }
            match self.in_flight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => current = actual,
            }
        }
    }

    fn release(&self) {
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// The front-end's metric handles, registered once at bind time under the
/// `server_` name prefix.  The runtime registers its own families under
/// `runtime_`, so [`Shared::metrics_snapshot`] can merge the two registries
/// into one scrape without collisions.
#[derive(Debug)]
struct ServerTelemetry {
    registry: Registry,
    requests_total: Counter,
    evals_ok: Counter,
    evals_failed: Counter,
    /// Admitted evals skipped because their connection died first.
    evals_cancelled: Counter,
    malformed_total: Counter,
    oversized_total: Counter,
    connections_accepted: Counter,
    connections_active: Gauge,
    connections_drained: Counter,
    bytes_read: Counter,
    bytes_written: Counter,
    /// Encoded response lines sitting in per-connection write queues.
    write_queue_depth: Gauge,
    /// Encoded response lines dropped because their connection tore down
    /// before they reached the socket.  Every drop is matched by a
    /// `write_queue_depth` decrement for lines that were queued, so the
    /// gauge returns to zero after every teardown.
    write_dropped: Counter,
    /// Micro-batches of admitted evals flushed to the evaluation pool.
    batches_total: Counter,
    /// Admitted evals per flushed micro-batch.
    batch_size: Histogram,
    /// Scrape-time mirrors of the admission semaphore.
    admission_in_flight: Gauge,
    admission_capacity: Gauge,
    /// Per-phase latency histograms, indexed by [`Phase::index`].
    phase_ns: Vec<Histogram>,
    /// End-to-end latency of traced requests: decode start (the first
    /// phase whose cost the server controls — `read` waits on the client)
    /// to the post-flush instant of the response write.
    request_ns: Histogram,
    traces_sampled: Counter,
    /// Snapshot streams served (one per `snapshot` op).
    snapshots_total: Counter,
    /// Cache entries exported across all served snapshots.
    snapshot_entries_total: Counter,
    /// Restore streams validated and applied.
    restores_total: Counter,
    /// Cache entries received in validated restore streams.
    restore_entries_total: Counter,
    /// Restore streams rejected (truncated, out of sequence, corrupt, or
    /// carrying invalid entries).
    restore_failed_total: Counter,
    /// Scrape-time mirror of the span ring's drop count.
    spans_dropped: Counter,
    sampler: TraceSampler,
    spans: SpanRing,
}

impl ServerTelemetry {
    fn new(options: &ServerOptions, shed: &Counter) -> Self {
        let registry = Registry::new();
        registry
            .register_counter(
                "server_shed_total",
                "Eval requests refused by admission control.",
                &[],
                shed,
            )
            .expect("the server metric vocabulary has no duplicates");
        let telemetry = Self {
            requests_total: registry.counter(
                "server_requests_total",
                "Request frames received, including malformed and shed ones.",
            ),
            evals_ok: registry.counter(
                "server_evals_ok_total",
                "Eval requests answered with a report.",
            ),
            evals_failed: registry.counter(
                "server_evals_failed_total",
                "Eval requests answered with an error frame.",
            ),
            evals_cancelled: registry.counter(
                "server_evals_cancelled_total",
                "Admitted evals skipped because their connection died before \
                 a worker picked them up.",
            ),
            malformed_total: registry.counter(
                "server_malformed_total",
                "Lines rejected as invalid JSON, UTF-8, or protocol frames.",
            ),
            oversized_total: registry.counter(
                "server_oversized_total",
                "Lines rejected for exceeding the configured length limit.",
            ),
            connections_accepted: registry.counter(
                "server_connections_accepted_total",
                "TCP connections accepted since startup.",
            ),
            connections_active: registry
                .gauge("server_connections_active", "Currently open connections."),
            connections_drained: registry.counter(
                "server_connections_drained_total",
                "Connections that finished and were fully drained.",
            ),
            bytes_read: registry.counter(
                "server_bytes_read_total",
                "Bytes of accepted request lines, including newlines.",
            ),
            bytes_written: registry.counter(
                "server_bytes_written_total",
                "Bytes of response lines written, including newlines.",
            ),
            write_queue_depth: registry.gauge(
                "server_write_queue_depth",
                "Encoded response lines waiting in per-connection write queues.",
            ),
            write_dropped: registry.counter(
                "server_write_dropped_total",
                "Response lines dropped because their connection tore down \
                 before they reached the socket.",
            ),
            batches_total: registry.counter(
                "server_batches_total",
                "Micro-batches of admitted evals flushed to the evaluation pool.",
            ),
            batch_size: registry.histogram(
                "server_batch_size",
                "Admitted evals per flushed micro-batch.",
            ),
            admission_in_flight: registry.gauge(
                "server_admission_in_flight",
                "Admission permits currently held by in-flight evals.",
            ),
            admission_capacity: registry.gauge(
                "server_admission_capacity",
                "Total admission permits (the queue_capacity option).",
            ),
            phase_ns: Phase::ALL
                .iter()
                .map(|phase| {
                    registry.histogram_with(
                        "server_phase_ns",
                        "Per-phase latency of traced requests, in nanoseconds.",
                        &[("phase", phase.as_str())],
                    )
                })
                .collect(),
            request_ns: registry.histogram(
                "server_request_ns",
                "End-to-end latency of traced requests (decode start to \
                 response flush), in nanoseconds.",
            ),
            traces_sampled: registry.counter(
                "server_traces_sampled_total",
                "Requests that carried a phase trace.",
            ),
            snapshots_total: registry.counter(
                "server_snapshots_total",
                "Warm-state snapshot streams served.",
            ),
            snapshot_entries_total: registry.counter(
                "server_snapshot_entries_total",
                "Cache entries exported across all served snapshots.",
            ),
            restores_total: registry.counter(
                "server_restores_total",
                "Warm-state restore streams validated and applied.",
            ),
            restore_entries_total: registry.counter(
                "server_restore_entries_total",
                "Cache entries received in validated restore streams.",
            ),
            restore_failed_total: registry.counter(
                "server_restore_failed_total",
                "Restore streams rejected as truncated, corrupt, or invalid.",
            ),
            spans_dropped: registry.counter(
                "server_trace_spans_dropped_total",
                "Trace timelines evicted from the span ring before export.",
            ),
            sampler: TraceSampler::new(options.trace_sample_every),
            spans: SpanRing::default(),
            registry,
        };
        telemetry
            .admission_capacity
            .set(options.queue_capacity.max(1) as i64);
        telemetry
    }

    /// Folds a completed per-request timeline into the phase and
    /// end-to-end histograms and queues its JSON line for span export.
    fn finish_trace(&self, trace: &RequestTrace) {
        for phase in Phase::ALL {
            if let Some(ns) = trace.phase_ns(phase) {
                self.phase_ns[phase.index()].record(ns);
            }
        }
        if let Some(start) = trace.first_start_ns(Phase::Decode) {
            self.request_ns
                .record(trace.latest_end_ns().saturating_sub(start));
        }
        self.spans.push(trace.to_json_line());
    }
}

/// A completion handed from the evaluation pool (or the batcher's failure
/// paths) to the responder, keyed by the server-wide submission tag.
type Completion = (u64, Result<EvalResponse, RuntimeError>);

/// Where a completion's response line must go: the owning connection and
/// the client's own request id to echo (tags are server-wide and never
/// leak onto the wire).
#[derive(Debug)]
struct PendingEval {
    conn: Arc<ConnShared>,
    client_id: u64,
}

#[derive(Debug)]
struct Shared {
    service: EvalService,
    options: ServerOptions,
    admission: Admission,
    telemetry: ServerTelemetry,
    shutting_down: AtomicBool,
    /// Tag allocator for in-flight evals across all connections.
    next_tag: AtomicU64,
    /// Admitted evals sent toward the micro-batcher but not yet drained
    /// into a batch — the batcher's "anybody else coming?" signal.
    unbatched: AtomicUsize,
    /// In-flight evals: tag → owning connection, for the responder.
    pending: Mutex<HashMap<u64, PendingEval>>,
    /// Prebuilt Table I workloads, indexed as [`PaperModel::all`].
    workloads: [Arc<NetworkWorkload>; 4],
}

impl Shared {
    fn snapshot(&self) -> ServerStats {
        let telemetry = &self.telemetry;
        // Read outcome counters before their causes: each outcome counter
        // increments strictly after the `requests_total` increment of the
        // same request, so reading outcomes first and the total last keeps
        // `requests_total >= evals_ok + evals_failed + shed + malformed +
        // oversized` true in every live snapshot (the same discipline the
        // runtime uses for `submitted >= completed`).
        let evals_ok = telemetry.evals_ok.get();
        let evals_failed = telemetry.evals_failed.get();
        let shed_total = self.admission.shed.get();
        let malformed_total = telemetry.malformed_total.get();
        let oversized_total = telemetry.oversized_total.get();
        let requests_total = telemetry.requests_total.get();
        ServerStats {
            server: WireServerStats {
                connections_accepted: telemetry.connections_accepted.get(),
                connections_active: telemetry.connections_active.get().max(0) as u64,
                requests_total,
                evals_ok,
                evals_failed,
                shed_total,
                malformed_total,
                oversized_total,
                queue_capacity: self.admission.capacity as u64,
                in_flight: self.admission.in_flight.load(Ordering::Relaxed) as u64,
            },
            runtime: self.service.stats(),
        }
    }

    /// One merged scrape of the server and runtime registries, with the
    /// scrape-time mirror gauges synchronized first.
    fn metrics_snapshot(&self) -> RegistrySnapshot {
        let telemetry = &self.telemetry;
        telemetry
            .admission_in_flight
            .set(self.admission.in_flight.load(Ordering::Acquire) as i64);
        telemetry.spans_dropped.store(telemetry.spans.dropped());
        RegistrySnapshot::merged(vec![
            telemetry.registry.snapshot(),
            self.service.telemetry_snapshot(),
        ])
        .expect("the server_ and runtime_ metric prefixes are disjoint")
    }

    /// Exports both warm caches as one deterministic snapshot stream:
    /// result-cache entries first (sorted by key), then model-cache
    /// entries — the same order every replica produces for the same
    /// contents, so the terminal checksum is comparable across servers.
    fn collect_snapshot(&self) -> Vec<SnapshotEntry> {
        let mut entries: Vec<SnapshotEntry> = self
            .service
            .result_cache()
            .export()
            .into_iter()
            .map(|(key, report)| SnapshotEntry::Result {
                arch: *key.arch_key(),
                workload: (**key.workload()).clone(),
                report,
            })
            .collect();
        entries.extend(
            self.service
                .model_cache()
                .export()
                .into_iter()
                .map(SnapshotEntry::Model),
        );
        entries
    }

    /// Reuses the prebuilt Table I workload [`Arc`]s for transported
    /// workloads that match them, so restored result-cache keys share
    /// storage with organically-warmed ones instead of duplicating the
    /// layer tables per entry.
    fn intern_workload(&self, workload: NetworkWorkload) -> Arc<NetworkWorkload> {
        for known in &self.workloads {
            if **known == workload {
                return Arc::clone(known);
            }
        }
        Arc::new(workload)
    }

    /// Validates a completed restore stream against its terminal frame and
    /// applies it to the caches.  Model-cache entries are imported first
    /// (that import validates before touching the cache), so a rejected
    /// stream leaves both caches untouched.
    fn apply_restore(
        &self,
        entries: Vec<SnapshotEntry>,
        chunks: u64,
        end: &SnapshotEnd,
    ) -> Result<wire::RestoredFrame, ErrorFrame> {
        if chunks != end.chunks || entries.len() as u64 != end.entries {
            return Err(ErrorFrame::new(
                ErrorKind::Malformed,
                format!(
                    "truncated restore stream: got {chunks} chunks / {} entries, \
                     terminal frame promised {} / {}",
                    entries.len(),
                    end.chunks,
                    end.entries
                ),
            ));
        }
        if wire::snapshot_checksum(&entries) != end.checksum {
            return Err(ErrorFrame::new(
                ErrorKind::Malformed,
                "restore stream checksum mismatch",
            ));
        }
        let total = entries.len() as u64;
        let mut results = Vec::new();
        let mut model = Vec::new();
        for entry in entries {
            match entry {
                SnapshotEntry::Result {
                    arch,
                    workload,
                    report,
                } => {
                    let workload = self.intern_workload(workload);
                    results.push((CacheKey::from_parts(arch, workload), report));
                }
                SnapshotEntry::Model(entry) => model.push(entry),
            }
        }
        let inserted_model = self.service.model_cache().import(&model).map_err(|err| {
            ErrorFrame::new(
                ErrorKind::Malformed,
                format!("invalid snapshot entry: {err}"),
            )
        })?;
        let inserted_results = self.service.result_cache().import(results);
        Ok(wire::RestoredFrame {
            entries: total,
            results: inserted_results as u64,
            model: inserted_model as u64,
        })
    }
}

/// Per-connection restore-stream state.  Chunks are accumulated silently
/// (one response per *stream*, at `restore_end` — answering every chunk
/// would desynchronize pipelined response correlation); a mid-stream
/// violation poisons the session and surfaces as the terminal response.
enum RestoreSession {
    /// No stream in progress.
    Idle,
    /// Chunks 0..next_seq received and buffered.
    Active {
        next_seq: u64,
        entries: Vec<SnapshotEntry>,
    },
    /// The stream violated the protocol; the error is held until the
    /// terminal frame so the response stream stays aligned.
    Poisoned { frame: ErrorFrame },
}

/// The JSON-lines evaluation server.
///
/// # Example
///
/// ```
/// use crosslight_server::server::{Server, ServerOptions};
/// use crosslight_server::loadgen::Client;
/// use crosslight_server::wire::{EvalSpec, ResponseBody};
/// use crosslight_core::variants::CrossLightVariant;
/// use crosslight_neural::zoo::PaperModel;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let server = Server::bind("127.0.0.1:0", ServerOptions::default().with_workers(2))?;
/// let mut client = Client::connect(server.local_addr())?;
/// let spec = EvalSpec::paper(CrossLightVariant::OptTed, PaperModel::Lenet5SignMnist);
/// let response = client.eval(7, &spec)?;
/// assert!(matches!(response.body, ResponseBody::Eval(_)));
/// server.shutdown();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    event_loops: Vec<JoinHandle<()>>,
    batcher: Option<JoinHandle<()>>,
    responder: Option<JoinHandle<()>>,
    /// The responder's input; dropped during shutdown so the responder can
    /// observe the last runtime completion and exit.
    completions_tx: Option<Sender<Completion>>,
    wakers: Arc<Vec<Waker>>,
}

impl Server {
    /// Binds the listener and spawns the acceptor, event loops, batcher,
    /// responder, and evaluation pool.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding, address resolution, or
    /// building the event loops' loopback wake channels.
    pub fn bind(addr: impl ToSocketAddrs, options: ServerOptions) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let workloads = PaperModel::all().map(|model| {
            Arc::new(
                NetworkWorkload::from_spec(&model.spec()).expect("the Table I workloads are valid"),
            )
        });
        let service = EvalService::new(
            RuntimeOptions::default()
                .with_workers(options.workers)
                .with_cache_shards(options.cache_shards),
        );
        let options = ServerOptions {
            queue_capacity: options.queue_capacity.max(1),
            max_line_bytes: options.max_line_bytes.max(1024),
            event_loops: options.event_loops.max(1),
            batch_max: options.batch_max.max(1),
            ..options
        };
        let admission = Admission {
            capacity: options.queue_capacity,
            in_flight: AtomicUsize::new(0),
            shed: Counter::new(),
        };
        let telemetry = ServerTelemetry::new(&options, &admission.shed);
        let shared = Arc::new(Shared {
            service,
            options,
            admission,
            telemetry,
            shutting_down: AtomicBool::new(false),
            next_tag: AtomicU64::new(0),
            unbatched: AtomicUsize::new(0),
            pending: Mutex::new(HashMap::new()),
            workloads,
        });
        let (completions_tx, completions_rx) = mpsc::channel::<Completion>();
        let (batch_tx, batch_rx) = mpsc::channel::<BatchRequest>();
        let mut wakers = Vec::with_capacity(options.event_loops);
        let mut registrations = Vec::with_capacity(options.event_loops);
        let mut event_loops = Vec::with_capacity(options.event_loops);
        for loop_id in 0..options.event_loops {
            let (waker, wake_rx) = wake_pair()?;
            wakers.push(waker);
            let (reg_tx, reg_rx) = mpsc::channel::<(u64, TcpStream)>();
            registrations.push(reg_tx);
            let shared = Arc::clone(&shared);
            let batch_tx = batch_tx.clone();
            event_loops.push(
                std::thread::Builder::new()
                    .name(format!("crosslight-server-loop-{loop_id}"))
                    .spawn(move || event_loop(loop_id, &shared, &reg_rx, &wake_rx, &batch_tx))
                    .expect("spawning an event-loop thread succeeds"),
            );
        }
        // The loops hold the only long-lived batch senders: when they exit
        // at shutdown, the batcher sees the channel close and drains out.
        drop(batch_tx);
        let wakers = Arc::new(wakers);
        let batcher = {
            let shared = Arc::clone(&shared);
            let reply = completions_tx.clone();
            std::thread::Builder::new()
                .name("crosslight-server-batch".to_string())
                .spawn(move || batch_loop(&shared, &batch_rx, &reply))
                .expect("spawning the batcher thread succeeds")
        };
        let responder = {
            let shared = Arc::clone(&shared);
            let wakers = Arc::clone(&wakers);
            std::thread::Builder::new()
                .name("crosslight-server-respond".to_string())
                .spawn(move || respond_loop(&shared, &completions_rx, &wakers))
                .expect("spawning the responder thread succeeds")
        };
        let acceptor = {
            let shared = Arc::clone(&shared);
            let wakers = Arc::clone(&wakers);
            std::thread::Builder::new()
                .name("crosslight-server-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared, &registrations, &wakers))
                .expect("spawning the acceptor thread succeeds")
        };
        Ok(Self {
            local_addr,
            shared,
            acceptor: Some(acceptor),
            event_loops,
            batcher: Some(batcher),
            responder: Some(responder),
            completions_tx: Some(completions_tx),
            wakers,
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Snapshot of the server and runtime counters.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        self.shared.snapshot()
    }

    /// One merged scrape of the server and runtime metric registries —
    /// the in-process equivalent of the `metrics` wire op.
    #[must_use]
    pub fn metrics_snapshot(&self) -> RegistrySnapshot {
        self.shared.metrics_snapshot()
    }

    /// Stops accepting connections, drains every in-flight request, joins
    /// every reactor thread, and shuts the evaluation pool down.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake the acceptor: it re-checks the flag per connection, so a
        // throwaway local connection unblocks `accept`.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        // Wake the loops: each one half-closes its connections' read
        // sides, drains in-flight work (the responder is still running),
        // and exits once its connection table is empty.
        for waker in self.wakers.iter() {
            waker.wake();
        }
        for handle in self.event_loops.drain(..) {
            let _ = handle.join();
        }
        // The loops held the batch senders; the batcher drains and exits.
        if let Some(handle) = self.batcher.take() {
            let _ = handle.join();
        }
        // Late completions of cancelled evals still flow from the pool's
        // workers; dropping our sender lets the responder observe the last
        // one and exit.
        drop(self.completions_tx.take());
        if let Some(handle) = self.responder.take() {
            let _ = handle.join();
        }
        // Dropping the service inside `self.shared` when the last Arc goes
        // away also joins the pool; nothing in-flight remains at this point.
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    registrations: &[Sender<(u64, TcpStream)>],
    wakers: &[Waker],
) {
    let mut next_id: u64 = 0;
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        // Responses are small frames on a request/response cycle; Nagle +
        // delayed ACK would add tens of milliseconds per exchange.
        let _ = stream.set_nodelay(true);
        // The reactor owns all blocking via poll(2).
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let connection_id = next_id;
        next_id += 1;
        shared.telemetry.connections_accepted.inc();
        shared.telemetry.connections_active.add(1);
        let loop_id = (connection_id % registrations.len() as u64) as usize;
        if registrations[loop_id].send((connection_id, stream)).is_ok() {
            wakers[loop_id].wake();
        } else {
            // The loop is gone (shutdown raced the accept): the socket
            // drops here, closing the connection.
            shared.telemetry.connections_active.sub(1);
            shared.telemetry.connections_drained.inc();
        }
    }
}

/// Upper bound on encoded response lines queued per connection before the
/// loop drops the connection's read interest — the back-pressure bound
/// that keeps a non-reading client from growing server memory.
const WRITE_QUEUE_LINES: usize = 1024;

/// How long an idle event loop sleeps in `poll(2)` between housekeeping
/// sweeps (write-stall checks); wakeups cut the sleep short.
const POLL_TICK: Duration = Duration::from_millis(250);

/// Most `read(2)` calls one connection may issue per poll tick, so a
/// fire-hosing client cannot starve its loop-mates or stall shutdown.
const MAX_READS_PER_TICK: usize = 32;

/// One unit of write-side work: an encoded response line (newline
/// included), plus — for the sampled requests — the trace to finish once
/// the line reaches the socket.
struct Outgoing {
    line: String,
    trace: Option<OutgoingTrace>,
}

/// The phase timeline riding on a queued response line.
struct OutgoingTrace {
    trace: Box<RequestTrace>,
    /// When the line entered the write queue (`write_queue` phase start).
    enqueued: Instant,
    /// When the first write attempt began (`write` phase start); `None`
    /// until the line reaches the queue front.
    write_start: Option<Instant>,
}

/// The write-side state machine of one connection, shared between its
/// event loop and the responder behind a mutex.
#[derive(Default)]
struct WriteState {
    queue: VecDeque<Outgoing>,
    /// Bytes of the front line already written (partial-write resume).
    front_written: usize,
    /// Set once the connection is torn down; late lines are dropped (and
    /// counted) instead of queued.
    closed: bool,
    /// When the socket first refused to make progress; cleared by any
    /// successful write.  The write-stall teardown bound.
    stalled_since: Option<Instant>,
}

/// The connection state shared across threads: the event loop reads, the
/// responder (and the loop) write under the `write` mutex.
struct ConnShared {
    loop_id: usize,
    stream: TcpStream,
    write: Mutex<WriteState>,
    /// Cancels this connection's queued evaluations when the socket dies.
    cancel: CancelToken,
    /// Admitted evals awaiting their response line — the graceful-close
    /// barrier.
    in_flight: AtomicUsize,
    /// Set by the loop while the write queue is full and read interest is
    /// dropped; tells the responder a flush may need to wake the loop.
    read_paused: AtomicBool,
    /// Set by the loop at client EOF; tells the responder that draining
    /// the last in-flight eval needs a close-condition re-check.
    draining: AtomicBool,
}

impl ConnShared {
    fn new(loop_id: usize, stream: TcpStream) -> Self {
        Self {
            loop_id,
            stream,
            write: Mutex::new(WriteState::default()),
            cancel: CancelToken::new(),
            in_flight: AtomicUsize::new(0),
            read_paused: AtomicBool::new(false),
            draining: AtomicBool::new(false),
        }
    }
}

impl fmt::Debug for ConnShared {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConnShared")
            .field("loop_id", &self.loop_id)
            .field("in_flight", &self.in_flight.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// The event loop's private view of one connection.
struct Conn {
    link: Arc<ConnShared>,
    scanner: LineScanner,
    restore: RestoreSession,
    read_closed: bool,
}

/// Queues one encoded response line (newline appended here), keeping the
/// queue-depth gauge in step.  Returns `false` when the connection is
/// already torn down — the line is dropped and counted, never queued.
fn push_line(
    telemetry: &ServerTelemetry,
    conn: &ConnShared,
    mut line: String,
    trace: Option<(Box<RequestTrace>, Instant)>,
) -> bool {
    line.push('\n');
    let mut guard = conn.write.lock().expect("write-state lock poisoned");
    if guard.closed {
        telemetry.write_dropped.inc();
        return false;
    }
    telemetry.write_queue_depth.add(1);
    guard.queue.push_back(Outgoing {
        line,
        trace: trace.map(|(trace, enqueued)| OutgoingTrace {
            trace,
            enqueued,
            write_start: None,
        }),
    });
    true
}

/// Subtracts every queued line from the depth gauge and counts it dropped.
/// The complement of `push_line`'s increment on the teardown path — this
/// pairing is what keeps `server_write_queue_depth` returning to zero.
fn drop_queued_lines(telemetry: &ServerTelemetry, state: &mut WriteState) {
    let dropped = state.queue.len();
    if dropped > 0 {
        telemetry.write_queue_depth.sub(dropped as i64);
        telemetry.write_dropped.add(dropped as u64);
    }
    state.queue.clear();
    state.front_written = 0;
}

/// Writes as much of the queue as the socket accepts right now, resuming
/// partial lines, timing traced ones, and tearing the write side down on
/// socket failure.  Called from both the event loop (on `POLLOUT`) and the
/// responder (opportunistically, right after queueing a completion).
/// Returns `false` when the write side is (or just became) dead.
fn try_flush(telemetry: &ServerTelemetry, conn: &ConnShared) -> bool {
    let mut finished: Vec<(Box<RequestTrace>, Instant)> = Vec::new();
    let mut failed = false;
    {
        let mut guard = conn.write.lock().expect("write-state lock poisoned");
        if guard.closed {
            return false;
        }
        let state = &mut *guard;
        // Gather up to a syscall's worth of queue front into one vectored
        // write: under a pipelined burst this turns a write syscall per
        // response line into one per flush.
        const FLUSH_LINES: usize = 64;
        'flush: while !state.queue.is_empty() {
            let write_start = Instant::now();
            for front in state.queue.iter_mut().take(FLUSH_LINES) {
                if let Some(traced) = front.trace.as_mut() {
                    if traced.write_start.is_none() {
                        traced
                            .trace
                            .record(Phase::WriteQueue, traced.enqueued, write_start);
                        traced.write_start = Some(write_start);
                    }
                }
            }
            let slices: Vec<IoSlice<'_>> = state
                .queue
                .iter()
                .take(FLUSH_LINES)
                .enumerate()
                .map(|(i, out)| {
                    let bytes = out.line.as_bytes();
                    IoSlice::new(if i == 0 {
                        &bytes[state.front_written..]
                    } else {
                        bytes
                    })
                })
                .collect();
            match (&conn.stream).write_vectored(&slices) {
                Ok(0) => {
                    failed = true;
                    break 'flush;
                }
                Ok(mut written) => {
                    state.stalled_since = None;
                    while written > 0 {
                        let front = state.queue.front().expect("accounted line exists");
                        let remaining = front.line.len() - state.front_written;
                        if written < remaining {
                            state.front_written += written;
                            break;
                        }
                        written -= remaining;
                        telemetry.bytes_written.add(front.line.len() as u64);
                        telemetry.write_queue_depth.sub(1);
                        state.front_written = 0;
                        let out = state.queue.pop_front().expect("front line exists");
                        if let Some(traced) = out.trace {
                            if let Some(write_start) = traced.write_start {
                                finished.push((traced.trace, write_start));
                            }
                        }
                    }
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if state.stalled_since.is_none() {
                        state.stalled_since = Some(Instant::now());
                    }
                    break 'flush;
                }
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    failed = true;
                    break 'flush;
                }
            }
        }
        if failed {
            // The traces of unwritten lines (including the half-written
            // front) are dropped with them — error paths are not part of
            // the latency story.
            drop_queued_lines(telemetry, state);
            state.closed = true;
        } else if state.queue.is_empty() {
            state.stalled_since = None;
        }
    }
    if !finished.is_empty() {
        // One flush instant for the whole burst: these lines reached the
        // socket together.
        let flushed = Instant::now();
        for (mut trace, write_start) in finished {
            trace.record(Phase::Write, write_start, flushed);
            telemetry.finish_trace(&trace);
        }
    }
    if failed {
        // No response can ever be delivered again, so queued evaluations
        // for this connection are pure waste — cancel them, and close the
        // read side so the loop reaps the connection.
        conn.cancel.cancel();
        let _ = conn.stream.shutdown(Shutdown::Both);
        return false;
    }
    true
}

/// Tears a connection's write side down outside of a flush: drains the
/// queue with accounting, cancels its queued evaluations, and closes the
/// socket.  Idempotent.
fn abort_connection(telemetry: &ServerTelemetry, conn: &ConnShared) {
    {
        let mut guard = conn.write.lock().expect("write-state lock poisoned");
        if !guard.closed {
            guard.closed = true;
            let state = &mut *guard;
            drop_queued_lines(telemetry, state);
        }
    }
    conn.cancel.cancel();
    let _ = conn.stream.shutdown(Shutdown::Both);
}

/// Final accounting when the event loop removes a connection from its
/// table, for both graceful closes and aborts.
fn finish_connection(telemetry: &ServerTelemetry, conn: &ConnShared) {
    {
        let mut guard = conn.write.lock().expect("write-state lock poisoned");
        if !guard.closed {
            guard.closed = true;
            let state = &mut *guard;
            drop_queued_lines(telemetry, state);
        }
    }
    let _ = conn.stream.shutdown(Shutdown::Both);
    telemetry.connections_active.sub(1);
    telemetry.connections_drained.inc();
}

/// An admitted eval on its way to the micro-batcher.
struct BatchRequest {
    tag: u64,
    request: EvalRequest,
    trace: Option<Box<RequestTrace>>,
    cancel: CancelToken,
}

/// One event-loop thread: multiplexes its share of the connections over
/// `poll(2)`, running the read-side state machines inline and flushing
/// write queues as sockets drain.
fn event_loop(
    loop_id: usize,
    shared: &Arc<Shared>,
    registrations: &Receiver<(u64, TcpStream)>,
    wake_rx: &WakeReceiver,
    batcher: &Sender<BatchRequest>,
) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut poll_set = PollSet::new();
    let mut slots: Vec<Option<u64>> = Vec::new();
    let mut to_close: Vec<u64> = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    loop {
        // Adopt connections the acceptor handed over.
        while let Ok((id, stream)) = registrations.try_recv() {
            conns.insert(
                id,
                Conn {
                    link: Arc::new(ConnShared::new(loop_id, stream)),
                    scanner: LineScanner::new(),
                    restore: RestoreSession::Idle,
                    read_closed: false,
                },
            );
        }
        let shutting_down = shared.shutting_down.load(Ordering::SeqCst);
        if shutting_down {
            // Half-close every read side (idempotent): the next read sees
            // EOF, input stops, and in-flight work drains gracefully.
            for conn in conns.values() {
                let _ = conn.link.stream.shutdown(Shutdown::Read);
            }
        }
        // Housekeeping sweep: reap closed connections, finish graceful
        // drains, and tear down stalled writers.
        to_close.clear();
        for (&id, conn) in &conns {
            let (queue_len, closed, stalled_since) = {
                let guard = conn.link.write.lock().expect("write-state lock poisoned");
                (guard.queue.len(), guard.closed, guard.stalled_since)
            };
            if closed {
                to_close.push(id);
                continue;
            }
            if conn.read_closed
                && queue_len == 0
                && conn.link.in_flight.load(Ordering::Acquire) == 0
            {
                // Graceful close: EOF seen, every admitted eval answered,
                // every response on the wire.
                to_close.push(id);
                continue;
            }
            if let Some(since) = stalled_since {
                if since.elapsed() >= shared.options.write_timeout {
                    abort_connection(&shared.telemetry, &conn.link);
                    to_close.push(id);
                }
            }
        }
        for id in to_close.drain(..) {
            if let Some(conn) = conns.remove(&id) {
                finish_connection(&shared.telemetry, &conn.link);
            }
        }
        if shutting_down && conns.is_empty() {
            // Account for connections registered after our last adoption
            // pass; they were never served.
            while let Ok((_, stream)) = registrations.try_recv() {
                let _ = stream.shutdown(Shutdown::Both);
                shared.telemetry.connections_active.sub(1);
                shared.telemetry.connections_drained.inc();
            }
            return;
        }
        // Interest registration: slot 0 is the wakeup channel; one slot
        // per connection that wants anything.
        poll_set.clear();
        slots.clear();
        poll_set.push(wake_rx.fd(), true, false);
        slots.push(None);
        for (&id, conn) in &conns {
            let queue_len = {
                let guard = conn.link.write.lock().expect("write-state lock poisoned");
                guard.queue.len()
            };
            let paused = !conn.read_closed && queue_len >= WRITE_QUEUE_LINES;
            conn.link.read_paused.store(paused, Ordering::Release);
            let want_read = !conn.read_closed && !paused;
            let want_write = queue_len > 0;
            if want_read || want_write {
                poll_set.push(fd_of(&conn.link.stream), want_read, want_write);
                slots.push(Some(id));
            }
        }
        let _ = poll_set.poll(Some(POLL_TICK));
        for (slot, entry) in slots.iter().enumerate() {
            let readiness = poll_set.readiness(slot);
            if !readiness.any() {
                continue;
            }
            let Some(id) = *entry else {
                wake_rx.drain();
                continue;
            };
            let Some(conn) = conns.get_mut(&id) else {
                continue;
            };
            if readiness.error {
                abort_connection(&shared.telemetry, &conn.link);
                if let Some(conn) = conns.remove(&id) {
                    finish_connection(&shared.telemetry, &conn.link);
                }
                continue;
            }
            if readiness.writable {
                let _ = try_flush(&shared.telemetry, &conn.link);
            }
            if readiness.readable {
                if service_read(shared, conn, batcher, &mut scratch) {
                    // Flush whatever the burst of inline responses queued
                    // before going back to sleep.
                    let _ = try_flush(&shared.telemetry, &conn.link);
                } else {
                    if let Some(conn) = conns.remove(&id) {
                        finish_connection(&shared.telemetry, &conn.link);
                    }
                }
            }
        }
    }
}

/// Reads one connection until the socket would block (bounded per tick),
/// feeding bytes through the line scanner into the request handler.
/// Returns `false` when the connection failed and was aborted — the
/// caller removes it immediately.
fn service_read(
    shared: &Arc<Shared>,
    conn: &mut Conn,
    batcher: &Sender<BatchRequest>,
    scratch: &mut [u8],
) -> bool {
    let max_bytes = shared.options.max_line_bytes;
    for _ in 0..MAX_READS_PER_TICK {
        {
            // Back-pressure mid-burst too: a full write queue stops the
            // reads until the client drains its responses.
            let guard = conn.link.write.lock().expect("write-state lock poisoned");
            if guard.queue.len() >= WRITE_QUEUE_LINES {
                break;
            }
        }
        let read = match (&conn.link.stream).read(scratch) {
            Ok(0) => {
                conn.read_closed = true;
                conn.link.draining.store(true, Ordering::Release);
                break;
            }
            Ok(read) => read,
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                abort_connection(&shared.telemetry, &conn.link);
                return false;
            }
        };
        let Conn {
            link,
            scanner,
            restore,
            ..
        } = conn;
        if !scanner.push(&scratch[..read], max_bytes, |event| {
            handle_line_event(shared, link, restore, batcher, event)
        }) {
            // The write side tore down mid-burst; stop consuming input and
            // let the sweep reap the connection.
            break;
        }
    }
    true
}

/// Handles one framing event from a connection's line scanner: the whole
/// per-op protocol surface.  Inline ops are answered straight onto the
/// write queue; admitted evals are tagged, registered as pending, and
/// handed to the micro-batcher.  Returns `false` when the connection died
/// and scanning should stop.
fn handle_line_event(
    shared: &Arc<Shared>,
    conn: &Arc<ConnShared>,
    restore: &mut RestoreSession,
    batcher: &Sender<BatchRequest>,
    event: ScanEvent,
) -> bool {
    let telemetry = &shared.telemetry;
    // Decide up front whether this request is traced: an untraced request
    // must never read the clock, so the sampling decision precedes any
    // timestamp.
    let read_mark = if telemetry.sampler.sample() {
        Some(Instant::now())
    } else {
        None
    };
    let line = match event {
        ScanEvent::Line(line) => line,
        ScanEvent::Oversized => {
            telemetry.requests_total.inc();
            telemetry.oversized_total.inc();
            let frame = ErrorFrame::new(
                ErrorKind::Oversized,
                format!("line exceeds {} bytes", shared.options.max_line_bytes),
            );
            let line = wire::encode_response(&Response::error(None, frame));
            return push_line(telemetry, conn, line, None);
        }
        ScanEvent::InvalidUtf8 => {
            telemetry.requests_total.inc();
            telemetry.malformed_total.inc();
            let frame = ErrorFrame::new(ErrorKind::Malformed, "line is not valid UTF-8");
            let line = wire::encode_response(&Response::error(None, frame));
            return push_line(telemetry, conn, line, None);
        }
    };
    if line.trim().is_empty() {
        return true;
    }
    telemetry.bytes_read.add(line.len() as u64 + 1);
    telemetry.requests_total.inc();
    let request = match wire::decode_request(&line) {
        Ok(request) => request,
        Err(frame) => {
            telemetry.malformed_total.inc();
            let id = wire::peek_id(&line);
            let line = wire::encode_response(&Response::error(id, frame));
            return push_line(telemetry, conn, line, None);
        }
    };
    match request.body {
        RequestBody::Ping => {
            let line = wire::encode_response(&Response {
                id: Some(request.id),
                body: ResponseBody::Pong,
            });
            push_line(telemetry, conn, line, None)
        }
        RequestBody::Stats => {
            let stats = shared.snapshot();
            let line = wire::encode_response(&Response {
                id: Some(request.id),
                body: ResponseBody::Stats(StatsFrame {
                    server: stats.server,
                    runtime: WireRuntimeStats::from(&stats.runtime),
                }),
            });
            push_line(telemetry, conn, line, None)
        }
        RequestBody::Metrics { format } => {
            let frame = match format {
                MetricsFormat::Json => {
                    MetricsFrame::Snapshot(WireMetricsSnapshot::from(&shared.metrics_snapshot()))
                }
                MetricsFormat::Text => MetricsFrame::Text(render_text(&shared.metrics_snapshot())),
                MetricsFormat::Spans => {
                    // Draining hands each exported timeline to exactly
                    // one scraper; server and runtime rings append into
                    // one page.
                    let mut spans = telemetry.spans.drain();
                    spans.extend(shared.service.span_ring().drain());
                    MetricsFrame::Spans(spans)
                }
            };
            let line = wire::encode_response(&Response {
                id: Some(request.id),
                body: ResponseBody::Metrics(frame),
            });
            push_line(telemetry, conn, line, None)
        }
        RequestBody::Snapshot { max_chunk_bytes } => {
            telemetry.snapshots_total.inc();
            let entries = shared.collect_snapshot();
            telemetry.snapshot_entries_total.add(entries.len() as u64);
            let total = entries.len() as u64;
            let checksum = wire::snapshot_checksum(&entries);
            // Keep every encoded chunk line comfortably under the line
            // limit: the entries array gets 3/4 of the budget, leaving
            // headroom for the response envelope.  The budget is our own
            // line limit, lowered to the peer's announced one when the
            // request carries `max_chunk_bytes` — a peer with a smaller
            // limit than ours would otherwise shed every chunk as
            // oversized.
            let server_budget = (shared.options.max_line_bytes.saturating_mul(3) / 4).max(1);
            let budget = match max_chunk_bytes {
                Some(peer_limit) => {
                    let peer_limit = usize::try_from(peer_limit).unwrap_or(usize::MAX);
                    (peer_limit.saturating_mul(3) / 4).max(1).min(server_budget)
                }
                None => server_budget,
            };
            let chunks = wire::chunk_snapshot_entries(entries, budget);
            let chunk_count = chunks.len() as u64;
            for chunk in chunks {
                let line = wire::encode_response(&Response {
                    id: Some(request.id),
                    body: ResponseBody::Snapshot(chunk),
                });
                if !push_line(telemetry, conn, line, None) {
                    return false;
                }
            }
            let line = wire::encode_response(&Response {
                id: Some(request.id),
                body: ResponseBody::SnapshotEnd(SnapshotEnd {
                    chunks: chunk_count,
                    entries: total,
                    checksum,
                }),
            });
            push_line(telemetry, conn, line, None)
        }
        RequestBody::Restore(chunk) => {
            // Chunks are acknowledged only by the terminal frame; see
            // `RestoreSession`.  Sequence 0 always starts a fresh stream,
            // so a client can retry on a surviving connection.
            if chunk.seq == 0 {
                *restore = RestoreSession::Active {
                    next_seq: 1,
                    entries: chunk.entries,
                };
            } else {
                match restore {
                    RestoreSession::Active { next_seq, entries } if chunk.seq == *next_seq => {
                        *next_seq += 1;
                        entries.extend(chunk.entries);
                    }
                    RestoreSession::Poisoned { .. } => {}
                    RestoreSession::Active { next_seq, .. } => {
                        let frame = ErrorFrame::new(
                            ErrorKind::Malformed,
                            format!(
                                "restore chunk out of sequence: expected {next_seq}, \
                                 got {}",
                                chunk.seq
                            ),
                        );
                        *restore = RestoreSession::Poisoned { frame };
                    }
                    RestoreSession::Idle => {
                        let frame = ErrorFrame::new(
                            ErrorKind::Malformed,
                            format!("restore stream must start at chunk 0, got {}", chunk.seq),
                        );
                        *restore = RestoreSession::Poisoned { frame };
                    }
                }
            }
            true
        }
        RequestBody::RestoreEnd(end) => {
            let session = std::mem::replace(restore, RestoreSession::Idle);
            // An empty stream (0 chunks) is a legal snapshot of an empty
            // cache, so Idle folds into an empty Active session.
            let response = match session {
                RestoreSession::Poisoned { frame } => {
                    telemetry.restore_failed_total.inc();
                    Response::error(Some(request.id), frame)
                }
                RestoreSession::Idle => match shared.apply_restore(Vec::new(), 0, &end) {
                    Ok(frame) => {
                        telemetry.restores_total.inc();
                        Response {
                            id: Some(request.id),
                            body: ResponseBody::Restored(frame),
                        }
                    }
                    Err(frame) => {
                        telemetry.restore_failed_total.inc();
                        Response::error(Some(request.id), frame)
                    }
                },
                RestoreSession::Active { next_seq, entries } => {
                    let received = entries.len() as u64;
                    match shared.apply_restore(entries, next_seq, &end) {
                        Ok(frame) => {
                            telemetry.restores_total.inc();
                            telemetry.restore_entries_total.add(received);
                            Response {
                                id: Some(request.id),
                                body: ResponseBody::Restored(frame),
                            }
                        }
                        Err(frame) => {
                            telemetry.restore_failed_total.inc();
                            Response::error(Some(request.id), frame)
                        }
                    }
                }
            };
            let line = wire::encode_response(&response);
            push_line(telemetry, conn, line, None)
        }
        RequestBody::Eval(spec) => {
            if shared.shutting_down.load(Ordering::SeqCst) {
                let frame = ErrorFrame::new(ErrorKind::ShuttingDown, "server is draining");
                let line = wire::encode_response(&Response::error(Some(request.id), frame));
                return push_line(telemetry, conn, line, None);
            }
            let eval_request = match spec.to_eval_request(request.id, &shared.workloads) {
                Ok(eval_request) => eval_request,
                Err(frame) => {
                    telemetry.evals_failed.inc();
                    let line = wire::encode_response(&Response::error(Some(request.id), frame));
                    return push_line(telemetry, conn, line, None);
                }
            };
            // Only successfully decoded evals grow into full traces;
            // `decode` covers frame parsing plus spec resolution.  In the
            // reactor the wait for bytes happens inside poll(2), not in a
            // per-request read call, so the `read` span collapses to the
            // instant the completed line surfaced from the scanner.
            let mut trace = read_mark.map(|mark| {
                let mut trace = Box::new(RequestTrace::with_origin(request.id, mark));
                trace.record(Phase::Read, mark, mark);
                trace.record_since(Phase::Decode, mark);
                trace
            });
            let admission_start = trace.as_ref().map(|_| Instant::now());
            if !shared.admission.try_acquire() {
                let frame = ErrorFrame::new(
                    ErrorKind::Overloaded,
                    format!(
                        "admission queue full (capacity {})",
                        shared.admission.capacity
                    ),
                );
                let line = wire::encode_response(&Response::error(Some(request.id), frame));
                return push_line(telemetry, conn, line, None);
            }
            if let (Some(trace), Some(start)) = (trace.as_mut(), admission_start) {
                trace.record_since(Phase::Admission, start);
            }
            let tag = shared.next_tag.fetch_add(1, Ordering::Relaxed);
            shared
                .pending
                .lock()
                .expect("pending-eval map lock poisoned")
                .insert(
                    tag,
                    PendingEval {
                        conn: Arc::clone(conn),
                        client_id: request.id,
                    },
                );
            conn.in_flight.fetch_add(1, Ordering::AcqRel);
            shared.unbatched.fetch_add(1, Ordering::AcqRel);
            if trace.is_some() {
                telemetry.traces_sampled.inc();
            }
            let submitted = batcher.send(BatchRequest {
                tag,
                request: eval_request,
                trace,
                cancel: conn.cancel.clone(),
            });
            if submitted.is_err() {
                // Only possible while the batcher is tearing down at
                // shutdown; undo the bookkeeping and answer inline.
                shared
                    .pending
                    .lock()
                    .expect("pending-eval map lock poisoned")
                    .remove(&tag);
                conn.in_flight.fetch_sub(1, Ordering::AcqRel);
                shared.unbatched.fetch_sub(1, Ordering::AcqRel);
                shared.admission.release();
                telemetry.evals_failed.inc();
                let frame = ErrorFrame::new(ErrorKind::Evaluation, "evaluation pool unavailable");
                let line = wire::encode_response(&Response::error(Some(request.id), frame));
                return push_line(telemetry, conn, line, None);
            }
            true
        }
    }
}

/// The micro-batcher: coalesces admitted evals from every connection into
/// one [`EvalService::submit_detached_batch`] call per window.  A batch
/// flushes at `batch_max` evals, when `batch_window` elapses, or — the
/// adaptive fast path — the moment every eval admitted so far is already
/// in the batch (`unbatched` is incremented *before* the send to this
/// thread, so reading it as 0 here proves nobody else is coming and
/// waiting out the window would be pure added latency).
fn batch_loop(shared: &Shared, requests: &Receiver<BatchRequest>, reply: &Sender<Completion>) {
    let batch_max = shared.options.batch_max.max(1);
    let window = shared.options.batch_window;
    while let Ok(first) = requests.recv() {
        shared.unbatched.fetch_sub(1, Ordering::AcqRel);
        let mut batch = vec![first];
        let deadline = Instant::now() + window;
        loop {
            while batch.len() < batch_max {
                match requests.try_recv() {
                    Ok(request) => {
                        shared.unbatched.fetch_sub(1, Ordering::AcqRel);
                        batch.push(request);
                    }
                    Err(_) => break,
                }
            }
            if batch.len() >= batch_max {
                break;
            }
            if shared.unbatched.load(Ordering::Acquire) == 0 {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match requests.recv_timeout(deadline - now) {
                Ok(request) => {
                    shared.unbatched.fetch_sub(1, Ordering::AcqRel);
                    batch.push(request);
                }
                Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => break,
            }
        }
        shared.telemetry.batches_total.inc();
        shared.telemetry.batch_size.record(batch.len() as u64);
        let items: Vec<BatchItem> = batch
            .into_iter()
            .map(|request| BatchItem {
                tag: request.tag,
                request: request.request,
                trace: request.trace,
                cancel: Some(request.cancel),
            })
            .collect();
        // Unreachable workers are answered by the pool itself (one
        // `WorkerLost` completion per item), so every tag still resolves.
        let _ = shared.service.submit_detached_batch(items, reply);
    }
}

/// The responder: routes each pool completion back to its owning
/// connection, encodes the response line, flushes opportunistically, and
/// releases the admission permit.
///
/// Completions are drained greedily before flushing: under a pipelined
/// burst they arrive back to back, and flushing once per *connection* per
/// drain instead of once per completion turns a write syscall per
/// response into one per burst.
fn respond_loop(shared: &Shared, completions: &Receiver<Completion>, wakers: &[Waker]) {
    let telemetry = &shared.telemetry;
    // Bounds one drain so a saturating completion stream cannot starve
    // the flush (and thus the client) indefinitely.
    const DRAIN_MAX: usize = 256;
    let mut touched: Vec<Arc<ConnShared>> = Vec::new();
    while let Ok(first) = completions.recv() {
        let mut drained = 0usize;
        let mut next = Some(first);
        while let Some((tag, outcome)) = next {
            if let Some(conn) = deliver_completion(shared, tag, outcome) {
                if !touched.iter().any(|seen| Arc::ptr_eq(seen, &conn)) {
                    touched.push(conn);
                }
            }
            drained += 1;
            next = if drained < DRAIN_MAX {
                completions.try_recv().ok()
            } else {
                None
            };
        }
        for conn in touched.drain(..) {
            let _ = try_flush(telemetry, &conn);
            // Wake the owning loop only when this drain changed what it
            // must watch: a residual queue needs POLLOUT, an unpaused
            // reader needs POLLIN back, and a draining connection needs
            // its close-condition re-checked.  A fully-flushed response
            // on a live connection changes nothing.
            let residual = {
                let guard = conn.write.lock().expect("write-state lock poisoned");
                !guard.queue.is_empty()
            };
            let unpause = conn.read_paused.load(Ordering::Acquire);
            let draining = conn.draining.load(Ordering::Acquire)
                && conn.in_flight.load(Ordering::Acquire) == 0;
            if residual || unpause || draining {
                wakers[conn.loop_id].wake();
            }
        }
    }
}

/// Handles one pool completion: encodes and enqueues the response line
/// (or accounts for a cancelled/failed eval) and releases the admission
/// permit.  Returns the owning connection so the caller can flush and
/// re-arm its event loop once per drain.
fn deliver_completion(
    shared: &Shared,
    tag: u64,
    outcome: Result<EvalResponse, RuntimeError>,
) -> Option<Arc<ConnShared>> {
    let telemetry = &shared.telemetry;
    let pending = shared
        .pending
        .lock()
        .expect("pending-eval map lock poisoned")
        .remove(&tag);
    let PendingEval { conn, client_id } = pending?;
    match outcome {
        // A cancelled job means this connection already tore down:
        // there is nowhere to send a response, so just release the
        // permit and account for the skip.  Not an eval failure — the
        // request was never evaluated.
        Err(RuntimeError::Cancelled) => {
            telemetry.evals_cancelled.inc();
        }
        Ok(mut eval) => {
            telemetry.evals_ok.inc();
            let trace = eval.trace.take();
            let response = Response {
                id: Some(client_id),
                body: ResponseBody::Eval(EvalFrame {
                    report: eval.report,
                    cache_hit: eval.cache_hit,
                    worker: eval.worker as u64,
                }),
            };
            let serialize_start = trace.as_ref().map(|_| Instant::now());
            let line = wire::encode_response(&response);
            let traced = match (trace, serialize_start) {
                (Some(mut trace), Some(start)) => {
                    trace.record_since(Phase::Serialize, start);
                    Some((trace, Instant::now()))
                }
                _ => None,
            };
            push_line(telemetry, &conn, line, traced);
        }
        Err(err) => {
            // The runtime reports failures without the response object,
            // so a failed eval's trace ends here — error paths are not
            // part of the latency story.
            telemetry.evals_failed.inc();
            let response = Response::error(
                Some(client_id),
                ErrorFrame::new(ErrorKind::Evaluation, err.to_string()),
            );
            push_line(telemetry, &conn, wire::encode_response(&response), None);
        }
    }
    // Release the permit only after the line is queued: a non-reading
    // client therefore caps both the write queue and the number of
    // evals in flight.
    conn.in_flight.fetch_sub(1, Ordering::AcqRel);
    shared.admission.release();
    Some(conn)
}

/// Outcome of reading one length-limited line.
///
/// Public so other front-ends speaking the same protocol (the cluster
/// router) share one line discipline instead of re-deriving it.
#[derive(Debug)]
pub enum LineRead {
    /// A complete line (without the newline).
    Line(String),
    /// The line exceeded the limit; the rest of it was discarded.
    Oversized,
    /// The line was not valid UTF-8.
    InvalidUtf8,
    /// End of stream.
    Eof,
    /// The socket failed.
    Error,
}

/// Reads one `\n`-terminated line of at most `max_bytes`, discarding the
/// remainder of over-long lines so the stream stays line-synchronized.
pub fn read_line_limited<R: BufRead>(reader: &mut R, max_bytes: usize) -> LineRead {
    let mut buf: Vec<u8> = Vec::new();
    let mut oversized = false;
    loop {
        let (done, used) = {
            let available = match reader.fill_buf() {
                Ok(available) => available,
                Err(ref e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return LineRead::Error,
            };
            if available.is_empty() {
                // EOF mid-line counts as EOF: the peer hung up before
                // finishing the frame, so there is nothing to answer.
                return LineRead::Eof;
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(newline) => {
                    if !oversized && buf.len() + newline <= max_bytes {
                        buf.extend_from_slice(&available[..newline]);
                    } else {
                        oversized = true;
                    }
                    (true, newline + 1)
                }
                None => {
                    if !oversized && buf.len() + available.len() <= max_bytes {
                        buf.extend_from_slice(available);
                    } else {
                        oversized = true;
                    }
                    (false, available.len())
                }
            }
        };
        reader.consume(used);
        if done {
            if oversized {
                return LineRead::Oversized;
            }
            return match String::from_utf8(buf) {
                Ok(line) => LineRead::Line(line),
                Err(_) => LineRead::InvalidUtf8,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn limited_line_reader_handles_lines_oversize_and_eof() {
        let data = b"short\n".to_vec();
        let mut reader = Cursor::new(data);
        assert!(matches!(
            read_line_limited(&mut reader, 1024),
            LineRead::Line(line) if line == "short"
        ));
        assert!(matches!(
            read_line_limited(&mut reader, 1024),
            LineRead::Eof
        ));

        let long = "x".repeat(5000) + "\nnext\n";
        let mut reader = Cursor::new(long.into_bytes());
        assert!(matches!(
            read_line_limited(&mut reader, 1024),
            LineRead::Oversized
        ));
        // The over-long line was discarded; the stream is still synchronized.
        assert!(matches!(
            read_line_limited(&mut reader, 1024),
            LineRead::Line(line) if line == "next"
        ));

        // A line of exactly the limit passes.
        let exact = "y".repeat(8) + "\n";
        let mut reader = Cursor::new(exact.into_bytes());
        assert!(matches!(
            read_line_limited(&mut reader, 8),
            LineRead::Line(line) if line.len() == 8
        ));

        // EOF mid-line is EOF, not a frame.
        let mut reader = Cursor::new(b"unterminated".to_vec());
        assert!(matches!(
            read_line_limited(&mut reader, 1024),
            LineRead::Eof
        ));

        // Invalid UTF-8 is its own outcome (answered as `malformed`, not
        // `oversized`), and the stream stays synchronized past it.
        let mut reader = Cursor::new(b"bad \xff byte\nnext\n".to_vec());
        assert!(matches!(
            read_line_limited(&mut reader, 1024),
            LineRead::InvalidUtf8
        ));
        assert!(matches!(
            read_line_limited(&mut reader, 1024),
            LineRead::Line(line) if line == "next"
        ));
    }

    #[test]
    fn admission_counts_sheds_and_releases() {
        let admission = Admission {
            capacity: 2,
            in_flight: AtomicUsize::new(0),
            shed: Counter::new(),
        };
        assert!(admission.try_acquire());
        assert!(admission.try_acquire());
        assert!(!admission.try_acquire());
        assert!(!admission.try_acquire());
        assert_eq!(admission.shed.get(), 2);
        admission.release();
        assert!(admission.try_acquire());
        assert_eq!(admission.in_flight.load(Ordering::Relaxed), 2);
    }

    /// A nonblocking loopback connection pair for write-path unit tests.
    fn loopback_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
        let local = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let (peer, _) = listener.accept().expect("accept");
        local.set_nonblocking(true).expect("nonblocking");
        (local, peer)
    }

    #[test]
    fn aborting_a_connection_drains_the_write_queue_accounting() {
        let telemetry = ServerTelemetry::new(&ServerOptions::default(), &Counter::new());
        let (local, _peer) = loopback_pair();
        let conn = ConnShared::new(0, local);
        assert!(push_line(
            &telemetry,
            &conn,
            r#"{"id":1}"#.to_string(),
            None
        ));
        assert!(push_line(
            &telemetry,
            &conn,
            r#"{"id":2}"#.to_string(),
            None
        ));
        assert_eq!(telemetry.write_queue_depth.get(), 2);
        abort_connection(&telemetry, &conn);
        // Every queued line was subtracted from the gauge and counted
        // dropped — the teardown leak this regression test guards.
        assert_eq!(telemetry.write_queue_depth.get(), 0);
        assert_eq!(telemetry.write_dropped.get(), 2);
        // A late completion's line is dropped and counted, never queued.
        assert!(!push_line(
            &telemetry,
            &conn,
            r#"{"id":3}"#.to_string(),
            None
        ));
        assert_eq!(telemetry.write_queue_depth.get(), 0);
        assert_eq!(telemetry.write_dropped.get(), 3);
        // Queued evaluations of the dead connection were cancelled.
        assert!(conn.cancel.is_cancelled());
        // Aborting twice is safe and counts nothing extra.
        abort_connection(&telemetry, &conn);
        assert_eq!(telemetry.write_dropped.get(), 3);
    }

    #[test]
    fn a_failed_socket_write_drops_queued_lines_with_accounting() {
        let telemetry = ServerTelemetry::new(&ServerOptions::default(), &Counter::new());
        let (local, peer) = loopback_pair();
        let conn = ConnShared::new(0, local);
        // Kill the socket under the queue: the flush must fail.
        conn.stream
            .shutdown(Shutdown::Both)
            .expect("shutdown succeeds");
        drop(peer);
        for id in 0..3 {
            assert!(push_line(
                &telemetry,
                &conn,
                format!(r#"{{"id":{id}}}"#),
                None
            ));
        }
        assert_eq!(telemetry.write_queue_depth.get(), 3);
        assert!(!try_flush(&telemetry, &conn));
        assert_eq!(telemetry.write_queue_depth.get(), 0);
        assert_eq!(telemetry.write_dropped.get(), 3);
        assert!(conn.cancel.is_cancelled());
    }

    #[test]
    fn try_flush_writes_queued_lines_and_keeps_the_gauge_in_step() {
        let telemetry = ServerTelemetry::new(&ServerOptions::default(), &Counter::new());
        let (local, peer) = loopback_pair();
        let conn = ConnShared::new(0, local);
        assert!(push_line(&telemetry, &conn, "pong".to_string(), None));
        assert!(push_line(&telemetry, &conn, "stats".to_string(), None));
        assert_eq!(telemetry.write_queue_depth.get(), 2);
        assert!(try_flush(&telemetry, &conn));
        assert_eq!(telemetry.write_queue_depth.get(), 0);
        assert_eq!(telemetry.bytes_written.get(), 11);
        let mut received = String::new();
        let mut reader = std::io::BufReader::new(&peer);
        reader.read_line(&mut received).expect("first line");
        reader.read_line(&mut received).expect("second line");
        assert_eq!(received, "pong\nstats\n");
        assert_eq!(telemetry.write_dropped.get(), 0);
    }
}
