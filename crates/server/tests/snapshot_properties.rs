//! Property and integration tests of the warm-state snapshot protocol:
//! arbitrary cache contents round-trip byte-exactly through the
//! `restore` framing (including non-finite floats), chunking preserves
//! streams at every budget, and a live server pair transfers its warm
//! caches bit-identically — while corrupt streams are rejected with
//! typed errors and leave both the caches and the connection usable.

use proptest::prelude::*;

use crosslight_core::cache::ModelCacheEntry;
use crosslight_core::canonical::{ArchKey, BackendKey, ResolutionKey, VdpUnitKey};
use crosslight_core::config::CrossLightConfig;
use crosslight_core::performance::{InferenceLatency, InferenceMetrics};
use crosslight_core::simulator::SimulationReport;
use crosslight_core::variants::CrossLightVariant;
use crosslight_core::vdp::VdpUnitReport;
use crosslight_neural::layers::DotProductWorkload;
use crosslight_neural::workload::NetworkWorkload;
use crosslight_neural::zoo::PaperModel;
use crosslight_photonics::units::{MilliWatts, Picojoules, Seconds, SquareMillimeters, Watts};
use crosslight_server::wire::{
    chunk_snapshot_entries, decode_request, encode_request, encode_snapshot_entry,
    snapshot_checksum, EvalSpec, SnapshotChunk, SnapshotEnd, SnapshotEntry, SNAPSHOT_SCHEMA,
};
use crosslight_server::{
    Client, ErrorKind, Request, RequestBody, ResponseBody, Server, ServerOptions,
};

fn report_from_bits(bits: &[u64; 16], resolution_bits: u32) -> SimulationReport {
    let f = |i: usize| f64::from_bits(bits[i]);
    SimulationReport {
        power: crosslight_core::power::AcceleratorPower {
            laser: MilliWatts::new(f(0)),
            tuning: MilliWatts::new(f(1)),
            detection: MilliWatts::new(f(2)),
            conversion: MilliWatts::new(f(3)),
            control: MilliWatts::new(f(4)),
        },
        area: crosslight_core::area::AcceleratorArea {
            mr_banks: SquareMillimeters::new(f(5)),
            arm_devices: SquareMillimeters::new(f(6)),
            unit_electronics: SquareMillimeters::new(f(7)),
        },
        metrics: InferenceMetrics {
            latency: InferenceLatency {
                conv_time: Seconds::new(f(8)),
                fc_time: Seconds::new(f(9)),
                electronic_time: Seconds::new(f(10)),
            },
            fps: f(11),
            energy_per_inference: Picojoules::new(f(12)),
            energy_per_bit_pj: f(13),
            kfps_per_watt: f(14),
            power: Watts::new(f(15)),
        },
        resolution_bits,
    }
}

/// Canonical byte-level identity of a stream — the comparison that works
/// even when entries carry NaNs (where `PartialEq` is useless).
fn encoded(entries: &[SnapshotEntry]) -> Vec<String> {
    entries.iter().map(encode_snapshot_entry).collect()
}

proptest! {

    /// A stream holding every entry kind — with arbitrary bit patterns in
    /// every float slot, including NaN and the infinities — re-encodes to
    /// the identical line after a decode round trip.
    #[test]
    fn arbitrary_snapshot_streams_round_trip_byte_exactly(
        dims in (1u64..500, 0u64..500, 1u64..200, 1u64..200),
        mrs in 1u64..=15,
        cfg_bits in 1u64..32,
        geom in proptest::collection::vec(proptest::num::u64::ANY, 5),
        tags in (0u64..2, 0u64..2, 0u64..2),
        spacing in proptest::num::u64::ANY,
        report_bits in proptest::collection::vec(proptest::num::u64::ANY, 16),
        res_bits in 1u32..64,
        backend_tag in 0u8..=255,
        backend_params in proptest::collection::vec(proptest::num::u64::ANY, 4),
        conv in proptest::collection::vec((1usize..1000, 1usize..10_000), 0..4),
        towers in 1usize..4,
    ) {
        let words = [
            dims.0,
            dims.0 + dims.1, // fc_unit_size ≥ conv_unit_size (K ≥ N)
            dims.2,
            dims.3,
            mrs,
            cfg_bits,
            geom[0], geom[1], geom[2], geom[3], geom[4],
            tags.0, tags.1, tags.2,
            spacing,
        ];
        let config = CrossLightConfig::from_canonical_words(words).unwrap();
        let mut bits16 = [0u64; 16];
        bits16.copy_from_slice(&report_bits);
        let report = report_from_bits(&bits16, res_bits);
        let workload = NetworkWorkload {
            name: "snapshot \"prop\"\n\t✓".to_string(),
            conv_layers: conv
                .iter()
                .map(|&(dot_length, dot_count)| DotProductWorkload { dot_length, dot_count })
                .collect(),
            fc_layers: Vec::new(),
            towers,
        };
        let unit_key = VdpUnitKey::from_words([
            dims.0, mrs,
            geom[0], geom[1], geom[2], geom[3], geom[4],
            tags.0, tags.1, tags.2,
            spacing,
        ]).unwrap();
        let resolution_key = ResolutionKey::from(&config);
        let entries = vec![
            SnapshotEntry::Result {
                arch: ArchKey::CrossLight(config.canonical_key()),
                workload: workload.clone(),
                report,
            },
            SnapshotEntry::Result {
                arch: ArchKey::Backend(BackendKey::new(
                    backend_tag,
                    [backend_params[0], backend_params[1], backend_params[2], backend_params[3]],
                )),
                workload,
                report,
            },
            SnapshotEntry::Model(ModelCacheEntry::Resolution {
                key: resolution_key,
                bits: res_bits,
            }),
            SnapshotEntry::Model(ModelCacheEntry::Unit {
                key: unit_key,
                report: VdpUnitReport {
                    arms: dims.2 as usize,
                    pass_latency: Seconds::new(f64::from_bits(report_bits[0])),
                    laser_power: MilliWatts::new(f64::from_bits(report_bits[1])),
                    tuning_power: MilliWatts::new(f64::from_bits(report_bits[2])),
                    detection_power: MilliWatts::new(f64::from_bits(report_bits[3])),
                    conversion_power: MilliWatts::new(f64::from_bits(report_bits[4])),
                },
            }),
            SnapshotEntry::Model(ModelCacheEntry::Prepared {
                config,
                power: report.power,
                area: report.area,
                resolution_bits: res_bits,
            }),
        ];
        let line = encode_request(&Request {
            id: 7,
            body: RequestBody::Restore(SnapshotChunk { seq: 0, entries }),
        });
        let decoded = decode_request(&line).unwrap();
        prop_assert_eq!(&encode_request(&decoded), &line);
        // The receiver-side checksum over decoded entries matches the
        // sender's — the invariant restore validation relies on.
        let RequestBody::Restore(chunk) = decoded.body else {
            panic!("restore frame must decode to a restore body");
        };
        let again = decode_request(&line).unwrap();
        let RequestBody::Restore(chunk2) = again.body else {
            panic!("restore frame must decode to a restore body");
        };
        prop_assert_eq!(
            snapshot_checksum(&chunk.entries),
            snapshot_checksum(&chunk2.entries)
        );
    }

    /// Chunking preserves stream order, content and checksum at every
    /// budget, and numbers chunks contiguously from zero.
    #[test]
    fn chunking_preserves_streams_at_any_budget(
        budget in 1usize..4000,
        bits in proptest::collection::vec(1u32..64, 0..40),
        word in proptest::num::u64::ANY,
    ) {
        let key = ResolutionKey::from_words([word, word, word, word, word, 0, 3, 7, 9]).unwrap();
        let entries: Vec<SnapshotEntry> = bits
            .iter()
            .map(|&b| SnapshotEntry::Model(ModelCacheEntry::Resolution { key, bits: b }))
            .collect();
        let before = encoded(&entries);
        let checksum = snapshot_checksum(&entries);
        let chunks = chunk_snapshot_entries(entries, budget);
        let mut reassembled = Vec::new();
        for (i, chunk) in chunks.iter().enumerate() {
            prop_assert_eq!(chunk.seq, i as u64);
            prop_assert!(!chunk.entries.is_empty());
            reassembled.extend(chunk.entries.iter().cloned());
        }
        prop_assert_eq!(encoded(&reassembled), before);
        prop_assert_eq!(snapshot_checksum(&reassembled), checksum);
    }

    /// Any single-slot difference between two streams changes the
    /// checksum: FNV-1a steps are injective in the running state, so two
    /// same-shape streams differing in one word can never collide.
    #[test]
    fn checksum_detects_single_entry_corruption(
        word in proptest::num::u64::ANY,
        bits_a in 1u32..64,
        delta in 1u32..64,
        count in 1usize..12,
        position in 0usize..12,
    ) {
        let key = ResolutionKey::from_words([word, word, word, word, word, 1, 5, 11, 13]).unwrap();
        let entry = |b: u32| SnapshotEntry::Model(ModelCacheEntry::Resolution { key, bits: b });
        let stream: Vec<SnapshotEntry> = (0..count).map(|_| entry(bits_a)).collect();
        let mut tampered = stream.clone();
        let slot = position % count;
        tampered[slot] = entry(bits_a.wrapping_add(delta) % 64 + 64);
        prop_assert_ne!(snapshot_checksum(&stream), snapshot_checksum(&tampered));
    }
}

fn warm_specs() -> Vec<EvalSpec> {
    let mut specs = Vec::new();
    for variant in [CrossLightVariant::Base, CrossLightVariant::OptTed] {
        for model in PaperModel::all() {
            specs.push(EvalSpec::paper(variant, model));
        }
    }
    specs
}

#[test]
fn warm_state_restores_into_a_cold_server_bit_identically() {
    let donor = Server::bind("127.0.0.1:0", ServerOptions::default().with_workers(2)).unwrap();
    let mut donor_client = Client::connect(donor.local_addr()).unwrap();
    let specs = warm_specs();
    let mut warm_reports = Vec::new();
    for (id, spec) in specs.iter().enumerate() {
        match donor_client.eval(id as u64, spec).unwrap().body {
            ResponseBody::Eval(frame) => warm_reports.push(frame.report),
            other => panic!("expected eval frame, got {other:?}"),
        }
    }
    let entries = donor_client.snapshot_entries(100).unwrap();
    assert!(
        entries.len() >= specs.len(),
        "a warmed donor exports at least one entry per distinct spec"
    );

    let cold = Server::bind("127.0.0.1:0", ServerOptions::default().with_workers(2)).unwrap();
    let mut cold_client = Client::connect(cold.local_addr()).unwrap();
    assert!(
        cold_client.snapshot_entries(0).unwrap().is_empty(),
        "a cold server exports an empty snapshot"
    );
    // A small chunk budget forces a genuinely multi-chunk transfer.
    let restored = cold_client
        .restore_entries(101, entries.clone(), 2048)
        .unwrap();
    assert_eq!(restored.entries as usize, entries.len());
    assert!(restored.results > 0 && restored.model > 0);

    // The restored server's own snapshot is byte-identical to the donor's.
    assert_eq!(
        encoded(&cold_client.snapshot_entries(102).unwrap()),
        encoded(&entries)
    );
    // Every donor-warmed spec is served warm — result-cache hit — with the
    // donor's exact bits.
    for (i, spec) in specs.iter().enumerate() {
        match cold_client.eval(200 + i as u64, spec).unwrap().body {
            ResponseBody::Eval(frame) => {
                assert!(frame.cache_hit, "restored entry for spec {i} must hit");
                assert_eq!(frame.report, warm_reports[i]);
            }
            other => panic!("expected eval frame, got {other:?}"),
        }
    }
    // Restoring the same stream again is idempotent: validated, applied,
    // zero new insertions.
    let again = cold_client
        .restore_entries(300, entries.clone(), 1 << 20)
        .unwrap();
    assert_eq!(again.entries as usize, entries.len());
    assert_eq!((again.results, again.model), (0, 0));
    donor.shutdown();
    cold.shutdown();
}

#[test]
fn corrupt_restore_streams_are_rejected_typed_and_do_not_wedge() {
    let donor = Server::bind("127.0.0.1:0", ServerOptions::default().with_workers(1)).unwrap();
    let mut warm = Client::connect(donor.local_addr()).unwrap();
    warm.eval(
        0,
        &EvalSpec::paper(CrossLightVariant::Base, PaperModel::Lenet5SignMnist),
    )
    .unwrap();
    let entries = warm.snapshot_entries(1).unwrap();
    assert!(!entries.is_empty());
    donor.shutdown();

    let server = Server::bind("127.0.0.1:0", ServerOptions::default().with_workers(1)).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let checksum = snapshot_checksum(&entries);
    let chunk = |seq: u64| SnapshotChunk {
        seq,
        entries: entries.clone(),
    };
    let end = |chunks: u64, total: u64, checksum: u64| {
        RequestBody::RestoreEnd(SnapshotEnd {
            chunks,
            entries: total,
            checksum,
        })
    };

    // A sequence gap poisons the stream; the single terminal response is a
    // typed malformed error and nothing is applied.
    client
        .send(&Request {
            id: 1,
            body: RequestBody::Restore(chunk(0)),
        })
        .unwrap();
    client
        .send(&Request {
            id: 1,
            body: RequestBody::Restore(chunk(2)),
        })
        .unwrap();
    client
        .send(&Request {
            id: 1,
            body: end(3, 3 * entries.len() as u64, checksum),
        })
        .unwrap();
    client.flush().unwrap();
    match client.recv().unwrap().body {
        ResponseBody::Error(frame) => assert_eq!(frame.kind, ErrorKind::Malformed),
        other => panic!("expected typed error, got {other:?}"),
    }

    // A corrupted checksum is caught by the terminal validation.
    client
        .send(&Request {
            id: 2,
            body: RequestBody::Restore(chunk(0)),
        })
        .unwrap();
    client
        .send(&Request {
            id: 2,
            body: end(1, entries.len() as u64, checksum ^ 1),
        })
        .unwrap();
    client.flush().unwrap();
    match client.recv().unwrap().body {
        ResponseBody::Error(frame) => assert_eq!(frame.kind, ErrorKind::Malformed),
        other => panic!("expected typed error, got {other:?}"),
    }

    // A schema this build does not speak is a typed `unsupported` error.
    client
        .send_raw(&format!(
            "{{\"v\":1,\"id\":3,\"op\":\"restore\",\"schema\":\"{SNAPSHOT_SCHEMA}-future\",\
             \"seq\":0,\"entries\":[]}}"
        ))
        .unwrap();
    match client.recv().unwrap().body {
        ResponseBody::Error(frame) => assert_eq!(frame.kind, ErrorKind::Unsupported),
        other => panic!("expected typed error, got {other:?}"),
    }

    // None of the rejected streams touched the caches, the connection is
    // still healthy, and a correct stream — seq 0 restarts the session —
    // applies cleanly.
    assert!(client.snapshot_entries(4).unwrap().is_empty());
    match client
        .call(&Request {
            id: 5,
            body: RequestBody::Ping,
        })
        .unwrap()
        .body
    {
        ResponseBody::Pong => {}
        other => panic!("expected pong, got {other:?}"),
    }
    let restored = client.restore_entries(6, entries.clone(), 1 << 20).unwrap();
    assert_eq!(restored.entries as usize, entries.len());
    assert_eq!(
        encoded(&client.snapshot_entries(7).unwrap()),
        encoded(&entries)
    );
    server.shutdown();
}

#[test]
fn empty_restore_streams_are_valid() {
    let server = Server::bind("127.0.0.1:0", ServerOptions::default().with_workers(1)).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let restored = client.restore_entries(1, Vec::new(), 1 << 20).unwrap();
    assert_eq!(
        (restored.entries, restored.results, restored.model),
        (0, 0, 0)
    );
    server.shutdown();
}
