//! Wire back-compat golden: version-1 request lines written **without** any
//! architecture selector (the only form the protocol knew before the
//! architecture-generic evaluation API) must keep producing byte-identical
//! response lines forever.
//!
//! The fixture under `tests/golden/wire_v1_backcompat.txt` was generated
//! against the pre-zoo wire/runtime code; every later protocol extension is
//! required to leave these exact bytes unchanged, so any drift — a reordered
//! key, a float formatting change, a default that stopped meaning
//! "crosslight" — fails here.
//!
//! To regenerate after an *intentional* protocol change (which is a breaking
//! change and should be treated as such):
//!
//! ```sh
//! CROSSLIGHT_GOLDEN_BLESS=1 cargo test -p crosslight-server --test backcompat_golden
//! ```

use std::path::PathBuf;
use std::sync::Arc;

use crosslight_neural::workload::NetworkWorkload;
use crosslight_neural::zoo::PaperModel;
use crosslight_runtime::pool::{EvalService, RuntimeOptions};
use crosslight_server::wire::{
    decode_request, encode_response, peek_id, EvalFrame, Request, RequestBody, Response,
    ResponseBody,
};

/// The frozen v1 request corpus: every line predates the `"arch"` field and
/// must decode — and evaluate — exactly as it did before the field existed.
const V1_LINES: &[&str] = &[
    // Paper-best OptTed on each referenced Table I model.
    r#"{"v":1,"id":0,"op":"eval","config":{"variant":"Cross_opt_TED","dims":[20,150,100,60],"resolution_bits":16},"model":"lenet5_sign_mnist"}"#,
    r#"{"v":1,"id":1,"op":"eval","config":{"variant":"Cross_opt_TED","dims":[20,150,100,60],"resolution_bits":16},"model":"cnn_cifar10"}"#,
    // Every variant label round-trips.
    r#"{"v":1,"id":2,"op":"eval","config":{"variant":"Cross_base","dims":[20,150,100,60],"resolution_bits":16},"model":"cnn_stl10"}"#,
    r#"{"v":1,"id":3,"op":"eval","config":{"variant":"Cross_opt","dims":[20,150,100,60],"resolution_bits":16},"model":"siamese_omniglot"}"#,
    r#"{"v":1,"id":4,"op":"eval","config":{"variant":"Cross_base_TED","dims":[20,150,100,60],"resolution_bits":16},"model":"lenet5_sign_mnist"}"#,
    // Non-default dims and resolution.
    r#"{"v":1,"id":5,"op":"eval","config":{"variant":"Cross_base","dims":[10,100,50,30],"resolution_bits":8},"model":"cnn_cifar10"}"#,
    // Inline workload with a name that needs escaping.
    r#"{"v":1,"id":6,"op":"eval","config":{"variant":"Cross_opt_TED","dims":[20,150,100,60],"resolution_bits":16},"workload":{"name":"tiny \"net\"","towers":2,"conv_layers":[[9,1024],[25,256]],"fc_layers":[[128,10]]}}"#,
    // Exact duplicate of id 0: must be answered from the cache.
    r#"{"v":1,"id":7,"op":"eval","config":{"variant":"Cross_opt_TED","dims":[20,150,100,60],"resolution_bits":16},"model":"lenet5_sign_mnist"}"#,
    // Architecturally invalid dims (K < N): typed evaluation error.
    r#"{"v":1,"id":8,"op":"eval","config":{"variant":"Cross_opt_TED","dims":[150,20,100,60],"resolution_bits":16},"model":"cnn_cifar10"}"#,
    // Structurally broken frames: typed malformed errors.
    r#"{"v":1,"id":9,"op":"eval","config":{"variant":"Cross_opt_TED","dims":[1,2,3],"resolution_bits":16},"model":"cnn_cifar10"}"#,
    r#"{"v":1,"id":10,"op":"eval"}"#,
    // Liveness probe.
    r#"{"v":1,"id":11,"op":"ping"}"#,
];

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/wire_v1_backcompat.txt")
}

/// Replays the corpus through decode → evaluate → encode exactly the way the
/// server's read loop does, with a single-worker service so worker ids and
/// hit/miss provenance are deterministic.
fn serve_corpus() -> String {
    let workloads: [Arc<NetworkWorkload>; 4] =
        PaperModel::all().map(|m| Arc::new(NetworkWorkload::from_spec(&m.spec()).unwrap()));
    let service = EvalService::new(RuntimeOptions {
        workers: 1,
        cache_shards: 1,
        trace_sample_every: 0,
    });
    let mut out = String::from("wire_v1_backcompat/v1\n");
    for line in V1_LINES {
        let response = match decode_request(line) {
            Ok(Request {
                id,
                body: RequestBody::Eval(spec),
            }) => match spec.to_eval_request(id, &workloads) {
                Ok(request) => {
                    let answer = service.submit(request).expect("runtime alive");
                    Response {
                        id: Some(id),
                        body: ResponseBody::Eval(EvalFrame {
                            report: answer.report,
                            cache_hit: answer.cache_hit,
                            worker: answer.worker as u64,
                        }),
                    }
                }
                Err(frame) => Response::error(Some(id), frame),
            },
            Ok(Request {
                id,
                body: RequestBody::Ping,
            }) => Response {
                id: Some(id),
                body: ResponseBody::Pong,
            },
            Ok(Request { id, .. }) => {
                panic!("corpus has no stats/metrics/snapshot ops (non-deterministic), got id {id}")
            }
            Err(frame) => Response::error(peek_id(line), frame),
        };
        out.push_str(line);
        out.push('\n');
        out.push_str("→ ");
        out.push_str(&encode_response(&response));
        out.push('\n');
    }
    service.shutdown();
    out
}

#[test]
fn v1_frames_without_arch_produce_byte_identical_responses() {
    let rendered = serve_corpus();
    let path = fixture_path();
    if std::env::var_os("CROSSLIGHT_GOLDEN_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|err| {
        panic!(
            "missing golden fixture {path:?} ({err}); run with CROSSLIGHT_GOLDEN_BLESS=1 to \
             create it"
        )
    });
    assert!(
        rendered == expected,
        "v1 back-compat drift: a pre-`arch` frame no longer produces the bytes it always \
         has.\n--- expected ---\n{expected}\n--- actual ---\n{rendered}"
    );
}
