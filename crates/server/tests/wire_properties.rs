//! Property tests of the wire protocol: every frame round-trips exactly,
//! and the decoder is total — malformed, truncated and adversarial input
//! produces typed errors, never panics.

use proptest::prelude::*;

use crosslight_core::performance::{InferenceLatency, InferenceMetrics};
use crosslight_core::simulator::SimulationReport;
use crosslight_core::variants::CrossLightVariant;
use crosslight_neural::layers::DotProductWorkload;
use crosslight_neural::workload::NetworkWorkload;
use crosslight_neural::zoo::PaperModel;
use crosslight_photonics::units::{MilliWatts, Picojoules, Seconds, SquareMillimeters, Watts};
use crosslight_server::json::Json;
use crosslight_server::wire::{
    decode_request, decode_response, encode_request, encode_response, ErrorFrame, ErrorKind,
    EvalFrame, EvalSpec, Request, RequestBody, Response, ResponseBody, StatsFrame,
    WireRuntimeStats, WireServerStats, WorkloadRef,
};

fn variant_from(index: usize) -> CrossLightVariant {
    CrossLightVariant::all()[index % 4]
}

fn model_from(index: usize) -> PaperModel {
    PaperModel::all()[index % 4]
}

fn spec_from(
    variant: usize,
    dims: (usize, usize, usize, usize),
    bits: u32,
    model: usize,
) -> EvalSpec {
    EvalSpec::crosslight(
        variant_from(variant),
        dims,
        bits,
        WorkloadRef::Model(model_from(model)),
    )
}

fn report_from(values: &[f64; 16], bits: u32) -> SimulationReport {
    SimulationReport {
        power: crosslight_core::power::AcceleratorPower {
            laser: MilliWatts::new(values[0]),
            tuning: MilliWatts::new(values[1]),
            detection: MilliWatts::new(values[2]),
            conversion: MilliWatts::new(values[3]),
            control: MilliWatts::new(values[4]),
        },
        area: crosslight_core::area::AcceleratorArea {
            mr_banks: SquareMillimeters::new(values[5]),
            arm_devices: SquareMillimeters::new(values[6]),
            unit_electronics: SquareMillimeters::new(values[7]),
        },
        metrics: InferenceMetrics {
            latency: InferenceLatency {
                conv_time: Seconds::new(values[8]),
                fc_time: Seconds::new(values[9]),
                electronic_time: Seconds::new(values[10]),
            },
            fps: values[11],
            energy_per_inference: Picojoules::new(values[12]),
            energy_per_bit_pj: values[13],
            kfps_per_watt: values[14],
            power: Watts::new(values[15]),
        },
        resolution_bits: bits,
    }
}

proptest! {
    /// Model-referencing eval requests round-trip for every id, variant,
    /// dimension tuple and resolution.
    #[test]
    fn eval_requests_round_trip(
        id in 0u64..u64::MAX,
        variant in 0usize..4,
        dims in (1usize..500, 1usize..500, 1usize..200, 1usize..200),
        bits in 1u32..32,
        model in 0usize..4,
    ) {
        let request = Request {
            id,
            body: RequestBody::Eval(spec_from(variant, dims, bits, model)),
        };
        let line = encode_request(&request);
        prop_assert_eq!(decode_request(&line).unwrap(), request);
    }

    /// Inline-workload requests round-trip, including arbitrary layer lists
    /// and names with characters that need escaping.
    #[test]
    fn inline_workload_requests_round_trip(
        id in 0u64..1_000_000,
        towers in 1usize..4,
        conv in proptest::collection::vec((1usize..10_000, 1usize..100_000), 0..6),
        fc in proptest::collection::vec((1usize..10_000, 1usize..100_000), 0..4),
        name_tag in 0u32..1000,
    ) {
        let layers = |pairs: &[(usize, usize)]| {
            pairs
                .iter()
                .map(|&(dot_length, dot_count)| DotProductWorkload { dot_length, dot_count })
                .collect::<Vec<_>>()
        };
        let workload = NetworkWorkload {
            name: format!("net \"{name_tag}\"\n\t✓"),
            conv_layers: layers(&conv),
            fc_layers: layers(&fc),
            towers,
        };
        let request = Request {
            id,
            body: RequestBody::Eval(EvalSpec::crosslight(
                CrossLightVariant::OptTed,
                (20, 150, 100, 60),
                16,
                WorkloadRef::Inline(workload),
            )),
        };
        let line = encode_request(&request);
        prop_assert_eq!(decode_request(&line).unwrap(), request);
    }

    /// Eval responses round-trip bit-exactly for arbitrary finite float
    /// reports spanning many orders of magnitude.
    #[test]
    fn eval_responses_round_trip_bit_exactly(
        id in 0u64..u64::MAX,
        cache_hit in 0u32..2,
        worker in 0u64..64,
        mantissas in proptest::collection::vec(-1.0f64..1.0, 16),
        scales in proptest::collection::vec(-300.0f64..300.0, 16),
        bits in 1u32..64,
    ) {
        let mut values = [0.0f64; 16];
        for i in 0..16 {
            values[i] = mantissas[i] * 10f64.powf(scales[i] / 2.0);
        }
        let response = Response {
            id: Some(id),
            body: ResponseBody::Eval(EvalFrame {
                report: report_from(&values, bits),
                cache_hit: cache_hit == 1,
                worker,
            }),
        };
        let line = encode_response(&response);
        let decoded = decode_response(&line).unwrap();
        prop_assert_eq!(&decoded, &response);
        // PartialEq on f64 is value equality; additionally pin the bit
        // patterns of a representative field.
        if let (ResponseBody::Eval(a), ResponseBody::Eval(b)) = (&decoded.body, &response.body) {
            prop_assert_eq!(
                a.report.metrics.fps.to_bits(),
                b.report.metrics.fps.to_bits()
            );
            prop_assert_eq!(
                a.report.power.laser.value().to_bits(),
                b.report.power.laser.value().to_bits()
            );
        }
    }

    /// Stats and error responses round-trip for arbitrary counter values.
    #[test]
    fn stats_and_error_responses_round_trip(
        counters in proptest::collection::vec(0u64..u64::MAX, 18),
        per_worker in proptest::collection::vec(0u64..1_000_000, 0..8),
        kind in 0usize..7,
        detail_tag in 0u32..1000,
    ) {
        let stats = Response {
            id: Some(counters[0]),
            body: ResponseBody::Stats(StatsFrame {
                server: WireServerStats {
                    connections_accepted: counters[1],
                    connections_active: counters[2],
                    requests_total: counters[3],
                    evals_ok: counters[4],
                    evals_failed: counters[5],
                    shed_total: counters[6],
                    malformed_total: counters[7],
                    oversized_total: counters[8],
                    queue_capacity: counters[9],
                    in_flight: counters[10],
                },
                runtime: WireRuntimeStats {
                    submitted: counters[11],
                    completed: counters[12],
                    cache_hits: counters[13],
                    cache_misses: counters[14],
                    cached_entries: counters[15],
                    prepared_configs: counters[16],
                    per_worker: per_worker.clone(),
                    queue_depths: per_worker.clone(),
                },
            }),
        };
        let line = encode_response(&stats);
        prop_assert_eq!(decode_response(&line).unwrap(), stats);

        let kinds = [
            ErrorKind::Malformed,
            ErrorKind::UnsupportedVersion,
            ErrorKind::Oversized,
            ErrorKind::Overloaded,
            ErrorKind::Evaluation,
            ErrorKind::ShuttingDown,
            ErrorKind::Unsupported,
        ];
        let error = Response::error(
            None,
            ErrorFrame::new(kinds[kind], format!("detail \\ \"{detail_tag}\"")),
        );
        let line = encode_response(&error);
        prop_assert_eq!(decode_response(&line).unwrap(), error);
    }

    /// Fuzz: arbitrary byte soup never panics the decoders — every outcome
    /// is a typed error (or, for the rare syntactically valid line, a
    /// decoded frame).
    #[test]
    fn arbitrary_bytes_never_panic_the_decoders(
        bytes in proptest::collection::vec(0u8..=255, 0..200),
    ) {
        let line = String::from_utf8_lossy(&bytes).into_owned();
        let _ = decode_request(&line);
        let _ = decode_response(&line);
        let _ = Json::parse(&line);
    }

    /// Fuzz: a well-formed eval frame naming an unknown architecture,
    /// variant or platform always decodes to a typed `unsupported` error —
    /// never `malformed`, never a panic.  Known names are excluded by
    /// construction (fuzzed names carry a `zz-` prefix no registered
    /// architecture, variant or platform uses).
    #[test]
    fn unknown_arch_names_decode_to_unsupported(
        id in 0u64..10_000,
        tag in 0u32..100_000,
        slot in 0usize..3,
        model in 0usize..4,
    ) {
        let name = format!("zz-{tag}");
        let model = model_from(model).wire_name();
        let line = match slot {
            // Unknown architecture family.
            0 => format!(
                r#"{{"v":1,"id":{id},"op":"eval","config":{{"arch":"{name}"}},"model":"{model}"}}"#
            ),
            // Unknown CrossLight variant label.
            1 => format!(
                r#"{{"v":1,"id":{id},"op":"eval","config":{{"variant":"{name}","dims":[20,150,100,60],"resolution_bits":16}},"model":"{model}"}}"#
            ),
            // Unknown electronic platform.
            _ => format!(
                r#"{{"v":1,"id":{id},"op":"eval","config":{{"arch":"electronic","platform":"{name}"}},"model":"{model}"}}"#
            ),
        };
        let err = decode_request(&line).unwrap_err();
        prop_assert_eq!(err.kind, ErrorKind::Unsupported, "{}", line);
    }

    /// Fuzz: printable JSON-ish soup (brackets, quotes, digits) never
    /// panics and truncations of valid frames decode to typed errors.
    #[test]
    fn truncated_frames_decode_to_typed_errors(
        id in 0u64..10_000,
        variant in 0usize..4,
        model in 0usize..4,
        cut_permille in 0usize..1000,
    ) {
        let request = Request {
            id,
            body: RequestBody::Eval(spec_from(variant, (20, 150, 100, 60), 16, model)),
        };
        let line = encode_request(&request);
        let cut = cut_permille * line.len() / 1000;
        // Cut on a char boundary (the encoding here is pure ASCII).
        let truncated = &line[..cut];
        if cut == line.len() {
            prop_assert!(decode_request(truncated).is_ok());
        } else {
            let err = decode_request(truncated).unwrap_err();
            prop_assert!(
                matches!(err.kind, ErrorKind::Malformed),
                "truncated frame must be malformed, got {:?}",
                err
            );
        }
    }

    /// The same totality holds on the response side: a peer that dies
    /// mid-write hands the reader a prefix of a valid eval response, and
    /// every such prefix decodes to a typed malformed error, never a
    /// panic and never a silently wrong frame.
    #[test]
    fn truncated_responses_decode_to_typed_errors(
        id in 0u64..10_000,
        mantissas in proptest::collection::vec(-1.0f64..1.0, 16),
        cut_permille in 0usize..1000,
    ) {
        let mut values = [0.0f64; 16];
        for (slot, mantissa) in values.iter_mut().zip(&mantissas) {
            *slot = mantissa * 1e3;
        }
        let response = Response {
            id: Some(id),
            body: ResponseBody::Eval(EvalFrame {
                report: report_from(&values, 16),
                cache_hit: false,
                worker: 3,
            }),
        };
        let line = encode_response(&response);
        let cut = cut_permille * line.len() / 1000;
        let truncated = &line[..cut];
        if cut == line.len() {
            prop_assert_eq!(decode_response(truncated).unwrap(), response);
        } else {
            let err = decode_response(truncated).unwrap_err();
            prop_assert!(
                matches!(err.kind, ErrorKind::Malformed),
                "truncated response must be malformed, got {:?}",
                err
            );
        }
    }
}

#[test]
fn special_float_values_round_trip_through_reports() {
    // NaN compares unequal, so pin bit-level behaviour explicitly.
    let values = [
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        0.0,
        -0.0,
        f64::MIN_POSITIVE,
        5e-324,
        f64::MAX,
        -f64::MAX,
        1.0,
        -1.0,
        std::f64::consts::PI,
        1e-300,
        -1e300,
        42.5,
        -0.125,
    ];
    let report = report_from(&values, 16);
    let response = Response {
        id: Some(1),
        body: ResponseBody::Eval(EvalFrame {
            report,
            cache_hit: false,
            worker: 0,
        }),
    };
    let decoded = decode_response(&encode_response(&response)).unwrap();
    let ResponseBody::Eval(frame) = decoded.body else {
        panic!("expected eval frame");
    };
    let got = [
        frame.report.power.laser.value(),
        frame.report.power.tuning.value(),
        frame.report.power.detection.value(),
        frame.report.power.conversion.value(),
        frame.report.power.control.value(),
        frame.report.area.mr_banks.value(),
        frame.report.area.arm_devices.value(),
        frame.report.area.unit_electronics.value(),
        frame.report.metrics.latency.conv_time.value(),
        frame.report.metrics.latency.fc_time.value(),
        frame.report.metrics.latency.electronic_time.value(),
        frame.report.metrics.fps,
        frame.report.metrics.energy_per_inference.value(),
        frame.report.metrics.energy_per_bit_pj,
        frame.report.metrics.kfps_per_watt,
        frame.report.metrics.power.value(),
    ];
    for (i, (expected, actual)) in values.iter().zip(&got).enumerate() {
        if expected.is_nan() {
            assert!(actual.is_nan(), "field {i}");
        } else {
            assert_eq!(expected.to_bits(), actual.to_bits(), "field {i}");
        }
    }
}

#[test]
fn oversized_like_inputs_are_rejected_without_panic() {
    // A deeply nested line (adversarial stack attack) and a very long flat
    // line both decode to typed errors.
    let deep = format!(
        "{{\"v\":1,\"id\":1,\"op\":{}1{}",
        "[".repeat(500),
        "]".repeat(500)
    );
    assert_eq!(
        decode_request(&deep).unwrap_err().kind,
        ErrorKind::Malformed
    );
    let long = format!("{{\"v\":1,\"id\":1,\"op\":\"{}\"}}", "x".repeat(1 << 20));
    assert_eq!(
        decode_request(&long).unwrap_err().kind,
        ErrorKind::Malformed
    );
}
