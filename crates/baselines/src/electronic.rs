//! Electronic platform reference data (Fig. 7 and Table III).
//!
//! The paper takes its CPU/GPU/electronic-accelerator numbers from the Capra
//! et al. survey ("An updated survey of efficient hardware architectures for
//! accelerating deep convolutional neural networks", Future Internet 2020)
//! rather than simulating those platforms; this module records the same
//! literature values so the comparison tables can be regenerated.

use serde::{Deserialize, Serialize};

/// One electronic platform row of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElectronicPlatform {
    /// Platform name as printed in the paper.
    pub name: &'static str,
    /// Average energy per bit in pJ/bit (Table III column 2).
    pub avg_epb_pj: f64,
    /// Average performance per watt in kFPS/W (Table III column 3).
    pub avg_kfps_per_watt: f64,
    /// Nominal board/chip power in watts (used for the Fig. 7 power
    /// comparison; vendor TDP figures).
    pub power_watts: f64,
}

/// Nvidia Tesla P100 GPU.
pub const P100: ElectronicPlatform = ElectronicPlatform {
    name: "P100",
    avg_epb_pj: 971.31,
    avg_kfps_per_watt: 24.9,
    power_watts: 300.0,
};

/// Intel Xeon Platinum 9282 CPU.
pub const IXP_9282: ElectronicPlatform = ElectronicPlatform {
    name: "IXP 9282",
    avg_epb_pj: 5099.68,
    avg_kfps_per_watt: 2.39,
    power_watts: 400.0,
};

/// AMD Threadripper 3970x CPU.
pub const AMD_TR: ElectronicPlatform = ElectronicPlatform {
    name: "AMD-TR",
    avg_epb_pj: 5831.18,
    avg_kfps_per_watt: 2.09,
    power_watts: 280.0,
};

/// DaDianNao ASIC accelerator.
pub const DADIANNAO: ElectronicPlatform = ElectronicPlatform {
    name: "DaDianNao",
    avg_epb_pj: 58.33,
    avg_kfps_per_watt: 0.65,
    power_watts: 15.9,
};

/// Google Edge TPU.
pub const EDGE_TPU: ElectronicPlatform = ElectronicPlatform {
    name: "Edge TPU",
    avg_epb_pj: 697.37,
    avg_kfps_per_watt: 17.53,
    power_watts: 2.0,
};

/// NullHop FPGA accelerator.
pub const NULL_HOP: ElectronicPlatform = ElectronicPlatform {
    name: "Null Hop",
    avg_epb_pj: 2727.43,
    avg_kfps_per_watt: 4.48,
    power_watts: 3.2,
};

/// All electronic platforms in the order Table III lists them.
#[must_use]
pub fn all_platforms() -> [ElectronicPlatform; 6] {
    [P100, IXP_9282, AMD_TR, DADIANNAO, EDGE_TPU, NULL_HOP]
}

/// The subset the paper calls edge/mobile electronic accelerators (whose
/// power CrossLight does not undercut, per the Fig. 7 discussion).
#[must_use]
pub fn edge_accelerators() -> [ElectronicPlatform; 2] {
    [EDGE_TPU, NULL_HOP]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_values_are_recorded_verbatim() {
        assert_eq!(P100.avg_epb_pj, 971.31);
        assert_eq!(P100.avg_kfps_per_watt, 24.9);
        assert_eq!(IXP_9282.avg_epb_pj, 5099.68);
        assert_eq!(AMD_TR.avg_kfps_per_watt, 2.09);
        assert_eq!(DADIANNAO.avg_epb_pj, 58.33);
        assert_eq!(EDGE_TPU.avg_kfps_per_watt, 17.53);
        assert_eq!(NULL_HOP.avg_epb_pj, 2727.43);
        assert_eq!(all_platforms().len(), 6);
    }

    #[test]
    fn gpu_and_edge_tpu_beat_the_cpus_in_efficiency() {
        for cpu in [IXP_9282, AMD_TR] {
            assert!(P100.avg_kfps_per_watt > cpu.avg_kfps_per_watt);
            assert!(EDGE_TPU.avg_kfps_per_watt > cpu.avg_kfps_per_watt);
            assert!(P100.avg_epb_pj < cpu.avg_epb_pj);
        }
    }

    #[test]
    fn edge_accelerators_draw_single_digit_watts() {
        for p in edge_accelerators() {
            assert!(p.power_watts < 10.0);
        }
    }
}
