//! Common evaluation interface for photonic accelerators.

use serde::{Deserialize, Serialize};

use crosslight_core::error::{ArchitectureError, Result};
use crosslight_core::simulator::{AverageMetrics, CrossLightSimulator, SimulationReport};
use crosslight_core::variants::CrossLightVariant;
use crosslight_neural::workload::NetworkWorkload;

/// The metrics every accelerator reports for one workload — the columns of
/// the paper's Fig. 7, Fig. 8 and Table III.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorReport {
    /// Total accelerator power in watts.
    pub power_watts: f64,
    /// Latency of one inference in seconds.
    pub latency_s: f64,
    /// Inferences per second.
    pub fps: f64,
    /// Energy per operand bit in pJ/bit.
    pub energy_per_bit_pj: f64,
    /// Performance per watt in kFPS/W.
    pub kfps_per_watt: f64,
    /// Native weight resolution of the accelerator in bits.
    pub resolution_bits: u32,
    /// Accelerator area in mm².
    pub area_mm2: f64,
}

impl AcceleratorReport {
    /// Projects a CrossLight [`SimulationReport`] onto the common report —
    /// the single conversion used by both the serial adapter below and the
    /// runtime-backed experiment paths, so they agree bit-for-bit.
    #[must_use]
    pub fn from_simulation(report: &SimulationReport) -> Self {
        Self {
            power_watts: report.power.total_watts().value(),
            latency_s: report.metrics.latency.total().value(),
            fps: report.metrics.fps,
            energy_per_bit_pj: report.metrics.energy_per_bit_pj,
            kfps_per_watt: report.metrics.kfps_per_watt,
            resolution_bits: report.resolution_bits,
            area_mm2: report.area.total().value(),
        }
    }

    /// Averages per-workload reports fieldwise, in slice order, through
    /// [`AverageMetrics::column_mean`] — the same accumulation path
    /// `AverageMetrics::from_reports` uses in the core crate, so the two
    /// averaged tables agree bit-for-bit on how a mean is taken.
    ///
    /// All reports must come from the same accelerator: resolution and area
    /// are workload-independent, so they are taken from the first report.
    ///
    /// # Errors
    ///
    /// Errors on an empty report list.
    pub fn average(reports: &[Self]) -> Result<Self> {
        let Some(first) = reports.first() else {
            return Err(ArchitectureError::MappingFailed {
                reason: "cannot average over an empty report list".into(),
            });
        };
        Ok(Self {
            power_watts: AverageMetrics::column_mean(reports, |r| r.power_watts)?,
            latency_s: AverageMetrics::column_mean(reports, |r| r.latency_s)?,
            fps: AverageMetrics::column_mean(reports, |r| r.fps)?,
            energy_per_bit_pj: AverageMetrics::column_mean(reports, |r| r.energy_per_bit_pj)?,
            kfps_per_watt: AverageMetrics::column_mean(reports, |r| r.kfps_per_watt)?,
            resolution_bits: first.resolution_bits,
            area_mm2: first.area_mm2,
        })
    }
}

/// A photonic DNN accelerator that can be evaluated on a network workload.
///
/// The trait is object-safe so experiment harnesses can iterate over a
/// heterogeneous list of accelerators.
pub trait PhotonicAccelerator {
    /// Display name used in figures and tables.
    fn name(&self) -> String;

    /// Evaluates one inference workload.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ArchitectureError`] if the underlying model fails
    /// (does not happen for the built-in accelerators on valid workloads).
    fn evaluate(&self, workload: &NetworkWorkload) -> Result<AcceleratorReport>;

    /// Evaluates several workloads and averages the headline metrics.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors; errors on an empty workload list.
    fn evaluate_average(&self, workloads: &[NetworkWorkload]) -> Result<AcceleratorReport> {
        if workloads.is_empty() {
            return Err(ArchitectureError::MappingFailed {
                reason: "cannot average over an empty workload list".into(),
            });
        }
        let reports: Vec<AcceleratorReport> = workloads
            .iter()
            .map(|w| self.evaluate(w))
            .collect::<std::result::Result<_, _>>()?;
        AcceleratorReport::average(&reports)
    }
}

/// Adapter exposing a CrossLight variant through the common trait.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrossLightAccelerator {
    variant: CrossLightVariant,
}

impl CrossLightAccelerator {
    /// Creates an adapter for the given variant.
    #[must_use]
    pub fn new(variant: CrossLightVariant) -> Self {
        Self { variant }
    }

    /// Returns the wrapped variant.
    #[must_use]
    pub fn variant(&self) -> CrossLightVariant {
        self.variant
    }
}

impl PhotonicAccelerator for CrossLightAccelerator {
    fn name(&self) -> String {
        self.variant.label().to_string()
    }

    fn evaluate(&self, workload: &NetworkWorkload) -> Result<AcceleratorReport> {
        let simulator = CrossLightSimulator::new(self.variant.config());
        let report = simulator.evaluate(workload)?;
        Ok(AcceleratorReport::from_simulation(&report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crosslight_neural::zoo::PaperModel;

    fn workloads() -> Vec<NetworkWorkload> {
        PaperModel::all()
            .iter()
            .map(|m| NetworkWorkload::from_spec(&m.spec()).unwrap())
            .collect()
    }

    #[test]
    fn crosslight_adapter_reports_consistent_metrics() {
        let acc = CrossLightAccelerator::new(CrossLightVariant::OptTed);
        assert_eq!(acc.name(), "Cross_opt_TED");
        assert_eq!(acc.variant(), CrossLightVariant::OptTed);
        let w = &workloads()[0];
        let report = acc.evaluate(w).unwrap();
        assert!((report.fps - 1.0 / report.latency_s).abs() / report.fps < 1e-9);
        assert!(
            (report.kfps_per_watt - report.fps / 1000.0 / report.power_watts).abs()
                / report.kfps_per_watt
                < 1e-9
        );
        assert_eq!(report.resolution_bits, 16);
    }

    #[test]
    fn averaging_over_models_works_through_the_trait() {
        let acc: Box<dyn PhotonicAccelerator> =
            Box::new(CrossLightAccelerator::new(CrossLightVariant::OptTed));
        let avg = acc.evaluate_average(&workloads()).unwrap();
        assert!(avg.fps > 0.0 && avg.energy_per_bit_pj > 0.0);
        assert!(acc.evaluate_average(&[]).is_err());
    }
}
