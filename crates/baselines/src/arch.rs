//! Architecture-generic evaluation API: the [`ArchSpec`] backend zoo.
//!
//! Every accelerator the workspace can evaluate — the four CrossLight
//! variants and any dimensioned CrossLight configuration, DEAP-CNN,
//! HolyLight, the electronic reference platforms, the symmetric-MRR crossbar
//! and LiteCON — is described by one [`ArchSpec`] value.  A spec knows three
//! things:
//!
//! 1. **Its canonical identity** ([`ArchSpec::canonical_key`]): an
//!    [`ArchKey`] with a stable FNV-1a fingerprint.  CrossLight specs key to
//!    `ArchKey::CrossLight` with the *exact* pre-zoo [`ConfigKey`] hash
//!    stream, so runtime caches, shard routing and worker assignment are
//!    bit-identical to what they were before other architectures existed.
//! 2. **How to simulate itself** ([`ArchSpec::simulate`]): every backend
//!    produces a full core [`SimulationReport`] (power/area breakdown +
//!    inference metrics), so one wire protocol and one cache serve the whole
//!    zoo.
//! 3. **Its names** ([`ArchSpec::arch_name`] for the wire,
//!    [`ArchSpec::label`] for tables).
//!
//! The [`AcceleratorModel`] trait is the object-safe view of the same
//! contract, for harnesses that iterate over heterogeneous backend lists.
//!
//! [`ConfigKey`]: crosslight_core::canonical::ConfigKey

use serde::{Deserialize, Serialize};

use crosslight_core::area::{accelerator_area, AcceleratorArea};
use crosslight_core::canonical::{ArchKey, BackendKey};
use crosslight_core::config::CrossLightConfig;
use crosslight_core::error::Result;
use crosslight_core::performance::{inference_metrics, InferenceLatency, InferenceMetrics};
use crosslight_core::power::{accelerator_power, AcceleratorPower};
use crosslight_core::simulator::{CrossLightSimulator, SimulationReport};
use crosslight_neural::fingerprint::fingerprint;
use crosslight_neural::workload::NetworkWorkload;
use crosslight_photonics::units::{MilliWatts, Picojoules, Seconds, SquareMillimeters, Watts};

use crate::deap_cnn::{DeapCnn, DEAP_RESOLUTION_BITS};
use crate::electronic::{self, ElectronicPlatform};
use crate::holylight::{HolyLight, HOLYLIGHT_RESOLUTION_BITS, HOLYLIGHT_UNIT_SIZE};
use crate::litecon::LiteCon;
use crate::symmetric_crossbar::SymmetricCrossbar;

/// Backend tags used inside [`BackendKey`]s (part of the cache contract —
/// never renumber).
mod tag {
    pub const DEAP_CNN: u8 = 1;
    pub const HOLYLIGHT: u8 = 2;
    pub const ELECTRONIC: u8 = 3;
    pub const SYMMETRIC_CROSSBAR: u8 = 4;
    pub const LITECON: u8 = 5;
}

/// Nominal operand resolution attributed to the electronic reference
/// platforms (their survey rows are resolution-agnostic; int8 inference is
/// the common deployment they describe).
pub const ELECTRONIC_NOMINAL_BITS: u32 = 8;

/// One simulatable accelerator architecture, fully parameterized.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArchSpec {
    /// A CrossLight configuration (any variant, dims and resolution).
    CrossLight(CrossLightConfig),
    /// The DEAP-CNN baseline.
    DeapCnn(DeapCnn),
    /// The HolyLight baseline (unit count is a knob).
    HolyLight(HolyLight),
    /// An electronic reference platform (survey row).
    Electronic(ElectronicPlatform),
    /// The symmetric-MRR crossbar (rows × cols × resolution knobs).
    SymmetricCrossbar(SymmetricCrossbar),
    /// LiteCON (units × unit size × resolution knobs).
    LiteCon(LiteCon),
}

impl ArchSpec {
    /// The wire name of this spec's architecture family.
    #[must_use]
    pub fn arch_name(&self) -> &'static str {
        match self {
            Self::CrossLight(_) => "crosslight",
            Self::DeapCnn(_) => "deap-cnn",
            Self::HolyLight(_) => "holylight",
            Self::Electronic(_) => "electronic",
            Self::SymmetricCrossbar(_) => "symmetric-crossbar",
            Self::LiteCon(_) => "litecon",
        }
    }

    /// Human-readable label for tables and figures.
    #[must_use]
    pub fn label(&self) -> String {
        use crate::accelerator::PhotonicAccelerator;
        match self {
            Self::CrossLight(config) => {
                // Name the design family when it matches a paper variant, so
                // two variants with the same dimensions stay distinguishable
                // in tables.
                let family = crosslight_core::variants::CrossLightVariant::all()
                    .into_iter()
                    .find(|v| v.design() == config.design)
                    .map_or("CrossLight", |v| v.label());
                format!(
                    "{family}[{},{},{},{}]@{}b",
                    config.conv_unit_size,
                    config.fc_unit_size,
                    config.conv_units,
                    config.fc_units,
                    config.resolution_bits
                )
            }
            Self::DeapCnn(deap) => deap.name(),
            Self::HolyLight(h) => {
                if h.units() == crate::holylight::HOLYLIGHT_UNITS {
                    h.name()
                } else {
                    format!("{}_{}u", h.name(), h.units())
                }
            }
            Self::Electronic(p) => p.name.to_string(),
            Self::SymmetricCrossbar(xbar) => xbar.name(),
            Self::LiteCon(lc) => lc.name(),
        }
    }

    /// Canonical cache/sharding identity.  CrossLight specs produce the
    /// exact pre-zoo key; every other backend packs its knobs into a tagged
    /// [`BackendKey`].
    #[must_use]
    pub fn canonical_key(&self) -> ArchKey {
        match self {
            Self::CrossLight(config) => ArchKey::CrossLight(config.canonical_key()),
            Self::DeapCnn(deap) => ArchKey::Backend(BackendKey::new(
                tag::DEAP_CNN,
                [deap.config().fingerprint(), 0, 0, 0],
            )),
            Self::HolyLight(h) => ArchKey::Backend(BackendKey::new(
                tag::HOLYLIGHT,
                [h.units() as u64, HOLYLIGHT_UNIT_SIZE as u64, 0, 0],
            )),
            Self::Electronic(p) => ArchKey::Backend(BackendKey::new(
                tag::ELECTRONIC,
                [
                    fingerprint(&p.name),
                    p.avg_epb_pj.to_bits(),
                    p.avg_kfps_per_watt.to_bits(),
                    p.power_watts.to_bits(),
                ],
            )),
            Self::SymmetricCrossbar(xbar) => ArchKey::Backend(BackendKey::new(
                tag::SYMMETRIC_CROSSBAR,
                [
                    xbar.rows() as u64,
                    xbar.cols() as u64,
                    u64::from(xbar.resolution_bits()),
                    0,
                ],
            )),
            Self::LiteCon(lc) => ArchKey::Backend(BackendKey::new(
                tag::LITECON,
                [
                    lc.units() as u64,
                    lc.unit_size() as u64,
                    u64::from(lc.resolution_bits()),
                    0,
                ],
            )),
        }
    }

    /// Platform-stable fingerprint of [`canonical_key`](Self::canonical_key).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.canonical_key().fingerprint()
    }

    /// The native operand resolution this spec reports.
    #[must_use]
    pub fn resolution_bits(&self) -> u32 {
        match self {
            Self::CrossLight(config) => config.resolution_bits,
            Self::DeapCnn(_) => DEAP_RESOLUTION_BITS,
            Self::HolyLight(_) => HOLYLIGHT_RESOLUTION_BITS,
            Self::Electronic(_) => ELECTRONIC_NOMINAL_BITS,
            Self::SymmetricCrossbar(xbar) => xbar.resolution_bits(),
            Self::LiteCon(lc) => lc.resolution_bits(),
        }
    }

    /// The inner CrossLight configuration, if this spec is a CrossLight one.
    #[must_use]
    pub fn crosslight_config(&self) -> Option<&CrossLightConfig> {
        match self {
            Self::CrossLight(config) => Some(config),
            _ => None,
        }
    }

    /// Evaluates one inference workload to a full core report.
    ///
    /// The CrossLight arm runs the real simulator; DEAP-CNN reuses the core
    /// power/area/latency models under its own design choices; the remaining
    /// photonic backends synthesize the report from their analytical models
    /// (per-phase latency split, all metrics derived from the total latency
    /// so the report is self-consistent); the electronic arm synthesizes a
    /// deterministic report from its survey row.
    ///
    /// # Errors
    ///
    /// Propagates the backend's configuration/mapping errors.
    pub fn simulate(&self, workload: &NetworkWorkload) -> Result<SimulationReport> {
        match self {
            Self::CrossLight(config) => CrossLightSimulator::new(*config).evaluate(workload),
            Self::DeapCnn(deap) => {
                let config = deap.config();
                let power = accelerator_power(config)?;
                let area = accelerator_area(config);
                let metrics = inference_metrics(workload, config, &power)?;
                Ok(SimulationReport {
                    power,
                    area,
                    metrics,
                    resolution_bits: DEAP_RESOLUTION_BITS,
                })
            }
            Self::HolyLight(h) => synthesize(
                h.power_breakdown(),
                h.area_breakdown(),
                h.pass_latency(),
                h.phase_cycles(&workload.conv_layers)?,
                h.phase_cycles(&workload.fc_layers)?,
                workload,
                HOLYLIGHT_RESOLUTION_BITS,
            ),
            Self::SymmetricCrossbar(xbar) => synthesize(
                xbar.power_breakdown(),
                xbar.area_breakdown(),
                xbar.pass_latency(),
                xbar.phase_cycles(&workload.conv_layers)?,
                xbar.phase_cycles(&workload.fc_layers)?,
                workload,
                xbar.resolution_bits(),
            ),
            Self::LiteCon(lc) => synthesize(
                lc.power_breakdown(),
                lc.area_breakdown(),
                lc.pass_latency(),
                lc.phase_cycles(&workload.conv_layers)?,
                lc.phase_cycles(&workload.fc_layers)?,
                workload,
                lc.resolution_bits(),
            ),
            Self::Electronic(p) => Ok(electronic_report(p)),
        }
    }

    /// One default spec per architecture family, in comparison-table order.
    #[must_use]
    pub fn zoo_defaults() -> Vec<ArchSpec> {
        let mut specs = vec![
            ArchSpec::CrossLight(crosslight_core::variants::CrossLightVariant::OptTed.config()),
            ArchSpec::DeapCnn(DeapCnn::new()),
            ArchSpec::HolyLight(HolyLight::new()),
            ArchSpec::SymmetricCrossbar(SymmetricCrossbar::new()),
            ArchSpec::LiteCon(LiteCon::new()),
        ];
        specs.extend(electronic::all_platforms().map(ArchSpec::Electronic));
        specs
    }
}

/// Assembles a self-consistent [`SimulationReport`] from an analytical
/// backend's power/area breakdowns and per-phase pass counts.
fn synthesize(
    power: AcceleratorPower,
    area: AcceleratorArea,
    pass_latency: Seconds,
    conv_cycles: u64,
    fc_cycles: u64,
    workload: &NetworkWorkload,
    resolution_bits: u32,
) -> Result<SimulationReport> {
    let towers = workload.towers as f64;
    let latency = InferenceLatency {
        conv_time: Seconds::new(pass_latency.value() * conv_cycles as f64 * towers),
        fc_time: Seconds::new(pass_latency.value() * fc_cycles as f64 * towers),
        electronic_time: Seconds::new(0.0),
    };
    let total_s = latency.total().value();
    let power_w = power.total_watts().value();
    let fps = 1.0 / total_s;
    let energy_pj = power_w * total_s * 1e12;
    let operand_bits = 2.0 * workload.total_macs() as f64 * f64::from(resolution_bits);
    Ok(SimulationReport {
        power,
        area,
        metrics: InferenceMetrics {
            latency,
            fps,
            energy_per_inference: Picojoules::new(energy_pj),
            energy_per_bit_pj: energy_pj / operand_bits,
            kfps_per_watt: fps / 1000.0 / power_w,
            power: Watts::new(power_w),
        },
        resolution_bits,
    })
}

/// Deterministic synthesized report for an electronic survey row: the row's
/// averages are taken at face value (workload independent), with throughput
/// derived so `fps / 1000 / power == kfps_per_watt` holds exactly.
fn electronic_report(p: &ElectronicPlatform) -> SimulationReport {
    let fps = p.avg_kfps_per_watt * p.power_watts * 1000.0;
    let latency_s = 1.0 / fps;
    let latency = InferenceLatency {
        conv_time: Seconds::new(0.0),
        fc_time: Seconds::new(0.0),
        electronic_time: Seconds::new(latency_s),
    };
    SimulationReport {
        power: AcceleratorPower {
            laser: MilliWatts::new(0.0),
            tuning: MilliWatts::new(0.0),
            detection: MilliWatts::new(0.0),
            conversion: MilliWatts::new(0.0),
            control: MilliWatts::new(p.power_watts * 1000.0),
        },
        area: AcceleratorArea {
            mr_banks: SquareMillimeters::new(0.0),
            arm_devices: SquareMillimeters::new(0.0),
            unit_electronics: SquareMillimeters::new(0.0),
        },
        metrics: InferenceMetrics {
            latency,
            fps,
            energy_per_inference: Picojoules::new(p.power_watts * latency_s * 1e12),
            energy_per_bit_pj: p.avg_epb_pj,
            kfps_per_watt: p.avg_kfps_per_watt,
            power: Watts::new(p.power_watts),
        },
        resolution_bits: ELECTRONIC_NOMINAL_BITS,
    }
}

/// Object-safe view of the architecture zoo, for heterogeneous backend lists.
pub trait AcceleratorModel {
    /// Wire name of the architecture family.
    fn arch(&self) -> &'static str;

    /// Human-readable label for tables and figures.
    fn label(&self) -> String;

    /// Canonical cache/sharding identity.
    fn canonical_key(&self) -> ArchKey;

    /// Evaluates one inference workload to a full core report.
    ///
    /// # Errors
    ///
    /// Propagates the backend's configuration/mapping errors.
    fn simulate(&self, workload: &NetworkWorkload) -> Result<SimulationReport>;
}

impl AcceleratorModel for ArchSpec {
    fn arch(&self) -> &'static str {
        self.arch_name()
    }

    fn label(&self) -> String {
        ArchSpec::label(self)
    }

    fn canonical_key(&self) -> ArchKey {
        ArchSpec::canonical_key(self)
    }

    fn simulate(&self, workload: &NetworkWorkload) -> Result<SimulationReport> {
        ArchSpec::simulate(self, workload)
    }
}

macro_rules! impl_accelerator_model_via_spec {
    ($($backend:ty => $arm:ident),* $(,)?) => {$(
        impl AcceleratorModel for $backend {
            fn arch(&self) -> &'static str {
                ArchSpec::$arm(*self).arch_name()
            }

            fn label(&self) -> String {
                ArchSpec::$arm(*self).label()
            }

            fn canonical_key(&self) -> ArchKey {
                ArchSpec::$arm(*self).canonical_key()
            }

            fn simulate(&self, workload: &NetworkWorkload) -> Result<SimulationReport> {
                ArchSpec::$arm(*self).simulate(workload)
            }
        }
    )*};
}

impl_accelerator_model_via_spec! {
    DeapCnn => DeapCnn,
    HolyLight => HolyLight,
    ElectronicPlatform => Electronic,
    SymmetricCrossbar => SymmetricCrossbar,
    LiteCon => LiteCon,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::{AcceleratorReport, PhotonicAccelerator};
    use crosslight_core::variants::CrossLightVariant;
    use crosslight_neural::zoo::PaperModel;

    fn workloads() -> Vec<NetworkWorkload> {
        PaperModel::all()
            .iter()
            .map(|m| NetworkWorkload::from_spec(&m.spec()).unwrap())
            .collect()
    }

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1e-300)
    }

    #[test]
    fn crosslight_specs_reuse_the_pre_zoo_identity() {
        for variant in CrossLightVariant::all() {
            let config = variant.config();
            let spec = ArchSpec::CrossLight(config);
            assert_eq!(
                spec.canonical_key(),
                ArchKey::CrossLight(config.canonical_key())
            );
            assert_eq!(spec.fingerprint(), config.fingerprint());
            assert_eq!(spec.arch_name(), "crosslight");
            assert_eq!(spec.crosslight_config(), Some(&config));
        }
    }

    #[test]
    fn zoo_fingerprints_are_pairwise_distinct() {
        let mut specs = ArchSpec::zoo_defaults();
        specs.push(ArchSpec::HolyLight(HolyLight::with_units(125)));
        specs.push(ArchSpec::SymmetricCrossbar(
            SymmetricCrossbar::with_dims(32, 64, 8).unwrap(),
        ));
        specs.push(ArchSpec::SymmetricCrossbar(
            SymmetricCrossbar::with_dims(64, 32, 8).unwrap(),
        ));
        specs.push(ArchSpec::LiteCon(LiteCon::with_dims(128, 32, 8).unwrap()));
        let fingerprints: Vec<u64> = specs.iter().map(ArchSpec::fingerprint).collect();
        for (i, a) in fingerprints.iter().enumerate() {
            for (j, b) in fingerprints.iter().enumerate().skip(i + 1) {
                assert_ne!(a, b, "{} vs {}", specs[i].label(), specs[j].label());
            }
            let _ = i;
        }
        for spec in &specs {
            if spec.crosslight_config().is_none() {
                assert!(spec.canonical_key().config_key().is_none());
            }
        }
    }

    #[test]
    fn simulate_matches_evaluate_for_every_photonic_backend() {
        let w = &workloads()[1];
        let cases: Vec<(ArchSpec, AcceleratorReport)> = vec![
            (
                ArchSpec::DeapCnn(DeapCnn::new()),
                DeapCnn::new().evaluate(w).unwrap(),
            ),
            (
                ArchSpec::HolyLight(HolyLight::new()),
                HolyLight::new().evaluate(w).unwrap(),
            ),
            (
                ArchSpec::SymmetricCrossbar(SymmetricCrossbar::new()),
                SymmetricCrossbar::new().evaluate(w).unwrap(),
            ),
            (
                ArchSpec::LiteCon(LiteCon::new()),
                LiteCon::new().evaluate(w).unwrap(),
            ),
        ];
        for (spec, direct) in cases {
            let report = spec.simulate(w).unwrap();
            let projected = AcceleratorReport::from_simulation(&report);
            assert!(
                close(projected.power_watts, direct.power_watts),
                "{}: power {} vs {}",
                spec.label(),
                projected.power_watts,
                direct.power_watts
            );
            assert!(
                close(projected.latency_s, direct.latency_s),
                "{}",
                spec.label()
            );
            assert!(close(projected.fps, direct.fps), "{}", spec.label());
            assert!(
                close(projected.energy_per_bit_pj, direct.energy_per_bit_pj),
                "{}",
                spec.label()
            );
            assert!(
                close(projected.kfps_per_watt, direct.kfps_per_watt),
                "{}",
                spec.label()
            );
            assert!(
                close(projected.area_mm2, direct.area_mm2),
                "{}",
                spec.label()
            );
            assert_eq!(projected.resolution_bits, direct.resolution_bits);
        }
    }

    #[test]
    fn crosslight_simulate_is_the_real_simulator_bit_for_bit() {
        let w = &workloads()[0];
        let config = CrossLightVariant::OptTed.config();
        let via_spec = ArchSpec::CrossLight(config).simulate(w).unwrap();
        let direct = CrossLightSimulator::new(config).evaluate(w).unwrap();
        assert_eq!(via_spec, direct);
    }

    #[test]
    fn electronic_reports_are_self_consistent_and_workload_independent() {
        for p in electronic::all_platforms() {
            let spec = ArchSpec::Electronic(p);
            let a = spec.simulate(&workloads()[0]).unwrap();
            let b = spec.simulate(&workloads()[3]).unwrap();
            assert_eq!(a, b, "{}", p.name);
            assert!(close(a.metrics.kfps_per_watt, p.avg_kfps_per_watt));
            assert!(close(a.metrics.energy_per_bit_pj, p.avg_epb_pj));
            assert!(close(a.power.total_watts().value(), p.power_watts));
            assert!(close(
                a.metrics.fps / 1000.0 / a.power.total_watts().value(),
                a.metrics.kfps_per_watt
            ));
            assert_eq!(spec.resolution_bits(), ELECTRONIC_NOMINAL_BITS);
        }
    }

    #[test]
    fn trait_objects_cover_the_whole_zoo() {
        let models: Vec<Box<dyn AcceleratorModel>> = vec![
            Box::new(ArchSpec::CrossLight(CrossLightVariant::Base.config())),
            Box::new(DeapCnn::new()),
            Box::new(HolyLight::new()),
            Box::new(electronic::P100),
            Box::new(SymmetricCrossbar::new()),
            Box::new(LiteCon::new()),
        ];
        let w = &workloads()[0];
        for model in &models {
            let report = model.simulate(w).unwrap();
            assert!(report.metrics.fps > 0.0, "{}", model.label());
            assert!(!model.arch().is_empty());
            let _ = model.canonical_key().fingerprint();
        }
        assert_eq!(models[3].label(), "P100");
        assert_eq!(models[4].arch(), "symmetric-crossbar");
    }

    #[test]
    fn zoo_defaults_span_every_family() {
        let specs = ArchSpec::zoo_defaults();
        assert_eq!(specs.len(), 11); // 1 CrossLight + 4 photonic/electronic families…
        let mut names: Vec<&str> = specs.iter().map(ArchSpec::arch_name).collect();
        names.dedup();
        assert_eq!(
            names,
            vec![
                "crosslight",
                "deap-cnn",
                "holylight",
                "symmetric-crossbar",
                "litecon",
                "electronic"
            ]
        );
    }
}
