//! DEAP-CNN baseline model (Bangari et al., IEEE JQE 2020).
//!
//! DEAP-CNN implements CNN inference with photonic convolution units sized to
//! the filter kernels.  Relative to CrossLight (paper §II and §V) the design
//! choices that matter for the comparison are:
//!
//! * **Thermo-optic value imprinting** — kernel values are set with TO phase
//!   tuning, so every reprogramming of the MR banks takes the 4 µs Table II
//!   latency and mW-scale hold power instead of CrossLight's 20 ns / µW EO
//!   tuning.
//! * **Convolution-scale units for everything** — FC layers are executed on
//!   the same small (kernel-sized) units, so long FC dot products decompose
//!   into many passes.
//! * **One wavelength per vector element, no reuse** — more lasers and a
//!   denser WDM grid.
//! * **No FPV or thermal-crosstalk mitigation** — conventional MR devices,
//!   naive per-heater compensation.
//! * **4-bit weight resolution** (paper §V.B).
//!
//! The model reuses the CrossLight architecture machinery with these choices
//! substituted, which keeps all device parameters (Table II) identical across
//! the comparison.

use serde::{Deserialize, Serialize};

use crosslight_core::area::accelerator_area;
use crosslight_core::config::{CrossLightConfig, DesignChoices};
use crosslight_core::performance::inference_metrics;
use crosslight_core::power::accelerator_power;
use crosslight_neural::workload::NetworkWorkload;
use crosslight_photonics::mr::MrGeometry;
use crosslight_photonics::units::Micrometers;
use crosslight_photonics::wdm::WavelengthReuse;
use crosslight_tuning::power::{CrosstalkCompensation, ValueTuning};

use crate::accelerator::{AcceleratorReport, PhotonicAccelerator};

/// Weight resolution DEAP-CNN achieves (paper §V.B).
pub const DEAP_RESOLUTION_BITS: u32 = 4;

/// Dot-product size of a DEAP convolution unit (a 5×5 kernel).
pub const DEAP_UNIT_SIZE: usize = 25;

/// Number of convolution units provisioned (chosen so the design sits in the
/// same ~16–25 mm² area window as the other accelerators).
pub const DEAP_CONV_UNITS: usize = 120;

/// Number of units DEAP dedicates to FC layers (same small units; the paper's
/// point is precisely that it has no large FC units).
pub const DEAP_FC_UNITS: usize = 40;

/// MR spacing: without TED-style crosstalk cancellation, MRs must be spread
/// apart (paper §IV.A quotes 120–200 µm; the lower end is used here).
pub const DEAP_MR_SPACING_UM: f64 = 120.0;

/// The DEAP-CNN baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeapCnn {
    config: CrossLightConfig,
}

impl DeapCnn {
    /// Creates the DEAP-CNN model with its published design choices.
    #[must_use]
    pub fn new() -> Self {
        let design = DesignChoices {
            geometry: MrGeometry::conventional(),
            compensation: CrosstalkCompensation::Naive,
            value_tuning: ValueTuning::ThermoOptic,
            wavelength_reuse: WavelengthReuse::PerElement,
            mr_spacing: Micrometers::new(DEAP_MR_SPACING_UM),
        };
        let config = CrossLightConfig::new(
            DEAP_UNIT_SIZE,
            DEAP_UNIT_SIZE,
            DEAP_CONV_UNITS,
            DEAP_FC_UNITS,
            design,
        )
        .expect("DEAP-CNN configuration is valid")
        .with_resolution_bits(DEAP_RESOLUTION_BITS);
        Self { config }
    }

    /// Returns the underlying architecture configuration.
    #[must_use]
    pub fn config(&self) -> &CrossLightConfig {
        &self.config
    }
}

impl Default for DeapCnn {
    fn default() -> Self {
        Self::new()
    }
}

impl PhotonicAccelerator for DeapCnn {
    fn name(&self) -> String {
        "DEAP_CNN".to_string()
    }

    fn evaluate(
        &self,
        workload: &NetworkWorkload,
    ) -> crosslight_core::error::Result<AcceleratorReport> {
        let power = accelerator_power(&self.config)?;
        let area = accelerator_area(&self.config);
        let metrics = inference_metrics(workload, &self.config, &power)?;
        Ok(AcceleratorReport {
            power_watts: power.total_watts().value(),
            latency_s: metrics.latency.total().value(),
            fps: metrics.fps,
            energy_per_bit_pj: metrics.energy_per_bit_pj,
            kfps_per_watt: metrics.kfps_per_watt,
            resolution_bits: DEAP_RESOLUTION_BITS,
            area_mm2: area.total().value(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::CrossLightAccelerator;
    use crosslight_core::variants::CrossLightVariant;
    use crosslight_neural::zoo::PaperModel;

    fn workloads() -> Vec<NetworkWorkload> {
        PaperModel::all()
            .iter()
            .map(|m| NetworkWorkload::from_spec(&m.spec()).unwrap())
            .collect()
    }

    #[test]
    fn deap_uses_its_published_design_choices() {
        let deap = DeapCnn::new();
        assert_eq!(deap.config().resolution_bits, 4);
        assert_eq!(deap.config().design.value_tuning, ValueTuning::ThermoOptic);
        assert_eq!(
            deap.config().design.wavelength_reuse,
            WavelengthReuse::PerElement
        );
        assert_eq!(deap.name(), "DEAP_CNN");
    }

    #[test]
    fn deap_is_orders_of_magnitude_less_efficient_than_crosslight() {
        let deap = DeapCnn::new();
        let crosslight = CrossLightAccelerator::new(CrossLightVariant::OptTed);
        let workloads = workloads();
        let deap_avg = deap.evaluate_average(&workloads).unwrap();
        let cl_avg = crosslight.evaluate_average(&workloads).unwrap();
        let epb_ratio = deap_avg.energy_per_bit_pj / cl_avg.energy_per_bit_pj;
        // Paper: 1544× — accept the same order of magnitude.
        assert!(
            epb_ratio > 200.0,
            "DEAP EPB should be >2 orders of magnitude worse, got {epb_ratio:.0}×"
        );
        let ppw_ratio = cl_avg.kfps_per_watt / deap_avg.kfps_per_watt;
        assert!(
            ppw_ratio > 100.0,
            "CrossLight perf/W should dwarf DEAP, got {ppw_ratio:.0}×"
        );
    }

    #[test]
    fn deap_latency_is_dominated_by_thermo_optic_reprogramming() {
        let deap = DeapCnn::new();
        let crosslight = CrossLightAccelerator::new(CrossLightVariant::OptTed);
        let w = &workloads()[0];
        let deap_report = deap.evaluate(w).unwrap();
        let cl_report = crosslight.evaluate(w).unwrap();
        assert!(deap_report.latency_s > 20.0 * cl_report.latency_s);
    }

    #[test]
    fn deap_area_is_comparable_to_crosslight() {
        // The paper compares accelerators "within a reasonable area
        // constraint (~16-25 mm²)"; the wide MR spacing DEAP needs without
        // crosstalk management pushes it toward the top of that window.
        let deap = DeapCnn::new();
        let report = deap.evaluate(&workloads()[0]).unwrap();
        assert!(
            report.area_mm2 > 10.0 && report.area_mm2 < 40.0,
            "DEAP area {} mm²",
            report.area_mm2
        );
    }
}
