//! HolyLight baseline model (Liu et al., DATE 2019).
//!
//! HolyLight replaces microrings with microdisks to save device area and uses
//! a "whispering gallery mode" resonance that is inherently lossy (paper §II).
//! Each microdisk only resolves 2 bits, so eight disks are ganged per 16-bit
//! weight (paper §V.B).  Relative to CrossLight the consequences are:
//!
//! * **8× more resonant devices per weight**, each needing thermal
//!   calibration against process/thermal drift → much higher tuning power.
//! * **~10 dB of extra insertion loss per weight** (8 × 1.22 dB) → much
//!   higher laser power, per Eq. (7).
//! * **No FPV-resilient device design and no TED**, so calibration costs the
//!   conventional-device drift.
//! * Microdisk switching itself is fast, so the per-pass latency is close to
//!   CrossLight's; the efficiency gap comes from power, which is exactly how
//!   the paper describes the comparison (9.5× EPB, 15.9× perf/W).
//!
//! The model shares the Table II device parameters, loss model and laser
//! equation with the rest of the workspace.

use serde::{Deserialize, Serialize};

use crosslight_core::decompose::sequential_passes;
use crosslight_neural::workload::NetworkWorkload;
use crosslight_photonics::devices::{photodetector, tia, Transceiver};
use crosslight_photonics::fpv::{FpvModel, ProcessCorner};
use crosslight_photonics::laser::LaserPowerModel;
use crosslight_photonics::loss::{LossBudget, LossModel};
use crosslight_photonics::microdisk::MicrodiskGang;
use crosslight_photonics::mr::{MrGeometry, CONVENTIONAL_FSR_NM};
use crosslight_photonics::thermal::Microheater;
use crosslight_photonics::units::{DecibelLoss, Micrometers, MilliWatts, Seconds};

use crate::accelerator::{AcceleratorReport, PhotonicAccelerator};

/// Weights processed per HolyLight dot-product unit per pass.
pub const HOLYLIGHT_UNIT_SIZE: usize = 16;

/// Number of dot-product units provisioned (keeps the design inside the same
/// ~16–25 mm² window as the other accelerators).
pub const HOLYLIGHT_UNITS: usize = 250;

/// Microdisk switching (value-imprinting) latency: disks are driven
/// electro-optically via carrier injection, comparable to an MZM.
pub const DISK_SWITCH_LATENCY_NS: f64 = 10.0;

/// Bit-serial cycles per 16-bit multiply–accumulate.
///
/// HolyLight's microdisks resolve 2 bits each, so a 16-bit operand is
/// processed as 8 two-bit slices whose partial products are shifted and added
/// electronically — one disk-switching cycle per slice.
pub const BIT_SERIAL_CYCLES: u64 = (HOLYLIGHT_RESOLUTION_BITS / 2) as u64;

/// Per-unit area: 16 weight cells of 8 microdisks each plus the activation
/// modulators, photodetector tree and ADC/DAC lane (mm², calibration
/// constant).
pub const HOLYLIGHT_UNIT_AREA_MM2: f64 = 0.075;

/// Fixed electronic control power (same role as CrossLight's control unit).
pub const HOLYLIGHT_CONTROL_MW: f64 = 2_000.0;

/// Native resolution after combining eight 2-bit disks.
pub const HOLYLIGHT_RESOLUTION_BITS: u32 = 16;

/// The HolyLight baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HolyLight {
    units: usize,
    unit_size: usize,
}

impl HolyLight {
    /// Creates the HolyLight model with its published design choices.
    #[must_use]
    pub fn new() -> Self {
        Self {
            units: HOLYLIGHT_UNITS,
            unit_size: HOLYLIGHT_UNIT_SIZE,
        }
    }

    /// Creates a HolyLight model with an explicit unit count (used by the
    /// design-space experiments).
    #[must_use]
    pub fn with_units(units: usize) -> Self {
        Self {
            units: units.max(1),
            unit_size: HOLYLIGHT_UNIT_SIZE,
        }
    }

    /// Number of dot-product units provisioned.
    #[must_use]
    pub fn units(&self) -> usize {
        self.units
    }

    /// Resonant devices (microdisks) per unit: eight per weight cell plus
    /// eight per activation imprint cell.
    #[must_use]
    pub fn disks_per_unit(&self) -> usize {
        self.unit_size * MicrodiskGang::holylight_weight_cell().count() * 2
    }

    /// Per-pass latency of one unit.
    #[must_use]
    pub fn pass_latency(&self) -> Seconds {
        let imprint = Seconds::from_nanos(DISK_SWITCH_LATENCY_NS);
        let detection = photodetector().latency + tia().latency;
        let conversion = Seconds::new(16.0 / (Transceiver::isscc2019().max_rate_gbps * 1e9));
        imprint + detection + conversion
    }

    /// Laser power of the whole accelerator.
    #[must_use]
    pub fn laser_power(&self) -> MilliWatts {
        let gang = MicrodiskGang::holylight_weight_cell();
        let mut budget = LossBudget::new(LossModel::paper());
        // Each wavelength traverses its own 8-disk weight gang and the
        // activation imprint stage, plus routing and the combiner feeding the
        // photodetector tree.
        budget.add_microdisks(gang.count());
        budget.add_mr_modulation(1);
        budget.add_propagation(Micrometers::new(500.0));
        budget.add_combiners(1);
        budget.add_splitters(1);
        let model = LaserPowerModel::paper();
        let per_wavelength = model
            .required_electrical_power(budget.total() + DecibelLoss::new(0.0), self.unit_size)
            .expect("valid loss budget");
        per_wavelength * (self.unit_size * self.units) as f64
    }

    /// Thermal calibration (tuning) power of all microdisks.
    #[must_use]
    pub fn tuning_power(&self) -> MilliWatts {
        // Microdisks are fabricated without the paper's FPV-optimized widths,
        // so they drift like conventional devices; each disk holds a thermal
        // trim of the mean absolute drift.
        let fpv = FpvModel::new(MrGeometry::conventional(), ProcessCorner::typical());
        let per_disk = Microheater::table_ii()
            .power_for_shift(fpv.mean_absolute_drift().value(), CONVENTIONAL_FSR_NM);
        MilliWatts::new(per_disk * (self.disks_per_unit() * self.units) as f64)
    }

    /// Photodetector, TIA and conversion power.
    #[must_use]
    pub fn detection_power(&self) -> MilliWatts {
        let per_unit = photodetector().power + tia().power;
        let sample_rate_gbps = 16.0 / self.pass_latency().value() / 1e9;
        let conversion = Transceiver::isscc2019().power_at_rate(sample_rate_gbps);
        (per_unit + conversion) * self.units as f64
    }

    /// Total accelerator power.
    #[must_use]
    pub fn total_power(&self) -> MilliWatts {
        self.laser_power()
            + self.tuning_power()
            + self.detection_power()
            + MilliWatts::new(HOLYLIGHT_CONTROL_MW)
    }

    /// Accelerator area.
    #[must_use]
    pub fn area_mm2(&self) -> f64 {
        self.units as f64 * HOLYLIGHT_UNIT_AREA_MM2
    }

    /// Itemised power breakdown in the core report layout.  The detection
    /// column holds the photodetector/TIA receivers and the conversion
    /// column the per-unit ADC/DAC lane — together they equal
    /// [`detection_power`](Self::detection_power) up to float association.
    #[must_use]
    pub fn power_breakdown(&self) -> crosslight_core::power::AcceleratorPower {
        let receivers = (photodetector().power + tia().power) * self.units as f64;
        let sample_rate_gbps = 16.0 / self.pass_latency().value() / 1e9;
        let conversion =
            Transceiver::isscc2019().power_at_rate(sample_rate_gbps) * self.units as f64;
        crosslight_core::power::AcceleratorPower {
            laser: self.laser_power(),
            tuning: self.tuning_power(),
            detection: receivers,
            conversion,
            control: MilliWatts::new(HOLYLIGHT_CONTROL_MW),
        }
    }

    /// Itemised area breakdown in the core report layout: the calibrated
    /// per-unit area is all resonant devices, so it is reported as bank area.
    #[must_use]
    pub fn area_breakdown(&self) -> crosslight_core::area::AcceleratorArea {
        use crosslight_photonics::units::SquareMillimeters;
        crosslight_core::area::AcceleratorArea {
            mr_banks: SquareMillimeters::new(self.area_mm2()),
            arm_devices: SquareMillimeters::new(0.0),
            unit_electronics: SquareMillimeters::new(0.0),
        }
    }

    /// Bit-serial passes one layer list needs on the unit pool (each pass is
    /// repeated for every 2-bit operand slice).
    ///
    /// # Errors
    ///
    /// Propagates decomposition errors (do not occur for valid dimensions).
    pub fn phase_cycles(
        &self,
        layers: &[crosslight_neural::layers::DotProductWorkload],
    ) -> crosslight_core::error::Result<u64> {
        let mut cycles: u64 = 0;
        for layer in layers {
            cycles += sequential_passes(
                layer.dot_length,
                layer.dot_count,
                self.unit_size,
                self.units,
            )?;
        }
        Ok(cycles * BIT_SERIAL_CYCLES)
    }
}

impl Default for HolyLight {
    fn default() -> Self {
        Self::new()
    }
}

impl PhotonicAccelerator for HolyLight {
    fn name(&self) -> String {
        "Holylight".to_string()
    }

    fn evaluate(
        &self,
        workload: &NetworkWorkload,
    ) -> crosslight_core::error::Result<AcceleratorReport> {
        // All layers run on the single pool of small units; every pass is
        // repeated for each 2-bit operand slice (bit-serial operation).
        let cycles =
            self.phase_cycles(&workload.conv_layers)? + self.phase_cycles(&workload.fc_layers)?;
        let latency_s = self.pass_latency().value() * cycles as f64 * workload.towers as f64;
        let power_w = self.total_power().to_watts().value();
        let fps = 1.0 / latency_s;
        let energy_pj = power_w * latency_s * 1e12;
        let operand_bits =
            2.0 * workload.total_macs() as f64 * f64::from(HOLYLIGHT_RESOLUTION_BITS);
        Ok(AcceleratorReport {
            power_watts: power_w,
            latency_s,
            fps,
            energy_per_bit_pj: energy_pj / operand_bits,
            kfps_per_watt: fps / 1000.0 / power_w,
            resolution_bits: HOLYLIGHT_RESOLUTION_BITS,
            area_mm2: self.area_mm2(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::CrossLightAccelerator;
    use crate::deap_cnn::DeapCnn;
    use crosslight_core::variants::CrossLightVariant;
    use crosslight_neural::zoo::PaperModel;

    fn workloads() -> Vec<NetworkWorkload> {
        PaperModel::all()
            .iter()
            .map(|m| NetworkWorkload::from_spec(&m.spec()).unwrap())
            .collect()
    }

    #[test]
    fn holylight_reaches_sixteen_bits_by_ganging_disks() {
        let h = HolyLight::new();
        assert_eq!(h.disks_per_unit(), 16 * 8 * 2);
        let report = h.evaluate(&workloads()[0]).unwrap();
        assert_eq!(report.resolution_bits, 16);
        assert_eq!(h.name(), "Holylight");
    }

    #[test]
    fn holylight_power_exceeds_every_crosslight_variant() {
        let workloads = workloads();
        let holylight = HolyLight::new().evaluate_average(&workloads).unwrap();
        for variant in CrossLightVariant::all() {
            let cl = CrossLightAccelerator::new(variant)
                .evaluate_average(&workloads)
                .unwrap();
            assert!(
                holylight.power_watts > cl.power_watts,
                "HolyLight {} W should exceed {} ({} W)",
                holylight.power_watts,
                variant,
                cl.power_watts
            );
        }
    }

    #[test]
    fn epb_gap_to_crosslight_matches_the_paper_factor() {
        let workloads = workloads();
        let holylight = HolyLight::new().evaluate_average(&workloads).unwrap();
        let opt_ted = CrossLightAccelerator::new(CrossLightVariant::OptTed)
            .evaluate_average(&workloads)
            .unwrap();
        let ratio = holylight.energy_per_bit_pj / opt_ted.energy_per_bit_pj;
        // Paper: 9.5×.  Accept the same order (×3 tolerance either way).
        assert!(
            ratio > 3.0 && ratio < 40.0,
            "HolyLight/CrossLight EPB ratio {ratio:.1} should be near the paper's 9.5×"
        );
        let ppw_ratio = opt_ted.kfps_per_watt / holylight.kfps_per_watt;
        assert!(
            ppw_ratio > 3.0 && ppw_ratio < 60.0,
            "perf/W ratio {ppw_ratio:.1} should be near the paper's 15.9×"
        );
    }

    #[test]
    fn holylight_beats_deap_but_loses_to_crosslight() {
        // Table III ordering: DEAP ≫ Holylight > Cross_base > … > Cross_opt_TED
        // in EPB.
        let workloads = workloads();
        let deap = DeapCnn::new().evaluate_average(&workloads).unwrap();
        let holylight = HolyLight::new().evaluate_average(&workloads).unwrap();
        let base = CrossLightAccelerator::new(CrossLightVariant::Base)
            .evaluate_average(&workloads)
            .unwrap();
        assert!(deap.energy_per_bit_pj > holylight.energy_per_bit_pj);
        assert!(holylight.energy_per_bit_pj > base.energy_per_bit_pj);
        assert!(deap.kfps_per_watt < holylight.kfps_per_watt);
        assert!(holylight.kfps_per_watt < base.kfps_per_watt);
    }

    #[test]
    fn holylight_area_is_in_the_comparison_window() {
        let area = HolyLight::new().area_mm2();
        assert!((10.0..=30.0).contains(&area), "area {area} mm²");
    }

    #[test]
    fn unit_count_scales_power_and_area() {
        let small = HolyLight::with_units(100);
        let big = HolyLight::with_units(400);
        assert!(big.total_power().value() > small.total_power().value());
        assert!(big.area_mm2() > small.area_mm2());
    }
}
