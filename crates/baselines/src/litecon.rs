//! LiteCON all-photonic baseline (after arXiv:2206.13861).
//!
//! LiteCON performs CNN inference almost entirely in the optical domain:
//! weights are held stationary in silicon photonic elements, activations stay
//! optical between layers, and only the final readout of each dot-product
//! unit is converted back to the electrical domain.  The modelling
//! consequences relative to CrossLight are:
//!
//! * **Almost no conversion power** — one low-rate ADC per unit instead of
//!   per-pass DAC/ADC traffic, and a small control processor
//!   ([`LITECON_CONTROL_MW`]).
//! * **No value-imprint latency** — weights are stationary, so a pass costs
//!   only propagation, detection and the single readout conversion.
//! * **Analog resolution is expensive** — the optical signal chain natively
//!   resolves [`LITECON_NATIVE_BITS`] bits; every additional bit doubles the
//!   required optical SNR, modelled as [`LITECON_SNR_DB_PER_BIT`] dB of extra
//!   laser-power headroom.  LiteCON is therefore very attractive at low
//!   resolution and degrades quickly as operands widen.
//!
//! The model shares the Table II device parameters, loss model and laser
//! equation with the rest of the workspace.

use serde::{Deserialize, Serialize};

use crosslight_core::decompose::sequential_passes;
use crosslight_core::error::{ArchitectureError, Result};
use crosslight_neural::workload::NetworkWorkload;
use crosslight_photonics::devices::{photodetector, tia, Transceiver};
use crosslight_photonics::fpv::{FpvModel, ProcessCorner};
use crosslight_photonics::laser::LaserPowerModel;
use crosslight_photonics::loss::{LossBudget, LossModel};
use crosslight_photonics::mr::{MrGeometry, CONVENTIONAL_FSR_NM};
use crosslight_photonics::thermal::Microheater;
use crosslight_photonics::units::{DecibelLoss, Micrometers, MilliWatts, Seconds};

use crate::accelerator::{AcceleratorReport, PhotonicAccelerator};

/// Default number of dot-product units.
pub const LITECON_DEFAULT_UNITS: usize = 128;

/// Default dot-product length per unit.
pub const LITECON_DEFAULT_UNIT_SIZE: usize = 32;

/// Bits the all-optical signal chain natively resolves.
pub const LITECON_NATIVE_BITS: u32 = 4;

/// Default operand resolution (the paper's sweet spot).
pub const LITECON_DEFAULT_BITS: u32 = 4;

/// Extra laser headroom per resolution bit beyond the native analog depth:
/// one more bit of analog precision needs twice the optical SNR (~3 dB).
pub const LITECON_SNR_DB_PER_BIT: f64 = 3.01;

/// Area of one stationary weight element (mm²).
pub const LITECON_CELL_AREA_MM2: f64 = 0.0008;

/// Per-unit readout electronics area (mm²).
pub const LITECON_UNIT_AREA_MM2: f64 = 0.01;

/// Minimal electronic control power of the all-photonic datapath (mW).
pub const LITECON_CONTROL_MW: f64 = 500.0;

/// Readout sample rate of the per-unit ADC (GS/s·bit) — low, because only
/// final results cross the domain boundary.
pub const LITECON_READOUT_RATE_GBPS: f64 = 1.0;

/// The LiteCON all-photonic accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LiteCon {
    units: usize,
    unit_size: usize,
    resolution_bits: u32,
}

impl LiteCon {
    /// Creates the published design at its native resolution.
    #[must_use]
    pub fn new() -> Self {
        Self {
            units: LITECON_DEFAULT_UNITS,
            unit_size: LITECON_DEFAULT_UNIT_SIZE,
            resolution_bits: LITECON_DEFAULT_BITS,
        }
    }

    /// Creates a LiteCON instance with explicit dimensions and resolution.
    ///
    /// # Errors
    ///
    /// Errors if any knob is zero.
    pub fn with_dims(units: usize, unit_size: usize, resolution_bits: u32) -> Result<Self> {
        if units == 0 || unit_size == 0 {
            return Err(ArchitectureError::InvalidConfig {
                name: "litecon_dims",
                reason: format!("units and unit_size must be positive; got {units}×{unit_size}"),
            });
        }
        if resolution_bits == 0 {
            return Err(ArchitectureError::InvalidConfig {
                name: "resolution_bits",
                reason: "at least one bit of resolution is required".into(),
            });
        }
        Ok(Self {
            units,
            unit_size,
            resolution_bits,
        })
    }

    /// Number of dot-product units.
    #[must_use]
    pub fn units(&self) -> usize {
        self.units
    }

    /// Dot-product length per unit.
    #[must_use]
    pub fn unit_size(&self) -> usize {
        self.unit_size
    }

    /// Operand resolution in bits.
    #[must_use]
    pub fn resolution_bits(&self) -> u32 {
        self.resolution_bits
    }

    /// Per-pass latency: propagation through the stationary weight chain,
    /// detection, and the single readout conversion.
    #[must_use]
    pub fn pass_latency(&self) -> Seconds {
        let detection = photodetector().latency + tia().latency;
        let conversion =
            Seconds::new(f64::from(self.resolution_bits) / (LITECON_READOUT_RATE_GBPS * 1e9));
        detection + conversion
    }

    /// SNR headroom the analog chain needs beyond its native depth.
    #[must_use]
    pub fn snr_headroom(&self) -> DecibelLoss {
        let extra_bits = f64::from(self.resolution_bits.saturating_sub(LITECON_NATIVE_BITS));
        DecibelLoss::new(LITECON_SNR_DB_PER_BIT * extra_bits)
    }

    /// Loss budget of one wavelength through a unit's stationary weight
    /// chain, inflated by the SNR headroom the requested resolution needs.
    #[must_use]
    pub fn loss_budget(&self) -> LossBudget {
        let mut budget = LossBudget::new(LossModel::paper());
        budget.add_mr_modulation(1);
        budget.add_mr_through(self.unit_size.saturating_sub(1));
        budget.add_propagation(Micrometers::new(10.0 * self.unit_size as f64));
        budget.add_combiners(1);
        budget
    }

    /// Laser power of the whole accelerator (Eq. (7) per wavelength, with
    /// the resolution-dependent SNR headroom added to the loss budget).
    #[must_use]
    pub fn laser_power(&self) -> MilliWatts {
        let per_wavelength = LaserPowerModel::paper()
            .required_electrical_power(
                self.loss_budget().total() + self.snr_headroom(),
                self.unit_size,
            )
            .expect("valid loss budget");
        per_wavelength * (self.unit_size * self.units) as f64
    }

    /// Thermal trim of the stationary weight elements (conventional drift,
    /// one heater per element).
    #[must_use]
    pub fn tuning_power(&self) -> MilliWatts {
        let fpv = FpvModel::new(MrGeometry::conventional(), ProcessCorner::typical());
        let per_element = Microheater::table_ii()
            .power_for_shift(fpv.mean_absolute_drift().value(), CONVENTIONAL_FSR_NM);
        MilliWatts::new(per_element * (self.unit_size * self.units) as f64)
    }

    /// Photodetector + TIA power of the per-unit receivers.
    #[must_use]
    pub fn detection_power(&self) -> MilliWatts {
        (photodetector().power + tia().power) * self.units as f64
    }

    /// Readout conversion power: one low-rate ADC per unit.
    #[must_use]
    pub fn conversion_power(&self) -> MilliWatts {
        Transceiver::isscc2019().power_at_rate(LITECON_READOUT_RATE_GBPS) * self.units as f64
    }

    /// Total accelerator power.
    #[must_use]
    pub fn total_power(&self) -> MilliWatts {
        self.laser_power()
            + self.tuning_power()
            + self.detection_power()
            + self.conversion_power()
            + MilliWatts::new(LITECON_CONTROL_MW)
    }

    /// Accelerator area.
    #[must_use]
    pub fn area_mm2(&self) -> f64 {
        (self.units * self.unit_size) as f64 * LITECON_CELL_AREA_MM2
            + self.units as f64 * LITECON_UNIT_AREA_MM2
    }

    /// Itemised power breakdown in the core report layout.
    #[must_use]
    pub fn power_breakdown(&self) -> crosslight_core::power::AcceleratorPower {
        crosslight_core::power::AcceleratorPower {
            laser: self.laser_power(),
            tuning: self.tuning_power(),
            detection: self.detection_power(),
            conversion: self.conversion_power(),
            control: MilliWatts::new(LITECON_CONTROL_MW),
        }
    }

    /// Itemised area breakdown in the core report layout: stationary weight
    /// elements as bank area, readout electronics as unit electronics.
    #[must_use]
    pub fn area_breakdown(&self) -> crosslight_core::area::AcceleratorArea {
        use crosslight_photonics::units::SquareMillimeters;
        crosslight_core::area::AcceleratorArea {
            mr_banks: SquareMillimeters::new(
                (self.units * self.unit_size) as f64 * LITECON_CELL_AREA_MM2,
            ),
            arm_devices: SquareMillimeters::new(0.0),
            unit_electronics: SquareMillimeters::new(self.units as f64 * LITECON_UNIT_AREA_MM2),
        }
    }

    /// Passes one layer list needs on the unit pool (weights stationary, so
    /// no bit-serial repetition — resolution is paid in laser power instead).
    ///
    /// # Errors
    ///
    /// Propagates decomposition errors (do not occur for valid dimensions).
    pub fn phase_cycles(
        &self,
        layers: &[crosslight_neural::layers::DotProductWorkload],
    ) -> Result<u64> {
        let mut cycles: u64 = 0;
        for layer in layers {
            cycles += sequential_passes(
                layer.dot_length,
                layer.dot_count,
                self.unit_size,
                self.units,
            )?;
        }
        Ok(cycles)
    }
}

impl Default for LiteCon {
    fn default() -> Self {
        Self::new()
    }
}

impl PhotonicAccelerator for LiteCon {
    fn name(&self) -> String {
        format!(
            "LiteCON_{}x{}_{}b",
            self.units, self.unit_size, self.resolution_bits
        )
    }

    fn evaluate(&self, workload: &NetworkWorkload) -> Result<AcceleratorReport> {
        let cycles =
            self.phase_cycles(&workload.conv_layers)? + self.phase_cycles(&workload.fc_layers)?;
        let latency_s = self.pass_latency().value() * cycles as f64 * workload.towers as f64;
        let power_w = self.total_power().to_watts().value();
        let fps = 1.0 / latency_s;
        let energy_pj = power_w * latency_s * 1e12;
        let operand_bits = 2.0 * workload.total_macs() as f64 * f64::from(self.resolution_bits);
        Ok(AcceleratorReport {
            power_watts: power_w,
            latency_s,
            fps,
            energy_per_bit_pj: energy_pj / operand_bits,
            kfps_per_watt: fps / 1000.0 / power_w,
            resolution_bits: self.resolution_bits,
            area_mm2: self.area_mm2(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crosslight_neural::zoo::PaperModel;

    fn workloads() -> Vec<NetworkWorkload> {
        PaperModel::all()
            .iter()
            .map(|m| NetworkWorkload::from_spec(&m.spec()).unwrap())
            .collect()
    }

    #[test]
    fn construction_validates_every_knob() {
        assert!(LiteCon::with_dims(0, 32, 4).is_err());
        assert!(LiteCon::with_dims(128, 0, 4).is_err());
        assert!(LiteCon::with_dims(128, 32, 0).is_err());
        let lc = LiteCon::with_dims(64, 16, 8).unwrap();
        assert_eq!(
            (lc.units(), lc.unit_size(), lc.resolution_bits()),
            (64, 16, 8)
        );
        assert_eq!(LiteCon::default(), LiteCon::new());
    }

    #[test]
    fn resolution_is_paid_in_laser_power_not_cycles() {
        let low = LiteCon::with_dims(128, 32, 4).unwrap();
        let high = LiteCon::with_dims(128, 32, 16).unwrap();
        let w = &workloads()[0];
        assert_eq!(
            low.phase_cycles(&w.conv_layers).unwrap(),
            high.phase_cycles(&w.conv_layers).unwrap()
        );
        assert!(high.laser_power().value() > 8.0 * low.laser_power().value());
        assert!(high.snr_headroom().value() > low.snr_headroom().value());
    }

    #[test]
    fn epb_degrades_as_operands_widen() {
        let w = workloads();
        let low = LiteCon::with_dims(128, 32, 4)
            .unwrap()
            .evaluate_average(&w)
            .unwrap();
        let high = LiteCon::with_dims(128, 32, 16)
            .unwrap()
            .evaluate_average(&w)
            .unwrap();
        assert!(
            high.energy_per_bit_pj > low.energy_per_bit_pj,
            "analog SNR headroom should dominate the wider-operand EPB: {} vs {}",
            high.energy_per_bit_pj,
            low.energy_per_bit_pj
        );
    }

    #[test]
    fn conversion_power_is_a_small_fraction_of_the_total() {
        let lc = LiteCon::new();
        let conversion = lc.conversion_power().value();
        let total = lc.total_power().value();
        assert!(
            conversion / total < 0.05,
            "all-photonic datapath should barely pay for conversion: {conversion} of {total} mW"
        );
    }

    #[test]
    fn report_metrics_are_self_consistent() {
        let lc = LiteCon::new();
        let report = lc.evaluate(&workloads()[0]).unwrap();
        assert!((report.fps - 1.0 / report.latency_s).abs() / report.fps < 1e-9);
        assert!(
            (report.kfps_per_watt - report.fps / 1000.0 / report.power_watts).abs()
                / report.kfps_per_watt
                < 1e-9
        );
        assert_eq!(report.resolution_bits, LITECON_DEFAULT_BITS);
        assert!(report.area_mm2 > 0.0);
        assert!(lc.name().starts_with("LiteCON_128x32"));
    }
}
