//! Symmetric add–drop MRR crossbar baseline (after arXiv:2401.16072).
//!
//! The crossbar stores an `R × C` weight matrix in add–drop microring
//! resonators with a *symmetric* (matched-gap) bus coupling: each input
//! wavelength runs along a row bus, is weighted once, and is dropped onto a
//! column bus whose photodetector accumulates the column's dot product.  One
//! pass therefore computes `C` dot products of length `R` — the crossbar is
//! parameterized by `rows × cols × resolution` rather than by unit pools.
//!
//! Relative to CrossLight, the modelling consequences are:
//!
//! * **Long bus traversals** — a wavelength passes `C − 1` off-resonance
//!   rings on its row and up to `R − 1` on its column, so through loss (and
//!   hence laser power, Eq. (7)) grows with both dimensions.
//! * **Symmetric coupling halves the calibration cost** — the matched
//!   through/drop gaps make the resonance shift differential, so the thermal
//!   trim per ring is modelled at half the conventional-device drift
//!   ([`SYMMETRIC_TUNING_FACTOR`]).
//! * **Moderate native resolution** — one symmetric ring resolves
//!   [`SYMMETRIC_NATIVE_BITS`] bits; wider operands are processed in
//!   bit-serial slices exactly like HolyLight's 2-bit disks.
//!
//! The model shares the Table II device parameters, loss model and laser
//! equation with the rest of the workspace.

use serde::{Deserialize, Serialize};

use crosslight_core::decompose::sequential_passes;
use crosslight_core::error::{ArchitectureError, Result};
use crosslight_neural::workload::NetworkWorkload;
use crosslight_photonics::devices::{photodetector, tia, Transceiver};
use crosslight_photonics::fpv::{FpvModel, ProcessCorner};
use crosslight_photonics::laser::LaserPowerModel;
use crosslight_photonics::loss::{LossBudget, LossModel};
use crosslight_photonics::mr::{MrGeometry, CONVENTIONAL_FSR_NM};
use crosslight_photonics::thermal::Microheater;
use crosslight_photonics::units::{Micrometers, MilliWatts, Seconds};

use crate::accelerator::{AcceleratorReport, PhotonicAccelerator};

/// Default crossbar rows (input-vector length per pass).
pub const SYMMETRIC_DEFAULT_ROWS: usize = 64;

/// Default crossbar columns (parallel dot products per pass).
pub const SYMMETRIC_DEFAULT_COLS: usize = 64;

/// Bits one symmetric add–drop ring resolves; wider operands are bit-serial.
pub const SYMMETRIC_NATIVE_BITS: u32 = 8;

/// Default operand resolution.
pub const SYMMETRIC_DEFAULT_BITS: u32 = 8;

/// Ring-to-ring pitch on the row/column buses (µm).  The symmetric coupler
/// is compact, but the crossbar still needs heater clearance.
pub const SYMMETRIC_PITCH_UM: f64 = 50.0;

/// Electro-optic value-imprint latency per pass (carrier injection).
pub const SYMMETRIC_IMPRINT_LATENCY_NS: f64 = 5.0;

/// Fraction of the conventional-device thermal trim a symmetric ring needs:
/// the matched gaps make half of the fabrication drift common-mode.
pub const SYMMETRIC_TUNING_FACTOR: f64 = 0.5;

/// Area of one ring cell including its heater and drop waveguide (mm²).
pub const SYMMETRIC_CELL_AREA_MM2: f64 = 0.0012;

/// Per-column receiver/electronics area (mm²).
pub const SYMMETRIC_COLUMN_AREA_MM2: f64 = 0.02;

/// Fixed electronic control power (mW).
pub const SYMMETRIC_CONTROL_MW: f64 = 1_500.0;

/// The symmetric-MRR crossbar accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SymmetricCrossbar {
    rows: usize,
    cols: usize,
    resolution_bits: u32,
}

impl SymmetricCrossbar {
    /// Creates the published square crossbar at its native resolution.
    #[must_use]
    pub fn new() -> Self {
        Self {
            rows: SYMMETRIC_DEFAULT_ROWS,
            cols: SYMMETRIC_DEFAULT_COLS,
            resolution_bits: SYMMETRIC_DEFAULT_BITS,
        }
    }

    /// Creates a crossbar with explicit dimensions and operand resolution.
    ///
    /// # Errors
    ///
    /// Errors if any knob is zero.
    pub fn with_dims(rows: usize, cols: usize, resolution_bits: u32) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(ArchitectureError::InvalidConfig {
                name: "crossbar_dims",
                reason: format!("rows and cols must be positive; got {rows}×{cols}"),
            });
        }
        if resolution_bits == 0 {
            return Err(ArchitectureError::InvalidConfig {
                name: "resolution_bits",
                reason: "at least one bit of resolution is required".into(),
            });
        }
        Ok(Self {
            rows,
            cols,
            resolution_bits,
        })
    }

    /// Crossbar rows (dot-product length per pass).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Crossbar columns (parallel dot products per pass).
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Operand resolution in bits.
    #[must_use]
    pub fn resolution_bits(&self) -> u32 {
        self.resolution_bits
    }

    /// Bit-serial slices per pass: wider operands than the ring's native
    /// resolution are processed [`SYMMETRIC_NATIVE_BITS`] bits at a time.
    #[must_use]
    pub fn slice_cycles(&self) -> u64 {
        u64::from(self.resolution_bits.div_ceil(SYMMETRIC_NATIVE_BITS))
    }

    /// Per-pass latency: value imprint, detection and one output conversion.
    #[must_use]
    pub fn pass_latency(&self) -> Seconds {
        let imprint = Seconds::from_nanos(SYMMETRIC_IMPRINT_LATENCY_NS);
        let detection = photodetector().latency + tia().latency;
        let conversion = Seconds::new(
            f64::from(self.resolution_bits) / (Transceiver::isscc2019().max_rate_gbps * 1e9),
        );
        imprint + detection + conversion
    }

    /// Worst-case loss budget of one wavelength: its row bus, one weighting
    /// drop, its column bus and the receiver combiner.
    #[must_use]
    pub fn loss_budget(&self) -> LossBudget {
        let mut budget = LossBudget::new(LossModel::paper());
        budget.add_mr_modulation(1);
        budget.add_mr_through((self.cols - 1) + (self.rows - 1));
        budget.add_propagation(Micrometers::new(
            SYMMETRIC_PITCH_UM * (self.rows + self.cols) as f64,
        ));
        budget.add_combiners(1);
        budget.add_splitters(1);
        budget
    }

    /// Laser power of the whole crossbar (Eq. (7) per wavelength, `rows`
    /// wavelengths shared across the columns).
    #[must_use]
    pub fn laser_power(&self) -> MilliWatts {
        let per_wavelength = LaserPowerModel::paper()
            .required_electrical_power(self.loss_budget().total(), self.rows)
            .expect("valid loss budget");
        per_wavelength * self.rows as f64
    }

    /// Thermal calibration power of every ring: symmetric coupling cancels
    /// half the conventional drift, the rest is trimmed per ring.
    #[must_use]
    pub fn tuning_power(&self) -> MilliWatts {
        let fpv = FpvModel::new(MrGeometry::conventional(), ProcessCorner::typical());
        let per_ring = Microheater::table_ii().power_for_shift(
            fpv.mean_absolute_drift().value() * SYMMETRIC_TUNING_FACTOR,
            CONVENTIONAL_FSR_NM,
        );
        MilliWatts::new(per_ring * (self.rows * self.cols) as f64)
    }

    /// Photodetector + TIA power of the column receivers.
    #[must_use]
    pub fn detection_power(&self) -> MilliWatts {
        (photodetector().power + tia().power) * self.cols as f64
    }

    /// ADC/DAC power of the per-column converters.
    #[must_use]
    pub fn conversion_power(&self) -> MilliWatts {
        let sample_rate_gbps = f64::from(self.resolution_bits) / self.pass_latency().value() / 1e9;
        Transceiver::isscc2019().power_at_rate(sample_rate_gbps) * self.cols as f64
    }

    /// Total accelerator power.
    #[must_use]
    pub fn total_power(&self) -> MilliWatts {
        self.laser_power()
            + self.tuning_power()
            + self.detection_power()
            + self.conversion_power()
            + MilliWatts::new(SYMMETRIC_CONTROL_MW)
    }

    /// Accelerator area.
    #[must_use]
    pub fn area_mm2(&self) -> f64 {
        (self.rows * self.cols) as f64 * SYMMETRIC_CELL_AREA_MM2
            + self.cols as f64 * SYMMETRIC_COLUMN_AREA_MM2
    }

    /// Itemised power breakdown in the core report layout.
    #[must_use]
    pub fn power_breakdown(&self) -> crosslight_core::power::AcceleratorPower {
        crosslight_core::power::AcceleratorPower {
            laser: self.laser_power(),
            tuning: self.tuning_power(),
            detection: self.detection_power(),
            conversion: self.conversion_power(),
            control: MilliWatts::new(SYMMETRIC_CONTROL_MW),
        }
    }

    /// Itemised area breakdown in the core report layout: ring cells as bank
    /// area, column receivers as unit electronics.
    #[must_use]
    pub fn area_breakdown(&self) -> crosslight_core::area::AcceleratorArea {
        use crosslight_photonics::units::SquareMillimeters;
        crosslight_core::area::AcceleratorArea {
            mr_banks: SquareMillimeters::new(
                (self.rows * self.cols) as f64 * SYMMETRIC_CELL_AREA_MM2,
            ),
            arm_devices: SquareMillimeters::new(0.0),
            unit_electronics: SquareMillimeters::new(self.cols as f64 * SYMMETRIC_COLUMN_AREA_MM2),
        }
    }

    /// Bit-serial crossbar passes one layer list needs (`cols` dot products
    /// of length `rows` per pass).
    ///
    /// # Errors
    ///
    /// Propagates decomposition errors (do not occur for valid dimensions).
    pub fn phase_cycles(
        &self,
        layers: &[crosslight_neural::layers::DotProductWorkload],
    ) -> Result<u64> {
        let mut cycles: u64 = 0;
        for layer in layers {
            cycles += sequential_passes(layer.dot_length, layer.dot_count, self.rows, self.cols)?;
        }
        Ok(cycles * self.slice_cycles())
    }
}

impl Default for SymmetricCrossbar {
    fn default() -> Self {
        Self::new()
    }
}

impl PhotonicAccelerator for SymmetricCrossbar {
    fn name(&self) -> String {
        format!(
            "SymXbar_{}x{}_{}b",
            self.rows, self.cols, self.resolution_bits
        )
    }

    fn evaluate(&self, workload: &NetworkWorkload) -> Result<AcceleratorReport> {
        let cycles =
            self.phase_cycles(&workload.conv_layers)? + self.phase_cycles(&workload.fc_layers)?;
        let latency_s = self.pass_latency().value() * cycles as f64 * workload.towers as f64;
        let power_w = self.total_power().to_watts().value();
        let fps = 1.0 / latency_s;
        let energy_pj = power_w * latency_s * 1e12;
        let operand_bits = 2.0 * workload.total_macs() as f64 * f64::from(self.resolution_bits);
        Ok(AcceleratorReport {
            power_watts: power_w,
            latency_s,
            fps,
            energy_per_bit_pj: energy_pj / operand_bits,
            kfps_per_watt: fps / 1000.0 / power_w,
            resolution_bits: self.resolution_bits,
            area_mm2: self.area_mm2(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crosslight_neural::zoo::PaperModel;

    fn workloads() -> Vec<NetworkWorkload> {
        PaperModel::all()
            .iter()
            .map(|m| NetworkWorkload::from_spec(&m.spec()).unwrap())
            .collect()
    }

    #[test]
    fn construction_validates_every_knob() {
        assert!(SymmetricCrossbar::with_dims(0, 64, 8).is_err());
        assert!(SymmetricCrossbar::with_dims(64, 0, 8).is_err());
        assert!(SymmetricCrossbar::with_dims(64, 64, 0).is_err());
        let xbar = SymmetricCrossbar::with_dims(32, 128, 4).unwrap();
        assert_eq!(
            (xbar.rows(), xbar.cols(), xbar.resolution_bits()),
            (32, 128, 4)
        );
        assert_eq!(SymmetricCrossbar::default(), SymmetricCrossbar::new());
    }

    #[test]
    fn wider_operands_run_bit_serial() {
        assert_eq!(
            SymmetricCrossbar::with_dims(64, 64, 4)
                .unwrap()
                .slice_cycles(),
            1
        );
        assert_eq!(
            SymmetricCrossbar::with_dims(64, 64, 8)
                .unwrap()
                .slice_cycles(),
            1
        );
        assert_eq!(
            SymmetricCrossbar::with_dims(64, 64, 16)
                .unwrap()
                .slice_cycles(),
            2
        );
        let w = &workloads()[0];
        let fast = SymmetricCrossbar::with_dims(64, 64, 8)
            .unwrap()
            .evaluate(w)
            .unwrap();
        let slow = SymmetricCrossbar::with_dims(64, 64, 16)
            .unwrap()
            .evaluate(w)
            .unwrap();
        assert!(slow.latency_s > 1.5 * fast.latency_s);
    }

    #[test]
    fn bigger_crossbars_pay_more_power_and_area_but_fewer_passes() {
        let small = SymmetricCrossbar::with_dims(32, 32, 8).unwrap();
        let big = SymmetricCrossbar::with_dims(128, 128, 8).unwrap();
        assert!(big.total_power().value() > small.total_power().value());
        assert!(big.area_mm2() > small.area_mm2());
        let w = &workloads()[1];
        let small_report = small.evaluate(w).unwrap();
        let big_report = big.evaluate(w).unwrap();
        assert!(big_report.latency_s < small_report.latency_s);
    }

    #[test]
    fn through_loss_grows_with_both_dimensions() {
        let small = SymmetricCrossbar::with_dims(32, 32, 8).unwrap();
        let wide = SymmetricCrossbar::with_dims(32, 256, 8).unwrap();
        let tall = SymmetricCrossbar::with_dims(256, 32, 8).unwrap();
        assert!(wide.loss_budget().total() > small.loss_budget().total());
        assert!(tall.loss_budget().total() > small.loss_budget().total());
    }

    #[test]
    fn report_metrics_are_self_consistent() {
        let xbar = SymmetricCrossbar::new();
        let report = xbar.evaluate(&workloads()[0]).unwrap();
        assert!((report.fps - 1.0 / report.latency_s).abs() / report.fps < 1e-9);
        assert!(
            (report.kfps_per_watt - report.fps / 1000.0 / report.power_watts).abs()
                / report.kfps_per_watt
                < 1e-9
        );
        assert_eq!(report.resolution_bits, SYMMETRIC_DEFAULT_BITS);
        assert!(report.area_mm2 > 0.0);
        assert!(xbar.name().starts_with("SymXbar_64x64"));
    }
}
