//! # crosslight-baselines
//!
//! The accelerators CrossLight is compared against in the paper's evaluation:
//!
//! * [`deap_cnn`] — DEAP-CNN (Bangari et al., JQE 2020): a noncoherent
//!   photonic CNN accelerator built from convolution-scale units, thermo-optic
//!   value imprinting, one wavelength per vector element and no
//!   crosstalk/FPV mitigation.  4-bit weight resolution.
//! * [`holylight`] — HolyLight (Liu et al., DATE 2019): a microdisk-based
//!   accelerator that gangs eight 2-bit microdisks per 16-bit weight, paying
//!   the whispering-gallery insertion loss and the tuning power of 8× more
//!   resonant devices.
//! * [`electronic`] — literature reference numbers for the electronic
//!   platforms of Fig. 7 / Table III (P100, Xeon Platinum 9282, Threadripper
//!   3970x, DaDianNao, EdgeTPU, NullHop).
//! * [`accelerator`] — the common [`PhotonicAccelerator`](accelerator::PhotonicAccelerator)
//!   trait and report type, plus an adapter for the CrossLight simulator so
//!   all photonic accelerators can be evaluated uniformly.
//!
//! Both photonic baselines are analytical models built on the same
//! photonics/tuning substrate as CrossLight itself (same Table II device
//! parameters, same loss model, same laser-power equation), so the comparison
//! differences come from the architectural choices, not from inconsistent
//! modelling.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accelerator;
pub mod deap_cnn;
pub mod electronic;
pub mod holylight;

pub use accelerator::{AcceleratorReport, PhotonicAccelerator};
pub use deap_cnn::DeapCnn;
pub use electronic::ElectronicPlatform;
pub use holylight::HolyLight;
