//! # crosslight-baselines
//!
//! The accelerators CrossLight is compared against in the paper's evaluation:
//!
//! * [`deap_cnn`] — DEAP-CNN (Bangari et al., JQE 2020): a noncoherent
//!   photonic CNN accelerator built from convolution-scale units, thermo-optic
//!   value imprinting, one wavelength per vector element and no
//!   crosstalk/FPV mitigation.  4-bit weight resolution.
//! * [`holylight`] — HolyLight (Liu et al., DATE 2019): a microdisk-based
//!   accelerator that gangs eight 2-bit microdisks per 16-bit weight, paying
//!   the whispering-gallery insertion loss and the tuning power of 8× more
//!   resonant devices.
//! * [`electronic`] — literature reference numbers for the electronic
//!   platforms of Fig. 7 / Table III (P100, Xeon Platinum 9282, Threadripper
//!   3970x, DaDianNao, EdgeTPU, NullHop).
//! * [`symmetric_crossbar`] — a symmetric add–drop MRR crossbar array
//!   (after arXiv:2401.16072), parameterized by rows × cols × resolution.
//! * [`litecon`] — LiteCON, an all-photonic accelerator that pays for
//!   resolution in analog SNR instead of conversion (after arXiv:2206.13861).
//! * [`accelerator`] — the common [`PhotonicAccelerator`](accelerator::PhotonicAccelerator)
//!   trait and report type, plus an adapter for the CrossLight simulator so
//!   all photonic accelerators can be evaluated uniformly.
//! * [`arch`] — the architecture-generic [`ArchSpec`](arch::ArchSpec) zoo:
//!   one enum describing every simulatable backend, with canonical cache
//!   keys and full core simulation reports, so the runtime, server and
//!   design-space layers can serve any architecture through one API.
//!
//! Both photonic baselines are analytical models built on the same
//! photonics/tuning substrate as CrossLight itself (same Table II device
//! parameters, same loss model, same laser-power equation), so the comparison
//! differences come from the architectural choices, not from inconsistent
//! modelling.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accelerator;
pub mod arch;
pub mod deap_cnn;
pub mod electronic;
pub mod holylight;
pub mod litecon;
pub mod symmetric_crossbar;

pub use accelerator::{AcceleratorReport, PhotonicAccelerator};
pub use arch::{AcceleratorModel, ArchSpec};
pub use deap_cnn::DeapCnn;
pub use electronic::ElectronicPlatform;
pub use holylight::HolyLight;
pub use litecon::LiteCon;
pub use symmetric_crossbar::SymmetricCrossbar;
