//! Property-based tests for the CrossLight architecture model.

use crosslight_core::config::{CrossLightConfig, DesignChoices};
use crosslight_core::decompose::{decomposed_dot, sequential_passes, DecompositionPlan};
use crosslight_core::performance::inference_latency;
use crosslight_core::power::accelerator_power;
use crosslight_neural::layers::DotProductWorkload;
use crosslight_neural::workload::NetworkWorkload;
use proptest::prelude::*;

/// A random synthetic workload of a few conv and fc layers.
fn workload_strategy() -> impl Strategy<Value = NetworkWorkload> {
    let conv = proptest::collection::vec((1usize..600, 1usize..2_000), 1..4);
    let fc = proptest::collection::vec((1usize..4_000, 1usize..300), 1..3);
    (conv, fc, 1usize..3).prop_map(|(conv, fc, towers)| NetworkWorkload {
        name: "synthetic".into(),
        conv_layers: conv
            .into_iter()
            .map(|(dot_length, dot_count)| DotProductWorkload {
                dot_length,
                dot_count,
            })
            .collect(),
        fc_layers: fc
            .into_iter()
            .map(|(dot_length, dot_count)| DotProductWorkload {
                dot_length,
                dot_count,
            })
            .collect(),
        towers,
    })
}

proptest! {
    /// Decomposed dot products equal the direct dot product for any chunk
    /// size (the paper's Eq. (4) identity).
    #[test]
    fn decomposition_preserves_dot_products(
        values in proptest::collection::vec((-5.0f64..5.0, -5.0f64..5.0), 1..200),
        chunk in 1usize..64,
    ) {
        let a: Vec<f64> = values.iter().map(|(x, _)| *x).collect();
        let b: Vec<f64> = values.iter().map(|(_, y)| *y).collect();
        let direct: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let (decomposed, partials) = decomposed_dot(&a, &b, chunk).unwrap();
        prop_assert!((decomposed - direct).abs() < 1e-6 * (1.0 + direct.abs()));
        prop_assert_eq!(partials.len(), a.len().div_ceil(chunk));
    }

    /// Plans always cover the whole vector: chunks × chunk size ≥ length, and
    /// never overshoot by more than one chunk.
    #[test]
    fn plans_cover_the_vector(length in 0usize..10_000, chunk in 1usize..256) {
        let plan = DecompositionPlan::new(length, chunk).unwrap();
        prop_assert!(plan.chunks * chunk >= length);
        if length > 0 {
            prop_assert!((plan.chunks - 1) * chunk < length);
            prop_assert_eq!(plan.accumulations(), plan.chunks - 1);
        }
    }

    /// More parallel units never increase the number of sequential passes,
    /// and larger units never increase it either.
    #[test]
    fn passes_are_monotone(
        dot_length in 1usize..5_000,
        dot_count in 1usize..5_000,
        unit_size in 1usize..200,
        units in 1usize..200,
    ) {
        let base = sequential_passes(dot_length, dot_count, unit_size, units).unwrap();
        let more_units = sequential_passes(dot_length, dot_count, unit_size, units * 2).unwrap();
        let bigger_units = sequential_passes(dot_length, dot_count, unit_size * 2, units).unwrap();
        prop_assert!(more_units <= base);
        prop_assert!(bigger_units <= base);
    }

    /// Inference latency is monotone in the workload: adding a layer never
    /// makes inference faster.
    #[test]
    fn latency_monotone_in_workload(workload in workload_strategy()) {
        let config = CrossLightConfig::paper_best();
        let base = inference_latency(&workload, &config).unwrap().total().value();
        let mut extended = workload.clone();
        extended.conv_layers.push(DotProductWorkload {
            dot_length: 64,
            dot_count: 512,
        });
        let longer = inference_latency(&extended, &config).unwrap().total().value();
        prop_assert!(longer >= base);
    }

    /// Accelerator power is positive, finite, and monotone in the number of
    /// units for any valid architecture dimensions.
    #[test]
    fn power_monotone_in_units(
        conv_units in 5usize..120,
        fc_units in 5usize..80,
    ) {
        let design = DesignChoices::default();
        let small = CrossLightConfig::new(20, 150, conv_units, fc_units, design).unwrap();
        let large = CrossLightConfig::new(20, 150, conv_units + 10, fc_units + 10, design).unwrap();
        let p_small = accelerator_power(&small).unwrap().total().value();
        let p_large = accelerator_power(&large).unwrap().total().value();
        prop_assert!(p_small.is_finite() && p_small > 0.0);
        prop_assert!(p_large > p_small);
    }
}
