//! Achievable weight/activation resolution of a configuration (paper §V.B).
//!
//! The resolution of an MR bank is limited by inter-channel crosstalk
//! (Eqs. (8)–(10)).  CrossLight's wavelength-reuse strategy keeps only 15
//! channels per arm, which lets the WDM grid spread over the full 18 nm FSR
//! with >1 nm separations and reach 16 bits; architectures that pack one
//! wavelength per vector element are forced into much denser grids and lose
//! resolution.

use crosslight_photonics::crosstalk::bank_resolution_bits;
use crosslight_photonics::mr::{MrSpectral, OPTIMIZED_FSR_NM};
use crosslight_photonics::units::Nanometers;
use crosslight_photonics::wdm::WavelengthReuse;

use crate::config::CrossLightConfig;
use crate::error::Result;

/// Resolution cap used throughout the paper (16-bit weights/activations).
pub const RESOLUTION_CAP_BITS: u32 = 16;

/// Achievable resolution (in bits) of the configured MR banks.
///
/// The channel spacing is what the FSR allows for the number of wavelengths
/// the design actually multiplexes per arm: 15 with wavelength reuse, or the
/// full unit size without it.
///
/// # Errors
///
/// Propagates crosstalk-analysis errors (which do not occur for valid
/// configurations).
pub fn achievable_resolution_bits(config: &CrossLightConfig) -> Result<u32> {
    let spectral = if config.design.geometry.is_width_optimized() {
        MrSpectral::optimized()
    } else {
        MrSpectral::conventional()
    };
    let channels = match config.design.wavelength_reuse {
        WavelengthReuse::AcrossArms => config.mrs_per_bank,
        WavelengthReuse::PerElement => config.fc_unit_size.max(config.conv_unit_size),
    };
    let spacing = Nanometers::new(OPTIMIZED_FSR_NM / channels.max(1) as f64);
    Ok(bank_resolution_bits(
        channels,
        spacing,
        spectral.q_factor,
        RESOLUTION_CAP_BITS,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DesignChoices;

    #[test]
    fn paper_configuration_achieves_16_bits() {
        let bits = achievable_resolution_bits(&CrossLightConfig::paper_best()).unwrap();
        assert_eq!(bits, 16);
    }

    #[test]
    fn per_element_wavelengths_lose_resolution() {
        let design = DesignChoices {
            wavelength_reuse: WavelengthReuse::PerElement,
            ..DesignChoices::default()
        };
        let config = CrossLightConfig::paper_best().with_design(design);
        let bits = achievable_resolution_bits(&config).unwrap();
        assert!(
            bits < 16,
            "cramming 150 wavelengths into one FSR must cost resolution, got {bits}"
        );
    }

    #[test]
    fn conventional_devices_do_not_beat_optimized_ones() {
        let design = DesignChoices {
            geometry: crosslight_photonics::mr::MrGeometry::conventional(),
            ..DesignChoices::default()
        };
        let conventional = CrossLightConfig::paper_best().with_design(design);
        let conv_bits = achievable_resolution_bits(&conventional).unwrap();
        let opt_bits = achievable_resolution_bits(&CrossLightConfig::paper_best()).unwrap();
        assert!(conv_bits <= opt_bits);
    }
}
