//! Vector decomposition into partial sums (paper Eqs. (1)–(6)).
//!
//! CONV kernels and FC rows are rewritten as dot products and then split into
//! chunks no longer than the VDP unit (or arm) size.  Each chunk produces a
//! partial sum; partial sums are accumulated optically (within a unit) or in
//! the electronic partial-sum buffer (across passes).  The numerical identity
//! — that the decomposed computation equals the original dot product — is what
//! the property tests in this module guard.

use serde::{Deserialize, Serialize};

use crate::error::{ArchitectureError, Result};

/// Plan for executing one logical dot product of a given length on hardware
/// that supports `chunk` elements at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecompositionPlan {
    /// Original dot-product length.
    pub length: usize,
    /// Chunk size supported by the executing unit.
    pub chunk: usize,
    /// Number of chunks (= partial sums produced).
    pub chunks: usize,
}

impl DecompositionPlan {
    /// Plans the decomposition of a `length`-element dot product onto a unit
    /// supporting `chunk` elements.
    ///
    /// # Errors
    ///
    /// Returns [`ArchitectureError::InvalidConfig`] if `chunk` is zero.
    pub fn new(length: usize, chunk: usize) -> Result<Self> {
        if chunk == 0 {
            return Err(ArchitectureError::InvalidConfig {
                name: "chunk",
                reason: "chunk size must be positive".into(),
            });
        }
        Ok(Self {
            length,
            chunk,
            chunks: if length == 0 {
                0
            } else {
                length.div_ceil(chunk)
            },
        })
    }

    /// Number of sequential passes needed on a single unit (one pass per
    /// chunk).
    #[must_use]
    pub fn passes(&self) -> usize {
        self.chunks
    }

    /// Number of extra accumulation operations needed to combine the partial
    /// sums (a chain of additions in the partial-sum buffer).
    #[must_use]
    pub fn accumulations(&self) -> usize {
        self.chunks.saturating_sub(1)
    }
}

/// Executes a dot product by explicit decomposition into chunked partial sums,
/// returning `(result, partial_sums)`.
///
/// This is the numerical counterpart of [`DecompositionPlan`] and mirrors the
/// worked example of paper Eq. (4): `SP1 + SP2 = Y`.
///
/// # Errors
///
/// Returns [`ArchitectureError::InvalidConfig`] if the vectors have different
/// lengths or `chunk` is zero.
pub fn decomposed_dot(a: &[f64], b: &[f64], chunk: usize) -> Result<(f64, Vec<f64>)> {
    if a.len() != b.len() {
        return Err(ArchitectureError::InvalidConfig {
            name: "vectors",
            reason: format!("length mismatch: {} vs {}", a.len(), b.len()),
        });
    }
    if chunk == 0 {
        return Err(ArchitectureError::InvalidConfig {
            name: "chunk",
            reason: "chunk size must be positive".into(),
        });
    }
    let partial_sums: Vec<f64> = a
        .chunks(chunk)
        .zip(b.chunks(chunk))
        .map(|(ca, cb)| ca.iter().zip(cb.iter()).map(|(x, y)| x * y).sum())
        .collect();
    Ok((partial_sums.iter().sum(), partial_sums))
}

/// Rewrites a 2-D convolution patch operation as a dot product (paper
/// Eqs. (1)–(3)): the kernel and the activation patch are flattened in the
/// same order and their dot product is the convolution output element.
#[must_use]
pub fn conv_patch_as_dot(kernel: &[f64], patch: &[f64]) -> f64 {
    kernel.iter().zip(patch.iter()).map(|(k, a)| k * a).sum()
}

/// Total passes required to execute `dot_count` dot products of length
/// `dot_length` on `units` parallel units each supporting `unit_size`
/// elements per pass.
///
/// The result is the number of sequential unit-cycles; it is what the latency
/// model multiplies by the per-pass latency.
///
/// # Errors
///
/// Returns [`ArchitectureError::InvalidConfig`] if `unit_size` or `units` is
/// zero.
pub fn sequential_passes(
    dot_length: usize,
    dot_count: usize,
    unit_size: usize,
    units: usize,
) -> Result<u64> {
    if units == 0 {
        return Err(ArchitectureError::InvalidConfig {
            name: "units",
            reason: "at least one unit is required".into(),
        });
    }
    let plan = DecompositionPlan::new(dot_length, unit_size)?;
    let total_passes = plan.passes() as u64 * dot_count as u64;
    Ok(total_passes.div_ceil(units as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_counts_chunks() {
        let plan = DecompositionPlan::new(100, 15).unwrap();
        assert_eq!(plan.chunks, 7);
        assert_eq!(plan.passes(), 7);
        assert_eq!(plan.accumulations(), 6);
        let exact = DecompositionPlan::new(30, 15).unwrap();
        assert_eq!(exact.chunks, 2);
        let small = DecompositionPlan::new(4, 15).unwrap();
        assert_eq!(small.chunks, 1);
        assert_eq!(small.accumulations(), 0);
        let empty = DecompositionPlan::new(0, 15).unwrap();
        assert_eq!(empty.chunks, 0);
        assert!(DecompositionPlan::new(10, 0).is_err());
    }

    #[test]
    fn paper_equation_four_example() {
        // [k1 k2 k3 k4] · [a1 a2 a3 a4] decomposed into two 2-element partial
        // sums SP1 + SP2 = Y.
        let k = [0.5, 0.25, 2.0, 1.0];
        let a = [0.8, 0.4, 0.1, 0.6];
        let (y, partials) = decomposed_dot(&k, &a, 2).unwrap();
        assert_eq!(partials.len(), 2);
        let sp1 = 0.5 * 0.8 + 0.25 * 0.4;
        let sp2 = 2.0 * 0.1 + 1.0 * 0.6;
        assert!((partials[0] - sp1).abs() < 1e-12);
        assert!((partials[1] - sp2).abs() < 1e-12);
        assert!((y - (sp1 + sp2)).abs() < 1e-12);
        // And it equals the undecomposed dot product.
        let direct: f64 = k.iter().zip(a.iter()).map(|(x, y)| x * y).sum();
        assert!((y - direct).abs() < 1e-12);
    }

    #[test]
    fn decomposition_is_exact_for_many_chunk_sizes() {
        let a: Vec<f64> = (0..157).map(|i| ((i as f64) * 0.37).sin()).collect();
        let b: Vec<f64> = (0..157).map(|i| ((i as f64) * 0.11).cos()).collect();
        let direct: f64 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
        for chunk in [1, 2, 7, 15, 20, 150, 200] {
            let (y, partials) = decomposed_dot(&a, &b, chunk).unwrap();
            assert!((y - direct).abs() < 1e-9, "chunk {chunk}");
            assert_eq!(partials.len(), 157usize.div_ceil(chunk));
        }
    }

    #[test]
    fn conv_patch_matches_paper_equation_two() {
        // Paper Eq. (2): 2×2 kernel ⊗ 2×2 patch = k1a1 + k2a2 + k3a3 + k4a4.
        let kernel = [1.0, 2.0, 3.0, 4.0];
        let patch = [0.1, 0.2, 0.3, 0.4];
        let y = conv_patch_as_dot(&kernel, &patch);
        assert!((y - (0.1 + 0.4 + 0.9 + 1.6)).abs() < 1e-12);
    }

    #[test]
    fn decomposed_dot_rejects_bad_inputs() {
        assert!(decomposed_dot(&[1.0], &[1.0, 2.0], 2).is_err());
        assert!(decomposed_dot(&[1.0], &[1.0], 0).is_err());
    }

    #[test]
    fn sequential_passes_account_for_unit_count_and_size() {
        // 1000 dot products of length 30 on units of size 15: 2 passes each,
        // 2000 passes total, over 100 units → 20 sequential cycles.
        assert_eq!(sequential_passes(30, 1000, 15, 100).unwrap(), 20);
        // Larger unit halves the passes.
        assert_eq!(sequential_passes(30, 1000, 30, 100).unwrap(), 10);
        // One unit serialises everything.
        assert_eq!(sequential_passes(30, 1000, 15, 1).unwrap(), 2000);
        assert!(sequential_passes(30, 1000, 0, 10).is_err());
        assert!(sequential_passes(30, 1000, 15, 0).is_err());
    }

    #[test]
    fn fc_layers_on_conv_sized_units_need_many_more_passes() {
        // The paper's motivation for separate FC units: a 3200-long FC dot
        // product on a 20-wide CONV unit needs 160 passes; on a 150-wide FC
        // unit it needs 22.
        let on_conv = sequential_passes(3200, 202, 20, 100).unwrap();
        let on_fc = sequential_passes(3200, 202, 150, 60).unwrap();
        assert!(on_conv > 4 * on_fc);
    }
}
