//! Vector dot product (VDP) unit model.
//!
//! A VDP unit (paper Fig. 3, §IV.C.2) executes one `size`-element dot product
//! per pass.  Internally it is organised as `ceil(size / 15)` parallel arms;
//! each arm carries two 15-MR banks (one imprinting activations, one
//! imprinting weights) on a shared bus, a balanced photodetector + TIA that
//! sums the element-wise products of its chunk, and a VCSEL that regenerates
//! the partial sum into the optical domain so a final photodetector can
//! accumulate across arms (§IV.C.3).
//!
//! The model exposes the three quantities the architecture simulator needs:
//! the per-pass latency, the per-unit optical/electrical power, and the loss
//! budget that sets the laser power.

use serde::{Deserialize, Serialize};

use crosslight_photonics::devices::{
    eo_tuner_latency, photodetector, tia, to_tuner_latency, vcsel, Transceiver,
};
use crosslight_photonics::laser::LaserPowerModel;
use crosslight_photonics::loss::{LossBudget, LossModel};
use crosslight_photonics::units::{Micrometers, MilliWatts, Seconds};
use crosslight_tuning::power::{estimate_bank_tuning_power, BankTuningConfig, ValueTuning};

use crate::config::{CrossLightConfig, DesignChoices};
use crate::error::Result;

/// Conversion time of one output sample through the ADC at the transceiver's
/// peak rate (16 bits at 56 Gb/s).
const ADC_SAMPLE_BITS: f64 = 16.0;

/// Waveguide routing overhead per arm beyond the MR banks themselves
/// (feeder and collection waveguides).
const ARM_ROUTING_UM: f64 = 200.0;

/// A configured VDP unit of a given size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VdpUnit {
    /// Dot-product size the unit supports per pass.
    pub size: usize,
    /// MRs per bank (wavelengths per arm).
    pub mrs_per_bank: usize,
    /// Design choices inherited from the accelerator configuration.
    pub design: DesignChoices,
}

/// Per-unit derived quantities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VdpUnitReport {
    /// Number of parallel arms.
    pub arms: usize,
    /// Latency of one pass (imprint → detect → accumulate → convert).
    pub pass_latency: Seconds,
    /// Electrical laser power feeding the unit.
    pub laser_power: MilliWatts,
    /// Tuning power of all MR banks in the unit.
    pub tuning_power: MilliWatts,
    /// Photodetector + TIA + VCSEL power of the unit.
    pub detection_power: MilliWatts,
    /// ADC/DAC transceiver power of the unit at its operating rate.
    pub conversion_power: MilliWatts,
}

impl VdpUnitReport {
    /// Total electrical power of the unit.
    #[must_use]
    pub fn total_power(&self) -> MilliWatts {
        self.laser_power + self.tuning_power + self.detection_power + self.conversion_power
    }
}

impl VdpUnit {
    /// Creates a CONV-pool unit from an accelerator configuration.
    #[must_use]
    pub fn conv_unit(config: &CrossLightConfig) -> Self {
        Self {
            size: config.conv_unit_size,
            mrs_per_bank: config.mrs_per_bank,
            design: config.design,
        }
    }

    /// Creates an FC-pool unit from an accelerator configuration.
    #[must_use]
    pub fn fc_unit(config: &CrossLightConfig) -> Self {
        Self {
            size: config.fc_unit_size,
            mrs_per_bank: config.mrs_per_bank,
            design: config.design,
        }
    }

    /// Number of parallel arms in the unit.
    #[must_use]
    pub fn arms(&self) -> usize {
        self.size.div_ceil(self.mrs_per_bank).max(1)
    }

    /// Latency of one pass through the unit.
    ///
    /// A pass imprints the chunk values on the MR banks, lets the light
    /// traverse banks and be summed at the arm photodetector, regenerates
    /// partial sums through VCSELs, accumulates them on the unit
    /// photodetector, and converts the result.
    #[must_use]
    pub fn pass_latency(&self) -> Seconds {
        let imprint = match self.design.value_tuning {
            ValueTuning::ElectroOptic => eo_tuner_latency(),
            ValueTuning::ThermoOptic => to_tuner_latency(),
        };
        let arm_detection = photodetector().latency + tia().latency;
        let cross_arm = if self.arms() > 1 {
            vcsel().latency + photodetector().latency + tia().latency
        } else {
            Seconds::new(0.0)
        };
        let conversion =
            Seconds::new(ADC_SAMPLE_BITS / (Transceiver::isscc2019().max_rate_gbps * 1e9));
        imprint + arm_detection + cross_arm + conversion
    }

    /// Optical loss budget of one arm's laser-to-detector path.
    #[must_use]
    pub fn arm_loss_budget(&self) -> LossBudget {
        let mut budget = LossBudget::new(LossModel::paper());
        // Two banks per arm on the same bus; spacing-determined bus length plus
        // fixed routing.
        let bank_length =
            self.design.mr_spacing.value() * (2 * self.mrs_per_bank).saturating_sub(1) as f64;
        budget.add_propagation(Micrometers::new(bank_length + ARM_ROUTING_UM));
        // A wavelength passes every other MR of both banks off-resonance and is
        // modulated by its own activation MR and weight MR.
        budget.add_mr_through(2 * self.mrs_per_bank.saturating_sub(1));
        budget.add_mr_modulation(2);
        // Splitting the unit's input light across arms: one excess splitter
        // stage per power-of-two of fan-out, plus the final combiner feeding
        // the arm photodetector.
        let split_stages = (self.arms() as f64).log2().ceil() as usize;
        budget.add_splitters(split_stages.max(1));
        budget.add_combiners(1);
        budget
    }

    /// Electrical laser power feeding the whole unit (all wavelengths), taking
    /// the arm power split and wavelength reuse into account.
    ///
    /// # Errors
    ///
    /// Propagates laser-model errors (which do not occur for valid units).
    pub fn laser_power(&self) -> Result<MilliWatts> {
        let model = LaserPowerModel::paper();
        let budget = self.arm_loss_budget();
        // Eq. (7) per wavelength: detector sensitivity + path loss + WDM
        // penalty; feeding `arms` arms in parallel divides the laser power, so
        // it enters as an extra 10·log10(arms) dB.
        let mut loss = budget.total();
        loss += crosslight_photonics::units::DecibelLoss::new(10.0 * (self.arms() as f64).log10());
        let per_wavelength = model.required_electrical_power(loss, self.mrs_per_bank)?;
        let lasers = self
            .design
            .wavelength_reuse
            .lasers_required(self.size, self.mrs_per_bank);
        Ok(per_wavelength * lasers as f64)
    }

    /// Tuning power of all MR banks in the unit (two banks per arm).
    ///
    /// # Errors
    ///
    /// Propagates tuning-model errors (which do not occur for valid units).
    pub fn tuning_power(&self) -> Result<MilliWatts> {
        let bank_config = BankTuningConfig {
            mr_count: self.mrs_per_bank,
            spacing: self.design.mr_spacing,
            geometry: self.design.geometry,
            compensation: self.design.compensation,
            value_tuning: self.design.value_tuning,
        };
        let per_bank = estimate_bank_tuning_power(&bank_config)?;
        Ok(per_bank.total() * (2 * self.arms()) as f64)
    }

    /// Photodetector, TIA and VCSEL power of the unit.
    #[must_use]
    pub fn detection_power(&self) -> MilliWatts {
        let arms = self.arms() as f64;
        // One balanced PD + TIA per arm.
        let per_arm = photodetector().power + tia().power;
        // Partial-sum regeneration and accumulation only exist for multi-arm
        // units: one VCSEL per arm plus one accumulation PD + TIA.
        let cross_arm = if self.arms() > 1 {
            vcsel().power * arms + photodetector().power + tia().power
        } else {
            MilliWatts::new(0.0)
        };
        per_arm * arms + cross_arm
    }

    /// ADC/DAC transceiver power at the unit's operating sample rate.
    #[must_use]
    pub fn conversion_power(&self) -> MilliWatts {
        let sample_rate_hz = 1.0 / self.pass_latency().value();
        let rate_gbps = sample_rate_hz * ADC_SAMPLE_BITS / 1e9;
        Transceiver::isscc2019().power_at_rate(rate_gbps)
    }

    /// Full per-unit report.
    ///
    /// # Errors
    ///
    /// Propagates laser/tuning model errors (which do not occur for valid
    /// units).
    pub fn report(&self) -> Result<VdpUnitReport> {
        Ok(VdpUnitReport {
            arms: self.arms(),
            pass_latency: self.pass_latency(),
            laser_power: self.laser_power()?,
            tuning_power: self.tuning_power()?,
            detection_power: self.detection_power(),
            conversion_power: self.conversion_power(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crosslight_photonics::wdm::WavelengthReuse;
    use crosslight_tuning::power::CrosstalkCompensation;

    fn best() -> CrossLightConfig {
        CrossLightConfig::paper_best()
    }

    #[test]
    fn arm_counts() {
        let conv = VdpUnit::conv_unit(&best());
        let fc = VdpUnit::fc_unit(&best());
        assert_eq!(conv.arms(), 2);
        assert_eq!(fc.arms(), 10);
    }

    #[test]
    fn pass_latency_is_dominated_by_eo_imprinting() {
        let conv = VdpUnit::conv_unit(&best());
        let latency = conv.pass_latency().to_nanos();
        assert!(latency > 20.0 && latency < 60.0, "latency {latency} ns");
    }

    #[test]
    fn thermo_optic_imprinting_is_orders_of_magnitude_slower() {
        let mut config = best();
        config.design.value_tuning = ValueTuning::ThermoOptic;
        let slow = VdpUnit::conv_unit(&config).pass_latency();
        let fast = VdpUnit::conv_unit(&best()).pass_latency();
        assert!(slow.value() > 50.0 * fast.value());
    }

    #[test]
    fn fc_units_need_more_laser_power_than_conv_units() {
        let conv = VdpUnit::conv_unit(&best()).laser_power().unwrap();
        let fc = VdpUnit::fc_unit(&best()).laser_power().unwrap();
        assert!(fc.value() > conv.value());
    }

    #[test]
    fn wavelength_reuse_cuts_laser_power() {
        let with_reuse = VdpUnit::fc_unit(&best()).laser_power().unwrap();
        let mut config = best();
        config.design.wavelength_reuse = WavelengthReuse::PerElement;
        let without = VdpUnit::fc_unit(&config).laser_power().unwrap();
        assert!(
            without.value() > 5.0 * with_reuse.value(),
            "per-element: {without}, reuse: {with_reuse}"
        );
    }

    #[test]
    fn ted_reduces_unit_tuning_power() {
        let ted = VdpUnit::fc_unit(&best()).tuning_power().unwrap();
        let mut config = best();
        config.design.compensation = CrosstalkCompensation::Naive;
        let naive = VdpUnit::fc_unit(&config).tuning_power().unwrap();
        assert!(naive.value() > ted.value());
    }

    #[test]
    fn report_totals_are_consistent() {
        let unit = VdpUnit::fc_unit(&best());
        let report = unit.report().unwrap();
        let expected = report.laser_power.value()
            + report.tuning_power.value()
            + report.detection_power.value()
            + report.conversion_power.value();
        assert!((report.total_power().value() - expected).abs() < 1e-9);
        assert_eq!(report.arms, 10);
        assert!(report.total_power().value() > 0.0);
    }

    #[test]
    fn loss_grows_with_unit_size() {
        let small = VdpUnit {
            size: 15,
            mrs_per_bank: 15,
            design: DesignChoices::default(),
        };
        let large = VdpUnit {
            size: 150,
            mrs_per_bank: 15,
            design: DesignChoices::default(),
        };
        // The per-arm path loss is the same, but the larger unit pays more in
        // the split across arms, so its laser power requirement is higher.
        assert!(large.laser_power().unwrap().value() > small.laser_power().unwrap().value());
        assert!(small.arm_loss_budget().total().value() <= large.arm_loss_budget().total().value());
    }

    #[test]
    fn single_arm_unit_skips_cross_arm_devices() {
        let single = VdpUnit {
            size: 10,
            mrs_per_bank: 15,
            design: DesignChoices::default(),
        };
        assert_eq!(single.arms(), 1);
        let multi = VdpUnit {
            size: 30,
            mrs_per_bank: 15,
            design: DesignChoices::default(),
        };
        assert!(single.detection_power().value() < multi.detection_power().value());
        assert!(single.pass_latency().value() < multi.pass_latency().value());
    }
}
