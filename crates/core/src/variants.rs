//! The four CrossLight variants compared in the paper's Fig. 7, Fig. 8 and
//! Table III.
//!
//! | Variant          | MR design    | Crosstalk tuning |
//! |------------------|--------------|------------------|
//! | `Cross_base`     | conventional | traditional (naive) TO |
//! | `Cross_opt`      | optimized    | traditional (naive) TO |
//! | `Cross_base_TED` | conventional | hybrid TED |
//! | `Cross_opt_TED`  | optimized    | hybrid TED |
//!
//! All four share the same architecture dimensions (the best configuration of
//! the Fig. 6 exploration) and the same EO value-imprinting datapath; they
//! differ in how much power the device- and circuit-level choices cost.

use serde::{Deserialize, Serialize};

use crosslight_photonics::mr::MrGeometry;
use crosslight_photonics::units::Micrometers;
use crosslight_photonics::wdm::WavelengthReuse;
use crosslight_tuning::power::{CrosstalkCompensation, ValueTuning};

use crate::config::{CrossLightConfig, DesignChoices, MR_SPACING_UM};

/// The four CrossLight variants of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CrossLightVariant {
    /// Conventional MR design, traditional thermo-optic compensation.
    Base,
    /// Conventional MR design, hybrid TED-based tuning.
    BaseTed,
    /// Optimized MR design, traditional thermo-optic compensation.
    Opt,
    /// Optimized MR design, hybrid TED-based tuning (the full CrossLight).
    OptTed,
}

impl CrossLightVariant {
    /// All four variants in the order the paper lists them.
    #[must_use]
    pub fn all() -> [CrossLightVariant; 4] {
        [Self::Base, Self::BaseTed, Self::Opt, Self::OptTed]
    }

    /// The label used in the paper's figures.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Base => "Cross_base",
            Self::BaseTed => "Cross_base_TED",
            Self::Opt => "Cross_opt",
            Self::OptTed => "Cross_opt_TED",
        }
    }

    /// Parses a paper figure label (as produced by
    /// [`CrossLightVariant::label`]) back into the variant — the inverse
    /// used by the wire protocol of `crosslight-server`, which transmits
    /// variants by their stable paper names.
    #[must_use]
    pub fn from_label(label: &str) -> Option<Self> {
        Self::all().into_iter().find(|v| v.label() == label)
    }

    /// The design choices of this variant.
    ///
    /// All variants share the same 5 µm layout (so they fit the same area
    /// window); variants without TED pay the naive crosstalk-compensation
    /// power penalty at that spacing, exactly as in the "without TED" curve of
    /// the paper's Fig. 4.
    #[must_use]
    pub fn design(&self) -> DesignChoices {
        let geometry = match self {
            Self::Base | Self::BaseTed => MrGeometry::conventional(),
            Self::Opt | Self::OptTed => MrGeometry::optimized(),
        };
        let compensation = match self {
            Self::Base | Self::Opt => CrosstalkCompensation::Naive,
            Self::BaseTed | Self::OptTed => CrosstalkCompensation::Ted,
        };
        DesignChoices {
            geometry,
            compensation,
            value_tuning: ValueTuning::ElectroOptic,
            wavelength_reuse: WavelengthReuse::AcrossArms,
            mr_spacing: Micrometers::new(MR_SPACING_UM),
        }
    }

    /// The full accelerator configuration of this variant (paper-best
    /// architecture dimensions with this variant's design choices).
    #[must_use]
    pub fn config(&self) -> CrossLightConfig {
        CrossLightConfig::paper_best().with_design(self.design())
    }
}

impl std::fmt::Display for CrossLightVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_the_paper() {
        assert_eq!(CrossLightVariant::Base.label(), "Cross_base");
        assert_eq!(CrossLightVariant::BaseTed.label(), "Cross_base_TED");
        assert_eq!(CrossLightVariant::Opt.label(), "Cross_opt");
        assert_eq!(CrossLightVariant::OptTed.label(), "Cross_opt_TED");
        assert_eq!(CrossLightVariant::OptTed.to_string(), "Cross_opt_TED");
        assert_eq!(CrossLightVariant::all().len(), 4);
    }

    #[test]
    fn labels_round_trip_through_from_label() {
        for variant in CrossLightVariant::all() {
            assert_eq!(
                CrossLightVariant::from_label(variant.label()),
                Some(variant)
            );
        }
        assert_eq!(CrossLightVariant::from_label("Cross_unknown"), None);
    }

    #[test]
    fn designs_differ_along_the_two_axes() {
        assert!(!CrossLightVariant::Base
            .design()
            .geometry
            .is_width_optimized());
        assert!(CrossLightVariant::OptTed
            .design()
            .geometry
            .is_width_optimized());
        assert_eq!(
            CrossLightVariant::Base.design().compensation,
            CrosstalkCompensation::Naive
        );
        assert_eq!(
            CrossLightVariant::BaseTed.design().compensation,
            CrosstalkCompensation::Ted
        );
        // All variants share the same 5 µm layout.
        assert_eq!(
            CrossLightVariant::OptTed.design().mr_spacing,
            CrossLightVariant::Opt.design().mr_spacing
        );
    }

    #[test]
    fn all_variants_share_architecture_dimensions() {
        for v in CrossLightVariant::all() {
            let c = v.config();
            assert_eq!(c.conv_unit_size, 20);
            assert_eq!(c.fc_unit_size, 150);
            assert_eq!(c.conv_units, 100);
            assert_eq!(c.fc_units, 60);
        }
    }
}
