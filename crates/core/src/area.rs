//! Accelerator area model.
//!
//! The paper compares accelerators "within a reasonable area constraint
//! (~16–25 mm²)" (§V.D) and reports area as the third axis of the Fig. 6
//! design-space scatter.  The model here counts the photonic real estate of
//! the MR banks (at the configured spacing), the per-arm optoelectronics
//! (balanced PD, TIA, VCSEL, routing) and the per-unit electronics
//! (ADC/DAC transceiver, DAC array, laser coupling).  Per-device footprints
//! that the paper does not specify are named calibration constants.

use serde::{Deserialize, Serialize};

use crosslight_photonics::units::SquareMillimeters;

use crate::config::CrossLightConfig;

/// Waveguide track width allotted to each MR cell (µm); the cell area is
/// `spacing × MR_TRACK_WIDTH_UM`.
pub const MR_TRACK_WIDTH_UM: f64 = 10.0;

/// Area of the per-arm optoelectronics: balanced photodetector, TIA, VCSEL and
/// local routing (mm², calibration constant).
pub const ARM_OVERHEAD_MM2: f64 = 0.008;

/// Area of the per-unit electronics: ADC/DAC transceiver lane, DAC array,
/// laser coupling and local control (mm², calibration constant).
pub const UNIT_OVERHEAD_MM2: f64 = 0.09;

/// Itemised area of an accelerator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorArea {
    /// Area of all MR banks.
    pub mr_banks: SquareMillimeters,
    /// Area of per-arm optoelectronics.
    pub arm_devices: SquareMillimeters,
    /// Area of per-unit electronics.
    pub unit_electronics: SquareMillimeters,
}

impl AcceleratorArea {
    /// Total accelerator area.
    #[must_use]
    pub fn total(&self) -> SquareMillimeters {
        self.mr_banks + self.arm_devices + self.unit_electronics
    }
}

/// Computes the area of a configuration.
#[must_use]
pub fn accelerator_area(config: &CrossLightConfig) -> AcceleratorArea {
    let mr_cell_um2 = config.design.mr_spacing.value() * MR_TRACK_WIDTH_UM;
    let mr_banks = SquareMillimeters::new(config.total_mrs() as f64 * mr_cell_um2 * 1e-6);
    let arm_devices = SquareMillimeters::new(config.total_arms() as f64 * ARM_OVERHEAD_MM2);
    let unit_electronics =
        SquareMillimeters::new((config.conv_units + config.fc_units) as f64 * UNIT_OVERHEAD_MM2);
    AcceleratorArea {
        mr_banks,
        arm_devices,
        unit_electronics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DesignChoices;
    use crosslight_photonics::units::Micrometers;

    #[test]
    fn best_config_lands_in_the_paper_area_window() {
        let area = accelerator_area(&CrossLightConfig::paper_best());
        let mm2 = area.total().value();
        assert!(
            (14.0..=26.0).contains(&mm2),
            "best configuration should sit in the ~16–25 mm² window, got {mm2}"
        );
    }

    #[test]
    fn total_is_sum_of_components() {
        let area = accelerator_area(&CrossLightConfig::paper_best());
        let expected =
            area.mr_banks.value() + area.arm_devices.value() + area.unit_electronics.value();
        assert!((area.total().value() - expected).abs() < 1e-12);
    }

    #[test]
    fn area_grows_with_unit_count_and_size() {
        let base = accelerator_area(&CrossLightConfig::paper_best())
            .total()
            .value();
        let fewer_units = CrossLightConfig::new(20, 150, 50, 30, DesignChoices::default()).unwrap();
        assert!(accelerator_area(&fewer_units).total().value() < base);
        let bigger_units =
            CrossLightConfig::new(40, 300, 100, 60, DesignChoices::default()).unwrap();
        assert!(accelerator_area(&bigger_units).total().value() > base);
    }

    #[test]
    fn wider_mr_spacing_increases_bank_area() {
        let tight = CrossLightConfig::paper_best();
        let wide_design = DesignChoices {
            mr_spacing: Micrometers::new(120.0),
            ..DesignChoices::default()
        };
        let wide = tight.with_design(wide_design);
        assert!(
            accelerator_area(&wide).mr_banks.value()
                > 10.0 * accelerator_area(&tight).mr_banks.value()
        );
    }
}
