//! # crosslight-core
//!
//! The CrossLight cross-layer optimized silicon-photonic neural-network
//! accelerator (Sunny et al., DAC 2021) — the paper's primary contribution.
//!
//! The accelerator executes DNN inference as optical vector dot products
//! (VDPs): activations and weights are imprinted on WDM wavelengths by
//! microring-resonator banks, multiplied by tuned transmission, and summed on
//! photodetectors.  The architecture separates CONV-layer acceleration
//! (`n` units of size `N`) from FC-layer acceleration (`m` units of size `K`)
//! and reuses wavelengths across the arms of each unit to save laser power.
//!
//! Modules:
//!
//! * [`config`] — architecture dimensions and cross-layer design choices.
//! * [`canonical`] — bit-exact `Eq + Hash` configuration and sub-config keys,
//!   the identities the cache layers memoize and shard by.
//! * [`variants`] — the four paper variants (`Cross_base` … `Cross_opt_TED`).
//! * [`decompose`] — vector decomposition into partial sums (Eqs. (1)–(6)).
//! * [`vdp`] — the VDP unit model (arms, latency, laser/tuning power).
//! * [`power`], [`area`], [`performance`], [`resolution`] — the accelerator
//!   models behind the paper's figures.
//! * [`cache`] — the [`ModelCache`](cache::ModelCache) memoizing those
//!   models by sub-config key for design-space sweeps and the runtime pool.
//! * [`simulator`] — the top-level [`CrossLightSimulator`].
//!
//! # Example
//!
//! ```
//! use crosslight_core::prelude::*;
//! use crosslight_neural::workload::NetworkWorkload;
//! use crosslight_neural::zoo::PaperModel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let simulator = CrossLightSimulator::new(CrossLightVariant::OptTed.config());
//! let workload = NetworkWorkload::from_spec(&PaperModel::CnnCifar10.spec())?;
//! let report = simulator.evaluate(&workload)?;
//! println!("{:.1} FPS at {:.1} W", report.metrics.fps, report.power.total_watts().value());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod area;
pub mod cache;
pub mod canonical;
pub mod config;
pub mod decompose;
pub mod error;
pub mod performance;
pub mod power;
pub mod resolution;
pub mod simulator;
pub mod variants;
pub mod vdp;

pub use cache::{ModelCache, ModelCacheStats};
pub use canonical::{ArchKey, BackendKey, ConfigKey};
pub use config::CrossLightConfig;
pub use error::ArchitectureError;
pub use simulator::{CrossLightSimulator, PreparedSimulator, SimulationReport};
pub use variants::CrossLightVariant;

/// Convenient re-exports for downstream users.
pub mod prelude {
    pub use crate::cache::{ModelCache, ModelCacheStats};
    pub use crate::canonical::{ArchKey, BackendKey, ConfigKey};
    pub use crate::config::{CrossLightConfig, DesignChoices};
    pub use crate::simulator::{
        AverageMetrics, CrossLightSimulator, PreparedSimulator, SimulationReport,
    };
    pub use crate::variants::CrossLightVariant;
}
