//! CrossLight accelerator configuration.
//!
//! The architecture-level knobs of the paper's sensitivity study (§V.C) are
//! the CONV VDP unit size `N`, the FC VDP unit size `K`, and the unit counts
//! `n` (CONV) and `m` (FC).  The paper's best configuration — the one used for
//! all comparisons — is `(N, K, n, m) = (20, 150, 100, 60)`.
//!
//! The cross-layer design choices (MR device design, TED tuning, value-tuning
//! circuit, wavelength reuse) are captured by [`DesignChoices`], with the four
//! paper variants provided by [`crate::variants`].

use serde::{Deserialize, Serialize};

use crosslight_photonics::mr::MrGeometry;
use crosslight_photonics::units::Micrometers;
use crosslight_photonics::wdm::WavelengthReuse;
use crosslight_tuning::power::{CrosstalkCompensation, ValueTuning};

use crate::error::{ArchitectureError, Result};

/// Maximum MRs per bank (and wavelengths per arm), paper §IV.C.2.
pub const MAX_MRS_PER_BANK: usize = 15;

/// MR centre-to-centre spacing chosen by the paper's Fig. 4 analysis.
pub const MR_SPACING_UM: f64 = 5.0;

/// The paper's best configuration from the Fig. 6 design-space exploration.
pub const BEST_CONFIG: (usize, usize, usize, usize) = (20, 150, 100, 60);

/// Cross-layer design choices distinguishing the CrossLight variants and the
/// baselines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignChoices {
    /// MR device design (optimized = FPV-resilient 400/800 nm widths).
    pub geometry: MrGeometry,
    /// Thermal-crosstalk compensation strategy.
    pub compensation: CrosstalkCompensation,
    /// Circuit used to imprint weight/activation values.
    pub value_tuning: ValueTuning,
    /// Wavelength allocation strategy.
    pub wavelength_reuse: WavelengthReuse,
    /// MR spacing within banks.
    pub mr_spacing: Micrometers,
}

impl DesignChoices {
    /// The fully cross-layer-optimized CrossLight design (opt + TED).
    #[must_use]
    pub fn crosslight_opt_ted() -> Self {
        Self {
            geometry: MrGeometry::optimized(),
            compensation: CrosstalkCompensation::Ted,
            value_tuning: ValueTuning::ElectroOptic,
            wavelength_reuse: WavelengthReuse::AcrossArms,
            mr_spacing: Micrometers::new(MR_SPACING_UM),
        }
    }
}

impl Default for DesignChoices {
    fn default() -> Self {
        Self::crosslight_opt_ted()
    }
}

/// Complete CrossLight accelerator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossLightConfig {
    /// Dot-product size supported by each CONV VDP unit (`N`).
    pub conv_unit_size: usize,
    /// Dot-product size supported by each FC VDP unit (`K`).
    pub fc_unit_size: usize,
    /// Number of CONV VDP units (`n`).
    pub conv_units: usize,
    /// Number of FC VDP units (`m`).
    pub fc_units: usize,
    /// Maximum MRs per bank (wavelengths per arm).
    pub mrs_per_bank: usize,
    /// Cross-layer design choices.
    pub design: DesignChoices,
    /// Weight/activation resolution in bits used for energy-per-bit
    /// accounting (the architecture's achievable resolution is computed
    /// separately by [`crate::resolution`]).
    pub resolution_bits: u32,
}

impl CrossLightConfig {
    /// Creates a configuration, validating the architecture parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ArchitectureError::InvalidConfig`] if any dimension is zero,
    /// `K < N` (the paper requires FC units to be larger than CONV units), or
    /// the bank size exceeds [`MAX_MRS_PER_BANK`].
    pub fn new(
        conv_unit_size: usize,
        fc_unit_size: usize,
        conv_units: usize,
        fc_units: usize,
        design: DesignChoices,
    ) -> Result<Self> {
        if conv_unit_size == 0 || fc_unit_size == 0 || conv_units == 0 || fc_units == 0 {
            return Err(ArchitectureError::InvalidConfig {
                name: "dimensions",
                reason: format!(
                    "all of N, K, n, m must be positive, got ({conv_unit_size}, {fc_unit_size}, \
                     {conv_units}, {fc_units})"
                ),
            });
        }
        if fc_unit_size < conv_unit_size {
            return Err(ArchitectureError::InvalidConfig {
                name: "fc_unit_size",
                reason: format!(
                    "the paper requires K > N (FC vectors are larger); got K={fc_unit_size} < \
                     N={conv_unit_size}"
                ),
            });
        }
        Ok(Self {
            conv_unit_size,
            fc_unit_size,
            conv_units,
            fc_units,
            mrs_per_bank: MAX_MRS_PER_BANK,
            design,
            resolution_bits: 16,
        })
    }

    /// The paper's best configuration, `(N, K, n, m) = (20, 150, 100, 60)`,
    /// with the fully optimized design.
    #[must_use]
    pub fn paper_best() -> Self {
        let (n_size, k_size, n_units, m_units) = BEST_CONFIG;
        Self::new(
            n_size,
            k_size,
            n_units,
            m_units,
            DesignChoices::crosslight_opt_ted(),
        )
        .expect("the paper's best configuration is valid")
    }

    /// Returns a copy with different design choices (used to build the four
    /// paper variants over the same architecture dimensions).
    #[must_use]
    pub fn with_design(mut self, design: DesignChoices) -> Self {
        self.design = design;
        self
    }

    /// Returns a copy with a different energy-accounting resolution.
    #[must_use]
    pub fn with_resolution_bits(mut self, bits: u32) -> Self {
        self.resolution_bits = bits;
        self
    }

    /// Number of parallel arms in each CONV VDP unit.
    #[must_use]
    pub fn conv_arms_per_unit(&self) -> usize {
        self.conv_unit_size.div_ceil(self.mrs_per_bank)
    }

    /// Number of parallel arms in each FC VDP unit.
    #[must_use]
    pub fn fc_arms_per_unit(&self) -> usize {
        self.fc_unit_size.div_ceil(self.mrs_per_bank)
    }

    /// Total arms across the whole accelerator.
    #[must_use]
    pub fn total_arms(&self) -> usize {
        self.conv_units * self.conv_arms_per_unit() + self.fc_units * self.fc_arms_per_unit()
    }

    /// Total MR count across the accelerator (two banks per arm: one for
    /// activations, one for weights).
    #[must_use]
    pub fn total_mrs(&self) -> usize {
        self.total_arms() * 2 * self.mrs_per_bank
    }

    /// Number of laser wavelengths required per VDP unit, accounting for the
    /// wavelength-reuse strategy.
    #[must_use]
    pub fn lasers_per_unit(&self, unit_size: usize) -> usize {
        self.design
            .wavelength_reuse
            .lasers_required(unit_size, self.mrs_per_bank)
    }
}

impl Default for CrossLightConfig {
    fn default() -> Self {
        Self::paper_best()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_best_matches_section_v_c() {
        let c = CrossLightConfig::paper_best();
        assert_eq!(c.conv_unit_size, 20);
        assert_eq!(c.fc_unit_size, 150);
        assert_eq!(c.conv_units, 100);
        assert_eq!(c.fc_units, 60);
        assert_eq!(c.mrs_per_bank, 15);
        assert_eq!(c.resolution_bits, 16);
        assert_eq!(c.design.mr_spacing, Micrometers::new(5.0));
    }

    #[test]
    fn arm_counts_follow_bank_size() {
        let c = CrossLightConfig::paper_best();
        assert_eq!(c.conv_arms_per_unit(), 2); // ceil(20 / 15)
        assert_eq!(c.fc_arms_per_unit(), 10); // ceil(150 / 15)
        assert_eq!(c.total_arms(), 100 * 2 + 60 * 10);
        assert_eq!(c.total_mrs(), c.total_arms() * 30);
    }

    #[test]
    fn wavelength_reuse_limits_lasers_per_unit() {
        let c = CrossLightConfig::paper_best();
        assert_eq!(c.lasers_per_unit(150), 15);
        assert_eq!(c.lasers_per_unit(20), 15);
        let mut no_reuse = c;
        no_reuse.design.wavelength_reuse = WavelengthReuse::PerElement;
        assert_eq!(no_reuse.lasers_per_unit(150), 150);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let d = DesignChoices::default();
        assert!(CrossLightConfig::new(0, 150, 100, 60, d).is_err());
        assert!(CrossLightConfig::new(20, 150, 0, 60, d).is_err());
        assert!(CrossLightConfig::new(150, 20, 100, 60, d).is_err());
    }

    #[test]
    fn with_methods_override_fields() {
        let c = CrossLightConfig::paper_best().with_resolution_bits(8);
        assert_eq!(c.resolution_bits, 8);
        let design = DesignChoices {
            compensation: CrosstalkCompensation::Naive,
            ..DesignChoices::default()
        };
        let c = c.with_design(design);
        assert_eq!(c.design.compensation, CrosstalkCompensation::Naive);
    }
}
