//! Canonical, hashable identity of a configuration.
//!
//! [`CrossLightConfig`] is a plain-old-data struct, but it contains `f64`
//! physical quantities, so it cannot derive `Eq`/`Hash` directly.  The
//! runtime layer nevertheless needs an exact identity for configurations: its
//! result cache must treat two configurations as the same key *iff* every
//! field is identical, and its worker sharding needs a platform-stable hash
//! of that identity.
//!
//! [`ConfigKey`] is that identity: a lossless, bit-exact projection of every
//! configuration field into integers (floats via [`f64::to_bits`], enums via
//! explicit discriminants) that derives `Eq + Hash + Ord`.  Two
//! configurations produce equal keys exactly when they are field-for-field
//! identical, so a `ConfigKey` collision in a hash map is a true cache hit,
//! never an approximation.

use std::hash::Hash;

use serde::{Deserialize, Serialize};

use crosslight_neural::fingerprint::fingerprint;
use crosslight_photonics::mr::MrGeometry;
use crosslight_photonics::units::{Micrometers, Nanometers};
use crosslight_photonics::wdm::WavelengthReuse;
use crosslight_tuning::power::{CrosstalkCompensation, ValueTuning};

use crate::config::{CrossLightConfig, DesignChoices, MAX_MRS_PER_BANK};
use crate::error::{ArchitectureError, Result};
use crate::vdp::VdpUnit;

/// Number of `u64` words in the canonical encoding of a [`GeometryKey`].
pub const GEOMETRY_KEY_WORDS: usize = 5;
/// Number of `u64` words in the canonical encoding of a [`DesignKey`].
pub const DESIGN_KEY_WORDS: usize = 9;
/// Number of `u64` words in the canonical encoding of a [`VdpUnitKey`].
pub const VDP_UNIT_KEY_WORDS: usize = 11;
/// Number of `u64` words in the canonical encoding of a [`ResolutionKey`].
pub const RESOLUTION_KEY_WORDS: usize = 9;
/// Number of `u64` words in the canonical encoding of a [`ConfigKey`] — and
/// of the [`CrossLightConfig`] it losslessly projects.
pub const CONFIG_KEY_WORDS: usize = 15;

/// Bit-exact projection of [`MrGeometry`] (all fields as `f64` bit patterns).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct GeometryKey {
    input_waveguide_width: u64,
    ring_waveguide_width: u64,
    radius: u64,
    gap: u64,
    thickness: u64,
}

impl From<&MrGeometry> for GeometryKey {
    fn from(g: &MrGeometry) -> Self {
        Self {
            input_waveguide_width: g.input_waveguide_width.value().to_bits(),
            ring_waveguide_width: g.ring_waveguide_width.value().to_bits(),
            radius: g.radius.value().to_bits(),
            gap: g.gap.value().to_bits(),
            thickness: g.thickness.value().to_bits(),
        }
    }
}

/// Canonical `Eq + Hash` identity of one [`CrossLightConfig`].
///
/// Construct with [`CrossLightConfig::canonical_key`].  Field order (and
/// therefore hash and ordering) is part of the runtime cache contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ConfigKey {
    conv_unit_size: usize,
    fc_unit_size: usize,
    conv_units: usize,
    fc_units: usize,
    mrs_per_bank: usize,
    resolution_bits: u32,
    geometry: GeometryKey,
    compensation: u8,
    value_tuning: u8,
    wavelength_reuse: u8,
    mr_spacing: u64,
}

impl ConfigKey {
    /// Platform-stable 64-bit routing hash of this key (FNV-1a over the
    /// canonical field encoding).  Stable across runs and architectures, so
    /// it can shard traffic deterministically; it is *not* an identity —
    /// use `==` on the key itself for that.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        fingerprint(self)
    }
}

/// Canonical identity of a non-CrossLight backend: a small architecture tag
/// plus up to four 64-bit parameter words (dimensions, resolution, platform
/// index — each backend documents its own packing).  Everything a backend's
/// report depends on must be folded into these words, so equal keys always
/// mean bit-identical reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BackendKey {
    arch: u8,
    params: [u64; 4],
}

impl BackendKey {
    /// Packs an architecture tag and its parameter words into a key.
    #[must_use]
    pub const fn new(arch: u8, params: [u64; 4]) -> Self {
        Self { arch, params }
    }

    /// The architecture tag this key was packed with.
    #[must_use]
    pub const fn arch_tag(&self) -> u8 {
        self.arch
    }

    /// The raw parameter words this key was packed with.
    #[must_use]
    pub const fn params(&self) -> [u64; 4] {
        self.params
    }
}

/// Domain separator streamed ahead of every [`BackendKey`] so backend hash
/// streams cannot shadow CrossLight ones (whose first word is a small unit
/// size).  ASCII `"archzoo1"`.
const BACKEND_DOMAIN: u64 = 0x6172_6368_7a6f_6f31;

/// Architecture-generic canonical identity: either a full CrossLight
/// [`ConfigKey`] or a packed [`BackendKey`] for any other accelerator.
///
/// The `Hash` impl is deliberately manual: the `CrossLight` arm streams
/// **exactly** the bytes `ConfigKey` always has — no enum discriminant — so
/// every fingerprint, cache shard and worker route computed before the
/// architecture zoo existed is preserved bit-for-bit.  Equality stays
/// structural, so the (astronomically unlikely) cross-arm stream collision
/// can only ever cost a hash-bucket probe, never a wrong cache hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ArchKey {
    /// A CrossLight configuration, keyed exactly as it always was.
    CrossLight(ConfigKey),
    /// Any other backend, keyed by tag + parameter words.
    Backend(BackendKey),
}

impl Hash for ArchKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            ArchKey::CrossLight(key) => key.hash(state),
            ArchKey::Backend(key) => {
                BACKEND_DOMAIN.hash(state);
                key.hash(state);
            }
        }
    }
}

impl From<ConfigKey> for ArchKey {
    fn from(key: ConfigKey) -> Self {
        ArchKey::CrossLight(key)
    }
}

impl From<BackendKey> for ArchKey {
    fn from(key: BackendKey) -> Self {
        ArchKey::Backend(key)
    }
}

impl ArchKey {
    /// Platform-stable 64-bit routing hash (FNV-1a over the canonical
    /// encoding).  For the `CrossLight` arm this equals
    /// [`ConfigKey::fingerprint`] on the inner key, by construction.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        fingerprint(self)
    }

    /// The inner CrossLight key, if this identity is a CrossLight one.
    #[must_use]
    pub fn config_key(&self) -> Option<&ConfigKey> {
        match self {
            ArchKey::CrossLight(key) => Some(key),
            ArchKey::Backend(_) => None,
        }
    }
}

fn compensation_tag(c: CrosstalkCompensation) -> u8 {
    match c {
        CrosstalkCompensation::Ted => 0,
        CrosstalkCompensation::Naive => 1,
    }
}

fn value_tuning_tag(v: ValueTuning) -> u8 {
    match v {
        ValueTuning::ElectroOptic => 0,
        ValueTuning::ThermoOptic => 1,
    }
}

fn wavelength_reuse_tag(w: WavelengthReuse) -> u8 {
    match w {
        WavelengthReuse::PerElement => 0,
        WavelengthReuse::AcrossArms => 1,
    }
}

impl From<&DesignChoices> for GeometryKey {
    fn from(d: &DesignChoices) -> Self {
        Self::from(&d.geometry)
    }
}

/// Bit-exact projection of [`DesignChoices`]: the sub-config identity shared
/// by every model whose output depends only on the cross-layer design, not on
/// the architecture dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DesignKey {
    geometry: GeometryKey,
    compensation: u8,
    value_tuning: u8,
    wavelength_reuse: u8,
    mr_spacing: u64,
}

impl From<&DesignChoices> for DesignKey {
    fn from(d: &DesignChoices) -> Self {
        Self {
            geometry: GeometryKey::from(&d.geometry),
            compensation: compensation_tag(d.compensation),
            value_tuning: value_tuning_tag(d.value_tuning),
            wavelength_reuse: wavelength_reuse_tag(d.wavelength_reuse),
            mr_spacing: d.mr_spacing.value().to_bits(),
        }
    }
}

impl DesignChoices {
    /// Returns the canonical hashable identity of these design choices.
    #[must_use]
    pub fn canonical_key(&self) -> DesignKey {
        DesignKey::from(self)
    }
}

/// Canonical identity of one [`VdpUnit`]: everything its report depends on.
///
/// Two units with equal keys produce bit-identical [`VdpUnitReport`]s
/// (the model is a pure function of size, bank size and design), so the
/// [`ModelCache`](crate::cache::ModelCache) can share one report across every
/// `(n, m)` grid point — and across the CONV/FC pools — that reuses the same
/// `(N or K, design)` sub-configuration.
///
/// [`VdpUnitReport`]: crate::vdp::VdpUnitReport
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VdpUnitKey {
    size: usize,
    mrs_per_bank: usize,
    design: DesignKey,
}

impl VdpUnit {
    /// Returns the canonical hashable identity of this unit.
    #[must_use]
    pub fn canonical_key(&self) -> VdpUnitKey {
        VdpUnitKey {
            size: self.size,
            mrs_per_bank: self.mrs_per_bank,
            design: DesignKey::from(&self.design),
        }
    }
}

/// Canonical identity of the inputs of
/// [`achievable_resolution_bits`](crate::resolution::achievable_resolution_bits):
/// the geometry (which selects the spectral model), the wavelength-reuse
/// strategy, the bank size and the unit sizes (which set the channel count
/// without reuse).  A conservative superset of what the resolution model
/// reads, so equal keys always mean equal resolutions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ResolutionKey {
    geometry: GeometryKey,
    wavelength_reuse: u8,
    mrs_per_bank: usize,
    conv_unit_size: usize,
    fc_unit_size: usize,
}

impl From<&CrossLightConfig> for ResolutionKey {
    fn from(config: &CrossLightConfig) -> Self {
        Self {
            geometry: GeometryKey::from(&config.design.geometry),
            wavelength_reuse: wavelength_reuse_tag(config.design.wavelength_reuse),
            mrs_per_bank: config.mrs_per_bank,
            conv_unit_size: config.conv_unit_size,
            fc_unit_size: config.fc_unit_size,
        }
    }
}

impl CrossLightConfig {
    /// Returns the canonical hashable identity of this configuration.
    ///
    /// Equal keys ⇔ bit-identical configurations, so downstream caches can
    /// key results by `ConfigKey` without false sharing between distinct
    /// design points.
    #[must_use]
    pub fn canonical_key(&self) -> ConfigKey {
        ConfigKey {
            conv_unit_size: self.conv_unit_size,
            fc_unit_size: self.fc_unit_size,
            conv_units: self.conv_units,
            fc_units: self.fc_units,
            mrs_per_bank: self.mrs_per_bank,
            resolution_bits: self.resolution_bits,
            geometry: GeometryKey::from(&self.design),
            compensation: compensation_tag(self.design.compensation),
            value_tuning: value_tuning_tag(self.design.value_tuning),
            wavelength_reuse: wavelength_reuse_tag(self.design.wavelength_reuse),
            mr_spacing: self.design.mr_spacing.value().to_bits(),
        }
    }

    /// Platform-stable routing hash of the canonical key; see
    /// [`ConfigKey::fingerprint`].
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.canonical_key().fingerprint()
    }
}

// ---------------------------------------------------------------------------
// Versioned word codecs.
//
// Every canonical key (and `CrossLightConfig` itself) encodes losslessly into
// a fixed-length little sequence of `u64` words — floats as bit patterns,
// enums as the same explicit tags the keys already use.  The word order below
// is the `crosslight-snapshot/v1` contract: cache snapshot frames carry these
// words over the wire, so reordering or re-numbering them is a format break.
// ---------------------------------------------------------------------------

fn invalid_word(name: &'static str, word: u64) -> ArchitectureError {
    ArchitectureError::InvalidConfig {
        name,
        reason: format!("canonical word {word} is outside the encodable range"),
    }
}

fn usize_word(name: &'static str, word: u64) -> Result<usize> {
    usize::try_from(word).map_err(|_| invalid_word(name, word))
}

fn compensation_from_tag(tag: u64) -> Result<CrosstalkCompensation> {
    match tag {
        0 => Ok(CrosstalkCompensation::Ted),
        1 => Ok(CrosstalkCompensation::Naive),
        other => Err(invalid_word("compensation", other)),
    }
}

fn value_tuning_from_tag(tag: u64) -> Result<ValueTuning> {
    match tag {
        0 => Ok(ValueTuning::ElectroOptic),
        1 => Ok(ValueTuning::ThermoOptic),
        other => Err(invalid_word("value_tuning", other)),
    }
}

fn wavelength_reuse_from_tag(tag: u64) -> Result<WavelengthReuse> {
    match tag {
        0 => Ok(WavelengthReuse::PerElement),
        1 => Ok(WavelengthReuse::AcrossArms),
        other => Err(invalid_word("wavelength_reuse", other)),
    }
}

fn tag_word(name: &'static str, word: u64) -> Result<u8> {
    if word <= 1 {
        Ok(word as u8)
    } else {
        Err(invalid_word(name, word))
    }
}

impl GeometryKey {
    /// Canonical word encoding (five `f64` bit patterns).
    #[must_use]
    pub fn to_words(&self) -> [u64; GEOMETRY_KEY_WORDS] {
        [
            self.input_waveguide_width,
            self.ring_waveguide_width,
            self.radius,
            self.gap,
            self.thickness,
        ]
    }

    /// Rebuilds a key from its canonical words.  Every bit pattern is a legal
    /// geometry projection, so this cannot fail.
    #[must_use]
    pub fn from_words(words: [u64; GEOMETRY_KEY_WORDS]) -> Self {
        Self {
            input_waveguide_width: words[0],
            ring_waveguide_width: words[1],
            radius: words[2],
            gap: words[3],
            thickness: words[4],
        }
    }
}

impl DesignKey {
    /// Canonical word encoding: geometry, then the three design tags, then
    /// the MR-spacing bit pattern.
    #[must_use]
    pub fn to_words(&self) -> [u64; DESIGN_KEY_WORDS] {
        let g = self.geometry.to_words();
        [
            g[0],
            g[1],
            g[2],
            g[3],
            g[4],
            u64::from(self.compensation),
            u64::from(self.value_tuning),
            u64::from(self.wavelength_reuse),
            self.mr_spacing,
        ]
    }

    /// Rebuilds a key from its canonical words.
    ///
    /// # Errors
    ///
    /// Returns [`ArchitectureError::InvalidConfig`] if a design tag is
    /// outside its enum range.
    pub fn from_words(words: [u64; DESIGN_KEY_WORDS]) -> Result<Self> {
        Ok(Self {
            geometry: GeometryKey::from_words([words[0], words[1], words[2], words[3], words[4]]),
            compensation: tag_word("compensation", words[5])?,
            value_tuning: tag_word("value_tuning", words[6])?,
            wavelength_reuse: tag_word("wavelength_reuse", words[7])?,
            mr_spacing: words[8],
        })
    }
}

impl VdpUnitKey {
    /// Canonical word encoding: size, bank size, then the design words.
    #[must_use]
    pub fn to_words(&self) -> [u64; VDP_UNIT_KEY_WORDS] {
        let d = self.design.to_words();
        [
            self.size as u64,
            self.mrs_per_bank as u64,
            d[0],
            d[1],
            d[2],
            d[3],
            d[4],
            d[5],
            d[6],
            d[7],
            d[8],
        ]
    }

    /// Rebuilds a key from its canonical words.
    ///
    /// # Errors
    ///
    /// Returns [`ArchitectureError::InvalidConfig`] if a dimension word does
    /// not fit this platform's `usize` or a design tag is out of range.
    pub fn from_words(words: [u64; VDP_UNIT_KEY_WORDS]) -> Result<Self> {
        Ok(Self {
            size: usize_word("size", words[0])?,
            mrs_per_bank: usize_word("mrs_per_bank", words[1])?,
            design: DesignKey::from_words([
                words[2], words[3], words[4], words[5], words[6], words[7], words[8], words[9],
                words[10],
            ])?,
        })
    }
}

impl ResolutionKey {
    /// Canonical word encoding: geometry, reuse tag, bank size, unit sizes.
    #[must_use]
    pub fn to_words(&self) -> [u64; RESOLUTION_KEY_WORDS] {
        let g = self.geometry.to_words();
        [
            g[0],
            g[1],
            g[2],
            g[3],
            g[4],
            u64::from(self.wavelength_reuse),
            self.mrs_per_bank as u64,
            self.conv_unit_size as u64,
            self.fc_unit_size as u64,
        ]
    }

    /// Rebuilds a key from its canonical words.
    ///
    /// # Errors
    ///
    /// Returns [`ArchitectureError::InvalidConfig`] if a dimension word does
    /// not fit this platform's `usize` or the reuse tag is out of range.
    pub fn from_words(words: [u64; RESOLUTION_KEY_WORDS]) -> Result<Self> {
        Ok(Self {
            geometry: GeometryKey::from_words([words[0], words[1], words[2], words[3], words[4]]),
            wavelength_reuse: tag_word("wavelength_reuse", words[5])?,
            mrs_per_bank: usize_word("mrs_per_bank", words[6])?,
            conv_unit_size: usize_word("conv_unit_size", words[7])?,
            fc_unit_size: usize_word("fc_unit_size", words[8])?,
        })
    }
}

impl ConfigKey {
    /// Canonical word encoding: the six architecture dimensions, then the
    /// geometry words, the three design tags, and the MR-spacing pattern.
    #[must_use]
    pub fn to_words(&self) -> [u64; CONFIG_KEY_WORDS] {
        let g = self.geometry.to_words();
        [
            self.conv_unit_size as u64,
            self.fc_unit_size as u64,
            self.conv_units as u64,
            self.fc_units as u64,
            self.mrs_per_bank as u64,
            u64::from(self.resolution_bits),
            g[0],
            g[1],
            g[2],
            g[3],
            g[4],
            u64::from(self.compensation),
            u64::from(self.value_tuning),
            u64::from(self.wavelength_reuse),
            self.mr_spacing,
        ]
    }

    /// Rebuilds a key from its canonical words.
    ///
    /// # Errors
    ///
    /// Returns [`ArchitectureError::InvalidConfig`] if a dimension word does
    /// not fit this platform's `usize`/`u32` or a design tag is out of range.
    pub fn from_words(words: [u64; CONFIG_KEY_WORDS]) -> Result<Self> {
        Ok(Self {
            conv_unit_size: usize_word("conv_unit_size", words[0])?,
            fc_unit_size: usize_word("fc_unit_size", words[1])?,
            conv_units: usize_word("conv_units", words[2])?,
            fc_units: usize_word("fc_units", words[3])?,
            mrs_per_bank: usize_word("mrs_per_bank", words[4])?,
            resolution_bits: u32::try_from(words[5])
                .map_err(|_| invalid_word("resolution_bits", words[5]))?,
            geometry: GeometryKey::from_words([words[6], words[7], words[8], words[9], words[10]]),
            compensation: tag_word("compensation", words[11])?,
            value_tuning: tag_word("value_tuning", words[12])?,
            wavelength_reuse: tag_word("wavelength_reuse", words[13])?,
            mr_spacing: words[14],
        })
    }
}

impl CrossLightConfig {
    /// Canonical word encoding of this configuration — identical to
    /// `self.canonical_key().to_words()`, exposed so snapshot frames can
    /// carry a full configuration without a parallel encoding.
    #[must_use]
    pub fn to_canonical_words(&self) -> [u64; CONFIG_KEY_WORDS] {
        self.canonical_key().to_words()
    }

    /// Rebuilds a configuration from its canonical words, validating the
    /// same architecture invariants as [`CrossLightConfig::new`].
    ///
    /// # Errors
    ///
    /// Returns [`ArchitectureError::InvalidConfig`] for out-of-range tags,
    /// zero dimensions, `K < N`, or a bank size outside
    /// `1..=`[`MAX_MRS_PER_BANK`].
    pub fn from_canonical_words(words: [u64; CONFIG_KEY_WORDS]) -> Result<Self> {
        let key = ConfigKey::from_words(words)?;
        if key.conv_unit_size == 0
            || key.fc_unit_size == 0
            || key.conv_units == 0
            || key.fc_units == 0
        {
            return Err(ArchitectureError::InvalidConfig {
                name: "dimensions",
                reason: format!(
                    "all of N, K, n, m must be positive, got ({}, {}, {}, {})",
                    key.conv_unit_size, key.fc_unit_size, key.conv_units, key.fc_units
                ),
            });
        }
        if key.fc_unit_size < key.conv_unit_size {
            return Err(ArchitectureError::InvalidConfig {
                name: "fc_unit_size",
                reason: format!(
                    "the paper requires K > N (FC vectors are larger); got K={} < N={}",
                    key.fc_unit_size, key.conv_unit_size
                ),
            });
        }
        if key.mrs_per_bank == 0 || key.mrs_per_bank > MAX_MRS_PER_BANK {
            return Err(ArchitectureError::InvalidConfig {
                name: "mrs_per_bank",
                reason: format!(
                    "bank size must be in 1..={MAX_MRS_PER_BANK}, got {}",
                    key.mrs_per_bank
                ),
            });
        }
        if key.resolution_bits == 0 {
            return Err(ArchitectureError::InvalidConfig {
                name: "resolution_bits",
                reason: "resolution must be positive".into(),
            });
        }
        Ok(Self {
            conv_unit_size: key.conv_unit_size,
            fc_unit_size: key.fc_unit_size,
            conv_units: key.conv_units,
            fc_units: key.fc_units,
            mrs_per_bank: key.mrs_per_bank,
            design: DesignChoices {
                geometry: MrGeometry {
                    input_waveguide_width: Nanometers::new(f64::from_bits(
                        key.geometry.input_waveguide_width,
                    )),
                    ring_waveguide_width: Nanometers::new(f64::from_bits(
                        key.geometry.ring_waveguide_width,
                    )),
                    radius: Micrometers::new(f64::from_bits(key.geometry.radius)),
                    gap: Nanometers::new(f64::from_bits(key.geometry.gap)),
                    thickness: Nanometers::new(f64::from_bits(key.geometry.thickness)),
                },
                compensation: compensation_from_tag(u64::from(key.compensation))?,
                value_tuning: value_tuning_from_tag(u64::from(key.value_tuning))?,
                wavelength_reuse: wavelength_reuse_from_tag(u64::from(key.wavelength_reuse))?,
                mr_spacing: Micrometers::new(f64::from_bits(key.mr_spacing)),
            },
            resolution_bits: key.resolution_bits,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variants::CrossLightVariant;

    #[test]
    fn identical_configs_share_keys_and_fingerprints() {
        let a = CrossLightConfig::paper_best();
        let b = CrossLightConfig::paper_best();
        assert_eq!(a.canonical_key(), b.canonical_key());
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn every_variant_gets_a_distinct_key() {
        let keys: Vec<ConfigKey> = CrossLightVariant::all()
            .iter()
            .map(|v| v.config().canonical_key())
            .collect();
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn each_field_perturbation_changes_the_key() {
        let base = CrossLightConfig::paper_best();
        let key = base.canonical_key();

        let mut dims = base;
        dims.conv_units += 1;
        assert_ne!(dims.canonical_key(), key);

        let res = base.with_resolution_bits(8);
        assert_ne!(res.canonical_key(), key);

        let mut design = base.design;
        design.compensation = CrosstalkCompensation::Naive;
        assert_ne!(base.with_design(design).canonical_key(), key);

        let mut design = base.design;
        design.mr_spacing = crosslight_photonics::units::Micrometers::new(5.5);
        assert_ne!(base.with_design(design).canonical_key(), key);

        let mut design = base.design;
        design.geometry = MrGeometry::conventional();
        assert_ne!(base.with_design(design).canonical_key(), key);
    }

    #[test]
    fn unit_keys_ignore_unit_counts_but_track_sizes_and_design() {
        let base = CrossLightConfig::paper_best();
        let mut more_units = base;
        more_units.conv_units *= 2;
        more_units.fc_units += 5;
        // Same (size, bank, design) sub-config → same unit key, even though
        // the full configs differ.
        assert_eq!(
            VdpUnit::conv_unit(&base).canonical_key(),
            VdpUnit::conv_unit(&more_units).canonical_key()
        );
        assert_ne!(
            VdpUnit::conv_unit(&base).canonical_key(),
            VdpUnit::fc_unit(&base).canonical_key()
        );
        let mut design = base.design;
        design.compensation = CrosstalkCompensation::Naive;
        assert_ne!(
            VdpUnit::conv_unit(&base.with_design(design)).canonical_key(),
            VdpUnit::conv_unit(&base).canonical_key()
        );
        assert_eq!(
            base.design.canonical_key(),
            more_units.design.canonical_key()
        );
    }

    #[test]
    fn resolution_keys_ignore_unit_counts() {
        let base = CrossLightConfig::paper_best();
        let mut more_units = base;
        more_units.conv_units *= 3;
        assert_eq!(ResolutionKey::from(&base), ResolutionKey::from(&more_units));
        let mut bigger_fc = base;
        bigger_fc.fc_unit_size += 15;
        assert_ne!(ResolutionKey::from(&base), ResolutionKey::from(&bigger_fc));
    }

    #[test]
    fn arch_keys_preserve_crosslight_fingerprints_exactly() {
        for v in CrossLightVariant::all() {
            let key = v.config().canonical_key();
            assert_eq!(ArchKey::CrossLight(key).fingerprint(), key.fingerprint());
            assert_eq!(ArchKey::from(key).fingerprint(), v.config().fingerprint());
        }
    }

    #[test]
    fn backend_keys_are_distinct_from_each_other_and_from_crosslight() {
        use std::collections::HashSet;
        let mut set: HashSet<ArchKey> = HashSet::new();
        let mut fingerprints: HashSet<u64> = HashSet::new();
        for v in CrossLightVariant::all() {
            let key = ArchKey::CrossLight(v.config().canonical_key());
            set.insert(key);
            fingerprints.insert(key.fingerprint());
        }
        for arch in 0..4u8 {
            for word in 0..3u64 {
                let key = ArchKey::Backend(BackendKey::new(arch, [word, 16, 0, 0]));
                assert!(key.config_key().is_none());
                set.insert(key);
                fingerprints.insert(key.fingerprint());
            }
        }
        assert_eq!(set.len(), 16);
        assert_eq!(fingerprints.len(), 16, "tag+params must alter the stream");
    }

    #[test]
    fn backend_key_accessors_round_trip() {
        let key = BackendKey::new(7, [1, 2, 3, 4]);
        assert_eq!(key.arch_tag(), 7);
        assert_eq!(key.params(), [1, 2, 3, 4]);
        assert_eq!(ArchKey::from(key), ArchKey::Backend(key));
    }

    #[test]
    fn config_words_round_trip_bit_exactly() {
        for v in CrossLightVariant::all() {
            let config = v.config();
            let words = config.to_canonical_words();
            assert_eq!(words, config.canonical_key().to_words());
            let rebuilt = CrossLightConfig::from_canonical_words(words).unwrap();
            assert_eq!(rebuilt, config);
            assert_eq!(rebuilt.canonical_key(), config.canonical_key());
            assert_eq!(
                ConfigKey::from_words(words).unwrap(),
                config.canonical_key()
            );
        }
    }

    #[test]
    fn sub_key_words_round_trip() {
        let config = CrossLightConfig::paper_best();
        let unit = VdpUnit::conv_unit(&config).canonical_key();
        assert_eq!(VdpUnitKey::from_words(unit.to_words()).unwrap(), unit);
        let res = ResolutionKey::from(&config);
        assert_eq!(ResolutionKey::from_words(res.to_words()).unwrap(), res);
        let design = config.design.canonical_key();
        assert_eq!(DesignKey::from_words(design.to_words()).unwrap(), design);
    }

    #[test]
    fn word_decoders_reject_out_of_range_tags() {
        let config = CrossLightConfig::paper_best();
        let mut words = config.to_canonical_words();
        words[11] = 2; // compensation tag
        assert!(ConfigKey::from_words(words).is_err());
        let mut words = config.to_canonical_words();
        words[0] = 0; // conv_unit_size
        assert!(CrossLightConfig::from_canonical_words(words).is_err());
        let mut words = config.to_canonical_words();
        words[4] = MAX_MRS_PER_BANK as u64 + 1;
        assert!(CrossLightConfig::from_canonical_words(words).is_err());
        let mut unit = VdpUnit::conv_unit(&config).canonical_key().to_words();
        unit[7] = 9; // value_tuning tag inside the design words
        assert!(VdpUnitKey::from_words(unit).is_err());
    }

    #[test]
    fn special_float_geometry_words_survive_the_codec() {
        let config = CrossLightConfig::paper_best();
        let mut words = config.to_canonical_words();
        words[6] = f64::NAN.to_bits();
        words[10] = f64::NEG_INFINITY.to_bits();
        words[14] = (-0.0f64).to_bits();
        let rebuilt = CrossLightConfig::from_canonical_words(words).unwrap();
        assert_eq!(rebuilt.to_canonical_words(), words);
    }

    #[test]
    fn keys_order_and_hash_consistently() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        for v in CrossLightVariant::all() {
            set.insert(v.config().canonical_key());
            set.insert(v.config().canonical_key());
        }
        assert_eq!(set.len(), 4);
    }
}
