//! Top-level CrossLight accelerator simulator.
//!
//! Brings together the power, area, performance and resolution models into a
//! single report per (configuration, workload) pair, and provides the
//! multi-model averaging the paper uses for Table III.

use serde::{Deserialize, Serialize};

use crosslight_neural::workload::NetworkWorkload;
use crosslight_photonics::units::{SquareMillimeters, Watts};

use crate::area::{accelerator_area, AcceleratorArea};
use crate::cache::ModelCache;
use crate::config::CrossLightConfig;
use crate::error::Result;
use crate::performance::{inference_metrics, InferenceMetrics};
use crate::power::{accelerator_power, AcceleratorPower};
use crate::resolution::achievable_resolution_bits;

/// Full evaluation of one configuration on one workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Power breakdown (workload independent — the accelerator is provisioned
    /// for its full configuration).
    pub power: AcceleratorPower,
    /// Area breakdown.
    pub area: AcceleratorArea,
    /// Latency / throughput / energy metrics for the workload.
    pub metrics: InferenceMetrics,
    /// Achievable weight/activation resolution of the configured MR banks.
    pub resolution_bits: u32,
}

/// Averages of the headline metrics over several workloads (how the paper
/// reports Table III).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AverageMetrics {
    /// Mean frames per second.
    pub fps: f64,
    /// Mean energy per bit (pJ/bit).
    pub energy_per_bit_pj: f64,
    /// Mean performance per watt (kFPS/W).
    pub kfps_per_watt: f64,
    /// Accelerator power (identical across workloads).
    pub power: Watts,
    /// Accelerator area (identical across workloads).
    pub area: SquareMillimeters,
}

impl AverageMetrics {
    /// Averages the headline metrics of per-workload reports, in slice order.
    ///
    /// This is the single accumulation path shared by
    /// [`CrossLightSimulator::evaluate_average`] and the runtime layer, so
    /// batched evaluation reproduces serial averages bit-for-bit.
    ///
    /// All reports must come from the same configuration: power and area are
    /// workload-independent, so they are taken from the first report (the
    /// same convention as `AcceleratorReport::average` in the baselines
    /// crate).
    ///
    /// # Errors
    ///
    /// Returns an error if `reports` is empty.
    pub fn from_reports(reports: &[SimulationReport]) -> Result<Self> {
        let Some(first) = reports.first() else {
            return Err(crate::error::ArchitectureError::MappingFailed {
                reason: "cannot average over an empty workload set".into(),
            });
        };
        Ok(Self {
            fps: Self::column_mean(reports, |r| r.metrics.fps)?,
            energy_per_bit_pj: Self::column_mean(reports, |r| r.metrics.energy_per_bit_pj)?,
            kfps_per_watt: Self::column_mean(reports, |r| r.metrics.kfps_per_watt)?,
            power: first.power.total_watts(),
            area: first.area.total(),
        })
    }

    /// Sums `column` over `rows` in slice order and divides once: the single
    /// accumulation path behind every averaged table in the workspace
    /// ([`from_reports`](Self::from_reports) here, `AcceleratorReport::average`
    /// in the baselines crate), so all of them agree bit-for-bit on how a
    /// mean is taken.
    ///
    /// # Errors
    ///
    /// Returns an error if `rows` is empty.
    pub fn column_mean<T>(rows: &[T], column: impl Fn(&T) -> f64) -> Result<f64> {
        if rows.is_empty() {
            return Err(crate::error::ArchitectureError::MappingFailed {
                reason: "cannot average over an empty workload set".into(),
            });
        }
        let mut sum = 0.0;
        for row in rows {
            sum += column(row);
        }
        Ok(sum / rows.len() as f64)
    }
}

/// A simulator with its workload-independent outputs precomputed.
///
/// Power, area and achievable resolution depend only on the configuration,
/// so evaluating many workloads against one configuration (design-space
/// sweeps, the runtime's hot loop) should pay for them once.  Produced by
/// [`CrossLightSimulator::prepare`]; [`PreparedSimulator::evaluate`] then
/// only computes the per-workload inference metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PreparedSimulator {
    config: CrossLightConfig,
    power: AcceleratorPower,
    area: AcceleratorArea,
    resolution_bits: u32,
}

impl PreparedSimulator {
    /// Assembles a prepared simulator from already-computed breakdowns (the
    /// `ModelCache` construction path).  The parts must all describe
    /// `config`, which `CrossLightSimulator::prepare` and
    /// `ModelCache::prepare` guarantee.
    pub(crate) fn from_parts(
        config: CrossLightConfig,
        power: AcceleratorPower,
        area: AcceleratorArea,
        resolution_bits: u32,
    ) -> Self {
        Self {
            config,
            power,
            area,
            resolution_bits,
        }
    }

    /// Returns the configuration being simulated.
    #[must_use]
    pub fn config(&self) -> &CrossLightConfig {
        &self.config
    }

    /// Returns the precomputed power breakdown.
    #[must_use]
    pub fn power(&self) -> &AcceleratorPower {
        &self.power
    }

    /// Returns the precomputed area breakdown.
    #[must_use]
    pub fn area(&self) -> &AcceleratorArea {
        &self.area
    }

    /// Returns the precomputed achievable resolution.
    #[must_use]
    pub fn resolution_bits(&self) -> u32 {
        self.resolution_bits
    }

    /// Evaluates one workload, reusing the precomputed breakdowns.
    ///
    /// # Errors
    ///
    /// Propagates model errors (which do not occur for valid configurations).
    pub fn evaluate(&self, workload: &NetworkWorkload) -> Result<SimulationReport> {
        let metrics = inference_metrics(workload, &self.config, &self.power)?;
        Ok(SimulationReport {
            power: self.power,
            area: self.area,
            metrics,
            resolution_bits: self.resolution_bits,
        })
    }
}

/// The CrossLight accelerator simulator.
///
/// # Example
///
/// ```
/// use crosslight_core::config::CrossLightConfig;
/// use crosslight_core::simulator::CrossLightSimulator;
/// use crosslight_neural::workload::NetworkWorkload;
/// use crosslight_neural::zoo::PaperModel;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let simulator = CrossLightSimulator::new(CrossLightConfig::paper_best());
/// let workload = NetworkWorkload::from_spec(&PaperModel::Lenet5SignMnist.spec())?;
/// let report = simulator.evaluate(&workload)?;
/// assert_eq!(report.resolution_bits, 16);
/// assert!(report.metrics.fps > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossLightSimulator {
    config: CrossLightConfig,
}

impl CrossLightSimulator {
    /// Creates a simulator for a configuration.
    #[must_use]
    pub fn new(config: CrossLightConfig) -> Self {
        Self { config }
    }

    /// Returns the configuration being simulated.
    #[must_use]
    pub fn config(&self) -> &CrossLightConfig {
        &self.config
    }

    /// Precomputes the workload-independent outputs (power, area, achievable
    /// resolution) so many workloads can be evaluated without redoing them.
    ///
    /// # Errors
    ///
    /// Propagates model errors (which do not occur for valid configurations).
    pub fn prepare(&self) -> Result<PreparedSimulator> {
        Ok(PreparedSimulator {
            config: self.config,
            power: accelerator_power(&self.config)?,
            area: accelerator_area(&self.config),
            resolution_bits: achievable_resolution_bits(&self.config)?,
        })
    }

    /// [`CrossLightSimulator::prepare`] through a shared [`ModelCache`]: a
    /// configuration already seen by the cache costs one map probe, and
    /// configurations sharing `(N, K, design)` sub-configs share the
    /// expensive per-unit models.  Bit-identical to the uncached `prepare`.
    ///
    /// # Errors
    ///
    /// Propagates model errors (which do not occur for valid configurations).
    pub fn prepare_with(&self, cache: &ModelCache) -> Result<PreparedSimulator> {
        cache.prepare(&self.config)
    }

    /// Evaluates one workload.
    ///
    /// # Errors
    ///
    /// Propagates model errors (which do not occur for valid configurations).
    pub fn evaluate(&self, workload: &NetworkWorkload) -> Result<SimulationReport> {
        self.prepare()?.evaluate(workload)
    }

    /// Computes only the per-workload inference metrics against an
    /// already-computed power breakdown — the split behind
    /// [`PreparedSimulator::evaluate`], exposed for callers that manage
    /// their own power caching.  `power` must have been computed for *this*
    /// configuration (as [`CrossLightSimulator::prepare`] does); passing a
    /// breakdown from another configuration yields metrics for a machine
    /// that does not exist.
    ///
    /// # Errors
    ///
    /// Propagates model errors (which do not occur for valid configurations).
    pub fn evaluate_metrics(
        &self,
        workload: &NetworkWorkload,
        power: &AcceleratorPower,
    ) -> Result<InferenceMetrics> {
        inference_metrics(workload, &self.config, power)
    }

    /// Evaluates several workloads and averages the headline metrics, as the
    /// paper does for its Table III rows.  The workload-independent power and
    /// area breakdowns are computed once per configuration, not per workload.
    ///
    /// # Errors
    ///
    /// Propagates model errors; returns an error if `workloads` is empty.
    pub fn evaluate_average(&self, workloads: &[NetworkWorkload]) -> Result<AverageMetrics> {
        if workloads.is_empty() {
            return Err(crate::error::ArchitectureError::MappingFailed {
                reason: "cannot average over an empty workload set".into(),
            });
        }
        Self::average_with_prepared(&self.prepare()?, workloads)
    }

    /// [`CrossLightSimulator::evaluate_average`] through a shared
    /// [`ModelCache`] — the hot loop of design-space sweeps.  Bit-identical
    /// to the uncached path (same prepared breakdowns, same accumulation).
    ///
    /// # Errors
    ///
    /// Propagates model errors; returns an error if `workloads` is empty.
    pub fn evaluate_average_with(
        &self,
        workloads: &[NetworkWorkload],
        cache: &ModelCache,
    ) -> Result<AverageMetrics> {
        if workloads.is_empty() {
            return Err(crate::error::ArchitectureError::MappingFailed {
                reason: "cannot average over an empty workload set".into(),
            });
        }
        Self::average_with_prepared(&self.prepare_with(cache)?, workloads)
    }

    /// Shared tail of the `evaluate_average*` family: per-workload reports in
    /// slice order through one prepared simulator, then the single
    /// accumulation path.
    fn average_with_prepared(
        prepared: &PreparedSimulator,
        workloads: &[NetworkWorkload],
    ) -> Result<AverageMetrics> {
        let reports: Vec<SimulationReport> = workloads
            .iter()
            .map(|w| prepared.evaluate(w))
            .collect::<Result<_>>()?;
        AverageMetrics::from_reports(&reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variants::CrossLightVariant;
    use crosslight_neural::zoo::PaperModel;

    fn all_workloads() -> Vec<NetworkWorkload> {
        PaperModel::all()
            .iter()
            .map(|m| NetworkWorkload::from_spec(&m.spec()).unwrap())
            .collect()
    }

    #[test]
    fn report_fields_are_populated_and_consistent() {
        let simulator = CrossLightSimulator::new(CrossLightConfig::paper_best());
        let report = simulator
            .evaluate(&NetworkWorkload::from_spec(&PaperModel::CnnCifar10.spec()).unwrap())
            .unwrap();
        assert_eq!(report.resolution_bits, 16);
        assert!(report.metrics.fps > 0.0);
        assert!(report.power.total_watts().value() > 0.0);
        assert!(report.area.total().value() > 0.0);
        assert_eq!(simulator.config().conv_units, 100);
    }

    #[test]
    fn average_over_the_four_models_is_finite() {
        let simulator = CrossLightSimulator::new(CrossLightConfig::paper_best());
        let avg = simulator.evaluate_average(&all_workloads()).unwrap();
        assert!(avg.fps.is_finite() && avg.fps > 0.0);
        assert!(avg.energy_per_bit_pj.is_finite() && avg.energy_per_bit_pj > 0.0);
        assert!(avg.kfps_per_watt.is_finite() && avg.kfps_per_watt > 0.0);
        assert!(simulator.evaluate_average(&[]).is_err());
    }

    #[test]
    fn prepared_evaluation_matches_direct_evaluation_exactly() {
        for variant in CrossLightVariant::all() {
            let simulator = CrossLightSimulator::new(variant.config());
            let prepared = simulator.prepare().unwrap();
            for workload in all_workloads() {
                let direct = simulator.evaluate(&workload).unwrap();
                let split = prepared.evaluate(&workload).unwrap();
                assert_eq!(direct, split);
                let metrics = simulator
                    .evaluate_metrics(&workload, prepared.power())
                    .unwrap();
                assert_eq!(metrics, direct.metrics);
            }
            assert_eq!(prepared.config(), simulator.config());
            assert_eq!(prepared.resolution_bits(), 16);
            assert!(prepared.area().total().value() > 0.0);
        }
    }

    #[test]
    fn cached_paths_are_bit_identical_to_uncached_ones() {
        let cache = ModelCache::new();
        let workloads = all_workloads();
        for variant in CrossLightVariant::all() {
            let simulator = CrossLightSimulator::new(variant.config());
            // Twice per variant: the second pass is all cache hits.
            for _ in 0..2 {
                assert_eq!(
                    simulator.prepare_with(&cache).unwrap(),
                    simulator.prepare().unwrap()
                );
                assert_eq!(
                    simulator.evaluate_average_with(&workloads, &cache).unwrap(),
                    simulator.evaluate_average(&workloads).unwrap()
                );
            }
        }
        assert!(CrossLightSimulator::new(CrossLightConfig::paper_best())
            .evaluate_average_with(&[], &cache)
            .is_err());
        let stats = cache.stats();
        assert_eq!(stats.prepared_configs, 4);
        assert!(stats.hits > 0);
    }

    #[test]
    fn from_reports_matches_evaluate_average() {
        let simulator = CrossLightSimulator::new(CrossLightConfig::paper_best());
        let workloads = all_workloads();
        let reports: Vec<SimulationReport> = workloads
            .iter()
            .map(|w| simulator.evaluate(w).unwrap())
            .collect();
        let from_reports = AverageMetrics::from_reports(&reports).unwrap();
        let direct = simulator.evaluate_average(&workloads).unwrap();
        assert_eq!(from_reports, direct);
        assert!(AverageMetrics::from_reports(&[]).is_err());
    }

    #[test]
    fn variant_efficiency_ordering_matches_table_iii() {
        let workloads = all_workloads();
        let metric = |v: CrossLightVariant| {
            CrossLightSimulator::new(v.config())
                .evaluate_average(&workloads)
                .unwrap()
        };
        let base = metric(CrossLightVariant::Base);
        let base_ted = metric(CrossLightVariant::BaseTed);
        let opt = metric(CrossLightVariant::Opt);
        let opt_ted = metric(CrossLightVariant::OptTed);
        // kFPS/W: base < base_TED < opt_TED and base < opt < opt_TED.
        assert!(base.kfps_per_watt < base_ted.kfps_per_watt);
        assert!(base.kfps_per_watt < opt.kfps_per_watt);
        assert!(base_ted.kfps_per_watt < opt_ted.kfps_per_watt);
        assert!(opt.kfps_per_watt < opt_ted.kfps_per_watt);
        // EPB the other way around.
        assert!(base.energy_per_bit_pj > base_ted.energy_per_bit_pj);
        assert!(base_ted.energy_per_bit_pj > opt_ted.energy_per_bit_pj);
        assert!(opt.energy_per_bit_pj > opt_ted.energy_per_bit_pj);
    }
}
