//! Top-level CrossLight accelerator simulator.
//!
//! Brings together the power, area, performance and resolution models into a
//! single report per (configuration, workload) pair, and provides the
//! multi-model averaging the paper uses for Table III.

use serde::{Deserialize, Serialize};

use crosslight_neural::workload::NetworkWorkload;
use crosslight_photonics::units::{SquareMillimeters, Watts};

use crate::area::{accelerator_area, AcceleratorArea};
use crate::config::CrossLightConfig;
use crate::error::Result;
use crate::performance::{inference_metrics, InferenceMetrics};
use crate::power::{accelerator_power, AcceleratorPower};
use crate::resolution::achievable_resolution_bits;

/// Full evaluation of one configuration on one workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Power breakdown (workload independent — the accelerator is provisioned
    /// for its full configuration).
    pub power: AcceleratorPower,
    /// Area breakdown.
    pub area: AcceleratorArea,
    /// Latency / throughput / energy metrics for the workload.
    pub metrics: InferenceMetrics,
    /// Achievable weight/activation resolution of the configured MR banks.
    pub resolution_bits: u32,
}

/// Averages of the headline metrics over several workloads (how the paper
/// reports Table III).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AverageMetrics {
    /// Mean frames per second.
    pub fps: f64,
    /// Mean energy per bit (pJ/bit).
    pub energy_per_bit_pj: f64,
    /// Mean performance per watt (kFPS/W).
    pub kfps_per_watt: f64,
    /// Accelerator power (identical across workloads).
    pub power: Watts,
    /// Accelerator area (identical across workloads).
    pub area: SquareMillimeters,
}

/// The CrossLight accelerator simulator.
///
/// # Example
///
/// ```
/// use crosslight_core::config::CrossLightConfig;
/// use crosslight_core::simulator::CrossLightSimulator;
/// use crosslight_neural::workload::NetworkWorkload;
/// use crosslight_neural::zoo::PaperModel;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let simulator = CrossLightSimulator::new(CrossLightConfig::paper_best());
/// let workload = NetworkWorkload::from_spec(&PaperModel::Lenet5SignMnist.spec())?;
/// let report = simulator.evaluate(&workload)?;
/// assert_eq!(report.resolution_bits, 16);
/// assert!(report.metrics.fps > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossLightSimulator {
    config: CrossLightConfig,
}

impl CrossLightSimulator {
    /// Creates a simulator for a configuration.
    #[must_use]
    pub fn new(config: CrossLightConfig) -> Self {
        Self { config }
    }

    /// Returns the configuration being simulated.
    #[must_use]
    pub fn config(&self) -> &CrossLightConfig {
        &self.config
    }

    /// Evaluates one workload.
    ///
    /// # Errors
    ///
    /// Propagates model errors (which do not occur for valid configurations).
    pub fn evaluate(&self, workload: &NetworkWorkload) -> Result<SimulationReport> {
        let power = accelerator_power(&self.config)?;
        let area = accelerator_area(&self.config);
        let metrics = inference_metrics(workload, &self.config, &power)?;
        let resolution_bits = achievable_resolution_bits(&self.config)?;
        Ok(SimulationReport {
            power,
            area,
            metrics,
            resolution_bits,
        })
    }

    /// Evaluates several workloads and averages the headline metrics, as the
    /// paper does for its Table III rows.
    ///
    /// # Errors
    ///
    /// Propagates model errors; returns an error if `workloads` is empty.
    pub fn evaluate_average(&self, workloads: &[NetworkWorkload]) -> Result<AverageMetrics> {
        if workloads.is_empty() {
            return Err(crate::error::ArchitectureError::MappingFailed {
                reason: "cannot average over an empty workload set".into(),
            });
        }
        let mut fps = 0.0;
        let mut epb = 0.0;
        let mut kfps_per_watt = 0.0;
        let mut last = None;
        for workload in workloads {
            let report = self.evaluate(workload)?;
            fps += report.metrics.fps;
            epb += report.metrics.energy_per_bit_pj;
            kfps_per_watt += report.metrics.kfps_per_watt;
            last = Some(report);
        }
        let count = workloads.len() as f64;
        let last = last.expect("non-empty workload set");
        Ok(AverageMetrics {
            fps: fps / count,
            energy_per_bit_pj: epb / count,
            kfps_per_watt: kfps_per_watt / count,
            power: last.power.total_watts(),
            area: last.area.total(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variants::CrossLightVariant;
    use crosslight_neural::zoo::PaperModel;

    fn all_workloads() -> Vec<NetworkWorkload> {
        PaperModel::all()
            .iter()
            .map(|m| NetworkWorkload::from_spec(&m.spec()).unwrap())
            .collect()
    }

    #[test]
    fn report_fields_are_populated_and_consistent() {
        let simulator = CrossLightSimulator::new(CrossLightConfig::paper_best());
        let report = simulator
            .evaluate(&NetworkWorkload::from_spec(&PaperModel::CnnCifar10.spec()).unwrap())
            .unwrap();
        assert_eq!(report.resolution_bits, 16);
        assert!(report.metrics.fps > 0.0);
        assert!(report.power.total_watts().value() > 0.0);
        assert!(report.area.total().value() > 0.0);
        assert_eq!(simulator.config().conv_units, 100);
    }

    #[test]
    fn average_over_the_four_models_is_finite() {
        let simulator = CrossLightSimulator::new(CrossLightConfig::paper_best());
        let avg = simulator.evaluate_average(&all_workloads()).unwrap();
        assert!(avg.fps.is_finite() && avg.fps > 0.0);
        assert!(avg.energy_per_bit_pj.is_finite() && avg.energy_per_bit_pj > 0.0);
        assert!(avg.kfps_per_watt.is_finite() && avg.kfps_per_watt > 0.0);
        assert!(simulator.evaluate_average(&[]).is_err());
    }

    #[test]
    fn variant_efficiency_ordering_matches_table_iii() {
        let workloads = all_workloads();
        let metric = |v: CrossLightVariant| {
            CrossLightSimulator::new(v.config())
                .evaluate_average(&workloads)
                .unwrap()
        };
        let base = metric(CrossLightVariant::Base);
        let base_ted = metric(CrossLightVariant::BaseTed);
        let opt = metric(CrossLightVariant::Opt);
        let opt_ted = metric(CrossLightVariant::OptTed);
        // kFPS/W: base < base_TED < opt_TED and base < opt < opt_TED.
        assert!(base.kfps_per_watt < base_ted.kfps_per_watt);
        assert!(base.kfps_per_watt < opt.kfps_per_watt);
        assert!(base_ted.kfps_per_watt < opt_ted.kfps_per_watt);
        assert!(opt.kfps_per_watt < opt_ted.kfps_per_watt);
        // EPB the other way around.
        assert!(base.energy_per_bit_pj > base_ted.energy_per_bit_pj);
        assert!(base_ted.energy_per_bit_pj > opt_ted.energy_per_bit_pj);
        assert!(opt.energy_per_bit_pj > opt_ted.energy_per_bit_pj);
    }
}
