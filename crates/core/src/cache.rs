//! Memoized analytical-model layer.
//!
//! The workload-independent halves of the simulator — per-unit power reports
//! (laser, tuning with its 15×15 TED eigendecomposition, detection,
//! conversion), accelerator power/area, and achievable resolution — are pure
//! functions of small sub-configurations that repeat heavily across
//! design-space grids: an `(N, K, n, m)` sweep with `G` distinct `(N, K)`
//! pairs only contains `G` distinct CONV/FC unit shapes, and usually a single
//! distinct resolution input.  [`ModelCache`] memoizes those results by their
//! canonical sub-config keys ([`crate::canonical`]), so a sweep pays for each
//! distinct sub-model once instead of once per grid point.
//!
//! The cache is transparent: every model is deterministic, so a hit returns
//! exactly the value a fresh computation would produce and cached evaluation
//! is bit-identical to the uncached paths (`CrossLightSimulator::prepare`,
//! `accelerator_power`, `achievable_resolution_bits`) — the core test suite
//! enforces this with exact equality over all paper variants.
//!
//! [`ModelCache`] is `Sync`: one instance can back a whole worker pool (the
//! runtime's `EvalService` shares one across its workers, and the parallel
//! Fig. 6 sweep shares one across its scoped threads).  Values are computed
//! outside the short-lived map locks, so two threads racing on the same key
//! may both compute — they insert the same bits, and neither blocks the
//! other's unrelated lookups.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::area::{accelerator_area, AcceleratorArea};
use crate::canonical::{ConfigKey, ResolutionKey, VdpUnitKey};
use crate::config::CrossLightConfig;
use crate::error::{ArchitectureError, Result};
use crate::power::{accelerator_power_from_unit_reports, AcceleratorPower};
use crate::resolution::achievable_resolution_bits;
use crate::simulator::PreparedSimulator;
use crate::vdp::{VdpUnit, VdpUnitReport};

/// Version tag of the [`ModelCache`] export format.  Bumped whenever
/// [`ModelCacheEntry`] or the canonical word codecs change shape, so a
/// restore can reject snapshots from an incompatible build.
pub const MODEL_CACHE_EXPORT_VERSION: u32 = 1;

/// One exported [`ModelCache`] entry: a canonical key plus the memoized
/// value it maps to.  The `Prepared` arm carries the plain parts of a
/// [`PreparedSimulator`] (full configuration, power, area, resolution)
/// rather than the simulator itself, so reassembly stays inside this crate
/// and external producers cannot forge an inconsistent prepared state
/// without going through [`ModelCache::import`] validation.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelCacheEntry {
    /// A memoized per-unit report keyed by the unit's canonical identity.
    Unit {
        /// Canonical identity of the VDP unit.
        key: VdpUnitKey,
        /// The memoized unit report.
        report: VdpUnitReport,
    },
    /// A memoized achievable-resolution result.
    Resolution {
        /// Canonical identity of the resolution-model inputs.
        key: ResolutionKey,
        /// The memoized achievable resolution.
        bits: u32,
    },
    /// A memoized prepared simulator, carried as its plain parts.
    Prepared {
        /// The full configuration (its canonical key is recomputed on
        /// import, so key and value cannot disagree).
        config: CrossLightConfig,
        /// Workload-independent power report.
        power: AcceleratorPower,
        /// Workload-independent area report.
        area: AcceleratorArea,
        /// Achievable resolution in bits.
        resolution_bits: u32,
    },
}

/// Point-in-time hit/miss counters of a [`ModelCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelCacheStats {
    /// Lookups answered from a memoized value.
    pub hits: u64,
    /// Lookups that computed a fresh value.
    pub misses: u64,
    /// Distinct VDP unit reports currently memoized.
    pub unit_reports: usize,
    /// Distinct resolution results currently memoized.
    pub resolutions: usize,
    /// Distinct prepared simulators currently memoized.
    pub prepared_configs: usize,
}

impl ModelCacheStats {
    /// Fraction of lookups served from the cache (0 when idle).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Memoizes the workload-independent analytical models by canonical
/// sub-config key; see the module docs.
#[derive(Debug, Default)]
pub struct ModelCache {
    units: Mutex<HashMap<VdpUnitKey, VdpUnitReport>>,
    resolutions: Mutex<HashMap<ResolutionKey, u32>>,
    prepared: Mutex<HashMap<ConfigKey, PreparedSimulator>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ModelCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn record(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Memoized [`VdpUnit::report`]: the unit key only involves the unit size,
    /// bank size and design choices, so every grid point sharing a `(N or K,
    /// design)` sub-configuration shares one report.
    ///
    /// # Errors
    ///
    /// Propagates unit-model errors (which do not occur for valid units).
    pub fn unit_report(&self, unit: &VdpUnit) -> Result<VdpUnitReport> {
        let key = unit.canonical_key();
        if let Some(report) = self
            .units
            .lock()
            .expect("unit-report cache lock poisoned")
            .get(&key)
        {
            self.record(true);
            return Ok(*report);
        }
        let report = unit.report()?;
        self.units
            .lock()
            .expect("unit-report cache lock poisoned")
            .insert(key, report);
        self.record(false);
        Ok(report)
    }

    /// Accelerator power built from memoized unit reports — bit-identical to
    /// [`accelerator_power`](crate::power::accelerator_power) (same combine
    /// path, same per-unit values).
    ///
    /// # Errors
    ///
    /// Propagates unit-model errors (which do not occur for valid
    /// configurations).
    pub fn power(&self, config: &CrossLightConfig) -> Result<AcceleratorPower> {
        let conv_unit = self.unit_report(&VdpUnit::conv_unit(config))?;
        let fc_unit = self.unit_report(&VdpUnit::fc_unit(config))?;
        Ok(accelerator_power_from_unit_reports(
            config, &conv_unit, &fc_unit,
        ))
    }

    /// Accelerator area.  The area model is a handful of multiplications —
    /// cheaper than a map probe — so it is computed directly; it is memoized
    /// as part of the [`PreparedSimulator`] that [`ModelCache::prepare`]
    /// caches per configuration.
    #[must_use]
    pub fn area(&self, config: &CrossLightConfig) -> AcceleratorArea {
        accelerator_area(config)
    }

    /// Memoized
    /// [`achievable_resolution_bits`](crate::resolution::achievable_resolution_bits),
    /// keyed by the resolution model's actual inputs ([`ResolutionKey`]), so
    /// an architecture grid that never changes the design or unit sizes pays
    /// for one crosstalk analysis in total.
    ///
    /// # Errors
    ///
    /// Propagates crosstalk-analysis errors (which do not occur for valid
    /// configurations).
    pub fn resolution_bits(&self, config: &CrossLightConfig) -> Result<u32> {
        let key = ResolutionKey::from(config);
        if let Some(bits) = self
            .resolutions
            .lock()
            .expect("resolution cache lock poisoned")
            .get(&key)
        {
            self.record(true);
            return Ok(*bits);
        }
        let bits = achievable_resolution_bits(config)?;
        self.resolutions
            .lock()
            .expect("resolution cache lock poisoned")
            .insert(key, bits);
        self.record(false);
        Ok(bits)
    }

    /// Memoized [`CrossLightSimulator::prepare`]: a hit is one map probe; a
    /// miss assembles the prepared simulator from the (themselves memoized)
    /// power and resolution models.  Bit-identical to an uncached `prepare`.
    ///
    /// [`CrossLightSimulator::prepare`]: crate::simulator::CrossLightSimulator::prepare
    ///
    /// # Errors
    ///
    /// Propagates model errors (which do not occur for valid configurations).
    pub fn prepare(&self, config: &CrossLightConfig) -> Result<PreparedSimulator> {
        let key = config.canonical_key();
        if let Some(prepared) = self
            .prepared
            .lock()
            .expect("prepared cache lock poisoned")
            .get(&key)
        {
            self.record(true);
            return Ok(*prepared);
        }
        let prepared = PreparedSimulator::from_parts(
            *config,
            self.power(config)?,
            self.area(config),
            self.resolution_bits(config)?,
        );
        self.prepared
            .lock()
            .expect("prepared cache lock poisoned")
            .insert(key, prepared);
        self.record(false);
        Ok(prepared)
    }

    /// Exports every memoized entry in a deterministic order: unit reports,
    /// then resolutions, then prepared configurations, each sorted by the
    /// total order on its canonical key.  Two caches holding the same
    /// entries export bit-identical sequences regardless of insertion
    /// order, so snapshot checksums are reproducible.
    #[must_use]
    pub fn export(&self) -> Vec<ModelCacheEntry> {
        let mut entries = Vec::new();
        {
            let units = self.units.lock().expect("unit-report cache lock poisoned");
            let mut sorted: Vec<_> = units.iter().map(|(k, v)| (*k, *v)).collect();
            sorted.sort_unstable_by_key(|(key, _)| *key);
            entries.extend(
                sorted
                    .into_iter()
                    .map(|(key, report)| ModelCacheEntry::Unit { key, report }),
            );
        }
        {
            let resolutions = self
                .resolutions
                .lock()
                .expect("resolution cache lock poisoned");
            let mut sorted: Vec<_> = resolutions.iter().map(|(k, v)| (*k, *v)).collect();
            sorted.sort_unstable_by_key(|(key, _)| *key);
            entries.extend(
                sorted
                    .into_iter()
                    .map(|(key, bits)| ModelCacheEntry::Resolution { key, bits }),
            );
        }
        {
            let prepared = self.prepared.lock().expect("prepared cache lock poisoned");
            let mut sorted: Vec<_> = prepared.values().copied().collect();
            sorted.sort_unstable_by_key(|p| p.config().canonical_key());
            entries.extend(sorted.into_iter().map(|p| ModelCacheEntry::Prepared {
                config: *p.config(),
                power: *p.power(),
                area: *p.area(),
                resolution_bits: p.resolution_bits(),
            }));
        }
        entries
    }

    /// Restores exported entries into this cache.  Every entry is validated
    /// before anything is applied (all-or-nothing), existing entries win
    /// over imported ones for equal keys, and the hit/miss counters are
    /// untouched — a restore is invisible to cache statistics except for
    /// the entry counts.  Returns the number of entries newly inserted.
    ///
    /// # Errors
    ///
    /// Returns [`ArchitectureError::InvalidConfig`] if a `Prepared` entry
    /// carries a configuration violating the architecture invariants.
    pub fn import(&self, entries: &[ModelCacheEntry]) -> Result<usize> {
        for entry in entries {
            if let ModelCacheEntry::Prepared { config, .. } = entry {
                // Round-tripping through the canonical words re-runs the
                // full constructor validation.
                let rebuilt = CrossLightConfig::from_canonical_words(config.to_canonical_words())?;
                if rebuilt.canonical_key() != config.canonical_key() {
                    return Err(ArchitectureError::InvalidConfig {
                        name: "snapshot",
                        reason: "prepared entry's canonical key is not stable".into(),
                    });
                }
            }
        }
        let mut inserted = 0;
        for entry in entries {
            match entry {
                ModelCacheEntry::Unit { key, report } => {
                    let mut units = self.units.lock().expect("unit-report cache lock poisoned");
                    if !units.contains_key(key) {
                        units.insert(*key, *report);
                        inserted += 1;
                    }
                }
                ModelCacheEntry::Resolution { key, bits } => {
                    let mut resolutions = self
                        .resolutions
                        .lock()
                        .expect("resolution cache lock poisoned");
                    if !resolutions.contains_key(key) {
                        resolutions.insert(*key, *bits);
                        inserted += 1;
                    }
                }
                ModelCacheEntry::Prepared {
                    config,
                    power,
                    area,
                    resolution_bits,
                } => {
                    let key = config.canonical_key();
                    let mut prepared = self.prepared.lock().expect("prepared cache lock poisoned");
                    if let std::collections::hash_map::Entry::Vacant(slot) = prepared.entry(key) {
                        slot.insert(PreparedSimulator::from_parts(
                            *config,
                            *power,
                            *area,
                            *resolution_bits,
                        ));
                        inserted += 1;
                    }
                }
            }
        }
        Ok(inserted)
    }

    /// Snapshot of the cache counters.
    #[must_use]
    pub fn stats(&self) -> ModelCacheStats {
        ModelCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            unit_reports: self
                .units
                .lock()
                .expect("unit-report cache lock poisoned")
                .len(),
            resolutions: self
                .resolutions
                .lock()
                .expect("resolution cache lock poisoned")
                .len(),
            prepared_configs: self
                .prepared
                .lock()
                .expect("prepared cache lock poisoned")
                .len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::accelerator_power;
    use crate::simulator::CrossLightSimulator;
    use crate::variants::CrossLightVariant;

    #[test]
    fn cached_models_are_bit_identical_to_fresh_ones() {
        let cache = ModelCache::new();
        for variant in CrossLightVariant::all() {
            let config = variant.config();
            for _ in 0..2 {
                assert_eq!(
                    cache.power(&config).unwrap(),
                    accelerator_power(&config).unwrap()
                );
                assert_eq!(cache.area(&config), accelerator_area(&config));
                assert_eq!(
                    cache.resolution_bits(&config).unwrap(),
                    achievable_resolution_bits(&config).unwrap()
                );
                assert_eq!(
                    cache.prepare(&config).unwrap(),
                    CrossLightSimulator::new(config).prepare().unwrap()
                );
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.prepared_configs, 4);
        assert!(stats.hits > stats.misses, "second pass must hit: {stats:?}");
        assert!(stats.hit_rate() > 0.5);
    }

    #[test]
    fn grid_points_share_unit_reports_across_unit_counts() {
        let cache = ModelCache::new();
        let base = CrossLightConfig::paper_best();
        for (n_units, m_units) in [(50, 30), (100, 60), (150, 90)] {
            let mut config = base;
            config.conv_units = n_units;
            config.fc_units = m_units;
            cache.prepare(&config).unwrap();
        }
        let stats = cache.stats();
        // Three grid points, one (N, K) pair: one conv + one fc report.
        assert_eq!(stats.unit_reports, 2);
        assert_eq!(stats.resolutions, 1);
        assert_eq!(stats.prepared_configs, 3);
    }

    #[test]
    fn export_import_reproduces_an_organically_warmed_cache_bit_exactly() {
        let warm = ModelCache::new();
        for variant in CrossLightVariant::all() {
            warm.prepare(&variant.config()).unwrap();
        }
        let exported = warm.export();
        assert!(!exported.is_empty());
        // Deterministic: exporting twice yields the identical sequence.
        assert_eq!(exported, warm.export());

        let restored = ModelCache::new();
        let inserted = restored.import(&exported).unwrap();
        assert_eq!(inserted, exported.len());
        // The restored cache exports the same sequence and leaves the
        // hit/miss counters untouched.
        assert_eq!(restored.export(), exported);
        let stats = restored.stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
        assert_eq!(stats.prepared_configs, warm.stats().prepared_configs);

        // Every restored prepare is a hit returning the organic bits.
        for variant in CrossLightVariant::all() {
            let config = variant.config();
            assert_eq!(
                restored.prepare(&config).unwrap(),
                warm.prepare(&config).unwrap()
            );
        }
        assert_eq!(restored.stats().misses, 0, "restored cache must be warm");
    }

    #[test]
    fn import_is_idempotent_and_keeps_existing_entries() {
        let cache = ModelCache::new();
        cache.prepare(&CrossLightConfig::paper_best()).unwrap();
        let exported = cache.export();
        assert_eq!(cache.import(&exported).unwrap(), 0);
        assert_eq!(cache.export(), exported);
    }

    #[test]
    fn import_rejects_invalid_prepared_entries_atomically() {
        let warm = ModelCache::new();
        warm.prepare(&CrossLightConfig::paper_best()).unwrap();
        let mut exported = warm.export();
        let Some(ModelCacheEntry::Prepared { config, .. }) = exported
            .iter_mut()
            .find(|e| matches!(e, ModelCacheEntry::Prepared { .. }))
        else {
            panic!("a warmed cache exports a prepared entry");
        };
        config.conv_units = 0;
        let fresh = ModelCache::new();
        assert!(fresh.import(&exported).is_err());
        // All-or-nothing: the valid unit/resolution entries were not applied.
        assert!(fresh.export().is_empty());
    }

    #[test]
    fn empty_cache_reports_zeroed_stats() {
        let stats = ModelCache::new().stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.hit_rate(), 0.0);
    }
}
