//! Error types for the CrossLight architecture model.

use std::error::Error;
use std::fmt;

/// Errors produced by the accelerator configuration and simulation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ArchitectureError {
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// Name of the offending parameter.
        name: &'static str,
        /// Description of the violated constraint.
        reason: String,
    },
    /// A workload could not be mapped onto the configured accelerator.
    MappingFailed {
        /// Description of the problem.
        reason: String,
    },
    /// An underlying photonics computation failed.
    Photonics(String),
    /// An underlying tuning computation failed.
    Tuning(String),
}

impl fmt::Display for ArchitectureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig { name, reason } => {
                write!(f, "invalid configuration `{name}`: {reason}")
            }
            Self::MappingFailed { reason } => write!(f, "workload mapping failed: {reason}"),
            Self::Photonics(reason) => write!(f, "photonics model error: {reason}"),
            Self::Tuning(reason) => write!(f, "tuning model error: {reason}"),
        }
    }
}

impl Error for ArchitectureError {}

impl From<crosslight_photonics::PhotonicsError> for ArchitectureError {
    fn from(err: crosslight_photonics::PhotonicsError) -> Self {
        Self::Photonics(err.to_string())
    }
}

impl From<crosslight_tuning::TuningError> for ArchitectureError {
    fn from(err: crosslight_tuning::TuningError) -> Self {
        Self::Tuning(err.to_string())
    }
}

/// Convenience result alias for architecture operations.
pub type Result<T> = std::result::Result<T, ArchitectureError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_convert() {
        let e = ArchitectureError::InvalidConfig {
            name: "conv_units",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("conv_units"));
        let p: ArchitectureError = crosslight_photonics::PhotonicsError::InvalidParameter {
            name: "q",
            reason: "bad".into(),
        }
        .into();
        assert!(matches!(p, ArchitectureError::Photonics(_)));
        let t: ArchitectureError = crosslight_tuning::TuningError::DimensionMismatch {
            expected: 2,
            actual: 3,
        }
        .into();
        assert!(matches!(t, ArchitectureError::Tuning(_)));
        assert!(!ArchitectureError::MappingFailed { reason: "x".into() }
            .to_string()
            .is_empty());
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ArchitectureError>();
    }
}
