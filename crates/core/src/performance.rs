//! Latency, throughput and energy-efficiency model.
//!
//! Maps a [`NetworkWorkload`] onto the configured CONV and FC VDP pools
//! (paper §IV.C): every dot product is decomposed into unit-sized chunks, the
//! chunks of a layer are spread across the pool's units, and layers execute
//! sequentially (each layer's inputs are the previous layer's outputs).  The
//! resulting inference latency, combined with the accelerator power, yields
//! the paper's three headline metrics: frames per second (FPS), energy per
//! bit (EPB) and performance per watt (kFPS/W).
//!
//! ## Energy-per-bit accounting
//!
//! EPB is reported as the inference energy divided by the number of operand
//! bits processed (`2 × MACs × resolution`), which keeps the metric
//! comparable across accelerators with different native resolutions (the
//! definition the electronic-accelerator surveys use).  Absolute values
//! therefore differ from the paper's, but all the ratios the paper reports
//! (CrossLight vs. DEAP-CNN vs. HolyLight, and across the four variants) are
//! preserved; see `EXPERIMENTS.md`.

use serde::{Deserialize, Serialize};

use crosslight_neural::workload::NetworkWorkload;
use crosslight_photonics::units::{Picojoules, Seconds, Watts};

use crate::config::CrossLightConfig;
use crate::decompose::sequential_passes;
use crate::error::Result;
use crate::power::AcceleratorPower;
use crate::vdp::VdpUnit;

/// Fixed electronic overhead per layer boundary (activation buffering,
/// pooling, control hand-off); calibration constant.
pub const LAYER_OVERHEAD_NS: f64 = 100.0;

/// Per-inference latency breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferenceLatency {
    /// Time spent in the CONV VDP pool.
    pub conv_time: Seconds,
    /// Time spent in the FC VDP pool.
    pub fc_time: Seconds,
    /// Electronic inter-layer overhead.
    pub electronic_time: Seconds,
}

impl InferenceLatency {
    /// Total latency of one inference.
    #[must_use]
    pub fn total(&self) -> Seconds {
        self.conv_time + self.fc_time + self.electronic_time
    }
}

/// The paper's headline efficiency metrics for one model on one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferenceMetrics {
    /// Latency breakdown.
    pub latency: InferenceLatency,
    /// Inferences per second.
    pub fps: f64,
    /// Energy of one inference.
    pub energy_per_inference: Picojoules,
    /// Energy per operand bit processed.
    pub energy_per_bit_pj: f64,
    /// Performance per watt in kilo-FPS per watt.
    pub kfps_per_watt: f64,
    /// Total accelerator power used for the metrics.
    pub power: Watts,
}

/// Computes the inference latency of a workload on a configuration.
///
/// # Errors
///
/// Propagates decomposition errors (which do not occur for valid
/// configurations).
pub fn inference_latency(
    workload: &NetworkWorkload,
    config: &CrossLightConfig,
) -> Result<InferenceLatency> {
    let conv_unit = VdpUnit::conv_unit(config);
    let fc_unit = VdpUnit::fc_unit(config);
    let conv_pass = conv_unit.pass_latency();
    let fc_pass = fc_unit.pass_latency();

    let mut conv_cycles: u64 = 0;
    for layer in &workload.conv_layers {
        conv_cycles += sequential_passes(
            layer.dot_length,
            layer.dot_count,
            config.conv_unit_size,
            config.conv_units,
        )?;
    }
    let mut fc_cycles: u64 = 0;
    for layer in &workload.fc_layers {
        fc_cycles += sequential_passes(
            layer.dot_length,
            layer.dot_count,
            config.fc_unit_size,
            config.fc_units,
        )?;
    }

    let towers = workload.towers as f64;
    let layer_count = (workload.conv_layers.len() + workload.fc_layers.len()) as f64;
    Ok(InferenceLatency {
        conv_time: conv_pass * conv_cycles as f64 * towers,
        fc_time: fc_pass * fc_cycles as f64 * towers,
        electronic_time: Seconds::from_nanos(LAYER_OVERHEAD_NS) * layer_count * towers,
    })
}

/// Combines latency and power into the paper's headline metrics.
///
/// # Errors
///
/// Propagates latency-model errors.
pub fn inference_metrics(
    workload: &NetworkWorkload,
    config: &CrossLightConfig,
    power: &AcceleratorPower,
) -> Result<InferenceMetrics> {
    let latency = inference_latency(workload, config)?;
    let total_latency = latency.total();
    let fps = 1.0 / total_latency.value();
    let total_power = power.total_watts();
    let energy_per_inference = Picojoules::from_power_time(power.total(), total_latency);
    let operand_bits = 2.0 * workload.total_macs() as f64 * f64::from(config.resolution_bits);
    let energy_per_bit_pj = if operand_bits > 0.0 {
        energy_per_inference.value() / operand_bits
    } else {
        0.0
    };
    let kfps_per_watt = fps / 1000.0 / total_power.value();
    Ok(InferenceMetrics {
        latency,
        fps,
        energy_per_inference,
        energy_per_bit_pj,
        kfps_per_watt,
        power: total_power,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::accelerator_power;
    use crosslight_neural::zoo::PaperModel;

    fn workload(model: PaperModel) -> NetworkWorkload {
        NetworkWorkload::from_spec(&model.spec()).unwrap()
    }

    #[test]
    fn latency_components_sum() {
        let config = CrossLightConfig::paper_best();
        let latency = inference_latency(&workload(PaperModel::Lenet5SignMnist), &config).unwrap();
        let total =
            latency.conv_time.value() + latency.fc_time.value() + latency.electronic_time.value();
        assert!((latency.total().value() - total).abs() < 1e-15);
        assert!(latency.total().value() > 0.0);
    }

    #[test]
    fn bigger_models_take_longer() {
        let config = CrossLightConfig::paper_best();
        let lenet = inference_latency(&workload(PaperModel::Lenet5SignMnist), &config)
            .unwrap()
            .total();
        let cifar = inference_latency(&workload(PaperModel::CnnCifar10), &config)
            .unwrap()
            .total();
        let stl = inference_latency(&workload(PaperModel::CnnStl10), &config)
            .unwrap()
            .total();
        assert!(lenet.value() < cifar.value());
        assert!(cifar.value() < stl.value());
    }

    #[test]
    fn more_units_reduce_latency_and_keep_epb_similar() {
        let small = CrossLightConfig::new(20, 150, 25, 15, crate::config::DesignChoices::default())
            .unwrap();
        let big = CrossLightConfig::paper_best();
        let w = workload(PaperModel::CnnCifar10);
        let lat_small = inference_latency(&w, &small).unwrap().total().value();
        let lat_big = inference_latency(&w, &big).unwrap().total().value();
        assert!(lat_big < lat_small);
        let m_small = inference_metrics(&w, &small, &accelerator_power(&small).unwrap()).unwrap();
        let m_big = inference_metrics(&w, &big, &accelerator_power(&big).unwrap()).unwrap();
        assert!(m_big.fps > m_small.fps);
        // EPB stays within a factor of ~3 (power and latency scale in
        // opposite directions).
        let ratio = m_big.energy_per_bit_pj / m_small.energy_per_bit_pj;
        assert!(ratio > 0.3 && ratio < 3.0, "EPB ratio {ratio}");
    }

    #[test]
    fn metrics_are_internally_consistent() {
        let config = CrossLightConfig::paper_best();
        let power = accelerator_power(&config).unwrap();
        let w = workload(PaperModel::CnnCifar10);
        let m = inference_metrics(&w, &config, &power).unwrap();
        assert!((m.fps - 1.0 / m.latency.total().value()).abs() / m.fps < 1e-9);
        assert!(
            (m.kfps_per_watt - m.fps / 1000.0 / m.power.value()).abs() / m.kfps_per_watt < 1e-9
        );
        // energy = power × time.
        let expected_energy = m.power.value() * m.latency.total().value() * 1e12;
        assert!((m.energy_per_inference.value() - expected_energy).abs() / expected_energy < 1e-9);
        assert!(m.energy_per_bit_pj > 0.0);
    }

    #[test]
    fn dedicated_fc_units_beat_conv_sized_fc_execution() {
        // The paper's argument for separate FC units: forcing FC layers
        // through CONV-sized units increases latency.
        let w = workload(PaperModel::CnnCifar10);
        let with_fc_units = CrossLightConfig::paper_best();
        let conv_only =
            CrossLightConfig::new(20, 20, 100, 60, crate::config::DesignChoices::default())
                .unwrap();
        let fast = inference_latency(&w, &with_fc_units).unwrap().fc_time;
        let slow = inference_latency(&w, &conv_only).unwrap().fc_time;
        assert!(slow.value() > fast.value());
    }
}
