//! Accelerator-level power model.
//!
//! Aggregates the per-unit power of the CONV and FC VDP pools (laser, tuning,
//! detection, conversion) and adds the electronic control/buffer overhead of
//! the global control unit, memory interface and DAC arrays shown in the
//! paper's Fig. 3.
//!
//! The only free parameters the paper does not specify are the electronic
//! control constants; they are collected here as named calibration constants
//! and documented in `EXPERIMENTS.md`.

use serde::{Deserialize, Serialize};

use crosslight_photonics::units::{MilliWatts, Watts};

use crate::config::CrossLightConfig;
use crate::error::Result;
use crate::vdp::{VdpUnit, VdpUnitReport};

/// Static power of the global electronic control unit, partial-sum buffers
/// and memory interface (calibration constant; not specified by the paper).
pub const CONTROL_BASE_MW: f64 = 2_000.0;

/// Per-VDP-unit electronic overhead (local DAC array control, buffering).
pub const CONTROL_PER_UNIT_MW: f64 = 10.0;

/// Itemised accelerator power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorPower {
    /// Total laser (light source) electrical power.
    pub laser: MilliWatts,
    /// Total MR tuning power (FPV compensation, crosstalk compensation, value
    /// imprinting).
    pub tuning: MilliWatts,
    /// Photodetector + TIA + VCSEL power.
    pub detection: MilliWatts,
    /// ADC/DAC transceiver power.
    pub conversion: MilliWatts,
    /// Electronic control, buffering and memory-interface power.
    pub control: MilliWatts,
}

impl AcceleratorPower {
    /// Total electrical power.
    #[must_use]
    pub fn total(&self) -> MilliWatts {
        self.laser + self.tuning + self.detection + self.conversion + self.control
    }

    /// Total power in watts (convenience for reporting).
    #[must_use]
    pub fn total_watts(&self) -> Watts {
        self.total().to_watts()
    }
}

/// Computes the accelerator power of a configuration.
///
/// # Errors
///
/// Propagates laser/tuning model errors (which do not occur for valid
/// configurations).
pub fn accelerator_power(config: &CrossLightConfig) -> Result<AcceleratorPower> {
    let conv_unit = VdpUnit::conv_unit(config).report()?;
    let fc_unit = VdpUnit::fc_unit(config).report()?;
    Ok(accelerator_power_from_unit_reports(
        config, &conv_unit, &fc_unit,
    ))
}

/// Combines already-computed per-unit reports into the accelerator power —
/// the accumulation half of [`accelerator_power`], shared with the
/// [`ModelCache`](crate::cache::ModelCache) so cached unit reports produce
/// bit-identical totals.  `conv_unit`/`fc_unit` must describe *this*
/// configuration's CONV/FC units.
#[must_use]
pub fn accelerator_power_from_unit_reports(
    config: &CrossLightConfig,
    conv_unit: &VdpUnitReport,
    fc_unit: &VdpUnitReport,
) -> AcceleratorPower {
    let conv_n = config.conv_units as f64;
    let fc_n = config.fc_units as f64;

    let laser = conv_unit.laser_power * conv_n + fc_unit.laser_power * fc_n;
    let tuning = conv_unit.tuning_power * conv_n + fc_unit.tuning_power * fc_n;
    let detection = conv_unit.detection_power * conv_n + fc_unit.detection_power * fc_n;
    let conversion = conv_unit.conversion_power * conv_n + fc_unit.conversion_power * fc_n;
    let control = MilliWatts::new(
        CONTROL_BASE_MW + CONTROL_PER_UNIT_MW * (config.conv_units + config.fc_units) as f64,
    );

    AcceleratorPower {
        laser,
        tuning,
        detection,
        conversion,
        control,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variants::CrossLightVariant;

    #[test]
    fn total_is_sum_of_components() {
        let power = accelerator_power(&CrossLightConfig::paper_best()).unwrap();
        let expected = power.laser.value()
            + power.tuning.value()
            + power.detection.value()
            + power.conversion.value()
            + power.control.value();
        assert!((power.total().value() - expected).abs() < 1e-9);
        assert!((power.total_watts().value() - expected / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn best_config_power_is_in_a_plausible_range() {
        // The paper's Fig. 7 places CrossLight below CPUs/GPUs (hundreds of
        // watts) and above edge accelerators (a few watts).
        let power = accelerator_power(&CrossLightConfig::paper_best()).unwrap();
        let watts = power.total_watts().value();
        assert!(watts > 5.0 && watts < 150.0, "total power {watts} W");
    }

    #[test]
    fn tuning_dominates_in_the_unoptimized_variant() {
        let base = accelerator_power(&CrossLightVariant::Base.config()).unwrap();
        assert!(base.tuning.value() > base.laser.value());
        assert!(base.tuning.value() > base.detection.value());
    }

    #[test]
    fn variant_power_ordering_matches_figure_7() {
        let power_of = |v: CrossLightVariant| {
            accelerator_power(&v.config())
                .unwrap()
                .total_watts()
                .value()
        };
        let base = power_of(CrossLightVariant::Base);
        let base_ted = power_of(CrossLightVariant::BaseTed);
        let opt = power_of(CrossLightVariant::Opt);
        let opt_ted = power_of(CrossLightVariant::OptTed);
        assert!(base > base_ted, "base {base} vs base_TED {base_ted}");
        assert!(base > opt, "base {base} vs opt {opt}");
        assert!(
            base_ted > opt_ted,
            "base_TED {base_ted} vs opt_TED {opt_ted}"
        );
        assert!(opt > opt_ted, "opt {opt} vs opt_TED {opt_ted}");
    }

    #[test]
    fn more_units_draw_more_power() {
        let small = CrossLightConfig::new(20, 150, 50, 30, crate::config::DesignChoices::default())
            .unwrap();
        let big = CrossLightConfig::paper_best();
        let p_small = accelerator_power(&small).unwrap().total().value();
        let p_big = accelerator_power(&big).unwrap().total().value();
        assert!(p_big > p_small);
    }
}
