//! Golden-value regression tests for the experiments that previously had
//! no exact coverage: `fig7_power`, `fig8_epb`, `device_dse` and
//! `resolution_analysis`.
//!
//! Each experiment's output is rendered into a canonical text form in which
//! every `f64` appears twice: as its shortest-round-trip decimal (for
//! reviewable diffs) and as its IEEE-754 bit pattern in hex (for exact
//! equality).  The rendering is compared byte-for-byte against the
//! committed fixture under `tests/golden/`, so *any* numeric drift — even
//! in the last ulp — fails the test.
//!
//! To regenerate the fixtures after an intentional model change:
//!
//! ```sh
//! CROSSLIGHT_GOLDEN_BLESS=1 cargo test -p crosslight-experiments --test golden
//! ```
//!
//! then review the fixture diff like any other code change.

use std::fmt::Write as _;
use std::path::PathBuf;

use crosslight_experiments::{arch_zoo, device_dse, fig7_power, fig8_epb, resolution_analysis};

/// Canonical rendering of one float: decimal (shortest round-trip) plus the
/// exact bit pattern.  Only for values produced by IEEE-exact operations
/// (`+ - * / sqrt`), which are bit-stable across platforms.
fn f(x: f64) -> String {
    format!("{x} [{:016x}]", x.to_bits())
}

/// Rendering for values that pass through libm transcendentals (`ln`, `cos`
/// in the Box–Muller sampler): those may legitimately differ in the last
/// ulp between libm implementations, so they are locked to 12 significant
/// digits instead of exact bit patterns — still far tighter than any real
/// model drift, but immune to a glibc/musl last-ulp difference.
fn g(x: f64) -> String {
    format!("{x:.12e}")
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `rendered` against the committed fixture, or rewrites the
/// fixture when `CROSSLIGHT_GOLDEN_BLESS` is set.
fn check(name: &str, rendered: &str) {
    let path = fixture_path(name);
    if std::env::var_os("CROSSLIGHT_GOLDEN_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|err| {
        panic!(
            "missing golden fixture {path:?} ({err}); run with CROSSLIGHT_GOLDEN_BLESS=1 to \
             create it"
        )
    });
    assert!(
        rendered == expected,
        "golden mismatch for {name}: the experiment output drifted.\n\
         If the change is intentional, regenerate with CROSSLIGHT_GOLDEN_BLESS=1 and review \
         the fixture diff.\n--- expected ---\n{expected}\n--- actual ---\n{rendered}"
    );
}

#[test]
fn fig7_power_comparison_is_locked() {
    let comparison = fig7_power::run().unwrap();
    let mut out = String::from("fig7_power/v1\n");
    for row in &comparison.rows {
        let _ = writeln!(
            out,
            "{} kind={:?} power_w={}",
            row.name,
            row.kind,
            f(row.power_watts)
        );
    }
    check("fig7_power.txt", &out);
}

#[test]
fn fig8_epb_comparison_is_locked() {
    let comparison = fig8_epb::run().unwrap();
    let mut out = String::from("fig8_epb/v1\n");
    let _ = writeln!(out, "accelerators={:?}", comparison.accelerators);
    for row in &comparison.rows {
        let _ = writeln!(out, "model={:?}", row.model);
        for (name, epb) in &row.epb_pj {
            let _ = writeln!(out, "  {name} epb_pj={}", f(*epb));
        }
    }
    check("fig8_epb.txt", &out);
}

#[test]
fn device_dse_is_locked_for_the_reference_seed() {
    // Fixed (samples, seed) pair: the Monte-Carlo path is deterministic for
    // a given seed, so the rendering must be stable to the last bit.
    let result = device_dse::run(2_000, 7);
    let mut out = String::from("device_dse/v1 samples=2000 seed=7\n");
    for row in &result.rows {
        // The Monte-Carlo columns (p997/mean_abs) sample via ln/cos, so
        // they use the 12-digit rendering; everything else is sqrt-only
        // arithmetic and stays bit-exact.
        let _ = writeln!(
            out,
            "ring={} bus={} worst={} p997={} mean_abs={}",
            f(row.ring_width_nm),
            f(row.input_width_nm),
            f(row.worst_case_drift_nm),
            g(row.monte_carlo_p997_nm),
            g(row.mean_abs_drift_nm)
        );
    }
    let _ = writeln!(out, "conventional={}", f(result.conventional_drift_nm));
    let _ = writeln!(out, "optimized={}", f(result.optimized_drift_nm));
    let _ = writeln!(out, "reduction={}", f(result.reduction));
    check("device_dse.txt", &out);
}

/// Canonical rendering of one zoo point, shared by the table and frontier
/// goldens.
fn zoo_point_line(p: &crosslight_experiments::arch_zoo::ZooPoint) -> String {
    format!(
        "{} arch={} bits={} fps={} epb={} kfps_per_w={} power_w={} area_mm2={} fom={} in_budget={}",
        p.label,
        p.arch,
        p.resolution_bits,
        f(p.avg_fps),
        f(p.avg_epb_pj),
        f(p.avg_kfps_per_watt),
        f(p.power_w),
        f(p.area_mm2),
        f(p.fps_per_epb),
        p.within_power_budget
    )
}

#[test]
fn arch_zoo_table_is_locked() {
    // Table-III-style rows for every backend-family default: the golden
    // coverage for the zoo backends' analytical models.
    let rows = arch_zoo::table_rows().unwrap();
    let mut out = String::from("arch_zoo_table/v1\n");
    for row in &rows {
        let _ = writeln!(out, "{}", zoo_point_line(row));
    }
    check("arch_zoo_table.txt", &out);
}

#[test]
fn arch_zoo_frontier_is_locked() {
    // The cross-architecture streaming frontier over the union grid, under
    // the default power budget.  Worker count cannot matter (locked by the
    // unit tests); the fixture locks the values themselves.
    let frontier = arch_zoo::run_streaming(
        &arch_zoo::union_candidates(),
        3,
        8,
        arch_zoo::DEFAULT_POWER_BUDGET_W,
    )
    .unwrap();
    let mut out = format!(
        "arch_zoo_frontier/v1 top_k=8 budget_w={}\n",
        f(frontier.power_budget_w)
    );
    let _ = writeln!(
        out,
        "evaluated={} in_budget={}",
        frontier.evaluated, frontier.in_budget
    );
    let _ = writeln!(
        out,
        "best={}",
        zoo_point_line(frontier.best.as_ref().unwrap())
    );
    for p in &frontier.top {
        let _ = writeln!(out, "top {}", zoo_point_line(p));
    }
    for p in &frontier.pareto {
        let _ = writeln!(out, "pareto {}", zoo_point_line(p));
    }
    check("arch_zoo_frontier.txt", &out);
}

#[test]
fn resolution_analysis_is_locked() {
    let analysis = resolution_analysis::run(20);
    let mut out = String::from("resolution_analysis/v1 max_mrs=20\n");
    for row in &analysis.rows {
        let _ = writeln!(
            out,
            "mrs={} crosslight_bits={} dense_low_q_bits={}",
            row.mrs_per_bank, row.crosslight_bits, row.dense_low_q_bits
        );
    }
    let _ = writeln!(out, "microdisk_bits={}", analysis.microdisk_bits);
    check("resolution_analysis.txt", &out);
}
