//! E7 — Fig. 8: per-model energy-per-bit of the photonic accelerators.
//!
//! For each of the four Table I models, reports the EPB of DEAP-CNN,
//! HolyLight and the four CrossLight variants.  The claims preserved from the
//! paper: `Cross_opt_TED` has the lowest EPB on every model, DEAP-CNN the
//! highest by orders of magnitude, and the average improvements over
//! HolyLight / DEAP-CNN are of the same order as the paper's 9.5× / 1544×.

use serde::{Deserialize, Serialize};

use crosslight_baselines::accelerator::{CrossLightAccelerator, PhotonicAccelerator};
use crosslight_baselines::{DeapCnn, HolyLight};
use crosslight_core::variants::CrossLightVariant;
use crosslight_neural::workload::NetworkWorkload;
use crosslight_neural::zoo::PaperModel;

use crate::report::{fmt_f64, TextTable};

/// EPB of every photonic accelerator on one model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpbRow {
    /// The Table I model.
    pub model: PaperModel,
    /// `(accelerator name, EPB in pJ/bit)` pairs.
    pub epb_pj: Vec<(String, f64)>,
}

impl EpbRow {
    /// EPB of a named accelerator on this model, if present.
    #[must_use]
    pub fn epb_of(&self, name: &str) -> Option<f64> {
        self.epb_pj.iter().find(|(n, _)| n == name).map(|(_, e)| *e)
    }
}

/// The full Fig. 8 comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpbComparison {
    /// One row per Table I model.
    pub rows: Vec<EpbRow>,
    /// Accelerator names in column order.
    pub accelerators: Vec<String>,
}

impl EpbComparison {
    /// Average EPB of a named accelerator across the four models.
    #[must_use]
    pub fn average_epb(&self, name: &str) -> Option<f64> {
        let values: Vec<f64> = self.rows.iter().filter_map(|r| r.epb_of(name)).collect();
        if values.is_empty() {
            None
        } else {
            Some(values.iter().sum::<f64>() / values.len() as f64)
        }
    }

    /// Renders the comparison as a text table (models as rows).
    #[must_use]
    pub fn table(&self) -> TextTable {
        let mut header = vec!["model".to_string()];
        header.extend(self.accelerators.iter().cloned());
        let mut table = TextTable::new(header);
        for row in &self.rows {
            let mut cells = vec![format!("{:?}", row.model)];
            for accelerator in &self.accelerators {
                cells.push(fmt_f64(row.epb_of(accelerator).unwrap_or(f64::NAN), 3));
            }
            table.push_row(cells);
        }
        table
    }
}

/// The accelerators compared in Fig. 8, in plotting order.
fn accelerators() -> Vec<Box<dyn PhotonicAccelerator>> {
    let mut out: Vec<Box<dyn PhotonicAccelerator>> =
        vec![Box::new(DeapCnn::new()), Box::new(HolyLight::new())];
    for variant in CrossLightVariant::all() {
        out.push(Box::new(CrossLightAccelerator::new(variant)));
    }
    out
}

/// Runs the Fig. 8 per-model EPB comparison.
///
/// # Errors
///
/// Propagates accelerator-evaluation errors (which do not occur for the
/// built-in models).
pub fn run() -> Result<EpbComparison, Box<dyn std::error::Error>> {
    let accelerators = accelerators();
    let names: Vec<String> = accelerators.iter().map(|a| a.name()).collect();
    let mut rows = Vec::with_capacity(4);
    for model in PaperModel::all() {
        let workload = NetworkWorkload::from_spec(&model.spec())?;
        let mut epb_pj = Vec::with_capacity(accelerators.len());
        for accelerator in &accelerators {
            let report = accelerator.evaluate(&workload)?;
            epb_pj.push((accelerator.name(), report.energy_per_bit_pj));
        }
        rows.push(EpbRow { model, epb_pj });
    }
    Ok(EpbComparison {
        rows,
        accelerators: names,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_opt_ted_wins_on_every_model() {
        let comparison = run().unwrap();
        for row in &comparison.rows {
            let best = row.epb_of("Cross_opt_TED").unwrap();
            for (name, epb) in &row.epb_pj {
                if name != "Cross_opt_TED" {
                    assert!(
                        best < *epb,
                        "{name} should have higher EPB than Cross_opt_TED on {:?}",
                        row.model
                    );
                }
            }
        }
    }

    #[test]
    fn average_improvement_factors_match_the_paper_order_of_magnitude() {
        let comparison = run().unwrap();
        let opt_ted = comparison.average_epb("Cross_opt_TED").unwrap();
        let holylight = comparison.average_epb("Holylight").unwrap();
        let deap = comparison.average_epb("DEAP_CNN").unwrap();
        let holylight_factor = holylight / opt_ted;
        let deap_factor = deap / opt_ted;
        // Paper: 9.5× and 1544×.
        assert!(
            holylight_factor > 3.0 && holylight_factor < 40.0,
            "HolyLight factor {holylight_factor:.1}"
        );
        assert!(deap_factor > 200.0, "DEAP factor {deap_factor:.0}");
        assert!(deap_factor > holylight_factor);
    }

    #[test]
    fn table_has_four_model_rows_and_six_accelerators() {
        let comparison = run().unwrap();
        assert_eq!(comparison.rows.len(), 4);
        assert_eq!(comparison.accelerators.len(), 6);
        assert_eq!(comparison.table().len(), 4);
        assert!(comparison.average_epb("missing").is_none());
    }
}
