//! E4 — §V.B resolution analysis.
//!
//! Sweeps the number of MRs per bank and the channel spacing to show where
//! the 16-bit operating point of the paper sits: with the optimized MR design
//! (Q ≈ 8000, 18 nm FSR) and wavelength reuse keeping separations above 1 nm,
//! a 15-MR bank still resolves 16 bits, whereas denser grids or lower-Q
//! devices (the DEAP-CNN / HolyLight situations) fall to a few bits.

use serde::{Deserialize, Serialize};

use crosslight_photonics::crosstalk::bank_resolution_bits;
use crosslight_photonics::microdisk::MICRODISK_RESOLUTION_BITS;
use crosslight_photonics::mr::{CONVENTIONAL_Q_FACTOR, OPTIMIZED_FSR_NM, OPTIMIZED_Q_FACTOR};
use crosslight_photonics::units::Nanometers;

use crate::report::TextTable;

/// One row of the resolution sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResolutionRow {
    /// MRs per bank.
    pub mrs_per_bank: usize,
    /// Resolution with the optimized design and wavelength reuse (bits).
    pub crosslight_bits: u32,
    /// Resolution with a conventional low-Q device at per-element channel
    /// density (the DEAP-CNN situation), in bits.
    pub dense_low_q_bits: u32,
}

/// The resolution analysis result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResolutionAnalysis {
    /// One row per bank size.
    pub rows: Vec<ResolutionRow>,
    /// Resolution of a single HolyLight microdisk (2 bits, from the device
    /// model).
    pub microdisk_bits: u32,
}

impl ResolutionAnalysis {
    /// Renders the analysis as a text table.
    #[must_use]
    pub fn table(&self) -> TextTable {
        let mut table = TextTable::new(vec![
            "MRs per bank",
            "CrossLight (bits)",
            "dense low-Q (bits)",
        ]);
        for row in &self.rows {
            table.push_row(vec![
                row.mrs_per_bank.to_string(),
                row.crosslight_bits.to_string(),
                row.dense_low_q_bits.to_string(),
            ]);
        }
        table
    }

    /// The row for a given bank size, if present.
    #[must_use]
    pub fn row_for(&self, mrs_per_bank: usize) -> Option<&ResolutionRow> {
        self.rows.iter().find(|r| r.mrs_per_bank == mrs_per_bank)
    }
}

/// Runs the resolution sweep over bank sizes `2..=max_mrs`.
///
/// # Panics
///
/// Panics if `max_mrs < 2`.
#[must_use]
pub fn run(max_mrs: usize) -> ResolutionAnalysis {
    assert!(max_mrs >= 2, "sweep needs at least two bank sizes");
    let rows = (2..=max_mrs)
        .map(|mrs| {
            // CrossLight: wavelength reuse spreads the bank's channels over
            // the full FSR.
            let reuse_spacing = Nanometers::new(OPTIMIZED_FSR_NM / mrs as f64);
            let crosslight_bits = bank_resolution_bits(mrs, reuse_spacing, OPTIMIZED_Q_FACTOR, 16)
                .expect("valid sweep point");
            // Dense, low-Q situation: one wavelength per vector element forces
            // ~10× denser channels on a conventional device.
            let dense_spacing = Nanometers::new(OPTIMIZED_FSR_NM / (10.0 * mrs as f64));
            let dense_low_q_bits =
                bank_resolution_bits(mrs, dense_spacing, CONVENTIONAL_Q_FACTOR, 16)
                    .expect("valid sweep point");
            ResolutionRow {
                mrs_per_bank: mrs,
                crosslight_bits,
                dense_low_q_bits,
            }
        })
        .collect();
    ResolutionAnalysis {
        rows,
        microdisk_bits: MICRODISK_RESOLUTION_BITS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crosslight_operating_point_reaches_16_bits() {
        let analysis = run(20);
        let row = analysis.row_for(15).expect("15-MR row exists");
        assert_eq!(row.crosslight_bits, 16);
    }

    #[test]
    fn dense_low_q_banks_lose_most_of_their_resolution() {
        let analysis = run(20);
        let row = analysis.row_for(15).expect("15-MR row exists");
        assert!(
            row.dense_low_q_bits <= 6,
            "dense low-Q bank resolved {} bits",
            row.dense_low_q_bits
        );
        assert!(row.dense_low_q_bits < row.crosslight_bits);
    }

    #[test]
    fn resolution_is_monotone_non_increasing_in_bank_size() {
        let analysis = run(30);
        for pair in analysis.rows.windows(2) {
            assert!(pair[1].crosslight_bits <= pair[0].crosslight_bits);
        }
    }

    #[test]
    fn microdisk_resolution_matches_the_paper() {
        assert_eq!(run(4).microdisk_bits, 2);
    }

    #[test]
    fn table_renders_all_rows() {
        let analysis = run(10);
        assert_eq!(analysis.table().len(), 9);
    }
}
