//! E9 — Cross-architecture design-space exploration over the backend zoo.
//!
//! Where [`fig6_design_space`](crate::fig6_design_space) sweeps CrossLight's
//! own `(N, K, n, m)` knobs, this experiment lifts the same streaming
//! top-K/Pareto machinery over the **union grid of architectures**: every
//! [`ArchSpec`] backend — CrossLight variants × dimensions × resolutions,
//! HolyLight unit counts, symmetric-crossbar and LiteCON geometries,
//! DEAP-CNN and the electronic reference platforms — averaged over the four
//! Table I models.  The question it answers is the one a wire client asks:
//! *which architecture is best for this workload mix under a power budget?*
//!
//! Three entry points share one evaluation path
//! ([`ArchSpec::simulate`] + [`AverageMetrics::from_reports`]):
//!
//! * [`table_rows`] — Table-III-style comparison rows for
//!   [`ArchSpec::zoo_defaults`] (one row per backend family default);
//! * [`run_streaming`] — folds the union grid into per-worker
//!   [`ZooAccumulator`]s and merges them, **identical for any worker
//!   count**;
//! * [`run_on`] — the same grid fanned through the runtime's
//!   [`EvalService`], producing a frontier bit-identical to
//!   [`run_streaming`] (the pool serves CrossLight points through the
//!   prepared simulator and zoo points through [`ArchSpec::simulate`], both
//!   bit-identical to the serial path).

use serde::{Deserialize, Serialize};

use crosslight_baselines::holylight::HolyLight;
use crosslight_baselines::litecon::LiteCon;
use crosslight_baselines::symmetric_crossbar::SymmetricCrossbar;
use crosslight_baselines::ArchSpec;
use crosslight_core::config::CrossLightConfig;
use crosslight_core::error::Result as CoreResult;
use crosslight_core::simulator::{AverageMetrics, SimulationReport};
use crosslight_core::variants::CrossLightVariant;
use crosslight_neural::workload::NetworkWorkload;
use crosslight_neural::zoo::PaperModel;
use crosslight_runtime::pool::EvalService;
use crosslight_runtime::request::EvalRequest;

use crate::report::{fmt_f64, TextTable};

/// Default deployment power envelope (W) for the in-budget frontier: wide
/// enough for every photonic design and the edge-class electronic parts,
/// tight enough to exclude the datacenter GPUs/CPUs of the survey.
pub const DEFAULT_POWER_BUDGET_W: f64 = 25.0;

/// One evaluated architecture of the cross-architecture sweep, averaged over
/// the four Table I models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZooPoint {
    /// Human-readable label ([`ArchSpec::label`]).
    pub label: String,
    /// Architecture family wire name ([`ArchSpec::arch_name`]).
    pub arch: &'static str,
    /// Average FPS over the four Table I models.
    pub avg_fps: f64,
    /// Average EPB (pJ/bit) over the four models.
    pub avg_epb_pj: f64,
    /// Average performance per watt (kFPS/W).
    pub avg_kfps_per_watt: f64,
    /// Accelerator power (W, workload independent).
    pub power_w: f64,
    /// Accelerator area (mm², workload independent; 0 for the electronic
    /// survey rows, which publish no die area).
    pub area_mm2: f64,
    /// Native operand resolution (bits).
    pub resolution_bits: u32,
    /// Figure of merit used to rank points (FPS / EPB).
    pub fps_per_epb: f64,
    /// Whether the point fits the sweep's power budget.
    pub within_power_budget: bool,
}

/// The streaming summary of a cross-architecture sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZooFrontier {
    /// The `top_k` in-budget points by FPS/EPB, best first.
    pub top: Vec<ZooPoint>,
    /// The Pareto frontier over (FPS max, EPB min, power min) of *all*
    /// evaluated points, in candidate order.
    pub pareto: Vec<ZooPoint>,
    /// The best in-budget point by FPS/EPB (ties broken by lowest candidate
    /// index), if any candidate fits the budget.
    pub best: Option<ZooPoint>,
    /// The power budget the sweep ran under (W).
    pub power_budget_w: f64,
    /// Number of candidates evaluated.
    pub evaluated: usize,
    /// Number of candidates inside the power budget.
    pub in_budget: usize,
}

impl ZooFrontier {
    /// Renders the top-K points as a text table, best first.
    #[must_use]
    pub fn table(&self) -> TextTable {
        let mut table = TextTable::new(vec![
            "Architecture",
            "family",
            "avg FPS",
            "avg EPB (pJ/bit)",
            "kFPS/W",
            "power (W)",
            "bits",
            "FPS/EPB",
            "in budget",
        ]);
        for p in &self.top {
            table.push_row(vec![
                p.label.clone(),
                p.arch.to_string(),
                fmt_f64(p.avg_fps, 1),
                fmt_f64(p.avg_epb_pj, 3),
                fmt_f64(p.avg_kfps_per_watt, 2),
                fmt_f64(p.power_w, 2),
                p.resolution_bits.to_string(),
                fmt_f64(p.fps_per_epb, 1),
                p.within_power_budget.to_string(),
            ]);
        }
        table
    }
}

/// The union candidate grid: every backend family, spanned across its knobs.
///
/// CrossLight contributes variants × two dimension tuples × three
/// resolutions; HolyLight a unit-count sweep; the symmetric crossbar and
/// LiteCON geometry × resolution sweeps; DEAP-CNN its single published
/// design; the electronic survey its six platforms.
#[must_use]
pub fn union_candidates() -> Vec<ArchSpec> {
    let mut specs = Vec::new();
    for variant in CrossLightVariant::all() {
        for dims in [crosslight_core::config::BEST_CONFIG, (10, 100, 50, 30)] {
            for bits in [16u32, 8, 4] {
                let (n, k, conv_units, fc_units) = dims;
                let config = CrossLightConfig::new(n, k, conv_units, fc_units, variant.design())
                    .expect("union grid dims are valid")
                    .with_resolution_bits(bits);
                specs.push(ArchSpec::CrossLight(config));
            }
        }
    }
    for units in [125usize, 250, 500] {
        specs.push(ArchSpec::HolyLight(HolyLight::with_units(units)));
    }
    for side in [32usize, 64, 128] {
        for bits in [4u32, 8] {
            specs.push(ArchSpec::SymmetricCrossbar(
                SymmetricCrossbar::with_dims(side, side, bits)
                    .expect("union grid crossbars are valid"),
            ));
        }
    }
    for (units, unit_size) in [(64usize, 32usize), (128, 32), (128, 64)] {
        for bits in [4u32, 8] {
            specs.push(ArchSpec::LiteCon(
                LiteCon::with_dims(units, unit_size, bits).expect("union grid LiteCONs are valid"),
            ));
        }
    }
    specs.push(ArchSpec::DeapCnn(crosslight_baselines::DeapCnn::new()));
    specs.extend(crosslight_baselines::electronic::all_platforms().map(ArchSpec::Electronic));
    specs
}

fn zoo_point(spec: &ArchSpec, avg: &AverageMetrics, power_budget_w: f64) -> ZooPoint {
    let power_w = avg.power.value();
    ZooPoint {
        label: spec.label(),
        arch: spec.arch_name(),
        avg_fps: avg.fps,
        avg_epb_pj: avg.energy_per_bit_pj,
        avg_kfps_per_watt: avg.kfps_per_watt,
        power_w,
        area_mm2: avg.area.value(),
        resolution_bits: spec.resolution_bits(),
        fps_per_epb: avg.fps / avg.energy_per_bit_pj,
        within_power_budget: power_w <= power_budget_w,
    }
}

/// Evaluates one spec against the shared workloads, reusing `reports` as the
/// per-workload scratch buffer — the single evaluation path behind every
/// sweep flavor in this module.
fn evaluate_spec(
    spec: &ArchSpec,
    workloads: &[NetworkWorkload],
    power_budget_w: f64,
    reports: &mut Vec<SimulationReport>,
) -> CoreResult<ZooPoint> {
    reports.clear();
    for workload in workloads {
        reports.push(spec.simulate(workload)?);
    }
    let avg = AverageMetrics::from_reports(reports)?;
    Ok(zoo_point(spec, &avg, power_budget_w))
}

fn table_i_workloads() -> Result<Vec<NetworkWorkload>, Box<dyn std::error::Error>> {
    Ok(PaperModel::all()
        .iter()
        .map(|m| NetworkWorkload::from_spec(&m.spec()))
        .collect::<Result<_, _>>()?)
}

/// Ordering of frontier entries: figure of merit descending, then candidate
/// index ascending — a total order (`total_cmp`), so degenerate foms cannot
/// panic and merges are deterministic.
fn fom_ordering(a: &(usize, ZooPoint), b: &(usize, ZooPoint)) -> std::cmp::Ordering {
    b.1.fps_per_epb
        .total_cmp(&a.1.fps_per_epb)
        .then(a.0.cmp(&b.0))
}

/// `a` Pareto-dominates `b` on (FPS max, EPB min, power min).  NaN metrics
/// compare false on every axis, so degenerate points never dominate and are
/// never dominated.
fn dominates(a: &ZooPoint, b: &ZooPoint) -> bool {
    a.avg_fps >= b.avg_fps
        && a.avg_epb_pj <= b.avg_epb_pj
        && a.power_w <= b.power_w
        && (a.avg_fps > b.avg_fps || a.avg_epb_pj < b.avg_epb_pj || a.power_w < b.power_w)
}

/// Order-independent streaming accumulator behind [`run_streaming`] and
/// [`run_on`]: the [`fig6_design_space`](crate::fig6_design_space)
/// `FrontierAccumulator` lifted over architecture points — top-K by FPS/EPB
/// within the power budget, the (FPS, EPB, power) Pareto frontier, and the
/// running best, in O(K + frontier) memory.
#[derive(Debug, Clone)]
pub struct ZooAccumulator {
    top_k: usize,
    power_budget_w: f64,
    top: Vec<(usize, ZooPoint)>,
    pareto: Vec<(usize, ZooPoint)>,
    best: Option<(usize, ZooPoint)>,
    evaluated: usize,
    in_budget: usize,
}

impl ZooAccumulator {
    /// Creates an accumulator keeping the best `top_k` in-budget points.
    #[must_use]
    pub fn new(top_k: usize, power_budget_w: f64) -> Self {
        Self {
            top_k,
            power_budget_w,
            top: Vec::with_capacity(top_k.saturating_add(1).min(1024)),
            pareto: Vec::new(),
            best: None,
            evaluated: 0,
            in_budget: 0,
        }
    }

    /// Folds one evaluated candidate (with its grid index) into the summary.
    pub fn push(&mut self, index: usize, point: ZooPoint) {
        self.evaluated += 1;
        if point.within_power_budget {
            self.in_budget += 1;
            let entry = (index, point.clone());
            if self
                .best
                .as_ref()
                .is_none_or(|cur| fom_ordering(&entry, cur).is_lt())
            {
                self.best = Some(entry.clone());
            }
            if self.top_k > 0 {
                let at = self
                    .top
                    .binary_search_by(|probe| fom_ordering(probe, &entry))
                    .unwrap_or_else(|i| i);
                if at < self.top_k {
                    self.top.insert(at, entry);
                    self.top.truncate(self.top_k);
                }
            }
        }
        self.pareto_insert((index, point));
    }

    fn pareto_insert(&mut self, entry: (usize, ZooPoint)) {
        if self.pareto.iter().any(|(_, p)| dominates(p, &entry.1)) {
            return;
        }
        self.pareto.retain(|(_, p)| !dominates(&entry.1, p));
        self.pareto.push(entry);
    }

    /// Merges another accumulator (built over a disjoint slice of the same
    /// candidate stream) into this one.
    pub fn merge(&mut self, other: Self) {
        self.evaluated += other.evaluated;
        self.in_budget += other.in_budget;
        if let Some(entry) = other.best {
            if self
                .best
                .as_ref()
                .is_none_or(|cur| fom_ordering(&entry, cur).is_lt())
            {
                self.best = Some(entry);
            }
        }
        for entry in other.top {
            let at = self
                .top
                .binary_search_by(|probe| fom_ordering(probe, &entry))
                .unwrap_or_else(|i| i);
            if at < self.top_k {
                self.top.insert(at, entry);
                self.top.truncate(self.top_k);
            }
        }
        for entry in other.pareto {
            self.pareto_insert(entry);
        }
    }

    /// Finalizes the summary: top-K best first, Pareto frontier in candidate
    /// order.
    #[must_use]
    pub fn finish(mut self) -> ZooFrontier {
        self.pareto.sort_by_key(|(index, _)| *index);
        ZooFrontier {
            top: self.top.into_iter().map(|(_, p)| p).collect(),
            pareto: self.pareto.into_iter().map(|(_, p)| p).collect(),
            best: self.best.map(|(_, p)| p),
            power_budget_w: self.power_budget_w,
            evaluated: self.evaluated,
            in_budget: self.in_budget,
        }
    }
}

/// Runs the cross-architecture sweep as a stream: candidates are folded into
/// per-worker [`ZooAccumulator`]s (contiguous deterministic chunks over
/// scoped threads) and merged in chunk order — identical for any worker
/// count.
///
/// # Errors
///
/// Propagates simulator errors (which do not occur for valid candidates).
pub fn run_streaming(
    candidates: &[ArchSpec],
    workers: usize,
    top_k: usize,
    power_budget_w: f64,
) -> Result<ZooFrontier, Box<dyn std::error::Error>> {
    if candidates.is_empty() {
        return Ok(ZooAccumulator::new(top_k, power_budget_w).finish());
    }
    let workloads = table_i_workloads()?;
    let chunk_size = candidates.len().div_ceil(workers.max(1));
    let mut merged = ZooAccumulator::new(top_k, power_budget_w);
    std::thread::scope(|scope| -> CoreResult<()> {
        let mut handles = Vec::new();
        for (chunk_index, chunk) in candidates.chunks(chunk_size).enumerate() {
            let workloads = &workloads;
            handles.push(scope.spawn(move || -> CoreResult<ZooAccumulator> {
                let mut local = ZooAccumulator::new(top_k, power_budget_w);
                let mut reports = Vec::with_capacity(workloads.len());
                for (offset, spec) in chunk.iter().enumerate() {
                    let point = evaluate_spec(spec, workloads, power_budget_w, &mut reports)?;
                    local.push(chunk_index * chunk_size + offset, point);
                }
                Ok(local)
            }));
        }
        for handle in handles {
            merged.merge(handle.join().expect("sweep worker thread panicked")?);
        }
        Ok(())
    })?;
    Ok(merged.finish())
}

/// Runs the cross-architecture sweep through the runtime's evaluation
/// service, fanning the `candidates × models` grid across its workers.
///
/// Bit-identical to [`run_streaming`] for any worker count: the pool serves
/// CrossLight points through the prepared simulator and zoo points through
/// [`ArchSpec::simulate`], both bit-identical to the serial path, and the
/// responses come back in request order.
///
/// # Errors
///
/// Propagates service errors; reports a shape error if the response count
/// drifts from `candidates × models`.
pub fn run_on(
    service: &EvalService,
    candidates: &[ArchSpec],
    top_k: usize,
    power_budget_w: f64,
) -> Result<ZooFrontier, Box<dyn std::error::Error>> {
    let workloads: Vec<std::sync::Arc<NetworkWorkload>> = table_i_workloads()?
        .into_iter()
        .map(std::sync::Arc::new)
        .collect();
    let models = workloads.len();
    let mut requests = Vec::with_capacity(candidates.len() * models);
    for spec in candidates {
        for workload in &workloads {
            let id = requests.len() as u64;
            requests
                .push(EvalRequest::for_arch(*spec, std::sync::Arc::clone(workload)).with_id(id));
        }
    }
    let responses = service.submit_batch(requests)?;
    if responses.len() != candidates.len() * models {
        return Err(format!(
            "sweep plan shape drifted: {} responses for {} candidates × {} models",
            responses.len(),
            candidates.len(),
            models
        )
        .into());
    }

    let reports: Vec<Vec<SimulationReport>> = responses
        .chunks(models)
        .map(|chunk| chunk.iter().map(|r| r.report).collect())
        .collect();
    frontier_from_reports(candidates, &reports, top_k, power_budget_w)
}

/// Folds per-candidate report sets (one report per Table I model, in
/// [`PaperModel::all`] order) into a frontier — the assembly path shared by
/// [`run_on`] and wire-served evaluation, so a client that collected its
/// reports over the TCP protocol reproduces the in-process frontier exactly.
///
/// # Errors
///
/// Returns an error if `reports` does not hold one non-empty report set per
/// candidate.
pub fn frontier_from_reports(
    candidates: &[ArchSpec],
    reports: &[Vec<SimulationReport>],
    top_k: usize,
    power_budget_w: f64,
) -> Result<ZooFrontier, Box<dyn std::error::Error>> {
    if candidates.len() != reports.len() {
        return Err(format!(
            "shape mismatch: {} candidates but {} report sets",
            candidates.len(),
            reports.len()
        )
        .into());
    }
    let mut acc = ZooAccumulator::new(top_k, power_budget_w);
    for (index, (spec, set)) in candidates.iter().zip(reports).enumerate() {
        let avg = AverageMetrics::from_reports(set)?;
        acc.push(index, zoo_point(spec, &avg, power_budget_w));
    }
    Ok(acc.finish())
}

/// Table-III-style comparison rows for the backend-family defaults
/// ([`ArchSpec::zoo_defaults`]), each averaged over the four Table I models.
///
/// # Errors
///
/// Propagates simulator errors (which do not occur for the defaults).
pub fn table_rows() -> Result<Vec<ZooPoint>, Box<dyn std::error::Error>> {
    let workloads = table_i_workloads()?;
    let mut reports = Vec::with_capacity(workloads.len());
    let mut rows = Vec::new();
    for spec in ArchSpec::zoo_defaults() {
        rows.push(evaluate_spec(
            &spec,
            &workloads,
            DEFAULT_POWER_BUDGET_W,
            &mut reports,
        )?);
    }
    Ok(rows)
}

/// Renders [`table_rows`] as a text table.
///
/// # Errors
///
/// Propagates simulator errors (which do not occur for the defaults).
pub fn table() -> Result<TextTable, Box<dyn std::error::Error>> {
    let mut out = TextTable::new(vec![
        "Architecture",
        "family",
        "avg FPS",
        "avg EPB (pJ/bit)",
        "kFPS/W",
        "power (W)",
        "bits",
    ]);
    for row in table_rows()? {
        out.push_row(vec![
            row.label,
            row.arch.to_string(),
            fmt_f64(row.avg_fps, 1),
            fmt_f64(row.avg_epb_pj, 3),
            fmt_f64(row.avg_kfps_per_watt, 2),
            fmt_f64(row.power_w, 2),
            row.resolution_bits.to_string(),
        ]);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crosslight_runtime::pool::RuntimeOptions;

    #[test]
    fn union_grid_spans_every_family() {
        let specs = union_candidates();
        assert_eq!(specs.len(), 46, "4×2×3 CrossLight + 3 + 6 + 6 + 1 + 6");
        for family in [
            "crosslight",
            "deap-cnn",
            "holylight",
            "electronic",
            "symmetric-crossbar",
            "litecon",
        ] {
            assert!(
                specs.iter().any(|s| s.arch_name() == family),
                "missing {family}"
            );
        }
        // Candidate identities are pairwise distinct.
        let mut fingerprints: Vec<u64> = specs.iter().map(ArchSpec::fingerprint).collect();
        fingerprints.sort_unstable();
        fingerprints.dedup();
        assert_eq!(fingerprints.len(), specs.len());
    }

    #[test]
    fn streaming_sweep_is_identical_for_any_worker_count() {
        let candidates = union_candidates();
        let serial = run_streaming(&candidates, 1, 5, DEFAULT_POWER_BUDGET_W).unwrap();
        for workers in [2, 3, 7] {
            let parallel = run_streaming(&candidates, workers, 5, DEFAULT_POWER_BUDGET_W).unwrap();
            assert_eq!(serial, parallel, "{workers} workers");
        }
        assert_eq!(serial.evaluated, candidates.len());
        assert!(serial.in_budget > 0 && serial.in_budget < serial.evaluated);
        assert_eq!(serial.top.len(), 5);
        assert!(serial.best.is_some());
        // The empty grid is well-formed.
        let empty = run_streaming(&[], 3, 5, DEFAULT_POWER_BUDGET_W).unwrap();
        assert_eq!(empty.evaluated, 0);
        assert!(empty.best.is_none() && empty.top.is_empty() && empty.pareto.is_empty());
    }

    #[test]
    fn runtime_backed_sweep_matches_streaming_bit_for_bit() {
        let candidates = union_candidates();
        let streaming = run_streaming(&candidates, 3, 5, DEFAULT_POWER_BUDGET_W).unwrap();
        for workers in [1, 4] {
            let service = EvalService::new(RuntimeOptions::default().with_workers(workers));
            let batched = run_on(&service, &candidates, 5, DEFAULT_POWER_BUDGET_W).unwrap();
            assert_eq!(streaming, batched, "{workers} workers");
        }
    }

    #[test]
    fn the_frontier_answers_the_deployment_question() {
        let frontier = run_streaming(&union_candidates(), 4, 8, DEFAULT_POWER_BUDGET_W).unwrap();
        let best = frontier.best.unwrap();
        // Under a deployment power envelope the winner is a simulated
        // photonic design (the survey's electronic parts are either over
        // budget or orders of magnitude less efficient), and it fits the
        // budget by construction.
        assert_ne!(best.arch, "electronic", "winner: {}", best.label);
        assert!(best.within_power_budget);
        // The top-K is sorted best-first by the figure of merit.
        for pair in frontier.top.windows(2) {
            assert!(pair[0].fps_per_epb >= pair[1].fps_per_epb);
        }
        assert_eq!(frontier.top[0], best);
        // Every Pareto point is non-dominated within the frontier itself.
        for p in &frontier.pareto {
            assert!(!frontier.pareto.iter().any(|q| super::dominates(q, p)));
        }
        // A generous budget admits every candidate; a zero budget none.
        let generous = run_streaming(&union_candidates(), 4, 8, f64::INFINITY).unwrap();
        assert_eq!(generous.in_budget, generous.evaluated);
        let zero = run_streaming(&union_candidates(), 4, 8, 0.0).unwrap();
        assert_eq!(zero.in_budget, 0);
        assert!(zero.best.is_none());
    }

    #[test]
    fn table_rows_cover_the_zoo_defaults() {
        let rows = table_rows().unwrap();
        assert_eq!(rows.len(), ArchSpec::zoo_defaults().len());
        assert_eq!(table().unwrap().len(), rows.len());
        // The CrossLight default beats the photonic baselines on EPB.
        let epb = |arch: &str| {
            rows.iter()
                .find(|r| r.arch == arch)
                .map(|r| r.avg_epb_pj)
                .unwrap()
        };
        assert!(epb("crosslight") < epb("holylight"));
        assert!(epb("crosslight") < epb("deap-cnn"));
    }
}
