//! Text-table and CSV formatting for experiment results.

use std::fmt::Write as _;

/// A simple aligned text table used by every experiment to print its rows the
/// way the paper's tables/figures report them.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header length.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row length must match header length"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Returns the rows.
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let columns = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:<width$}", cell, width = widths[i] + 2);
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().map(|w| w + 2).sum::<usize>();
        out.push_str(&"-".repeat(total.min(120)));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        let _ = columns;
        out
    }

    /// Renders the table as CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with a fixed number of decimals (helper for experiments).
#[must_use]
pub fn fmt_f64(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns_and_csv() {
        let mut table = TextTable::new(vec!["Accelerator", "EPB (pJ/bit)"]);
        table.push_row(vec!["Cross_opt_TED".to_string(), fmt_f64(28.78, 2)]);
        table.push_row(vec!["Holylight".to_string(), fmt_f64(274.13, 2)]);
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
        let rendered = table.render();
        assert!(rendered.contains("Cross_opt_TED"));
        assert!(rendered.contains("EPB"));
        assert!(rendered.lines().count() >= 4);
        let csv = table.to_csv();
        assert!(csv.starts_with("Accelerator,EPB"));
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(table.rows().len(), 2);
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn mismatched_row_length_panics() {
        let mut table = TextTable::new(vec!["a", "b"]);
        table.push_row(vec!["only one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_f64(10.0, 0), "10");
    }
}
