//! # crosslight-experiments
//!
//! Experiment harness regenerating every table and figure of the CrossLight
//! paper's evaluation section (§V).  Each module corresponds to one artefact
//! and produces structured rows plus a formatted text table, so the same code
//! backs the unit tests, the Criterion benches and the runnable examples.
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`device_dse`] | §IV.A device design-space exploration (ΔλMR 7.1 → 2.1 nm) |
//! | [`fig4_crosstalk`] | Fig. 4 — phase-crosstalk ratio and tuning power vs. MR spacing |
//! | [`fig5_accuracy`] | Fig. 5 — accuracy vs. weight/activation resolution for the four models |
//! | [`resolution_analysis`] | §V.B — achievable resolution vs. MRs per bank |
//! | [`fig6_design_space`] | Fig. 6 — FPS vs. EPB vs. area design-space scatter |
//! | [`fig7_power`] | Fig. 7 — power comparison across accelerators |
//! | [`fig8_epb`] | Fig. 8 — per-model EPB of the photonic accelerators |
//! | [`table3_summary`] | Table III — average EPB and kFPS/W of all platforms |
//! | [`arch_zoo`] | Cross-architecture DSE over the [`ArchSpec`] backend zoo |
//!
//! [`ArchSpec`]: crosslight_baselines::ArchSpec

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arch_zoo;
pub mod device_dse;
pub mod fig4_crosstalk;
pub mod fig5_accuracy;
pub mod fig6_design_space;
pub mod fig7_power;
pub mod fig8_epb;
pub mod report;
pub mod resolution_analysis;
pub mod table3_summary;

pub use report::TextTable;
