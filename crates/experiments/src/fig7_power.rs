//! E6 — Fig. 7: power-consumption comparison.
//!
//! Compares the four CrossLight variants against the photonic baselines
//! (DEAP-CNN, HolyLight) and the electronic platforms (P100, Xeon Platinum
//! 9282, Threadripper 3970x, DaDianNao, EdgeTPU, NullHop).  The qualitative
//! claims to preserve from the paper: power decreases monotonically from
//! `Cross_base` to `Cross_opt_TED`; `Cross_opt_TED` consumes less power than
//! both photonic baselines and the CPU/GPU platforms, but more than the
//! edge/mobile electronic accelerators.

use serde::{Deserialize, Serialize};

use crosslight_baselines::accelerator::{CrossLightAccelerator, PhotonicAccelerator};
use crosslight_baselines::electronic::all_platforms;
use crosslight_baselines::{DeapCnn, HolyLight};
use crosslight_core::variants::CrossLightVariant;
use crosslight_neural::workload::NetworkWorkload;
use crosslight_neural::zoo::PaperModel;

use crate::report::{fmt_f64, TextTable};

/// Whether a platform is photonic (simulated here) or an electronic literature
/// reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlatformKind {
    /// A CrossLight variant.
    CrossLight,
    /// A photonic baseline accelerator.
    PhotonicBaseline,
    /// An electronic platform from the literature.
    Electronic,
}

/// One bar of the Fig. 7 power comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerRow {
    /// Platform name.
    pub name: String,
    /// Platform kind.
    pub kind: PlatformKind,
    /// Power in watts.
    pub power_watts: f64,
}

/// The full Fig. 7 comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerComparison {
    /// One row per platform, in the paper's plotting order.
    pub rows: Vec<PowerRow>,
}

impl PowerComparison {
    /// Power of a named platform, if present.
    #[must_use]
    pub fn power_of(&self, name: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.power_watts)
    }

    /// Renders the comparison as a text table.
    #[must_use]
    pub fn table(&self) -> TextTable {
        let mut table = TextTable::new(vec!["platform", "kind", "power (W)"]);
        for row in &self.rows {
            table.push_row(vec![
                row.name.clone(),
                format!("{:?}", row.kind),
                fmt_f64(row.power_watts, 2),
            ]);
        }
        table
    }
}

/// Runs the Fig. 7 power comparison over the four Table I models.
///
/// # Errors
///
/// Propagates accelerator-evaluation errors (which do not occur for the
/// built-in models).
pub fn run() -> Result<PowerComparison, Box<dyn std::error::Error>> {
    let workloads: Vec<NetworkWorkload> = PaperModel::all()
        .iter()
        .map(|m| NetworkWorkload::from_spec(&m.spec()))
        .collect::<Result<_, _>>()?;

    let mut rows = Vec::new();
    for variant in CrossLightVariant::all() {
        let accelerator = CrossLightAccelerator::new(variant);
        let report = accelerator.evaluate_average(&workloads)?;
        rows.push(PowerRow {
            name: accelerator.name(),
            kind: PlatformKind::CrossLight,
            power_watts: report.power_watts,
        });
    }
    for baseline in [
        Box::new(DeapCnn::new()) as Box<dyn PhotonicAccelerator>,
        Box::new(HolyLight::new()) as Box<dyn PhotonicAccelerator>,
    ] {
        let report = baseline.evaluate_average(&workloads)?;
        rows.push(PowerRow {
            name: baseline.name(),
            kind: PlatformKind::PhotonicBaseline,
            power_watts: report.power_watts,
        });
    }
    for platform in all_platforms() {
        rows.push(PowerRow {
            name: platform.name.to_string(),
            kind: PlatformKind::Electronic,
            power_watts: platform.power_watts,
        });
    }
    Ok(PowerComparison { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_reproduces_the_figure_7_claims() {
        let comparison = run().unwrap();
        let p = |name: &str| comparison.power_of(name).expect(name);

        // The four variants are ordered by how much cross-layer optimization
        // they apply.
        assert!(p("Cross_base") > p("Cross_base_TED"));
        assert!(p("Cross_base") > p("Cross_opt"));
        assert!(p("Cross_base_TED") > p("Cross_opt_TED"));
        assert!(p("Cross_opt") > p("Cross_opt_TED"));

        // Cross_opt_TED beats both photonic baselines and the CPU/GPU
        // platforms…
        for other in ["DEAP_CNN", "Holylight", "P100", "IXP 9282", "AMD-TR"] {
            assert!(
                p("Cross_opt_TED") < p(other),
                "Cross_opt_TED should draw less power than {other}"
            );
        }
        // …but not the edge/mobile electronic accelerators.
        for edge in ["Edge TPU", "Null Hop"] {
            assert!(
                p("Cross_opt_TED") > p(edge),
                "Cross_opt_TED draws more power than {edge}"
            );
        }
    }

    #[test]
    fn every_expected_platform_is_present() {
        let comparison = run().unwrap();
        assert_eq!(comparison.rows.len(), 4 + 2 + 6);
        assert_eq!(comparison.table().len(), 12);
        assert!(comparison.power_of("does not exist").is_none());
    }
}
