//! E8 — Table III: average EPB and performance-per-watt of every platform.
//!
//! Combines the simulated photonic accelerators (averaged over the four
//! Table I models) with the electronic literature references into the paper's
//! summary table, and computes the headline improvement factors of the
//! conclusion (lower EPB and higher kFPS/W than HolyLight).

use serde::{Deserialize, Serialize};

use crosslight_baselines::accelerator::{
    AcceleratorReport, CrossLightAccelerator, PhotonicAccelerator,
};
use crosslight_baselines::electronic::all_platforms;
use crosslight_baselines::{DeapCnn, HolyLight};
use crosslight_core::variants::CrossLightVariant;
use crosslight_neural::workload::NetworkWorkload;
use crosslight_neural::zoo::PaperModel;
use crosslight_runtime::planner::SweepPlanner;
use crosslight_runtime::pool::EvalService;

use crate::report::{fmt_f64, TextTable};

/// One row of Table III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SummaryRow {
    /// Platform name.
    pub name: String,
    /// Average energy per bit (pJ/bit).
    pub avg_epb_pj: f64,
    /// Average performance per watt (kFPS/W).
    pub avg_kfps_per_watt: f64,
    /// Whether the row is simulated here (photonic) or taken from the
    /// literature (electronic).
    pub simulated: bool,
}

/// The full Table III reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SummaryTable {
    /// All rows in the paper's order (electronic platforms first, then the
    /// photonic accelerators).
    pub rows: Vec<SummaryRow>,
    /// CrossLight (opt_TED) EPB improvement over HolyLight (paper: 9.5×).
    pub epb_improvement_vs_holylight: f64,
    /// CrossLight (opt_TED) kFPS/W improvement over HolyLight (paper: 15.9×).
    pub ppw_improvement_vs_holylight: f64,
    /// CrossLight (opt_TED) EPB improvement over DEAP-CNN (paper: 1544×).
    pub epb_improvement_vs_deap: f64,
}

impl SummaryTable {
    /// Returns a named row, if present.
    #[must_use]
    pub fn row(&self, name: &str) -> Option<&SummaryRow> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// Renders Table III as a text table.
    #[must_use]
    pub fn table(&self) -> TextTable {
        let mut table = TextTable::new(vec![
            "Accelerator",
            "Avg. EPB (pJ/bit)",
            "Avg. kFPS/Watt",
            "source",
        ]);
        for row in &self.rows {
            table.push_row(vec![
                row.name.clone(),
                fmt_f64(row.avg_epb_pj, 2),
                fmt_f64(row.avg_kfps_per_watt, 2),
                if row.simulated {
                    "simulated"
                } else {
                    "literature"
                }
                .to_string(),
            ]);
        }
        table
    }
}

/// Builds the non-CrossLight rows: electronic literature references first,
/// then the simulated DEAP-CNN and HolyLight baselines.
fn baseline_rows(
    workloads: &[NetworkWorkload],
) -> Result<Vec<SummaryRow>, Box<dyn std::error::Error>> {
    let mut rows = Vec::new();
    for platform in all_platforms() {
        rows.push(SummaryRow {
            name: platform.name.to_string(),
            avg_epb_pj: platform.avg_epb_pj,
            avg_kfps_per_watt: platform.avg_kfps_per_watt,
            simulated: false,
        });
    }
    let photonic: Vec<Box<dyn PhotonicAccelerator>> =
        vec![Box::new(DeapCnn::new()), Box::new(HolyLight::new())];
    for accelerator in &photonic {
        let report = accelerator.evaluate_average(workloads)?;
        rows.push(SummaryRow {
            name: accelerator.name(),
            avg_epb_pj: report.energy_per_bit_pj,
            avg_kfps_per_watt: report.kfps_per_watt,
            simulated: true,
        });
    }
    Ok(rows)
}

/// Computes the headline improvement factors and assembles the table.
fn finish(rows: Vec<SummaryRow>) -> SummaryTable {
    let find = |name: &str| -> SummaryRow {
        rows.iter()
            .find(|r| r.name == name)
            .cloned()
            .expect("row exists")
    };
    let opt_ted = find("Cross_opt_TED");
    let holylight = find("Holylight");
    let deap = find("DEAP_CNN");
    SummaryTable {
        epb_improvement_vs_holylight: holylight.avg_epb_pj / opt_ted.avg_epb_pj,
        ppw_improvement_vs_holylight: opt_ted.avg_kfps_per_watt / holylight.avg_kfps_per_watt,
        epb_improvement_vs_deap: deap.avg_epb_pj / opt_ted.avg_epb_pj,
        rows,
    }
}

/// Runs the Table III summary, serially.
///
/// # Errors
///
/// Propagates accelerator-evaluation errors (which do not occur for the
/// built-in models).
pub fn run() -> Result<SummaryTable, Box<dyn std::error::Error>> {
    let workloads: Vec<NetworkWorkload> = PaperModel::all()
        .iter()
        .map(|m| NetworkWorkload::from_spec(&m.spec()))
        .collect::<Result<_, _>>()?;

    let mut rows = baseline_rows(&workloads)?;
    for variant in CrossLightVariant::all() {
        let report = CrossLightAccelerator::new(variant).evaluate_average(&workloads)?;
        rows.push(SummaryRow {
            name: variant.label().to_string(),
            avg_epb_pj: report.energy_per_bit_pj,
            avg_kfps_per_watt: report.kfps_per_watt,
            simulated: true,
        });
    }
    Ok(finish(rows))
}

/// Runs the Table III summary with the four CrossLight variant rows fanned
/// through the runtime's evaluation service (the electronic and non-
/// CrossLight photonic baselines have no simulator behind them and stay
/// serial).  Bit-identical to [`run`] for any worker count: the simulator
/// reports and the averaging path are shared with the serial adapter.
///
/// # Errors
///
/// Propagates planner/service and accelerator-evaluation errors.
pub fn run_on(service: &EvalService) -> Result<SummaryTable, Box<dyn std::error::Error>> {
    let workloads: Vec<NetworkWorkload> = PaperModel::all()
        .iter()
        .map(|m| NetworkWorkload::from_spec(&m.spec()))
        .collect::<Result<_, _>>()?;

    let mut rows = baseline_rows(&workloads)?;
    let variants = CrossLightVariant::all();
    let requests = SweepPlanner::new().variants(&variants).plan()?;
    let models = PaperModel::all().len();
    let responses = service.submit_batch(requests)?;
    if responses.len() != variants.len() * models {
        return Err(format!(
            "sweep plan shape drifted: {} responses for {} variants × {} models",
            responses.len(),
            variants.len(),
            models
        )
        .into());
    }
    for (variant, chunk) in variants.iter().zip(responses.chunks(models)) {
        let reports: Vec<AcceleratorReport> = chunk
            .iter()
            .map(|r| AcceleratorReport::from_simulation(&r.report))
            .collect();
        let report = AcceleratorReport::average(&reports)?;
        rows.push(SummaryRow {
            name: variant.label().to_string(),
            avg_epb_pj: report.energy_per_bit_pj,
            avg_kfps_per_watt: report.kfps_per_watt,
            simulated: true,
        });
    }
    Ok(finish(rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_contains_all_twelve_platforms() {
        let summary = run().unwrap();
        assert_eq!(summary.rows.len(), 12);
        assert_eq!(summary.table().len(), 12);
        assert!(summary.row("Cross_opt_TED").unwrap().simulated);
        assert!(!summary.row("P100").unwrap().simulated);
        assert!(summary.row("missing").is_none());
    }

    #[test]
    fn runtime_backed_summary_is_bit_identical_to_serial() {
        use crosslight_runtime::pool::RuntimeOptions;
        let serial = run().unwrap();
        let service = EvalService::new(RuntimeOptions::default().with_workers(4));
        let batched = run_on(&service).unwrap();
        assert_eq!(serial, batched);
        // The variant rows rode the runtime: 4 variants × 4 models.
        assert_eq!(service.stats().completed, 16);
    }

    #[test]
    fn headline_improvements_have_the_paper_shape() {
        let summary = run().unwrap();
        // Paper: 9.5× EPB and 15.9× perf/W over HolyLight; 1544× EPB over
        // DEAP-CNN.  The reproduction targets the same order of magnitude.
        assert!(
            summary.epb_improvement_vs_holylight > 3.0
                && summary.epb_improvement_vs_holylight < 40.0,
            "EPB improvement vs HolyLight: {:.1}",
            summary.epb_improvement_vs_holylight
        );
        assert!(
            summary.ppw_improvement_vs_holylight > 3.0
                && summary.ppw_improvement_vs_holylight < 60.0,
            "perf/W improvement vs HolyLight: {:.1}",
            summary.ppw_improvement_vs_holylight
        );
        assert!(
            summary.epb_improvement_vs_deap > 200.0,
            "EPB improvement vs DEAP: {:.0}",
            summary.epb_improvement_vs_deap
        );
    }

    #[test]
    fn crosslight_variants_are_ordered_in_both_metrics() {
        let summary = run().unwrap();
        let epb = |name: &str| summary.row(name).unwrap().avg_epb_pj;
        let ppw = |name: &str| summary.row(name).unwrap().avg_kfps_per_watt;
        assert!(epb("Cross_base") > epb("Cross_base_TED"));
        assert!(epb("Cross_base_TED") > epb("Cross_opt_TED"));
        assert!(epb("Cross_opt") > epb("Cross_opt_TED"));
        assert!(ppw("Cross_base") < ppw("Cross_base_TED"));
        assert!(ppw("Cross_opt") < ppw("Cross_opt_TED"));
    }

    #[test]
    fn photonic_rows_beat_deap_cnn() {
        let summary = run().unwrap();
        let deap = summary.row("DEAP_CNN").unwrap().avg_epb_pj;
        for name in ["Holylight", "Cross_base", "Cross_opt_TED"] {
            assert!(summary.row(name).unwrap().avg_epb_pj < deap);
        }
    }
}
