//! E5 — Fig. 6: FPS vs. EPB vs. area design-space exploration.
//!
//! Sweeps the architecture parameters `(N, K, n, m)` of §IV.C, evaluating the
//! average FPS and EPB over the four Table I models together with the area of
//! each configuration.  As in the paper, the best configuration is the one
//! with the highest FPS/EPB ratio among those inside the area window, and it
//! comes out as `(20, 150, 100, 60)`.
//!
//! Every sweep flavor shares one [`ModelCache`]: a grid with `G` distinct
//! `(N, K)` pairs pays for `G` CONV/FC unit reports (each with a 15×15 TED
//! eigendecomposition inside) instead of one per grid point, which is where
//! almost all of a candidate's cost used to go.  On top of that:
//!
//! * [`run`] materializes every [`DesignPoint`] serially;
//! * [`run_parallel`] spreads contiguous candidate chunks over scoped worker
//!   threads and reassembles them in candidate order — **byte-identical** to
//!   [`run`] for any worker count (the `fig5_accuracy::run_parallel`
//!   determinism contract);
//! * [`run_streaming`] folds each candidate into a per-worker
//!   [`FrontierAccumulator`] (top-K by FPS/EPB plus the FPS/EPB/area Pareto
//!   frontier) and merges the accumulators, so a dense grid such as
//!   [`dense_candidates`] (~58.5k points) needs O(top-K + frontier) memory
//!   instead of one `DesignPoint` per candidate;
//! * [`run_on`] fans the `candidates × models` grid through the runtime's
//!   [`EvalService`].

use serde::{Deserialize, Serialize};

use crosslight_core::cache::ModelCache;
use crosslight_core::config::{CrossLightConfig, DesignChoices};
use crosslight_core::error::Result as CoreResult;
use crosslight_core::simulator::{AverageMetrics, CrossLightSimulator, SimulationReport};
use crosslight_neural::workload::NetworkWorkload;
use crosslight_neural::zoo::PaperModel;
use crosslight_runtime::planner::SweepPlanner;
use crosslight_runtime::pool::EvalService;

use crate::report::{fmt_f64, TextTable};

/// Upper bound of the paper's "reasonable area constraint" (§V.D), in mm².
pub const AREA_CAP_MM2: f64 = 25.0;

/// One evaluated configuration of the design-space sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// CONV unit size `N`.
    pub conv_unit_size: usize,
    /// FC unit size `K`.
    pub fc_unit_size: usize,
    /// CONV unit count `n`.
    pub conv_units: usize,
    /// FC unit count `m`.
    pub fc_units: usize,
    /// Average FPS over the four Table I models.
    pub avg_fps: f64,
    /// Average EPB (pJ/bit) over the four models.
    pub avg_epb_pj: f64,
    /// Accelerator area (mm²).
    pub area_mm2: f64,
    /// Figure-of-merit used to pick the best point (FPS / EPB).
    pub fps_per_epb: f64,
    /// Whether the point satisfies the area constraint.
    pub within_area_cap: bool,
}

/// The full design-space sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignSpaceSweep {
    /// Every evaluated point.
    pub points: Vec<DesignPoint>,
    /// The best point (highest FPS/EPB within the area cap).
    pub best: DesignPoint,
    /// The paper's published best configuration, `(20, 150, 100, 60)`,
    /// evaluated under this model (present whenever it is part of the
    /// candidate grid).  The paper's config is what every other experiment
    /// uses; the sweep's own `best` may differ slightly because the paper does
    /// not publish its candidate grid or cost-model internals (see
    /// `EXPERIMENTS.md`).
    pub paper_point: Option<DesignPoint>,
}

impl DesignSpaceSweep {
    /// Renders the sweep as a text table, best configuration last.
    #[must_use]
    pub fn table(&self) -> TextTable {
        points_table(&self.points)
    }
}

/// Renders design points as a text table (shared by the materializing sweep
/// and the streaming frontier).
fn points_table(points: &[DesignPoint]) -> TextTable {
    let mut table = TextTable::new(vec![
        "N",
        "K",
        "n",
        "m",
        "avg FPS",
        "avg EPB (pJ/bit)",
        "area (mm2)",
        "FPS/EPB",
        "in cap",
    ]);
    for p in points {
        table.push_row(vec![
            p.conv_unit_size.to_string(),
            p.fc_unit_size.to_string(),
            p.conv_units.to_string(),
            p.fc_units.to_string(),
            fmt_f64(p.avg_fps, 1),
            fmt_f64(p.avg_epb_pj, 3),
            fmt_f64(p.area_mm2, 1),
            fmt_f64(p.fps_per_epb, 1),
            p.within_area_cap.to_string(),
        ]);
    }
    table
}

/// The candidate grid the sweep explores.
///
/// The paper does not publish its exact grid; this one brackets the published
/// best point along every axis.  `N` is swept up to 20 (the paper's chosen
/// CONV unit size): the evaluated models' convolution kernels hold at most
/// 5×5 = 25 weights per channel, so CONV units much larger than that mostly
/// idle — see `EXPERIMENTS.md` for the discussion of how this grid choice
/// interacts with the cost model.
#[must_use]
pub fn paper_candidates() -> Vec<(usize, usize, usize, usize)> {
    let mut out = Vec::new();
    for &n_size in &[10usize, 15, 20] {
        for &k_size in &[100usize, 150, 200] {
            for &n_units in &[50usize, 100, 150] {
                for &m_units in &[30usize, 60, 90] {
                    out.push((n_size, k_size, n_units, m_units));
                }
            }
        }
    }
    out
}

/// A dense ~58.5k-candidate grid (three orders of magnitude beyond
/// [`paper_candidates`]): every even CONV unit size up to the paper's 20,
/// FC unit sizes 50–300 in steps of 10, and both unit counts 10–150 in steps
/// of 10.  Designed for the streaming sweep ([`run_streaming`]), which never
/// materializes its per-candidate points.
#[must_use]
pub fn dense_candidates() -> Vec<(usize, usize, usize, usize)> {
    let mut out = Vec::new();
    for n_size in (2..=20).step_by(2) {
        for k_size in (50..=300).step_by(10) {
            for n_units in (10..=150).step_by(10) {
                for m_units in (10..=150).step_by(10) {
                    out.push((n_size, k_size, n_units, m_units));
                }
            }
        }
    }
    out
}

fn design_point(dims: (usize, usize, usize, usize), avg: &AverageMetrics) -> DesignPoint {
    let (n_size, k_size, n_units, m_units) = dims;
    let area = avg.area.value();
    DesignPoint {
        conv_unit_size: n_size,
        fc_unit_size: k_size,
        conv_units: n_units,
        fc_units: m_units,
        avg_fps: avg.fps,
        avg_epb_pj: avg.energy_per_bit_pj,
        area_mm2: area,
        fps_per_epb: avg.fps / avg.energy_per_bit_pj,
        within_area_cap: area <= AREA_CAP_MM2,
    }
}

/// Evaluates one candidate against the shared workloads through the shared
/// [`ModelCache`], reusing `reports` as the per-workload scratch buffer.
///
/// This is the single evaluation path behind [`run`], [`run_parallel`] and
/// [`run_streaming`]: the per-workload reports are assembled from the
/// memoized workload-independent breakdowns exactly as
/// `PreparedSimulator::evaluate` assembles them, and averaged through the
/// shared `AverageMetrics::from_reports` accumulation, so every flavor
/// produces bit-identical points.
fn evaluate_candidate(
    dims: (usize, usize, usize, usize),
    workloads: &[NetworkWorkload],
    cache: &ModelCache,
    reports: &mut Vec<SimulationReport>,
) -> CoreResult<DesignPoint> {
    let (n_size, k_size, n_units, m_units) = dims;
    let config = CrossLightConfig::new(
        n_size,
        k_size,
        n_units,
        m_units,
        DesignChoices::crosslight_opt_ted(),
    )?;
    let power = cache.power(&config)?;
    let area = cache.area(&config);
    let resolution_bits = cache.resolution_bits(&config)?;
    let simulator = CrossLightSimulator::new(config);
    reports.clear();
    for workload in workloads {
        reports.push(SimulationReport {
            power,
            area,
            metrics: simulator.evaluate_metrics(workload, &power)?,
            resolution_bits,
        });
    }
    let avg = AverageMetrics::from_reports(reports)?;
    Ok(design_point(dims, &avg))
}

fn table_i_workloads() -> Result<Vec<NetworkWorkload>, Box<dyn std::error::Error>> {
    Ok(PaperModel::all()
        .iter()
        .map(|m| NetworkWorkload::from_spec(&m.spec()))
        .collect::<Result<_, _>>()?)
}

fn assemble(points: Vec<DesignPoint>) -> Result<DesignSpaceSweep, Box<dyn std::error::Error>> {
    let best = *points
        .iter()
        .filter(|p| p.within_area_cap)
        // total_cmp: a degenerate figure of merit (NaN from a 0/0, ±inf from
        // a zero EPB) orders deterministically instead of panicking.
        .max_by(|a, b| a.fps_per_epb.total_cmp(&b.fps_per_epb))
        .ok_or("no candidate satisfies the area constraint")?;
    let paper_point = points.iter().copied().find(|p| {
        (p.conv_unit_size, p.fc_unit_size, p.conv_units, p.fc_units)
            == crosslight_core::config::BEST_CONFIG
    });
    Ok(DesignSpaceSweep {
        points,
        best,
        paper_point,
    })
}

/// Runs the design-space sweep over the given candidates, serially, sharing
/// one [`ModelCache`] across the whole grid.
///
/// # Errors
///
/// Propagates simulator errors (which do not occur for valid candidates);
/// returns an error if no candidate satisfies the area constraint.
pub fn run(
    candidates: &[(usize, usize, usize, usize)],
) -> Result<DesignSpaceSweep, Box<dyn std::error::Error>> {
    let workloads = table_i_workloads()?;
    let cache = ModelCache::new();
    let mut reports = Vec::with_capacity(workloads.len());
    let mut points = Vec::with_capacity(candidates.len());
    for &dims in candidates {
        points.push(evaluate_candidate(dims, &workloads, &cache, &mut reports)?);
    }
    assemble(points)
}

/// Runs the design-space sweep with contiguous candidate chunks spread over
/// `workers` scoped threads, all sharing one [`ModelCache`].
///
/// Chunking is deterministic and results are reassembled in candidate order,
/// so the sweep is **byte-identical** to [`run`] for any worker count (each
/// point is a pure function of its candidate, and caching cannot change
/// values, only latency).
///
/// # Errors
///
/// Propagates simulator errors (which do not occur for valid candidates);
/// returns an error if no candidate satisfies the area constraint.
pub fn run_parallel(
    candidates: &[(usize, usize, usize, usize)],
    workers: usize,
) -> Result<DesignSpaceSweep, Box<dyn std::error::Error>> {
    if candidates.is_empty() {
        return assemble(Vec::new());
    }
    let workloads = table_i_workloads()?;
    let cache = ModelCache::new();
    let chunk_size = candidates.len().div_ceil(workers.max(1));
    let mut points = Vec::with_capacity(candidates.len());
    std::thread::scope(|scope| -> CoreResult<()> {
        let mut handles = Vec::new();
        for chunk in candidates.chunks(chunk_size) {
            let workloads = &workloads;
            let cache = &cache;
            handles.push(scope.spawn(move || -> CoreResult<Vec<DesignPoint>> {
                let mut reports = Vec::with_capacity(workloads.len());
                chunk
                    .iter()
                    .map(|&dims| evaluate_candidate(dims, workloads, cache, &mut reports))
                    .collect()
            }));
        }
        for handle in handles {
            points.extend(handle.join().expect("sweep worker thread panicked")?);
        }
        Ok(())
    })?;
    assemble(points)
}

/// Ordering of frontier entries: figure of merit descending, then candidate
/// index ascending — a total order (`total_cmp`), so degenerate foms cannot
/// panic and merges are deterministic.
fn fom_ordering(a: &(usize, DesignPoint), b: &(usize, DesignPoint)) -> std::cmp::Ordering {
    b.1.fps_per_epb
        .total_cmp(&a.1.fps_per_epb)
        .then(a.0.cmp(&b.0))
}

/// `a` Pareto-dominates `b` on (FPS max, EPB min, area min).
///
/// NaN metrics compare false on every axis, so degenerate points never
/// dominate and are never dominated — they simply persist on the frontier,
/// keeping the accumulator panic-free and order-independent.
fn dominates(a: &DesignPoint, b: &DesignPoint) -> bool {
    a.avg_fps >= b.avg_fps
        && a.avg_epb_pj <= b.avg_epb_pj
        && a.area_mm2 <= b.area_mm2
        && (a.avg_fps > b.avg_fps || a.avg_epb_pj < b.avg_epb_pj || a.area_mm2 < b.area_mm2)
}

/// Streaming summary of a design-space sweep: everything the analysis needs
/// without one [`DesignPoint`] per candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignFrontier {
    /// The `top_k` in-cap points by FPS/EPB, best first.
    pub top: Vec<DesignPoint>,
    /// The Pareto frontier over (FPS max, EPB min, area min) of *all*
    /// evaluated points, in candidate order.
    pub pareto: Vec<DesignPoint>,
    /// The best in-cap point by FPS/EPB (the [`DesignSpaceSweep::best`]
    /// criterion — agreeing with it whenever figures of merit are distinct;
    /// on bitwise-tied foms the streaming path breaks ties by lowest
    /// candidate index), if any candidate satisfies the cap.
    pub best: Option<DesignPoint>,
    /// The paper's published `(20, 150, 100, 60)` point, when in the grid.
    pub paper_point: Option<DesignPoint>,
    /// Number of candidates evaluated.
    pub evaluated: usize,
    /// Number of candidates inside the area cap.
    pub in_cap: usize,
}

impl DesignFrontier {
    /// Renders the top-K points as a text table, best first.
    #[must_use]
    pub fn table(&self) -> TextTable {
        points_table(&self.top)
    }
}

/// Order-independent streaming accumulator behind [`run_streaming`]: folds
/// design points one at a time, holding only the current top-K (by FPS/EPB,
/// within the area cap), the Pareto frontier, the running best and the
/// paper's point — O(K + frontier) memory however many candidates stream
/// through.
///
/// Both [`FrontierAccumulator::push`] and [`FrontierAccumulator::merge`] are
/// deterministic for a fixed assignment of candidate indices: top-K selection
/// and best tracking use the total order ([`f64::total_cmp`], then candidate
/// index) and the Pareto frontier of a set does not depend on insertion
/// order, so any partitioning of one candidate stream merges to the same
/// frontier.
#[derive(Debug, Clone)]
pub struct FrontierAccumulator {
    top_k: usize,
    top: Vec<(usize, DesignPoint)>,
    pareto: Vec<(usize, DesignPoint)>,
    best: Option<(usize, DesignPoint)>,
    paper_point: Option<(usize, DesignPoint)>,
    evaluated: usize,
    in_cap: usize,
}

impl FrontierAccumulator {
    /// Creates an accumulator keeping the best `top_k` in-cap points.
    #[must_use]
    pub fn new(top_k: usize) -> Self {
        Self {
            top_k,
            top: Vec::with_capacity(top_k.saturating_add(1).min(1024)),
            pareto: Vec::new(),
            best: None,
            paper_point: None,
            evaluated: 0,
            in_cap: 0,
        }
    }

    /// Folds one evaluated candidate (with its grid index) into the summary.
    pub fn push(&mut self, index: usize, point: DesignPoint) {
        self.evaluated += 1;
        if (
            point.conv_unit_size,
            point.fc_unit_size,
            point.conv_units,
            point.fc_units,
        ) == crosslight_core::config::BEST_CONFIG
            && self.paper_point.is_none_or(|(i, _)| index < i)
        {
            self.paper_point = Some((index, point));
        }
        if point.within_area_cap {
            self.in_cap += 1;
            let entry = (index, point);
            if self
                .best
                .is_none_or(|cur| fom_ordering(&entry, &cur).is_lt())
            {
                self.best = Some(entry);
            }
            if self.top_k > 0 {
                let at = self
                    .top
                    .binary_search_by(|probe| fom_ordering(probe, &entry))
                    .unwrap_or_else(|i| i);
                if at < self.top_k {
                    self.top.insert(at, entry);
                    self.top.truncate(self.top_k);
                }
            }
        }
        self.pareto_insert((index, point));
    }

    fn pareto_insert(&mut self, entry: (usize, DesignPoint)) {
        if self.pareto.iter().any(|(_, p)| dominates(p, &entry.1)) {
            return;
        }
        self.pareto.retain(|(_, p)| !dominates(&entry.1, p));
        self.pareto.push(entry);
    }

    /// Merges another accumulator (built over a disjoint slice of the same
    /// candidate stream) into this one.
    pub fn merge(&mut self, other: Self) {
        self.evaluated += other.evaluated;
        self.in_cap += other.in_cap;
        if let Some((index, point)) = other.paper_point {
            if self.paper_point.is_none_or(|(i, _)| index < i) {
                self.paper_point = Some((index, point));
            }
        }
        if let Some(entry) = other.best {
            if self
                .best
                .is_none_or(|cur| fom_ordering(&entry, &cur).is_lt())
            {
                self.best = Some(entry);
            }
        }
        for entry in other.top {
            let at = self
                .top
                .binary_search_by(|probe| fom_ordering(probe, &entry))
                .unwrap_or_else(|i| i);
            if at < self.top_k {
                self.top.insert(at, entry);
                self.top.truncate(self.top_k);
            }
        }
        for entry in other.pareto {
            self.pareto_insert(entry);
        }
    }

    /// Finalizes the summary: top-K best first, Pareto frontier in candidate
    /// order.
    #[must_use]
    pub fn finish(mut self) -> DesignFrontier {
        self.pareto.sort_by_key(|(index, _)| *index);
        DesignFrontier {
            top: self.top.into_iter().map(|(_, p)| p).collect(),
            pareto: self.pareto.into_iter().map(|(_, p)| p).collect(),
            best: self.best.map(|(_, p)| p),
            paper_point: self.paper_point.map(|(_, p)| p),
            evaluated: self.evaluated,
            in_cap: self.in_cap,
        }
    }
}

/// Runs the design-space sweep as a stream: candidates are folded into
/// per-worker [`FrontierAccumulator`]s (contiguous deterministic chunks over
/// scoped threads, one shared [`ModelCache`]) and merged in chunk order.
///
/// Memory stays O(top-K + Pareto frontier) regardless of grid size — a
/// [`dense_candidates`] grid streams ~58.5k points through without ever
/// materializing them — and the result is identical for any worker count.
///
/// # Errors
///
/// Propagates simulator errors (which do not occur for valid candidates).
pub fn run_streaming(
    candidates: &[(usize, usize, usize, usize)],
    workers: usize,
    top_k: usize,
) -> Result<DesignFrontier, Box<dyn std::error::Error>> {
    if candidates.is_empty() {
        return Ok(FrontierAccumulator::new(top_k).finish());
    }
    let workloads = table_i_workloads()?;
    let cache = ModelCache::new();
    let chunk_size = candidates.len().div_ceil(workers.max(1));
    let mut merged = FrontierAccumulator::new(top_k);
    std::thread::scope(|scope| -> CoreResult<()> {
        let mut handles = Vec::new();
        for (chunk_index, chunk) in candidates.chunks(chunk_size).enumerate() {
            let workloads = &workloads;
            let cache = &cache;
            handles.push(scope.spawn(move || -> CoreResult<FrontierAccumulator> {
                let mut local = FrontierAccumulator::new(top_k);
                let mut reports = Vec::with_capacity(workloads.len());
                for (offset, &dims) in chunk.iter().enumerate() {
                    let point = evaluate_candidate(dims, workloads, cache, &mut reports)?;
                    local.push(chunk_index * chunk_size + offset, point);
                }
                Ok(local)
            }));
        }
        for handle in handles {
            merged.merge(handle.join().expect("sweep worker thread panicked")?);
        }
        Ok(())
    })?;
    Ok(merged.finish())
}

/// Runs the design-space sweep through the runtime's evaluation service,
/// fanning the `candidates × models` grid across the service's workers.
///
/// Produces a sweep bit-identical to [`run`] for any worker count: each
/// candidate's per-model reports come back in the same model order, and the
/// averaging path ([`AverageMetrics::from_reports`]) is shared with the
/// serial [`CrossLightSimulator::evaluate_average`].
///
/// # Errors
///
/// Propagates planner/service errors; returns an error if no candidate
/// satisfies the area constraint.
pub fn run_on(
    service: &EvalService,
    candidates: &[(usize, usize, usize, usize)],
) -> Result<DesignSpaceSweep, Box<dyn std::error::Error>> {
    let requests = SweepPlanner::new().architectures(candidates).plan()?;
    let models = PaperModel::all().len();
    let responses = service.submit_batch(requests)?;
    if responses.len() != candidates.len() * models {
        return Err(format!(
            "sweep plan shape drifted: {} responses for {} candidates × {} models",
            responses.len(),
            candidates.len(),
            models
        )
        .into());
    }

    let mut points = Vec::with_capacity(candidates.len());
    for (dims, chunk) in candidates.iter().zip(responses.chunks(models)) {
        let reports: Vec<_> = chunk.iter().map(|r| r.report).collect();
        let avg = AverageMetrics::from_reports(&reports)?;
        points.push(design_point(*dims, &avg));
    }
    assemble(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reduced candidate set that still contains the paper's best point,
    /// used to keep test runtime low.
    fn reduced_candidates() -> Vec<(usize, usize, usize, usize)> {
        vec![
            (10, 100, 50, 30),
            (10, 150, 100, 60),
            (20, 150, 50, 30),
            (20, 150, 100, 60),
            (20, 200, 100, 90),
            (20, 200, 150, 90),
        ]
    }

    #[test]
    fn best_configuration_matches_the_paper_and_its_claims() {
        // The sweep's winner is the paper's (20, 150, 100, 60); it satisfies
        // the area constraint and — as the paper notes — is also the
        // highest-FPS in-cap point.
        let sweep = run(&reduced_candidates()).unwrap();
        assert_eq!(
            (
                sweep.best.conv_unit_size,
                sweep.best.fc_unit_size,
                sweep.best.conv_units,
                sweep.best.fc_units
            ),
            (20, 150, 100, 60)
        );
        assert!(sweep.best.within_area_cap);
        let max_fps_in_cap = sweep
            .points
            .iter()
            .filter(|p| p.within_area_cap)
            .map(|p| p.avg_fps)
            .fold(0.0f64, f64::max);
        assert!(
            sweep.best.avg_fps >= 0.99 * max_fps_in_cap,
            "best FPS/EPB point should also be (near) the highest-FPS point"
        );
        let paper = sweep.paper_point.expect("paper config is in the grid");
        assert_eq!(paper, sweep.best);
    }

    #[test]
    fn runtime_backed_sweep_is_bit_identical_to_serial() {
        use crosslight_runtime::pool::RuntimeOptions;
        let serial = run(&reduced_candidates()).unwrap();
        for workers in [1, 4] {
            let service = EvalService::new(RuntimeOptions::default().with_workers(workers));
            let batched = run_on(&service, &reduced_candidates()).unwrap();
            assert_eq!(serial, batched);
        }
    }

    #[test]
    fn parallel_sweep_is_byte_identical_to_serial_sweep() {
        let serial = run(&reduced_candidates()).unwrap();
        for workers in [1, 2, 5] {
            let parallel = run_parallel(&reduced_candidates(), workers).unwrap();
            assert_eq!(serial, parallel, "{workers} workers");
            assert_eq!(
                serial.table().render(),
                parallel.table().render(),
                "{workers} workers: rendered tables must match byte-for-byte"
            );
        }
        assert!(
            run_parallel(&[], 4).is_err(),
            "empty grid has no best point"
        );
    }

    #[test]
    fn streaming_sweep_is_identical_for_any_worker_count_and_matches_run() {
        let sweep = run(&reduced_candidates()).unwrap();
        let serial = run_streaming(&reduced_candidates(), 1, 3).unwrap();
        for workers in [2, 5] {
            let parallel = run_streaming(&reduced_candidates(), workers, 3).unwrap();
            assert_eq!(serial, parallel, "{workers} workers");
        }
        // The streaming summary agrees with the materializing sweep.
        assert_eq!(serial.best, Some(sweep.best));
        assert_eq!(serial.paper_point, sweep.paper_point);
        assert_eq!(serial.evaluated, sweep.points.len());
        assert_eq!(
            serial.in_cap,
            sweep.points.iter().filter(|p| p.within_area_cap).count()
        );
        // Top-K is exactly the K best in-cap points of the full sweep.
        let mut expected: Vec<DesignPoint> = sweep
            .points
            .iter()
            .copied()
            .filter(|p| p.within_area_cap)
            .collect();
        expected.sort_by(|a, b| b.fps_per_epb.total_cmp(&a.fps_per_epb));
        expected.truncate(3);
        assert_eq!(serial.top, expected);
        assert_eq!(serial.table().len(), 3);
        // Every frontier point is non-dominated within the full sweep, and
        // every non-frontier point is dominated by someone.
        for p in &sweep.points {
            let dominated = sweep.points.iter().any(|q| super::dominates(q, p));
            assert_eq!(serial.pareto.contains(p), !dominated);
        }
        // Streaming an empty grid is well-formed.
        let empty = run_streaming(&[], 3, 2).unwrap();
        assert_eq!(empty.evaluated, 0);
        assert!(empty.best.is_none() && empty.top.is_empty() && empty.pareto.is_empty());
    }

    #[test]
    fn assemble_survives_degenerate_figures_of_merit() {
        // A 0/0 figure of merit (NaN) must not panic the best-point
        // selection: f64::total_cmp gives a deterministic total order in
        // which NaN sorts above every number.
        let degenerate = DesignPoint {
            conv_unit_size: 10,
            fc_unit_size: 100,
            conv_units: 50,
            fc_units: 30,
            avg_fps: 0.0,
            avg_epb_pj: 0.0,
            area_mm2: 10.0,
            fps_per_epb: f64::NAN,
            within_area_cap: true,
        };
        let mut normal = degenerate;
        normal.avg_fps = 100.0;
        normal.avg_epb_pj = 2.0;
        normal.fps_per_epb = 50.0;
        let sweep = assemble(vec![normal, degenerate]).unwrap();
        assert!(sweep.best.fps_per_epb.is_nan());
        // Zero-EPB (infinite fom) points are equally panic-free.
        let mut free_energy = normal;
        free_energy.avg_epb_pj = 0.0;
        free_energy.fps_per_epb = f64::INFINITY;
        let sweep = assemble(vec![normal, free_energy]).unwrap();
        assert_eq!(sweep.best.fps_per_epb, f64::INFINITY);
        // The degenerate points stream through the frontier accumulator
        // without panicking, too.
        let mut acc = FrontierAccumulator::new(2);
        for (i, p) in [normal, degenerate, free_energy].iter().enumerate() {
            acc.push(i, *p);
        }
        let frontier = acc.finish();
        assert_eq!(frontier.evaluated, 3);
        assert!(frontier.best.is_some());
    }

    #[test]
    fn oversized_configurations_violate_the_area_cap() {
        let sweep = run(&reduced_candidates()).unwrap();
        let oversized = sweep
            .points
            .iter()
            .find(|p| p.conv_units == 150 && p.fc_units == 90)
            .expect("oversized candidate present");
        assert!(!oversized.within_area_cap);
    }

    #[test]
    fn larger_unit_counts_give_higher_fps() {
        let sweep = run(&reduced_candidates()).unwrap();
        let small = sweep
            .points
            .iter()
            .find(|p| p.conv_units == 50 && p.fc_units == 30 && p.conv_unit_size == 20)
            .unwrap();
        let large = sweep
            .points
            .iter()
            .find(|p| {
                p.conv_units == 100
                    && p.fc_units == 60
                    && p.conv_unit_size == 20
                    && p.fc_unit_size == 150
            })
            .unwrap();
        assert!(large.avg_fps > small.avg_fps);
    }

    #[test]
    fn table_lists_every_candidate() {
        let sweep = run(&reduced_candidates()).unwrap();
        assert_eq!(sweep.table().len(), reduced_candidates().len());
    }

    #[test]
    fn full_paper_grid_is_well_formed() {
        let candidates = paper_candidates();
        assert_eq!(candidates.len(), 81);
        assert!(candidates.contains(&(20, 150, 100, 60)));
        assert!(candidates.iter().all(|&(n, k, _, _)| k > n));
    }

    #[test]
    fn dense_grid_is_well_formed() {
        let candidates = dense_candidates();
        assert_eq!(candidates.len(), 58_500);
        assert!(candidates.contains(&(20, 150, 100, 60)));
        assert!(candidates.iter().all(|&(n, k, _, _)| k > n));
        // Distinct (N, K) pairs — the number of CONV/FC unit-report pairs a
        // shared ModelCache pays for across the whole grid.
        let pairs: std::collections::HashSet<(usize, usize)> =
            candidates.iter().map(|&(n, k, _, _)| (n, k)).collect();
        assert_eq!(pairs.len(), 260);
    }
}
