//! E5 — Fig. 6: FPS vs. EPB vs. area design-space exploration.
//!
//! Sweeps the architecture parameters `(N, K, n, m)` of §IV.C, evaluating the
//! average FPS and EPB over the four Table I models together with the area of
//! each configuration.  As in the paper, the best configuration is the one
//! with the highest FPS/EPB ratio among those inside the area window, and it
//! comes out as `(20, 150, 100, 60)`.

use serde::{Deserialize, Serialize};

use crosslight_core::config::{CrossLightConfig, DesignChoices};
use crosslight_core::simulator::{AverageMetrics, CrossLightSimulator};
use crosslight_neural::workload::NetworkWorkload;
use crosslight_neural::zoo::PaperModel;
use crosslight_runtime::planner::SweepPlanner;
use crosslight_runtime::pool::EvalService;

use crate::report::{fmt_f64, TextTable};

/// Upper bound of the paper's "reasonable area constraint" (§V.D), in mm².
pub const AREA_CAP_MM2: f64 = 25.0;

/// One evaluated configuration of the design-space sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// CONV unit size `N`.
    pub conv_unit_size: usize,
    /// FC unit size `K`.
    pub fc_unit_size: usize,
    /// CONV unit count `n`.
    pub conv_units: usize,
    /// FC unit count `m`.
    pub fc_units: usize,
    /// Average FPS over the four Table I models.
    pub avg_fps: f64,
    /// Average EPB (pJ/bit) over the four models.
    pub avg_epb_pj: f64,
    /// Accelerator area (mm²).
    pub area_mm2: f64,
    /// Figure-of-merit used to pick the best point (FPS / EPB).
    pub fps_per_epb: f64,
    /// Whether the point satisfies the area constraint.
    pub within_area_cap: bool,
}

/// The full design-space sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignSpaceSweep {
    /// Every evaluated point.
    pub points: Vec<DesignPoint>,
    /// The best point (highest FPS/EPB within the area cap).
    pub best: DesignPoint,
    /// The paper's published best configuration, `(20, 150, 100, 60)`,
    /// evaluated under this model (present whenever it is part of the
    /// candidate grid).  The paper's config is what every other experiment
    /// uses; the sweep's own `best` may differ slightly because the paper does
    /// not publish its candidate grid or cost-model internals (see
    /// `EXPERIMENTS.md`).
    pub paper_point: Option<DesignPoint>,
}

impl DesignSpaceSweep {
    /// Renders the sweep as a text table, best configuration last.
    #[must_use]
    pub fn table(&self) -> TextTable {
        let mut table = TextTable::new(vec![
            "N",
            "K",
            "n",
            "m",
            "avg FPS",
            "avg EPB (pJ/bit)",
            "area (mm2)",
            "FPS/EPB",
            "in cap",
        ]);
        for p in &self.points {
            table.push_row(vec![
                p.conv_unit_size.to_string(),
                p.fc_unit_size.to_string(),
                p.conv_units.to_string(),
                p.fc_units.to_string(),
                fmt_f64(p.avg_fps, 1),
                fmt_f64(p.avg_epb_pj, 3),
                fmt_f64(p.area_mm2, 1),
                fmt_f64(p.fps_per_epb, 1),
                p.within_area_cap.to_string(),
            ]);
        }
        table
    }
}

/// The candidate grid the sweep explores.
///
/// The paper does not publish its exact grid; this one brackets the published
/// best point along every axis.  `N` is swept up to 20 (the paper's chosen
/// CONV unit size): the evaluated models' convolution kernels hold at most
/// 5×5 = 25 weights per channel, so CONV units much larger than that mostly
/// idle — see `EXPERIMENTS.md` for the discussion of how this grid choice
/// interacts with the cost model.
#[must_use]
pub fn paper_candidates() -> Vec<(usize, usize, usize, usize)> {
    let mut out = Vec::new();
    for &n_size in &[10usize, 15, 20] {
        for &k_size in &[100usize, 150, 200] {
            for &n_units in &[50usize, 100, 150] {
                for &m_units in &[30usize, 60, 90] {
                    out.push((n_size, k_size, n_units, m_units));
                }
            }
        }
    }
    out
}

fn design_point(dims: (usize, usize, usize, usize), avg: &AverageMetrics) -> DesignPoint {
    let (n_size, k_size, n_units, m_units) = dims;
    let area = avg.area.value();
    DesignPoint {
        conv_unit_size: n_size,
        fc_unit_size: k_size,
        conv_units: n_units,
        fc_units: m_units,
        avg_fps: avg.fps,
        avg_epb_pj: avg.energy_per_bit_pj,
        area_mm2: area,
        fps_per_epb: avg.fps / avg.energy_per_bit_pj,
        within_area_cap: area <= AREA_CAP_MM2,
    }
}

fn assemble(points: Vec<DesignPoint>) -> Result<DesignSpaceSweep, Box<dyn std::error::Error>> {
    let best = *points
        .iter()
        .filter(|p| p.within_area_cap)
        .max_by(|a, b| {
            a.fps_per_epb
                .partial_cmp(&b.fps_per_epb)
                .expect("finite figures of merit")
        })
        .ok_or("no candidate satisfies the area constraint")?;
    let paper_point = points.iter().copied().find(|p| {
        (p.conv_unit_size, p.fc_unit_size, p.conv_units, p.fc_units)
            == crosslight_core::config::BEST_CONFIG
    });
    Ok(DesignSpaceSweep {
        points,
        best,
        paper_point,
    })
}

/// Runs the design-space sweep over the given candidates, serially.
///
/// # Errors
///
/// Propagates simulator errors (which do not occur for valid candidates);
/// returns an error if no candidate satisfies the area constraint.
pub fn run(
    candidates: &[(usize, usize, usize, usize)],
) -> Result<DesignSpaceSweep, Box<dyn std::error::Error>> {
    let workloads: Vec<NetworkWorkload> = PaperModel::all()
        .iter()
        .map(|m| NetworkWorkload::from_spec(&m.spec()))
        .collect::<Result<_, _>>()?;

    let mut points = Vec::with_capacity(candidates.len());
    for &(n_size, k_size, n_units, m_units) in candidates {
        let config = CrossLightConfig::new(
            n_size,
            k_size,
            n_units,
            m_units,
            DesignChoices::crosslight_opt_ted(),
        )?;
        let simulator = CrossLightSimulator::new(config);
        let avg = simulator.evaluate_average(&workloads)?;
        points.push(design_point((n_size, k_size, n_units, m_units), &avg));
    }
    assemble(points)
}

/// Runs the design-space sweep through the runtime's evaluation service,
/// fanning the `candidates × models` grid across the service's workers.
///
/// Produces a sweep bit-identical to [`run`] for any worker count: each
/// candidate's per-model reports come back in the same model order, and the
/// averaging path ([`AverageMetrics::from_reports`]) is shared with the
/// serial [`CrossLightSimulator::evaluate_average`].
///
/// # Errors
///
/// Propagates planner/service errors; returns an error if no candidate
/// satisfies the area constraint.
pub fn run_on(
    service: &EvalService,
    candidates: &[(usize, usize, usize, usize)],
) -> Result<DesignSpaceSweep, Box<dyn std::error::Error>> {
    let requests = SweepPlanner::new().architectures(candidates).plan()?;
    let models = PaperModel::all().len();
    let responses = service.submit_batch(requests)?;
    if responses.len() != candidates.len() * models {
        return Err(format!(
            "sweep plan shape drifted: {} responses for {} candidates × {} models",
            responses.len(),
            candidates.len(),
            models
        )
        .into());
    }

    let mut points = Vec::with_capacity(candidates.len());
    for (dims, chunk) in candidates.iter().zip(responses.chunks(models)) {
        let reports: Vec<_> = chunk.iter().map(|r| r.report).collect();
        let avg = AverageMetrics::from_reports(&reports)?;
        points.push(design_point(*dims, &avg));
    }
    assemble(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reduced candidate set that still contains the paper's best point,
    /// used to keep test runtime low.
    fn reduced_candidates() -> Vec<(usize, usize, usize, usize)> {
        vec![
            (10, 100, 50, 30),
            (10, 150, 100, 60),
            (20, 150, 50, 30),
            (20, 150, 100, 60),
            (20, 200, 100, 90),
            (20, 200, 150, 90),
        ]
    }

    #[test]
    fn best_configuration_matches_the_paper_and_its_claims() {
        // The sweep's winner is the paper's (20, 150, 100, 60); it satisfies
        // the area constraint and — as the paper notes — is also the
        // highest-FPS in-cap point.
        let sweep = run(&reduced_candidates()).unwrap();
        assert_eq!(
            (
                sweep.best.conv_unit_size,
                sweep.best.fc_unit_size,
                sweep.best.conv_units,
                sweep.best.fc_units
            ),
            (20, 150, 100, 60)
        );
        assert!(sweep.best.within_area_cap);
        let max_fps_in_cap = sweep
            .points
            .iter()
            .filter(|p| p.within_area_cap)
            .map(|p| p.avg_fps)
            .fold(0.0f64, f64::max);
        assert!(
            sweep.best.avg_fps >= 0.99 * max_fps_in_cap,
            "best FPS/EPB point should also be (near) the highest-FPS point"
        );
        let paper = sweep.paper_point.expect("paper config is in the grid");
        assert_eq!(paper, sweep.best);
    }

    #[test]
    fn runtime_backed_sweep_is_bit_identical_to_serial() {
        use crosslight_runtime::pool::RuntimeOptions;
        let serial = run(&reduced_candidates()).unwrap();
        for workers in [1, 4] {
            let service = EvalService::new(RuntimeOptions::default().with_workers(workers));
            let batched = run_on(&service, &reduced_candidates()).unwrap();
            assert_eq!(serial, batched);
        }
    }

    #[test]
    fn oversized_configurations_violate_the_area_cap() {
        let sweep = run(&reduced_candidates()).unwrap();
        let oversized = sweep
            .points
            .iter()
            .find(|p| p.conv_units == 150 && p.fc_units == 90)
            .expect("oversized candidate present");
        assert!(!oversized.within_area_cap);
    }

    #[test]
    fn larger_unit_counts_give_higher_fps() {
        let sweep = run(&reduced_candidates()).unwrap();
        let small = sweep
            .points
            .iter()
            .find(|p| p.conv_units == 50 && p.fc_units == 30 && p.conv_unit_size == 20)
            .unwrap();
        let large = sweep
            .points
            .iter()
            .find(|p| {
                p.conv_units == 100
                    && p.fc_units == 60
                    && p.conv_unit_size == 20
                    && p.fc_unit_size == 150
            })
            .unwrap();
        assert!(large.avg_fps > small.avg_fps);
    }

    #[test]
    fn table_lists_every_candidate() {
        let sweep = run(&reduced_candidates()).unwrap();
        assert_eq!(sweep.table().len(), reduced_candidates().len());
    }

    #[test]
    fn full_paper_grid_is_well_formed() {
        let candidates = paper_candidates();
        assert_eq!(candidates.len(), 81);
        assert!(candidates.contains(&(20, 150, 100, 60)));
        assert!(candidates.iter().all(|&(n, k, _, _)| k > n));
    }
}
