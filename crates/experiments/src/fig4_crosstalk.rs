//! E2 — Fig. 4: phase-crosstalk ratio and tuning power vs. MR spacing.
//!
//! For a block of 10 MRs with heterogeneous FPV-compensation targets, sweeps
//! the centre-to-centre spacing and reports (a) the phase-crosstalk ratio
//! between adjacent MRs, (b) the total tuning power with TED collective
//! tuning and (c) without TED — the three curves of the paper's Fig. 4.
//! The TED curve has its minimum at the paper's 5 µm operating point.

use serde::{Deserialize, Serialize};

use crosslight_photonics::fpv::FpvModel;
use crosslight_photonics::mr::MrGeometry;
use crosslight_photonics::thermal::ThermalCrosstalkModel;
use crosslight_photonics::units::{Micrometers, Radians};
use crosslight_tuning::ted::{TedSolver, TedWorkspace};
use crosslight_tuning::to::ToTuner;

use crate::report::{fmt_f64, TextTable};

/// Number of MRs in the fabricated block the paper characterises.
pub const BLOCK_SIZE: usize = 10;

/// One spacing point of the Fig. 4 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrosstalkRow {
    /// MR centre-to-centre spacing (µm).
    pub spacing_um: f64,
    /// Phase-crosstalk ratio between adjacent MRs.
    pub phase_crosstalk_ratio: f64,
    /// Total block tuning power with TED (mW).
    pub ted_power_mw: f64,
    /// Total block tuning power without TED (mW).
    pub naive_power_mw: f64,
}

/// The full Fig. 4 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrosstalkSweep {
    /// One row per spacing.
    pub rows: Vec<CrosstalkRow>,
    /// Spacing with the lowest TED power (paper: 5 µm).
    pub optimal_spacing_um: f64,
}

impl CrosstalkSweep {
    /// Renders the sweep as a text table.
    #[must_use]
    pub fn table(&self) -> TextTable {
        let mut table = TextTable::new(vec![
            "spacing (um)",
            "phase crosstalk ratio",
            "TED power (mW)",
            "no-TED power (mW)",
        ]);
        for row in &self.rows {
            table.push_row(vec![
                fmt_f64(row.spacing_um, 1),
                fmt_f64(row.phase_crosstalk_ratio, 4),
                fmt_f64(row.ted_power_mw, 2),
                fmt_f64(row.naive_power_mw, 2),
            ]);
        }
        table
    }
}

/// FPV-compensation phase targets for the block: the optimized device's mean
/// drift, modulated ±35% across the block so TED sees both common-mode and
/// differential components (as real per-device FPV does).
fn block_targets() -> Vec<Radians> {
    let fpv = FpvModel::new(MrGeometry::optimized(), Default::default());
    let to = ToTuner::table_ii(crosslight_photonics::units::Nanometers::new(
        crosslight_photonics::mr::OPTIMIZED_FSR_NM,
    ));
    (0..BLOCK_SIZE)
        .map(|i| {
            let modulation = 1.0 + 0.35 * ((i as f64) * 2.1).sin();
            to.shift_to_phase(fpv.mean_absolute_drift() * modulation)
        })
        .collect()
}

/// Runs the Fig. 4 sweep over the given spacings (µm).
///
/// # Panics
///
/// Panics if `spacings_um` is empty.
#[must_use]
pub fn run(spacings_um: &[f64]) -> CrosstalkSweep {
    assert!(!spacings_um.is_empty(), "at least one spacing is required");
    let model = ThermalCrosstalkModel::default();
    let targets = block_targets();
    // One TED workspace serves the whole sweep: each spacing's solve reuses
    // the previous iteration's buffers instead of allocating fresh vectors.
    let mut workspace = TedWorkspace::new();
    let rows: Vec<CrosstalkRow> = spacings_um
        .iter()
        .map(|&spacing_um| {
            let spacing = Micrometers::new(spacing_um);
            let matrix = model
                .crosstalk_matrix(BLOCK_SIZE, spacing)
                .expect("valid spacing");
            let solver = TedSolver::with_table_ii_heater(&matrix).expect("valid matrix");
            let ted = solver
                .solve_with(&targets, &mut workspace)
                .expect("targets fit the block");
            let ted_power_mw = ted.total_power.value();
            let naive = solver.naive_power(&targets).expect("targets fit the block");
            CrosstalkRow {
                spacing_um,
                phase_crosstalk_ratio: model.phase_crosstalk_ratio(spacing),
                ted_power_mw,
                naive_power_mw: naive.value(),
            }
        })
        .collect();
    let optimal_spacing_um = rows
        .iter()
        .min_by(|a, b| {
            a.ted_power_mw
                .partial_cmp(&b.ted_power_mw)
                .expect("finite powers")
        })
        .expect("non-empty sweep")
        .spacing_um;
    CrosstalkSweep {
        rows,
        optimal_spacing_um,
    }
}

/// The spacing grid used for the paper-style figure (1–25 µm).
#[must_use]
pub fn paper_spacings() -> Vec<f64> {
    vec![
        1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0, 15.0, 20.0, 25.0,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crosstalk_ratio_decays_exponentially() {
        let sweep = run(&paper_spacings());
        let ratios: Vec<f64> = sweep.rows.iter().map(|r| r.phase_crosstalk_ratio).collect();
        for pair in ratios.windows(2) {
            assert!(pair[1] < pair[0]);
        }
        assert!(ratios[0] > 0.5);
        assert!(*ratios.last().unwrap() < 0.01);
    }

    #[test]
    fn ted_power_minimum_is_at_five_micrometers() {
        let sweep = run(&paper_spacings());
        assert!(
            (sweep.optimal_spacing_um - 5.0).abs() < 1.6,
            "TED optimum should be near 5 um, got {}",
            sweep.optimal_spacing_um
        );
    }

    #[test]
    fn ted_is_cheaper_than_naive_at_every_practical_spacing() {
        let sweep = run(&paper_spacings());
        for row in sweep.rows.iter().filter(|r| r.spacing_um >= 3.0) {
            assert!(
                row.ted_power_mw < row.naive_power_mw,
                "at {} um TED {} should beat naive {}",
                row.spacing_um,
                row.ted_power_mw,
                row.naive_power_mw
            );
        }
    }

    #[test]
    fn naive_power_grows_as_spacing_shrinks() {
        let sweep = run(&[2.0, 5.0, 10.0, 20.0]);
        let powers: Vec<f64> = sweep.rows.iter().map(|r| r.naive_power_mw).collect();
        for pair in powers.windows(2) {
            assert!(pair[1] < pair[0]);
        }
    }

    #[test]
    fn table_matches_row_count() {
        let sweep = run(&paper_spacings());
        assert_eq!(sweep.table().len(), paper_spacings().len());
        assert!(sweep.table().render().contains("TED power"));
    }

    #[test]
    #[should_panic(expected = "at least one spacing")]
    fn empty_sweep_panics() {
        let _ = run(&[]);
    }
}
