//! E3 — Fig. 5: inference accuracy vs. weight/activation resolution.
//!
//! Trains a small surrogate of each Table I model on its synthetic stand-in
//! dataset, then evaluates test accuracy with weights and activations
//! fake-quantized from 1 to 16 bits.  The reproduced *shape* is what the paper
//! shows: accuracy saturates at high resolution, collapses below a
//! model-dependent threshold, and the harder datasets (STL-10 stand-in) are
//! the most sensitive to resolution.
//!
//! Because the surrogate has to be re-quantized from clean weights for every
//! bit width, a fresh surrogate is trained per model and the quantized
//! evaluation runs on an internally re-trained copy per bit width.
//!
//! The sweep is embarrassingly parallel across its `(model × bit-width)`
//! surrogate-training cells, and [`run_parallel`] exploits that with a small
//! dedicated worker pool (the same dedicated-threads + reply-channel pattern
//! as `crosslight_runtime::pool::EvalService`).  Every cell seeds its own
//! `StdRng` with exactly the seed the serial sweep would use and results are
//! reassembled in configuration order, so the parallel output is
//! **byte-identical** to [`run`] for any worker count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use serde::{Deserialize, Serialize};

use crosslight_neural::datasets::{generate_synthetic, Dataset};
use crosslight_neural::quant::QuantConfig;
use crosslight_neural::train::{evaluate, evaluate_quantized, train, TrainConfig};
use crosslight_neural::zoo::PaperModel;
use crosslight_neural::NeuralError;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::report::{fmt_f64, TextTable};

/// Configuration of the accuracy-vs-resolution study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyStudyConfig {
    /// Bit widths to evaluate (the paper sweeps 1–16).
    pub bit_widths: Vec<u32>,
    /// Training samples per class of the synthetic datasets.
    pub samples_per_class: usize,
    /// Training epochs.
    pub epochs: usize,
    /// RNG seed (datasets and weight init).
    pub seed: u64,
}

impl AccuracyStudyConfig {
    /// The paper-style sweep: every resolution from 1 to 16 bits.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            bit_widths: (1..=16).collect(),
            samples_per_class: 24,
            epochs: 18,
            seed: 2021,
        }
    }

    /// A reduced sweep for fast smoke tests.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            bit_widths: vec![1, 2, 4, 8, 16],
            samples_per_class: 10,
            epochs: 8,
            seed: 2021,
        }
    }
}

/// Accuracy of one model across the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelAccuracyCurve {
    /// Which Table I model the curve belongs to.
    pub model: PaperModel,
    /// Dataset name (Table I).
    pub dataset: String,
    /// Full-precision test accuracy.
    pub full_precision_accuracy: f64,
    /// `(bits, accuracy)` pairs in the order of the configured bit widths.
    pub points: Vec<(u32, f64)>,
}

impl ModelAccuracyCurve {
    /// Accuracy at a given bit width, if it was evaluated.
    #[must_use]
    pub fn accuracy_at(&self, bits: u32) -> Option<f64> {
        self.points
            .iter()
            .find(|(b, _)| *b == bits)
            .map(|(_, a)| *a)
    }
}

/// The full Fig. 5 result: one curve per Table I model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyStudy {
    /// One curve per model.
    pub curves: Vec<ModelAccuracyCurve>,
    /// The bit widths evaluated.
    pub bit_widths: Vec<u32>,
}

impl AccuracyStudy {
    /// Renders the study as a text table (models as rows, bit widths as
    /// columns).
    #[must_use]
    pub fn table(&self) -> TextTable {
        let mut header = vec!["model".to_string(), "dataset".to_string()];
        header.extend(self.bit_widths.iter().map(|b| format!("{b}b")));
        let mut table = TextTable::new(header);
        for curve in &self.curves {
            let mut row = vec![format!("{:?}", curve.model), curve.dataset.clone()];
            row.extend(
                curve
                    .points
                    .iter()
                    .map(|(_, accuracy)| fmt_f64(accuracy * 100.0, 1)),
            );
            table.push_row(row);
        }
        table
    }
}

/// Runs the accuracy-vs-resolution study.
///
/// # Errors
///
/// Propagates training/evaluation errors from the neural substrate (which do
/// not occur for the built-in surrogates).
pub fn run(config: &AccuracyStudyConfig) -> Result<AccuracyStudy, crosslight_neural::NeuralError> {
    let mut curves = Vec::with_capacity(4);
    for model in PaperModel::all() {
        let spec = model.spec();
        let dataset_spec = spec.surrogate_dataset(config.samples_per_class);
        let mut data_rng = StdRng::seed_from_u64(config.seed ^ (model as u64 + 1));
        let dataset = generate_synthetic(&dataset_spec, &mut data_rng)?;
        let (train_split, test_split) = dataset.split(0.75);
        let train_config = TrainConfig {
            epochs: config.epochs,
            learning_rate: 0.08,
            batch_size: 8,
        };

        // Full-precision reference.
        let mut reference_rng = StdRng::seed_from_u64(config.seed.wrapping_add(97));
        let mut reference = spec.build_surrogate(&mut reference_rng)?;
        train(&mut reference, &train_split, &train_config)?;
        let full_precision_accuracy = evaluate(&mut reference, &test_split)?;

        // Quantized evaluations: re-train an identical surrogate per bit width
        // (quantization mutates weights in place).
        let mut points = Vec::with_capacity(config.bit_widths.len());
        for &bits in &config.bit_widths {
            let mut model_rng = StdRng::seed_from_u64(config.seed.wrapping_add(97));
            let mut surrogate = spec.build_surrogate(&mut model_rng)?;
            train(&mut surrogate, &train_split, &train_config)?;
            let accuracy =
                evaluate_quantized(&mut surrogate, &test_split, &QuantConfig::uniform(bits))?;
            points.push((bits, accuracy));
        }
        curves.push(ModelAccuracyCurve {
            model,
            dataset: model.dataset_name().to_string(),
            full_precision_accuracy,
            points,
        });
    }
    Ok(AccuracyStudy {
        curves,
        bit_widths: config.bit_widths.clone(),
    })
}

/// One unit of work of the parallel sweep: train a fresh surrogate of one
/// model and evaluate it either at full precision or at one bit width.
#[derive(Debug, Clone, Copy)]
enum Cell {
    /// The full-precision reference evaluation of one model.
    Reference { model_index: usize },
    /// One quantized `(model, bits)` evaluation.
    Quantized { model_index: usize, bits: u32 },
}

impl Cell {
    fn model_index(self) -> usize {
        match self {
            Cell::Reference { model_index } | Cell::Quantized { model_index, .. } => model_index,
        }
    }
}

/// Trains the cell's surrogate and evaluates its accuracy.
///
/// The RNG seeding replicates the serial sweep exactly: every cell builds
/// and trains its surrogate from `seed + 97`, on the same dataset split the
/// serial code derives for the model — so each cell's result is bit-identical
/// to the corresponding serial step.
fn run_cell(
    config: &AccuracyStudyConfig,
    train_config: &TrainConfig,
    model: PaperModel,
    splits: &(Dataset, Dataset),
    cell: Cell,
) -> Result<f64, NeuralError> {
    let spec = model.spec();
    let (train_split, test_split) = splits;
    let mut model_rng = StdRng::seed_from_u64(config.seed.wrapping_add(97));
    let mut surrogate = spec.build_surrogate(&mut model_rng)?;
    train(&mut surrogate, train_split, train_config)?;
    match cell {
        Cell::Reference { .. } => evaluate(&mut surrogate, test_split),
        Cell::Quantized { bits, .. } => {
            evaluate_quantized(&mut surrogate, test_split, &QuantConfig::uniform(bits))
        }
    }
}

/// Runs the accuracy-vs-resolution study with the `(model × bit-width)`
/// cells spread across `workers` dedicated threads.
///
/// Output is **byte-identical** to [`run`] for the same configuration, for
/// any worker count: cells are deterministic (per-cell seeded RNGs over
/// shared, main-thread-generated dataset splits) and results are assembled
/// in configuration order, so scheduling cannot leak into the table.
///
/// # Errors
///
/// Propagates training/evaluation errors from the neural substrate (which do
/// not occur for the built-in surrogates).
pub fn run_parallel(
    config: &AccuracyStudyConfig,
    workers: usize,
) -> Result<AccuracyStudy, NeuralError> {
    let workers = workers.max(1);
    let models = PaperModel::all();

    // Datasets are generated on the main thread with the serial sweep's
    // exact per-model seeding, then shared read-only with every cell.
    let mut splits = Vec::with_capacity(models.len());
    for model in models {
        let spec = model.spec();
        let dataset_spec = spec.surrogate_dataset(config.samples_per_class);
        let mut data_rng = StdRng::seed_from_u64(config.seed ^ (model as u64 + 1));
        let dataset = generate_synthetic(&dataset_spec, &mut data_rng)?;
        splits.push(dataset.split(0.75));
    }
    let train_config = TrainConfig {
        epochs: config.epochs,
        learning_rate: 0.08,
        batch_size: 8,
    };

    let mut cells = Vec::new();
    for model_index in 0..models.len() {
        cells.push(Cell::Reference { model_index });
        for &bits in &config.bit_widths {
            cells.push(Cell::Quantized { model_index, bits });
        }
    }

    // Dedicated worker threads pull cell indices from a shared cursor and
    // report `(index, result)` over a reply channel — the same worker-pool
    // shape as the runtime's `EvalService`, minus the cache (cells never
    // repeat).
    let mut accuracies: Vec<Option<Result<f64, NeuralError>>> = Vec::new();
    accuracies.resize_with(cells.len(), || None);
    let cursor = AtomicUsize::new(0);
    let (reply_tx, reply_rx) = mpsc::channel();
    std::thread::scope(|scope| {
        for _ in 0..workers.min(cells.len()).max(1) {
            let reply = reply_tx.clone();
            let cells = &cells;
            let splits = &splits;
            let cursor = &cursor;
            let train_config = &train_config;
            scope.spawn(move || loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&cell) = cells.get(index) else {
                    break;
                };
                let model_index = cell.model_index();
                let outcome = run_cell(
                    config,
                    train_config,
                    models[model_index],
                    &splits[model_index],
                    cell,
                );
                if reply.send((index, outcome)).is_err() {
                    break;
                }
            });
        }
        drop(reply_tx);
        while let Ok((index, outcome)) = reply_rx.recv() {
            accuracies[index] = Some(outcome);
        }
    });

    // Reassemble in configuration order, independent of scheduling.
    let mut curves = Vec::with_capacity(models.len());
    let mut slots = accuracies.into_iter();
    for model in models {
        let full_precision_accuracy = slots
            .next()
            .flatten()
            .expect("every cell reports exactly once")?;
        let mut points = Vec::with_capacity(config.bit_widths.len());
        for &bits in &config.bit_widths {
            let accuracy = slots
                .next()
                .flatten()
                .expect("every cell reports exactly once")?;
            points.push((bits, accuracy));
        }
        curves.push(ModelAccuracyCurve {
            model,
            dataset: model.dataset_name().to_string(),
            full_precision_accuracy,
            points,
        });
    }
    Ok(AccuracyStudy {
        curves,
        bit_widths: config.bit_widths.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_study_reproduces_the_figure_shape() {
        let study = run(&AccuracyStudyConfig::quick()).unwrap();
        assert_eq!(study.curves.len(), 4);
        for curve in &study.curves {
            let high = curve.accuracy_at(16).unwrap();
            let low = curve.accuracy_at(1).unwrap();
            // Models learn something at full precision…
            assert!(
                curve.full_precision_accuracy > 0.4,
                "{:?} failed to train ({})",
                curve.model,
                curve.full_precision_accuracy
            );
            // …16-bit quantization is essentially lossless…
            assert!(
                (high - curve.full_precision_accuracy).abs() < 0.2,
                "{:?}: 16-bit {} vs full {}",
                curve.model,
                high,
                curve.full_precision_accuracy
            );
            // …and 1-bit quantization hurts.
            assert!(
                low <= high + 0.05,
                "{:?}: 1-bit accuracy {} should not beat 16-bit {}",
                curve.model,
                low,
                high
            );
        }
    }

    #[test]
    fn table_has_one_row_per_model_and_column_per_bit_width() {
        let config = AccuracyStudyConfig {
            bit_widths: vec![2, 8],
            samples_per_class: 6,
            epochs: 3,
            seed: 7,
        };
        let study = run(&config).unwrap();
        let table = study.table();
        assert_eq!(table.len(), 4);
        assert!(table.render().contains("Sign MNIST"));
        assert!(table.render().contains("8b"));
    }

    #[test]
    fn parallel_sweep_is_byte_identical_to_serial_sweep() {
        let config = AccuracyStudyConfig {
            bit_widths: vec![1, 4, 16],
            samples_per_class: 6,
            epochs: 2,
            seed: 99,
        };
        let serial = run(&config).unwrap();
        for workers in [1, 3, 8] {
            let parallel = run_parallel(&config, workers).unwrap();
            assert_eq!(parallel, serial, "{workers} workers");
            assert_eq!(
                parallel.table().render(),
                serial.table().render(),
                "{workers} workers: rendered tables must match byte-for-byte"
            );
        }
    }

    #[test]
    fn paper_config_covers_one_to_sixteen_bits() {
        let config = AccuracyStudyConfig::paper();
        assert_eq!(config.bit_widths.len(), 16);
        assert_eq!(*config.bit_widths.first().unwrap(), 1);
        assert_eq!(*config.bit_widths.last().unwrap(), 16);
    }
}
