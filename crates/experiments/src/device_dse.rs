//! E1 — device design-space exploration (§IV.A).
//!
//! Reproduces the paper's fabricated-chip result analytically: sweeping the
//! ring-waveguide width shows that the 400 nm bus / 800 nm ring design cuts
//! FPV-induced resonance drift from ~7.1 nm to ~2.1 nm (a ~70% reduction),
//! which directly lowers the thermo-optic power needed to compensate.

use serde::{Deserialize, Serialize};

use crosslight_photonics::fpv::{DriftStatistics, FpvModel, ProcessCorner};
use crosslight_photonics::mr::MrGeometry;
use crosslight_photonics::units::Nanometers;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::report::{fmt_f64, TextTable};

/// One row of the device DSE: a candidate geometry and its drift statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceDseRow {
    /// Ring waveguide width of the candidate design (nm).
    pub ring_width_nm: f64,
    /// Input (bus) waveguide width (nm).
    pub input_width_nm: f64,
    /// Analytic worst-case (3σ) drift.
    pub worst_case_drift_nm: f64,
    /// Monte-Carlo 99.7th-percentile drift.
    pub monte_carlo_p997_nm: f64,
    /// Mean absolute drift (what the tuning power model compensates).
    pub mean_abs_drift_nm: f64,
}

/// Results of the device design-space exploration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceDseResult {
    /// One row per candidate geometry, ordered by ring width.
    pub rows: Vec<DeviceDseRow>,
    /// Drift of the conventional reference design.
    pub conventional_drift_nm: f64,
    /// Drift of the width-optimized design.
    pub optimized_drift_nm: f64,
    /// Relative reduction (paper: ~70%).
    pub reduction: f64,
}

impl DeviceDseResult {
    /// Renders the result as a text table.
    #[must_use]
    pub fn table(&self) -> TextTable {
        let mut table = TextTable::new(vec![
            "ring width (nm)",
            "bus width (nm)",
            "worst-case drift (nm)",
            "MC p99.7 (nm)",
            "mean |drift| (nm)",
        ]);
        for row in &self.rows {
            table.push_row(vec![
                fmt_f64(row.ring_width_nm, 0),
                fmt_f64(row.input_width_nm, 0),
                fmt_f64(row.worst_case_drift_nm, 2),
                fmt_f64(row.monte_carlo_p997_nm, 2),
                fmt_f64(row.mean_abs_drift_nm, 2),
            ]);
        }
        table
    }
}

/// Runs the device design-space exploration with `samples` Monte-Carlo draws
/// per candidate geometry.
#[must_use]
pub fn run(samples: usize, seed: u64) -> DeviceDseResult {
    let corner = ProcessCorner::typical();
    let mut rng = StdRng::seed_from_u64(seed);
    let candidates: Vec<MrGeometry> = [500.0, 600.0, 700.0, 800.0]
        .iter()
        .map(|&ring_width| {
            let mut geometry = if (ring_width - 800.0f64).abs() < 1.0 {
                MrGeometry::optimized()
            } else {
                MrGeometry::conventional()
            };
            geometry.ring_waveguide_width = Nanometers::new(ring_width);
            if (ring_width - 800.0f64).abs() < 1.0 {
                geometry.input_waveguide_width = Nanometers::new(400.0);
            }
            geometry
        })
        .collect();

    let rows: Vec<DeviceDseRow> = candidates
        .iter()
        .map(|&geometry| {
            let model = FpvModel::new(geometry, corner);
            let stats: DriftStatistics = model.monte_carlo(samples, &mut rng);
            DeviceDseRow {
                ring_width_nm: geometry.ring_waveguide_width.value(),
                input_width_nm: geometry.input_waveguide_width.value(),
                worst_case_drift_nm: model.worst_case_drift().value(),
                monte_carlo_p997_nm: stats.p997_abs.value(),
                mean_abs_drift_nm: stats.mean_abs.value(),
            }
        })
        .collect();

    let conventional = FpvModel::new(MrGeometry::conventional(), corner)
        .worst_case_drift()
        .value();
    let optimized = FpvModel::new(MrGeometry::optimized(), corner)
        .worst_case_drift()
        .value();
    DeviceDseResult {
        rows,
        conventional_drift_nm: conventional,
        optimized_drift_nm: optimized,
        reduction: 1.0 - optimized / conventional,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_paper_drift_reduction() {
        let result = run(5_000, 7);
        assert!((result.conventional_drift_nm - 7.1).abs() < 0.8);
        assert!((result.optimized_drift_nm - 2.1).abs() < 0.3);
        assert!((result.reduction - 0.70).abs() < 0.05);
    }

    #[test]
    fn drift_decreases_monotonically_with_ring_width() {
        let result = run(2_000, 11);
        let drifts: Vec<f64> = result.rows.iter().map(|r| r.worst_case_drift_nm).collect();
        for pair in drifts.windows(2) {
            assert!(pair[1] <= pair[0] + 1e-9);
        }
    }

    #[test]
    fn monte_carlo_agrees_with_analytic_worst_case() {
        let result = run(20_000, 13);
        for row in &result.rows {
            let rel =
                (row.monte_carlo_p997_nm - row.worst_case_drift_nm).abs() / row.worst_case_drift_nm;
            assert!(rel < 0.25, "row {row:?} deviates {rel}");
        }
    }

    #[test]
    fn table_has_one_row_per_candidate() {
        let result = run(500, 3);
        let table = result.table();
        assert_eq!(table.len(), result.rows.len());
        assert!(table.render().contains("ring width"));
    }
}
