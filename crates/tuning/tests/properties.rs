//! Property-based tests for the tuning substrate.

use crosslight_photonics::thermal::{Microheater, ThermalCrosstalkModel};
use crosslight_photonics::units::{Micrometers, Nanometers, Radians};
use crosslight_tuning::eigen::{jacobi_eigen, SymmetricMatrix};
use crosslight_tuning::hybrid::HybridTuner;
use crosslight_tuning::ted::TedSolver;
use proptest::prelude::*;

/// Strategy producing small random symmetric positive-ish matrices built the
/// same way the thermal crosstalk matrices are (exponential decay), so the
/// eigen-solver is exercised on realistic inputs of varying size and density.
fn crosstalk_matrix_strategy() -> impl Strategy<Value = (usize, f64)> {
    (2usize..12, 1.0f64..30.0)
}

proptest! {
    /// The Jacobi solver reconstructs the original matrix from its
    /// eigen-decomposition.
    #[test]
    fn eigen_reconstruction((n, spacing) in crosstalk_matrix_strategy()) {
        let matrix = ThermalCrosstalkModel::default()
            .crosstalk_matrix(n, Micrometers::new(spacing))
            .unwrap();
        let sym = SymmetricMatrix::new(n, matrix.as_slice().to_vec()).unwrap();
        let d = jacobi_eigen(&sym).unwrap();
        for i in 0..n {
            for j in 0..n {
                let mut sum = 0.0;
                for k in 0..n {
                    sum += d.eigenvectors[i * n + k]
                        * d.eigenvalues[k]
                        * d.eigenvectors[j * n + k];
                }
                prop_assert!((sum - sym.get(i, j)).abs() < 1e-7);
            }
        }
        // Trace is preserved.
        let trace: f64 = (0..n).map(|i| sym.get(i, i)).sum();
        let eig_sum: f64 = d.eigenvalues.iter().sum();
        prop_assert!((trace - eig_sum).abs() < 1e-7);
    }

    /// TED heater phases are always non-negative and realise the requested
    /// targets (up to the common-mode offset) for arbitrary positive targets.
    #[test]
    fn ted_solution_is_physical(
        (n, spacing) in (3usize..12, 3.0f64..25.0),
        seed_phase in 0.05f64..1.5,
    ) {
        let matrix = ThermalCrosstalkModel::default()
            .crosstalk_matrix(n, Micrometers::new(spacing))
            .unwrap();
        let solver = TedSolver::with_table_ii_heater(&matrix).unwrap();
        let targets: Vec<Radians> = (0..n)
            .map(|i| Radians::new(seed_phase * (1.0 + 0.4 * ((i as f64) * 0.9).cos())))
            .collect();
        let solution = solver.solve(&targets).unwrap();
        for p in &solution.heater_phases {
            prop_assert!(p.value() >= -1e-9);
        }
        prop_assert!(solution.common_mode_offset.value() >= -1e-12);
        prop_assert!(solution.total_power.value() >= 0.0);
    }

    /// TED never costs more than naive per-heater compensation at the
    /// practical spacings CrossLight uses (≥ 3 µm).
    #[test]
    fn ted_no_worse_than_naive(
        n in 4usize..12,
        spacing in 3.0f64..25.0,
        seed_phase in 0.05f64..1.2,
    ) {
        let matrix = ThermalCrosstalkModel::default()
            .crosstalk_matrix(n, Micrometers::new(spacing))
            .unwrap();
        let solver = TedSolver::with_table_ii_heater(&matrix).unwrap();
        let targets: Vec<Radians> = (0..n)
            .map(|i| Radians::new(seed_phase * (1.0 + 0.3 * ((i as f64) * 1.7).sin())))
            .collect();
        let ted = solver.solve(&targets).unwrap().total_power.value();
        let naive = solver.naive_power(&targets).unwrap().value();
        prop_assert!(ted <= naive * (1.0 + 1e-9));
    }

    /// The hybrid tuner always picks the mechanism that can actually reach the
    /// shift, and its power never exceeds the pure-TO cost of the same shift.
    #[test]
    fn hybrid_plan_is_valid(shift_nm in -17.9f64..17.9) {
        let tuner = HybridTuner::paper();
        let plan = tuner.plan_shift(Nanometers::new(shift_nm));
        if plan.is_electro_optic() {
            prop_assert!(tuner.eo().can_reach(plan.shift));
        } else {
            prop_assert!(tuner.to().can_reach(plan.shift));
        }
        let to_cost = Microheater::table_ii().power_for_shift(plan.shift.value(), 18.0);
        prop_assert!(plan.power.value() <= to_cost + 1e-9);
    }
}
