//! Hybrid EO + TO tuning policy (paper §IV.B).
//!
//! The paper adapts the hybrid tuning idea of Lu et al. (IEEE Photonics 2019):
//! use slow, powerful thermo-optic tuning only for the large shifts (one-time
//! FPV compensation at boot, rare large temperature excursions) and fast,
//! frugal electro-optic tuning for everything in the per-value inner loop.

use serde::{Deserialize, Serialize};

use crosslight_photonics::units::{MilliWatts, Nanometers, Seconds};

use crate::eo::EoTuner;
use crate::error::{Result, TuningError};
use crate::to::ToTuner;

/// Which physical mechanism a planned tuning action uses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TuningMechanism {
    /// Electro-optic carrier tuning (fast, tiny power, small range).
    ElectroOptic,
    /// Thermo-optic heater tuning (slow, milliwatt power, full range).
    ThermoOptic,
}

/// A planned tuning action for one MR: the mechanism chosen, the power it
/// will hold, and the latency before the ring settles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TuningPlan {
    /// Mechanism selected by the policy.
    pub mechanism: TuningMechanism,
    /// Resonance shift the plan realises.
    pub shift: Nanometers,
    /// Steady-state power held while the shift is applied.
    pub power: MilliWatts,
    /// Settling latency of the mechanism.
    pub latency: Seconds,
}

impl TuningPlan {
    /// Returns `true` when the plan uses the electro-optic mechanism.
    #[must_use]
    pub fn is_electro_optic(&self) -> bool {
        matches!(self.mechanism, TuningMechanism::ElectroOptic)
    }
}

/// The hybrid tuner combining one EO and one TO tuner per MR.
///
/// # Example
///
/// ```
/// use crosslight_tuning::hybrid::HybridTuner;
/// use crosslight_photonics::units::Nanometers;
///
/// let tuner = HybridTuner::paper();
/// let plan = tuner.plan_shift(Nanometers::new(0.2));
/// assert!(plan.is_electro_optic());
/// assert!(plan.latency.to_nanos() < 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HybridTuner {
    eo: EoTuner,
    to: ToTuner,
}

impl HybridTuner {
    /// Creates a hybrid tuner from explicit EO and TO tuners.
    #[must_use]
    pub fn new(eo: EoTuner, to: ToTuner) -> Self {
        Self { eo, to }
    }

    /// The paper's hybrid tuner: Table II EO and TO parameters with the
    /// optimized MR's 18 nm FSR.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            eo: EoTuner::table_ii(),
            to: ToTuner::table_ii(Nanometers::new(crosslight_photonics::mr::OPTIMIZED_FSR_NM)),
        }
    }

    /// Returns the EO tuner.
    #[must_use]
    pub fn eo(&self) -> &EoTuner {
        &self.eo
    }

    /// Returns the TO tuner.
    #[must_use]
    pub fn to(&self) -> &ToTuner {
        &self.to
    }

    /// Plans a resonance shift: EO if the shift fits the EO range, otherwise
    /// TO.
    ///
    /// Shifts beyond one FSR are folded back into the FSR (tuning to the next
    /// resonance order is equivalent), so this function always succeeds.
    #[must_use]
    pub fn plan_shift(&self, shift: Nanometers) -> TuningPlan {
        let folded = self.fold_into_fsr(shift);
        if self.eo.can_reach(folded) {
            let power = self
                .eo
                .power_for_shift(folded)
                .expect("folded shift is within EO range by construction");
            TuningPlan {
                mechanism: TuningMechanism::ElectroOptic,
                shift: folded,
                power,
                latency: self.eo.latency(),
            }
        } else {
            let power = self
                .to
                .power_for_shift(folded)
                .expect("folded shift is within one FSR by construction");
            TuningPlan {
                mechanism: TuningMechanism::ThermoOptic,
                shift: folded,
                power,
                latency: self.to.latency(),
            }
        }
    }

    /// Plans a shift but requires it to be achievable electro-optically,
    /// which is how weight/activation values are imprinted in the inner loop.
    ///
    /// # Errors
    ///
    /// Returns [`TuningError::ShiftOutOfRange`] if the shift exceeds the EO
    /// range (the caller should have pre-compensated larger drifts with TO).
    pub fn plan_eo_shift(&self, shift: Nanometers) -> Result<TuningPlan> {
        if !self.eo.can_reach(shift) {
            return Err(TuningError::ShiftOutOfRange {
                requested_nm: shift.value().abs(),
                max_nm: self.eo.max_shift.value(),
            });
        }
        Ok(TuningPlan {
            mechanism: TuningMechanism::ElectroOptic,
            shift,
            power: self.eo.power_for_shift(shift)?,
            latency: self.eo.latency(),
        })
    }

    /// Folds an arbitrary shift into `[-FSR, FSR]` by moving to the adjacent
    /// resonance order when cheaper.
    fn fold_into_fsr(&self, shift: Nanometers) -> Nanometers {
        let fsr = self.to.free_spectral_range.value();
        let mut s = shift.value() % fsr;
        if s.abs() > fsr / 2.0 {
            s -= s.signum() * fsr;
        }
        Nanometers::new(s)
    }
}

impl Default for HybridTuner {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_shifts_use_eo() {
        let tuner = HybridTuner::paper();
        let plan = tuner.plan_shift(Nanometers::new(0.3));
        assert!(plan.is_electro_optic());
        assert!(plan.power.to_microwatts() < 2.0);
        assert!((plan.latency.to_nanos() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn large_shifts_fall_back_to_to() {
        let tuner = HybridTuner::paper();
        let plan = tuner.plan_shift(Nanometers::new(2.1));
        assert!(!plan.is_electro_optic());
        assert!(plan.power.value() > 1.0);
        assert!((plan.latency.to_micros() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn shifts_beyond_fsr_fold_back() {
        let tuner = HybridTuner::paper();
        // 18.2 nm folds to 0.2 nm → EO territory.
        let plan = tuner.plan_shift(Nanometers::new(18.2));
        assert!(plan.is_electro_optic());
        assert!((plan.shift.value() - 0.2).abs() < 1e-9);
        // 10 nm folds to −8 nm (closer to the next order).
        let plan = tuner.plan_shift(Nanometers::new(10.0));
        assert!((plan.shift.value() + 8.0).abs() < 1e-9);
    }

    #[test]
    fn eo_only_plan_rejects_large_shifts() {
        let tuner = HybridTuner::paper();
        assert!(tuner.plan_eo_shift(Nanometers::new(0.4)).is_ok());
        assert!(matches!(
            tuner.plan_eo_shift(Nanometers::new(1.0)),
            Err(TuningError::ShiftOutOfRange { .. })
        ));
    }

    #[test]
    fn hybrid_is_never_worse_than_to_only() {
        let tuner = HybridTuner::paper();
        let to_only = ToTuner::table_ii(Nanometers::new(18.0));
        for shift_nm in [0.05, 0.1, 0.3, 0.45, 1.0, 2.0, 5.0] {
            let hybrid_power = tuner.plan_shift(Nanometers::new(shift_nm)).power;
            let to_power = to_only.power_for_shift(Nanometers::new(shift_nm)).unwrap();
            assert!(
                hybrid_power.value() <= to_power.value() + 1e-12,
                "hybrid must not exceed TO-only power at {shift_nm} nm"
            );
        }
    }

    #[test]
    fn accessors_expose_sub_tuners() {
        let tuner = HybridTuner::paper();
        assert!((tuner.eo().latency().to_nanos() - 20.0).abs() < 1e-9);
        assert!((tuner.to().latency().to_micros() - 4.0).abs() < 1e-9);
    }
}
