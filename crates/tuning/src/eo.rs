//! Electro-optic (EO) tuning.
//!
//! EO tuning exploits carrier-based index modulation: it is fast (~20 ns in
//! Table II) and extremely cheap per nanometre of shift (4 µW/nm), but its
//! reach is limited to a fraction of a nanometre — enough to imprint vector
//! values on an already-calibrated MR, not enough to compensate multi-nm FPV
//! or thermal drifts.

use serde::{Deserialize, Serialize};

use crosslight_photonics::units::{MilliWatts, Nanometers, Seconds};

use crate::error::{Result, TuningError};

/// Default maximum resonance shift an EO tuner can produce.
///
/// Carrier-injection/depletion tuning reaches a few hundred picometres; the
/// paper's hybrid scheme relies on EO only for the small per-value shifts, so
/// 0.5 nm is a comfortable bound for the Q≈8000 devices used here.
pub const DEFAULT_EO_RANGE_NM: f64 = 0.5;

/// An electro-optic tuner attached to one MR.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EoTuner {
    /// Power drawn per nanometre of resonance shift (Table II: 4 µW/nm).
    pub power_per_nm: MilliWatts,
    /// Time to settle after a tuning command (Table II: 20 ns).
    pub latency: Seconds,
    /// Maximum achievable shift magnitude.
    pub max_shift: Nanometers,
}

impl EoTuner {
    /// The paper's Table II EO tuner: 20 ns latency, 4 µW/nm.
    #[must_use]
    pub fn table_ii() -> Self {
        Self {
            power_per_nm: MilliWatts::from_microwatts(4.0),
            latency: Seconds::from_nanos(20.0),
            max_shift: Nanometers::new(DEFAULT_EO_RANGE_NM),
        }
    }

    /// Returns `true` if the tuner can produce a shift of the given magnitude.
    #[must_use]
    pub fn can_reach(&self, shift: Nanometers) -> bool {
        shift.abs() <= self.max_shift
    }

    /// Power drawn while holding a resonance shift of `shift`.
    ///
    /// # Errors
    ///
    /// Returns [`TuningError::ShiftOutOfRange`] if the magnitude exceeds the
    /// tuner's range.
    pub fn power_for_shift(&self, shift: Nanometers) -> Result<MilliWatts> {
        if !self.can_reach(shift) {
            return Err(TuningError::ShiftOutOfRange {
                requested_nm: shift.value().abs(),
                max_nm: self.max_shift.value(),
            });
        }
        Ok(self.power_per_nm * shift.value().abs())
    }

    /// Latency of applying one tuning command.
    #[must_use]
    pub fn latency(&self) -> Seconds {
        self.latency
    }
}

impl Default for EoTuner {
    fn default() -> Self {
        Self::table_ii()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_parameters() {
        let t = EoTuner::table_ii();
        assert!((t.power_per_nm.to_microwatts() - 4.0).abs() < 1e-12);
        assert!((t.latency.to_nanos() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn power_scales_linearly_with_shift() {
        let t = EoTuner::table_ii();
        let p1 = t.power_for_shift(Nanometers::new(0.1)).unwrap();
        let p2 = t.power_for_shift(Nanometers::new(0.2)).unwrap();
        assert!((p2.value() - 2.0 * p1.value()).abs() < 1e-15);
        // Sign does not matter.
        let pneg = t.power_for_shift(Nanometers::new(-0.2)).unwrap();
        assert!((pneg.value() - p2.value()).abs() < 1e-15);
    }

    #[test]
    fn out_of_range_shift_is_rejected() {
        let t = EoTuner::table_ii();
        assert!(t.can_reach(Nanometers::new(0.4)));
        assert!(!t.can_reach(Nanometers::new(2.0)));
        assert!(matches!(
            t.power_for_shift(Nanometers::new(2.0)),
            Err(TuningError::ShiftOutOfRange { .. })
        ));
    }

    #[test]
    fn eo_power_is_orders_of_magnitude_below_to_power() {
        // Holding a 0.5 nm shift costs 2 µW with EO; the TO heater pays
        // 27.5 mW × (0.5/18) ≈ 764 µW for the same shift.
        let eo = EoTuner::table_ii()
            .power_for_shift(Nanometers::new(0.5))
            .unwrap();
        assert!(eo.to_microwatts() < 10.0);
    }
}
