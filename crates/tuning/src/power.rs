//! Bank-level tuning-power accounting.
//!
//! The architecture simulator needs one number per MR bank: the steady-state
//! tuning power of keeping every ring on its channel *and* imprinting values.
//! That number depends on all three of the paper's cross-layer choices:
//!
//! * the MR design (optimized devices drift less under FPV, so the one-time
//!   compensation is cheaper),
//! * whether TED collective tuning is used to cancel thermal crosstalk, and
//! * whether the hybrid EO/TO circuit is available for value imprinting
//!   (otherwise values are imprinted thermo-optically, as prior accelerators
//!   do).
//!
//! This module composes the [`fpv`](crosslight_photonics::fpv),
//! [`thermal`](crosslight_photonics::thermal), [`ted`](crate::ted),
//! [`eo`](crate::eo) and [`to`](crate::to) models into that single figure.

use serde::{Deserialize, Serialize};

use crosslight_photonics::fpv::FpvModel;
use crosslight_photonics::mr::MrGeometry;
use crosslight_photonics::thermal::ThermalCrosstalkModel;
use crosslight_photonics::units::{Micrometers, MilliWatts, Nanometers, Radians, Seconds};

use crate::eo::EoTuner;
use crate::error::Result;
use crate::hybrid::HybridTuner;
use crate::ted::TedSolver;
use crate::to::ToTuner;

/// Average detuning magnitude used to imprint one value on an MR.
///
/// Values map to detunings inside the Lorentzian linewidth; with Q ≈ 8000 the
/// usable detuning range is a few hundred picometres, so the *average* value
/// shift is taken as 0.1 nm.
pub const MEAN_VALUE_SHIFT_NM: f64 = 0.1;

/// Which circuit imprints values (weights/activations) onto the MRs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValueTuning {
    /// Fast electro-optic imprinting (CrossLight's hybrid circuit).
    ElectroOptic,
    /// Thermo-optic imprinting (prior accelerators such as DEAP-CNN).
    ThermoOptic,
}

/// Whether thermal-crosstalk compensation uses TED collective tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrosstalkCompensation {
    /// Collective Thermal Eigenmode Decomposition.
    Ted,
    /// Independent per-heater compensation (naive).
    Naive,
}

/// Configuration of the tuning power estimate for one MR bank.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BankTuningConfig {
    /// Number of MRs in the bank.
    pub mr_count: usize,
    /// Centre-to-centre spacing between adjacent MRs.
    pub spacing: Micrometers,
    /// MR geometry (decides FPV drift magnitude).
    pub geometry: MrGeometry,
    /// Crosstalk compensation strategy.
    pub compensation: CrosstalkCompensation,
    /// Circuit used to imprint values.
    pub value_tuning: ValueTuning,
}

impl BankTuningConfig {
    /// The CrossLight `opt_TED` configuration: 15 optimized MRs at 5 µm
    /// spacing, TED compensation, EO value imprinting.
    #[must_use]
    pub fn crosslight_opt_ted(mr_count: usize) -> Self {
        Self {
            mr_count,
            spacing: Micrometers::new(5.0),
            geometry: MrGeometry::optimized(),
            compensation: CrosstalkCompensation::Ted,
            value_tuning: ValueTuning::ElectroOptic,
        }
    }
}

/// Itemised tuning power of one MR bank.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BankTuningPower {
    /// Power spent holding the one-time FPV compensation (TO heaters).
    pub fpv_compensation: MilliWatts,
    /// Extra power attributable to thermal-crosstalk compensation (the gap
    /// between crosstalk-aware tuning and isolated-device tuning).
    pub crosstalk_compensation: MilliWatts,
    /// Power of imprinting values on all MRs of the bank.
    pub value_imprinting: MilliWatts,
    /// Worst-case latency to reprogram the bank with new values.
    pub reprogram_latency: Seconds,
}

impl BankTuningPower {
    /// Total steady-state tuning power of the bank.
    #[must_use]
    pub fn total(&self) -> MilliWatts {
        self.fpv_compensation + self.crosstalk_compensation + self.value_imprinting
    }
}

/// Estimates the tuning power of one MR bank under the given configuration.
///
/// The FPV compensation targets are the per-MR mean absolute drifts of the
/// bank's geometry under the typical process corner, spread deterministically
/// across the bank (alternating above/below the mean) so that TED sees a
/// realistic mix of common-mode and differential targets.
///
/// # Errors
///
/// Propagates matrix/dimension errors from the TED solver; these do not occur
/// for valid configurations (`mr_count ≥ 1`, positive spacing).
pub fn estimate_bank_tuning_power(config: &BankTuningConfig) -> Result<BankTuningPower> {
    let fpv = FpvModel::new(config.geometry, Default::default());
    let fsr = if config.geometry.is_width_optimized() {
        Nanometers::new(crosslight_photonics::mr::OPTIMIZED_FSR_NM)
    } else {
        Nanometers::new(crosslight_photonics::mr::CONVENTIONAL_FSR_NM)
    };
    let to = ToTuner::table_ii(fsr);
    let eo = EoTuner::table_ii();
    let hybrid = HybridTuner::new(eo, to);

    // Per-MR FPV compensation targets: mean drift modulated ±35% across the
    // bank so the targets are heterogeneous (as real FPV is).
    let mean_shift = fpv.mean_absolute_drift();
    let targets: Vec<Radians> = (0..config.mr_count)
        .map(|i| {
            let modulation = 1.0 + 0.35 * ((i as f64) * 2.1).sin();
            to.shift_to_phase(mean_shift * modulation)
        })
        .collect();

    // Isolated-device cost: what the same targets would cost with no thermal
    // coupling at all.  The crosstalk-compensation component is everything the
    // chosen strategy pays on top of (or saves relative to) this baseline.
    let isolated: f64 = targets
        .iter()
        .map(|t| to.heater().power_for_phase(*t))
        .sum();

    let crosstalk_model = ThermalCrosstalkModel::default();
    let compensated_total = if config.mr_count == 1 {
        isolated
    } else {
        let matrix = crosstalk_model
            .crosstalk_matrix(config.mr_count, config.spacing)
            .map_err(|e| crate::error::TuningError::InvalidMatrix {
                reason: e.to_string(),
            })?;
        let solver = TedSolver::new(&matrix, *to.heater())?;
        match config.compensation {
            CrosstalkCompensation::Ted => solver.solve(&targets)?.total_power.value(),
            CrosstalkCompensation::Naive => solver.naive_power(&targets)?.value(),
        }
    };

    // When TED makes the compensated total *cheaper* than isolated tuning the
    // saving is reflected in `fpv_compensation`; crosstalk power is never
    // reported as negative.
    let fpv_compensation = MilliWatts::new(isolated.min(compensated_total));
    let crosstalk_compensation = MilliWatts::new((compensated_total - isolated).max(0.0));

    // Value imprinting across the whole bank.
    let mean_value_shift = Nanometers::new(MEAN_VALUE_SHIFT_NM);
    let (value_power_per_mr, value_latency) = match config.value_tuning {
        ValueTuning::ElectroOptic => {
            let plan = hybrid.plan_eo_shift(mean_value_shift)?;
            (plan.power, plan.latency)
        }
        ValueTuning::ThermoOptic => {
            let power = to.power_for_shift(mean_value_shift)?;
            (power, to.latency())
        }
    };
    let value_imprinting = value_power_per_mr * config.mr_count as f64;

    Ok(BankTuningPower {
        fpv_compensation,
        crosstalk_compensation,
        value_imprinting,
        reprogram_latency: value_latency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(
        geometry: MrGeometry,
        compensation: CrosstalkCompensation,
        value_tuning: ValueTuning,
    ) -> BankTuningConfig {
        BankTuningConfig {
            mr_count: 15,
            spacing: Micrometers::new(5.0),
            geometry,
            compensation,
            value_tuning,
        }
    }

    #[test]
    fn optimized_devices_cost_less_fpv_power() {
        let optimized = estimate_bank_tuning_power(&config(
            MrGeometry::optimized(),
            CrosstalkCompensation::Ted,
            ValueTuning::ElectroOptic,
        ))
        .unwrap();
        let conventional = estimate_bank_tuning_power(&config(
            MrGeometry::conventional(),
            CrosstalkCompensation::Ted,
            ValueTuning::ElectroOptic,
        ))
        .unwrap();
        assert!(optimized.fpv_compensation.value() < conventional.fpv_compensation.value());
        assert!(optimized.total().value() < conventional.total().value());
    }

    #[test]
    fn ted_saves_power_over_naive_compensation() {
        let ted = estimate_bank_tuning_power(&config(
            MrGeometry::optimized(),
            CrosstalkCompensation::Ted,
            ValueTuning::ElectroOptic,
        ))
        .unwrap();
        let naive = estimate_bank_tuning_power(&config(
            MrGeometry::optimized(),
            CrosstalkCompensation::Naive,
            ValueTuning::ElectroOptic,
        ))
        .unwrap();
        assert!(ted.total().value() < naive.total().value());
    }

    #[test]
    fn eo_value_imprinting_is_cheaper_and_faster_than_to() {
        let eo = estimate_bank_tuning_power(&config(
            MrGeometry::optimized(),
            CrosstalkCompensation::Ted,
            ValueTuning::ElectroOptic,
        ))
        .unwrap();
        let to = estimate_bank_tuning_power(&config(
            MrGeometry::optimized(),
            CrosstalkCompensation::Ted,
            ValueTuning::ThermoOptic,
        ))
        .unwrap();
        assert!(eo.value_imprinting.value() < to.value_imprinting.value());
        assert!(eo.reprogram_latency.value() < to.reprogram_latency.value());
        // EO reprogramming is the Table II 20 ns; TO is 4 µs.
        assert!((eo.reprogram_latency.to_nanos() - 20.0).abs() < 1e-9);
        assert!((to.reprogram_latency.to_micros() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn all_four_crosslight_variants_are_ordered() {
        // base > base_TED > opt > opt_TED in total tuning power, mirroring the
        // ordering of the paper's Fig. 7 variants.
        let base = estimate_bank_tuning_power(&config(
            MrGeometry::conventional(),
            CrosstalkCompensation::Naive,
            ValueTuning::ElectroOptic,
        ))
        .unwrap()
        .total();
        let base_ted = estimate_bank_tuning_power(&config(
            MrGeometry::conventional(),
            CrosstalkCompensation::Ted,
            ValueTuning::ElectroOptic,
        ))
        .unwrap()
        .total();
        let opt = estimate_bank_tuning_power(&config(
            MrGeometry::optimized(),
            CrosstalkCompensation::Naive,
            ValueTuning::ElectroOptic,
        ))
        .unwrap()
        .total();
        let opt_ted = estimate_bank_tuning_power(&config(
            MrGeometry::optimized(),
            CrosstalkCompensation::Ted,
            ValueTuning::ElectroOptic,
        ))
        .unwrap()
        .total();
        assert!(base.value() > base_ted.value());
        assert!(base_ted.value() > opt_ted.value());
        assert!(opt.value() > opt_ted.value());
        assert!(base.value() > opt.value());
    }

    #[test]
    fn single_mr_bank_has_no_crosstalk_component() {
        let mut cfg = BankTuningConfig::crosslight_opt_ted(1);
        cfg.compensation = CrosstalkCompensation::Naive;
        let power = estimate_bank_tuning_power(&cfg).unwrap();
        assert!(power.crosstalk_compensation.value() < 1e-12);
        assert!(power.total().value() > 0.0);
    }

    #[test]
    fn total_is_sum_of_components() {
        let power = estimate_bank_tuning_power(&BankTuningConfig::crosslight_opt_ted(15)).unwrap();
        let expected = power.fpv_compensation.value()
            + power.crosstalk_compensation.value()
            + power.value_imprinting.value();
        assert!((power.total().value() - expected).abs() < 1e-12);
    }
}
