//! Jacobi eigen-decomposition for small symmetric matrices.
//!
//! Thermal Eigenmode Decomposition needs the eigenvalues and eigenvectors of
//! the (symmetric, positive) thermal-crosstalk matrix of an MR bank.  Banks
//! hold at most a few tens of MRs, so the classic cyclic Jacobi rotation
//! method is more than adequate and avoids pulling a linear-algebra
//! dependency into the workspace.

use serde::{Deserialize, Serialize};

use crate::error::{Result, TuningError};

/// Maximum number of Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 100;

/// Convergence threshold on the off-diagonal Frobenius norm.
const CONVERGENCE_EPS: f64 = 1e-12;

/// A dense symmetric matrix stored in row-major order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SymmetricMatrix {
    size: usize,
    data: Vec<f64>,
}

impl SymmetricMatrix {
    /// Creates a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`TuningError::InvalidMatrix`] if the data length is not
    /// `size²` or the matrix is asymmetric beyond 1e-9.
    pub fn new(size: usize, data: Vec<f64>) -> Result<Self> {
        if size == 0 {
            return Err(TuningError::InvalidMatrix {
                reason: "matrix must have at least one row".into(),
            });
        }
        if data.len() != size * size {
            return Err(TuningError::InvalidMatrix {
                reason: format!("expected {} entries, got {}", size * size, data.len()),
            });
        }
        for i in 0..size {
            for j in 0..i {
                if (data[i * size + j] - data[j * size + i]).abs() > 1e-9 {
                    return Err(TuningError::InvalidMatrix {
                        reason: format!("asymmetric at ({i}, {j})"),
                    });
                }
            }
        }
        Ok(Self { size, data })
    }

    /// Creates an identity matrix of the given size.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    #[must_use]
    pub fn identity(size: usize) -> Self {
        assert!(size > 0, "identity matrix must have at least one row");
        let mut data = vec![0.0; size * size];
        for i in 0..size {
            data[i * size + i] = 1.0;
        }
        Self { size, data }
    }

    /// Returns the matrix dimension.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Returns the `(i, j)` entry.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    #[must_use]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.size && j < self.size, "index out of bounds");
        self.data[i * self.size + j]
    }

    /// Sets the `(i, j)` and `(j, i)` entries (preserving symmetry).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn set_symmetric(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.size && j < self.size, "index out of bounds");
        self.data[i * self.size + j] = value;
        self.data[j * self.size + i] = value;
    }

    /// Multiplies the matrix by a vector.
    ///
    /// # Errors
    ///
    /// Returns [`TuningError::DimensionMismatch`] if the vector length does
    /// not match the matrix dimension.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        self.mul_vec_into(v, &mut out)?;
        Ok(out)
    }

    /// Multiplies the matrix by a vector into a caller-owned buffer, reusing
    /// its allocation (the form the TED solver's iteration loops use so that
    /// repeated solves allocate nothing).
    ///
    /// # Errors
    ///
    /// Returns [`TuningError::DimensionMismatch`] if the vector length does
    /// not match the matrix dimension.
    pub fn mul_vec_into(&self, v: &[f64], out: &mut Vec<f64>) -> Result<()> {
        if v.len() != self.size {
            return Err(TuningError::DimensionMismatch {
                expected: self.size,
                actual: v.len(),
            });
        }
        out.clear();
        out.extend((0..self.size).map(|i| {
            let row = &self.data[i * self.size..(i + 1) * self.size];
            row.iter().zip(v).map(|(&m, &x)| m * x).sum::<f64>()
        }));
        Ok(())
    }

    /// Frobenius norm of the strictly off-diagonal part.
    #[must_use]
    pub fn off_diagonal_norm(&self) -> f64 {
        let mut sum = 0.0;
        for i in 0..self.size {
            for j in 0..self.size {
                if i != j {
                    sum += self.get(i, j) * self.get(i, j);
                }
            }
        }
        sum.sqrt()
    }
}

/// Result of an eigen-decomposition: `matrix = V · diag(λ) · Vᵀ`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EigenDecomposition {
    /// Eigenvalues, sorted in descending order.
    pub eigenvalues: Vec<f64>,
    /// Eigenvectors stored column-wise in row-major order: entry
    /// `vectors[i * n + k]` is component `i` of eigenvector `k`, matching the
    /// order of `eigenvalues`.
    pub eigenvectors: Vec<f64>,
    /// Matrix dimension.
    pub size: usize,
}

impl EigenDecomposition {
    /// Returns eigenvector `k` as a newly allocated vector.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of bounds.
    #[must_use]
    pub fn eigenvector(&self, k: usize) -> Vec<f64> {
        assert!(k < self.size, "eigenvector index out of bounds");
        (0..self.size)
            .map(|i| self.eigenvectors[i * self.size + k])
            .collect()
    }

    /// Projects a vector onto the eigenbasis, returning its modal
    /// coefficients (`Vᵀ · x`).
    ///
    /// # Errors
    ///
    /// Returns [`TuningError::DimensionMismatch`] on length mismatch.
    pub fn project(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        self.project_into(x, &mut out)?;
        Ok(out)
    }

    /// Destination-buffer form of [`EigenDecomposition::project`], reusing
    /// the output allocation.
    ///
    /// # Errors
    ///
    /// Returns [`TuningError::DimensionMismatch`] on length mismatch.
    pub fn project_into(&self, x: &[f64], out: &mut Vec<f64>) -> Result<()> {
        if x.len() != self.size {
            return Err(TuningError::DimensionMismatch {
                expected: self.size,
                actual: x.len(),
            });
        }
        out.clear();
        out.extend((0..self.size).map(|k| {
            (0..self.size)
                .map(|i| self.eigenvectors[i * self.size + k] * x[i])
                .sum::<f64>()
        }));
        Ok(())
    }

    /// Reconstructs a vector from modal coefficients (`V · c`).
    ///
    /// # Errors
    ///
    /// Returns [`TuningError::DimensionMismatch`] on length mismatch.
    pub fn reconstruct(&self, coefficients: &[f64]) -> Result<Vec<f64>> {
        let mut out = Vec::new();
        self.reconstruct_into(coefficients, &mut out)?;
        Ok(out)
    }

    /// Destination-buffer form of [`EigenDecomposition::reconstruct`],
    /// reusing the output allocation.
    ///
    /// # Errors
    ///
    /// Returns [`TuningError::DimensionMismatch`] on length mismatch.
    pub fn reconstruct_into(&self, coefficients: &[f64], out: &mut Vec<f64>) -> Result<()> {
        if coefficients.len() != self.size {
            return Err(TuningError::DimensionMismatch {
                expected: self.size,
                actual: coefficients.len(),
            });
        }
        out.clear();
        out.extend((0..self.size).map(|i| {
            (0..self.size)
                .map(|k| self.eigenvectors[i * self.size + k] * coefficients[k])
                .sum::<f64>()
        }));
        Ok(())
    }
}

/// Computes the eigen-decomposition of a symmetric matrix with the cyclic
/// Jacobi method.
///
/// # Errors
///
/// Returns [`TuningError::EigenNotConverged`] if the off-diagonal norm does
/// not fall below the convergence threshold within the sweep limit (does not
/// happen for the well-conditioned crosstalk matrices this crate builds).
pub fn jacobi_eigen(matrix: &SymmetricMatrix) -> Result<EigenDecomposition> {
    let n = matrix.size();
    let mut a = matrix.clone();
    let mut v = SymmetricMatrix::identity(n);

    for _sweep in 0..MAX_SWEEPS {
        if a.off_diagonal_norm() < CONVERGENCE_EPS {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a.get(p, q);
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = a.get(p, p);
                let aqq = a.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                // Update A = Jᵀ A J in place.
                for k in 0..n {
                    let akp = a.get(k, p);
                    let akq = a.get(k, q);
                    a.set_symmetric(k, p, c * akp - s * akq);
                    a.set_symmetric(k, q, s * akp + c * akq);
                }
                let app_new = c * c * app - 2.0 * s * c * apq + s * s * aqq;
                let aqq_new = s * s * app + 2.0 * s * c * apq + c * c * aqq;
                a.set_symmetric(p, p, app_new);
                a.set_symmetric(q, q, aqq_new);
                a.set_symmetric(p, q, 0.0);

                // Accumulate the rotations into V (V is not symmetric, so we
                // update its raw storage directly).
                for k in 0..n {
                    let vkp = v.data[k * n + p];
                    let vkq = v.data[k * n + q];
                    v.data[k * n + p] = c * vkp - s * vkq;
                    v.data[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }

    if a.off_diagonal_norm() >= 1e-8 {
        return Err(TuningError::EigenNotConverged {
            off_diagonal_norm: a.off_diagonal_norm(),
        });
    }

    // Extract eigenvalues and sort descending, permuting eigenvectors along.
    let mut order: Vec<usize> = (0..n).collect();
    let eigenvalues_raw: Vec<f64> = (0..n).map(|i| a.get(i, i)).collect();
    order.sort_by(|&x, &y| {
        eigenvalues_raw[y]
            .partial_cmp(&eigenvalues_raw[x])
            .expect("eigenvalues are finite")
    });
    let eigenvalues: Vec<f64> = order.iter().map(|&k| eigenvalues_raw[k]).collect();
    let mut eigenvectors = vec![0.0; n * n];
    for (new_k, &old_k) in order.iter().enumerate() {
        for i in 0..n {
            eigenvectors[i * n + new_k] = v.data[i * n + old_k];
        }
    }

    Ok(EigenDecomposition {
        eigenvalues,
        eigenvectors,
        size: n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_reconstruction(m: &SymmetricMatrix, decomp: &EigenDecomposition) {
        let n = m.size();
        for i in 0..n {
            for j in 0..n {
                let mut sum = 0.0;
                for k in 0..n {
                    sum += decomp.eigenvectors[i * n + k]
                        * decomp.eigenvalues[k]
                        * decomp.eigenvectors[j * n + k];
                }
                assert!(
                    (sum - m.get(i, j)).abs() < 1e-8,
                    "reconstruction mismatch at ({i}, {j}): {sum} vs {}",
                    m.get(i, j)
                );
            }
        }
    }

    #[test]
    fn analytic_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let m = SymmetricMatrix::new(2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let d = jacobi_eigen(&m).unwrap();
        assert!((d.eigenvalues[0] - 3.0).abs() < 1e-10);
        assert!((d.eigenvalues[1] - 1.0).abs() < 1e-10);
        check_reconstruction(&m, &d);
    }

    #[test]
    fn analytic_3x3_diagonal() {
        let m =
            SymmetricMatrix::new(3, vec![5.0, 0.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0, -1.0]).unwrap();
        let d = jacobi_eigen(&m).unwrap();
        assert!((d.eigenvalues[0] - 5.0).abs() < 1e-12);
        assert!((d.eigenvalues[1] - 2.0).abs() < 1e-12);
        assert!((d.eigenvalues[2] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m =
            SymmetricMatrix::new(3, vec![4.0, 1.0, 0.5, 1.0, 3.0, 0.25, 0.5, 0.25, 2.0]).unwrap();
        let d = jacobi_eigen(&m).unwrap();
        for a in 0..3 {
            for b in 0..3 {
                let dot: f64 = (0..3)
                    .map(|i| d.eigenvectors[i * 3 + a] * d.eigenvectors[i * 3 + b])
                    .sum();
                let expected = if a == b { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-9, "orthonormality ({a}, {b})");
            }
        }
        check_reconstruction(&m, &d);
    }

    #[test]
    fn exponential_crosstalk_like_matrix_decomposes() {
        // A 10×10 matrix mimicking the thermal crosstalk structure.
        let n = 10;
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                data[i * n + j] = (-((i as f64 - j as f64).abs()) * 1.25).exp();
            }
        }
        let m = SymmetricMatrix::new(n, data).unwrap();
        let d = jacobi_eigen(&m).unwrap();
        // All eigenvalues of this positive-definite Kac–Murdock–Szegő-like
        // matrix are positive and sorted descending.
        assert!(d.eigenvalues.windows(2).all(|w| w[0] >= w[1] - 1e-12));
        assert!(d.eigenvalues.iter().all(|&l| l > 0.0));
        check_reconstruction(&m, &d);
    }

    #[test]
    fn project_reconstruct_roundtrip() {
        let n = 6;
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                data[i * n + j] = (-((i as f64 - j as f64).abs()) * 0.8).exp();
            }
        }
        let m = SymmetricMatrix::new(n, data).unwrap();
        let d = jacobi_eigen(&m).unwrap();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let coeffs = d.project(&x).unwrap();
        let back = d.reconstruct(&coeffs).unwrap();
        for (a, b) in x.iter().zip(back.iter()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn mul_vec_and_dimension_checks() {
        let m = SymmetricMatrix::new(2, vec![2.0, 1.0, 1.0, 2.0]).unwrap();
        let y = m.mul_vec(&[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 3.0]);
        assert!(m.mul_vec(&[1.0]).is_err());
        let d = jacobi_eigen(&m).unwrap();
        assert!(d.project(&[1.0]).is_err());
        assert!(d.reconstruct(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn into_forms_match_allocating_forms_and_reuse_buffers() {
        let n = 5;
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                data[i * n + j] = (-((i as f64 - j as f64).abs()) * 0.9).exp();
            }
        }
        let m = SymmetricMatrix::new(n, data).unwrap();
        let d = jacobi_eigen(&m).unwrap();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        // One buffer serves all three operations across repeated calls.
        let mut buffer = vec![999.0; 16];
        m.mul_vec_into(&x, &mut buffer).unwrap();
        assert_eq!(buffer, m.mul_vec(&x).unwrap());
        d.project_into(&x, &mut buffer).unwrap();
        assert_eq!(buffer, d.project(&x).unwrap());
        let coeffs = buffer.clone();
        d.reconstruct_into(&coeffs, &mut buffer).unwrap();
        assert_eq!(buffer, d.reconstruct(&coeffs).unwrap());
        assert!(m.mul_vec_into(&[1.0], &mut buffer).is_err());
        assert!(d.project_into(&[1.0], &mut buffer).is_err());
        assert!(d.reconstruct_into(&[1.0], &mut buffer).is_err());
    }

    #[test]
    fn invalid_matrices_are_rejected() {
        assert!(SymmetricMatrix::new(0, vec![]).is_err());
        assert!(SymmetricMatrix::new(2, vec![1.0, 2.0, 3.0]).is_err());
        assert!(SymmetricMatrix::new(2, vec![1.0, 2.0, 3.0, 1.0]).is_err());
    }

    #[test]
    fn identity_decomposition() {
        let m = SymmetricMatrix::identity(4);
        let d = jacobi_eigen(&m).unwrap();
        for l in d.eigenvalues {
            assert!((l - 1.0).abs() < 1e-12);
        }
    }
}
