//! Thermo-optic (TO) tuning.
//!
//! TO tuning heats the MR with an integrated microheater, shifting the
//! effective index.  It reaches a full free spectral range — enough to
//! compensate any FPV or thermal drift — but costs 27.5 mW per FSR of shift
//! and settles in ~4 µs (Table II), which is why the paper avoids using it in
//! the per-value inner loop.

use serde::{Deserialize, Serialize};

use crosslight_photonics::thermal::Microheater;
use crosslight_photonics::units::{MilliWatts, Nanometers, Radians, Seconds};

use crate::error::{Result, TuningError};

/// A thermo-optic tuner attached to one MR.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ToTuner {
    heater: Microheater,
    /// Free spectral range of the tuned MR — one FSR of shift costs the full
    /// heater power.
    pub free_spectral_range: Nanometers,
    /// Time to reach thermal steady state (Table II: 4 µs).
    pub latency: Seconds,
}

impl ToTuner {
    /// The paper's Table II TO tuner (27.5 mW/FSR, 4 µs) for an MR with the
    /// given FSR.
    #[must_use]
    pub fn table_ii(free_spectral_range: Nanometers) -> Self {
        Self {
            heater: Microheater::table_ii(),
            free_spectral_range,
            latency: Seconds::from_micros(4.0),
        }
    }

    /// Returns the heater characterisation.
    #[must_use]
    pub fn heater(&self) -> &Microheater {
        &self.heater
    }

    /// A TO tuner can reach any shift within one FSR (shifts beyond an FSR
    /// wrap to an equivalent resonance).
    #[must_use]
    pub fn can_reach(&self, shift: Nanometers) -> bool {
        shift.abs() <= self.free_spectral_range
    }

    /// Power drawn while holding a resonance shift of `shift`.
    ///
    /// # Errors
    ///
    /// Returns [`TuningError::ShiftOutOfRange`] if the magnitude exceeds one
    /// free spectral range.
    pub fn power_for_shift(&self, shift: Nanometers) -> Result<MilliWatts> {
        if !self.can_reach(shift) {
            return Err(TuningError::ShiftOutOfRange {
                requested_nm: shift.value().abs(),
                max_nm: self.free_spectral_range.value(),
            });
        }
        Ok(MilliWatts::new(self.heater.power_for_shift(
            shift.value(),
            self.free_spectral_range.value(),
        )))
    }

    /// Power drawn while holding a phase correction of `phase`.
    #[must_use]
    pub fn power_for_phase(&self, phase: Radians) -> MilliWatts {
        MilliWatts::new(self.heater.power_for_phase(phase))
    }

    /// Converts a resonance shift into the equivalent phase correction
    /// (one FSR ↔ 2π).
    #[must_use]
    pub fn shift_to_phase(&self, shift: Nanometers) -> Radians {
        Radians::new(shift.value() / self.free_spectral_range.value() * std::f64::consts::TAU)
    }

    /// Latency of one thermal settling event.
    #[must_use]
    pub fn latency(&self) -> Seconds {
        self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuner() -> ToTuner {
        ToTuner::table_ii(Nanometers::new(18.0))
    }

    #[test]
    fn full_fsr_costs_full_heater_power() {
        let t = tuner();
        let p = t.power_for_shift(Nanometers::new(18.0)).unwrap();
        assert!((p.value() - 27.5).abs() < 1e-12);
    }

    #[test]
    fn power_scales_linearly_and_is_sign_independent() {
        let t = tuner();
        let p = t.power_for_shift(Nanometers::new(1.8)).unwrap();
        assert!((p.value() - 2.75).abs() < 1e-12);
        let pneg = t.power_for_shift(Nanometers::new(-1.8)).unwrap();
        assert!((pneg.value() - 2.75).abs() < 1e-12);
    }

    #[test]
    fn shift_beyond_fsr_is_rejected() {
        let t = tuner();
        assert!(matches!(
            t.power_for_shift(Nanometers::new(20.0)),
            Err(TuningError::ShiftOutOfRange { .. })
        ));
    }

    #[test]
    fn phase_and_shift_views_are_consistent() {
        let t = tuner();
        let shift = Nanometers::new(4.5); // a quarter FSR → π/2
        let phase = t.shift_to_phase(shift);
        assert!((phase.value() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        let via_phase = t.power_for_phase(phase);
        let via_shift = t.power_for_shift(shift).unwrap();
        assert!((via_phase.value() - via_shift.value()).abs() < 1e-12);
    }

    #[test]
    fn to_latency_is_microseconds() {
        assert!((tuner().latency().to_micros() - 4.0).abs() < 1e-12);
    }
}
