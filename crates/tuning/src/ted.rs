//! Thermal Eigenmode Decomposition (TED) — collective crosstalk-aware tuning.
//!
//! The paper adapts TED from Milanizadeh et al. (JLT 2019): instead of letting
//! every microheater fight its neighbours' leaked heat independently, the
//! whole bank is tuned *collectively*.  The thermal-crosstalk matrix `C` maps
//! applied heater phases `p` to the phases `C·p` the MRs actually experience,
//! so the heater setting that realises the desired compensation `φ` is the
//! solution of `C·p = φ` — computed here in the eigenbasis of `C`.
//!
//! Because microheaters can only *add* phase (they heat, never cool), any
//! negative component of the raw solution is handled by raising the whole
//! bank by a common-mode offset, which is the same trick the TED literature
//! uses.  Two regimes emerge, and together they produce the U-shaped
//! power-vs-spacing curve of the paper's Fig. 4:
//!
//! * **Dense banks** (strong crosstalk): the common-mode part of the target is
//!   cheap — heat leaking from neighbours does useful work — but differential
//!   targets excite the small eigenvalues of `C` and need large offsets, so
//!   power climbs as spacing shrinks further.
//! * **Sparse banks** (weak crosstalk): `C → I`, no help from neighbours, and
//!   the power settles at the naive per-MR sum.
//!
//! The *naive* (non-TED) reference applies every target locally and must then
//! additionally burn power to counteract the uncorrected neighbour leakage,
//! which is why the dotted "without TED" line in Fig. 4 sits notably higher.

use serde::{Deserialize, Serialize};

use crosslight_photonics::thermal::{CrosstalkMatrix, Microheater};
use crosslight_photonics::units::{MilliWatts, Radians};

use crate::eigen::{jacobi_eigen, EigenDecomposition, SymmetricMatrix};
use crate::error::{Result, TuningError};

/// Floor applied to eigenvalues when inverting the crosstalk matrix, so that
/// nearly singular (extremely dense) banks produce large-but-finite powers
/// instead of dividing by zero.
const EIGENVALUE_FLOOR: f64 = 1e-6;

/// A TED solver for one MR bank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TedSolver {
    matrix: SymmetricMatrix,
    decomposition: EigenDecomposition,
    heater: Microheater,
}

/// The heater settings TED computes for a bank, plus their power cost.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TedSolution {
    /// Phase applied by each heater (all non-negative).
    pub heater_phases: Vec<Radians>,
    /// Common-mode offset that was added to keep all heater phases
    /// non-negative.
    pub common_mode_offset: Radians,
    /// Per-heater steady-state power.
    pub per_heater_power: Vec<MilliWatts>,
    /// Total steady-state power of the bank.
    pub total_power: MilliWatts,
}

/// Reusable scratch buffers for [`TedSolver::solve_with`].
///
/// A single workspace serves any bank size: every buffer (including the
/// vectors inside the embedded [`TedSolution`]) is cleared and refilled per
/// solve, so iteration loops — sweeps over spacings, repeated solves in the
/// benches — perform zero heap allocations after the first call.
#[derive(Debug, Clone, Default)]
pub struct TedWorkspace {
    targets: Vec<f64>,
    ones: Vec<f64>,
    p0: Vec<f64>,
    w: Vec<f64>,
    coefficients: Vec<f64>,
    solution: Option<TedSolution>,
}

impl TedWorkspace {
    /// Creates an empty workspace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The solution of the last successful [`TedSolver::solve_with`] call.
    #[must_use]
    pub fn solution(&self) -> Option<&TedSolution> {
        self.solution.as_ref()
    }

    /// Consumes the workspace, returning the last solution (if any).
    #[must_use]
    pub fn into_solution(self) -> Option<TedSolution> {
        self.solution
    }
}

impl TedSolver {
    /// Builds a solver from a thermal-crosstalk matrix and heater
    /// characterisation.
    ///
    /// # Errors
    ///
    /// Returns [`TuningError::InvalidMatrix`] if the matrix cannot be
    /// decomposed.
    pub fn new(crosstalk: &CrosstalkMatrix, heater: Microheater) -> Result<Self> {
        let matrix = SymmetricMatrix::new(crosstalk.size(), crosstalk.as_slice().to_vec())?;
        let decomposition = jacobi_eigen(&matrix)?;
        Ok(Self {
            matrix,
            decomposition,
            heater,
        })
    }

    /// Builds a solver with the Table II heater.
    ///
    /// # Errors
    ///
    /// Same as [`TedSolver::new`].
    pub fn with_table_ii_heater(crosstalk: &CrosstalkMatrix) -> Result<Self> {
        Self::new(crosstalk, Microheater::table_ii())
    }

    /// Returns the bank size.
    #[must_use]
    pub fn bank_size(&self) -> usize {
        self.matrix.size()
    }

    /// Returns the eigen-decomposition of the crosstalk matrix.
    #[must_use]
    pub fn decomposition(&self) -> &EigenDecomposition {
        &self.decomposition
    }

    /// Solves for the heater phases that realise the target phase
    /// compensation on every MR, using the eigenbasis of the crosstalk
    /// matrix, and reports the resulting power.
    ///
    /// # Errors
    ///
    /// Returns [`TuningError::DimensionMismatch`] if `targets` does not match
    /// the bank size.
    pub fn solve(&self, targets: &[Radians]) -> Result<TedSolution> {
        let mut workspace = TedWorkspace::new();
        self.solve_with(targets, &mut workspace)?;
        Ok(workspace
            .into_solution()
            .expect("solve_with stores a solution on success"))
    }

    /// Workspace form of [`TedSolver::solve`] for iteration loops: all
    /// intermediate vectors and the solution's own vectors are drawn from
    /// `workspace`, so repeated solves perform zero heap allocations in
    /// steady state.  Returns a reference to the solution stored in the
    /// workspace; results are identical to [`TedSolver::solve`].
    ///
    /// # Errors
    ///
    /// Returns [`TuningError::DimensionMismatch`] if `targets` does not match
    /// the bank size.
    pub fn solve_with<'ws>(
        &self,
        targets: &[Radians],
        workspace: &'ws mut TedWorkspace,
    ) -> Result<&'ws TedSolution> {
        let n = self.bank_size();
        if targets.len() != n {
            return Err(TuningError::DimensionMismatch {
                expected: n,
                actual: targets.len(),
            });
        }
        workspace.targets.clear();
        workspace.targets.extend(targets.iter().map(|t| t.value()));

        // Raw solution p0 = C⁻¹ φ through the eigenbasis.
        let (p0, w) = {
            let TedWorkspace {
                targets: target_values,
                ones,
                p0,
                w,
                coefficients,
                ..
            } = workspace;
            self.apply_inverse_into(target_values, coefficients, p0)?;
            // w = C⁻¹ 1: the response to a unit common-mode offset.
            ones.clear();
            ones.resize(n, 1.0);
            self.apply_inverse_into(ones, coefficients, w)?;
            (&*p0, &*w)
        };

        // Choose the smallest α ≥ 0 such that p0 + α·w ≥ 0 component-wise.
        let mut alpha: f64 = 0.0;
        for i in 0..n {
            if w[i] > 1e-12 && p0[i] < 0.0 {
                alpha = alpha.max(-p0[i] / w[i]);
            }
        }

        // Fill the solution, reusing its vectors when one is already there.
        let solution = workspace.solution.get_or_insert_with(|| TedSolution {
            heater_phases: Vec::new(),
            common_mode_offset: Radians::new(0.0),
            per_heater_power: Vec::new(),
            total_power: MilliWatts::new(0.0),
        });
        solution.heater_phases.clear();
        solution
            .heater_phases
            .extend((0..n).map(|i| Radians::new((p0[i] + alpha * w[i]).max(0.0))));
        solution.per_heater_power.clear();
        solution.per_heater_power.extend(
            solution
                .heater_phases
                .iter()
                .map(|&p| MilliWatts::new(self.heater.power_for_phase(p))),
        );
        solution.common_mode_offset = Radians::new(alpha);
        solution.total_power =
            MilliWatts::new(solution.per_heater_power.iter().map(|p| p.value()).sum());
        Ok(solution)
    }

    /// Power of the *naive* (non-TED) tuning strategy for the same targets:
    /// every heater applies its own target locally and additionally burns
    /// power to counteract the phase leaked in from every neighbour.
    ///
    /// # Errors
    ///
    /// Returns [`TuningError::DimensionMismatch`] if `targets` does not match
    /// the bank size.
    pub fn naive_power(&self, targets: &[Radians]) -> Result<MilliWatts> {
        let n = self.bank_size();
        if targets.len() != n {
            return Err(TuningError::DimensionMismatch {
                expected: n,
                actual: targets.len(),
            });
        }
        let mut total = 0.0;
        for i in 0..n {
            let own = targets[i].value().abs();
            let leaked: f64 = (0..n)
                .filter(|&j| j != i)
                .map(|j| self.matrix.get(i, j) * targets[j].value().abs())
                .sum();
            // The heater must realise its own phase and cancel the leakage
            // (which, lacking a cooling mechanism, costs the same magnitude in
            // additional bias).
            total += self.heater.power_for_phase(Radians::new(own + leaked));
        }
        Ok(MilliWatts::new(total))
    }

    /// Power saving factor of TED relative to naive tuning for the given
    /// targets (naive / TED; values above 1 mean TED is cheaper).
    ///
    /// # Errors
    ///
    /// Propagates errors from [`TedSolver::solve`] and
    /// [`TedSolver::naive_power`].
    pub fn saving_factor(&self, targets: &[Radians]) -> Result<f64> {
        let ted = self.solve(targets)?.total_power.value();
        let naive = self.naive_power(targets)?.value();
        if ted <= 0.0 {
            return Ok(f64::INFINITY);
        }
        Ok(naive / ted)
    }

    /// Applies `C⁻¹` to a vector through the eigen-decomposition, flooring
    /// eigenvalues to keep dense banks finite.  `coefficients` and `out` are
    /// caller-owned scratch, reused across calls.
    fn apply_inverse_into(
        &self,
        x: &[f64],
        coefficients: &mut Vec<f64>,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        self.decomposition.project_into(x, coefficients)?;
        for (c, &l) in coefficients
            .iter_mut()
            .zip(self.decomposition.eigenvalues.iter())
        {
            *c /= l.max(EIGENVALUE_FLOOR);
        }
        self.decomposition.reconstruct_into(coefficients, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crosslight_photonics::thermal::ThermalCrosstalkModel;
    use crosslight_photonics::units::Micrometers;

    fn solver_at_spacing(count: usize, spacing_um: f64) -> TedSolver {
        let matrix = ThermalCrosstalkModel::default()
            .crosstalk_matrix(count, Micrometers::new(spacing_um))
            .unwrap();
        TedSolver::with_table_ii_heater(&matrix).unwrap()
    }

    fn uniform_targets(count: usize, phase: f64) -> Vec<Radians> {
        vec![Radians::new(phase); count]
    }

    fn varied_targets(count: usize) -> Vec<Radians> {
        // Deterministic but heterogeneous FPV-like targets in [0.2, 1.0] rad.
        (0..count)
            .map(|i| Radians::new(0.2 + 0.8 * (0.5 + 0.5 * ((i as f64) * 1.3).sin())))
            .collect()
    }

    #[test]
    fn solution_realises_targets_through_crosstalk() {
        let solver = solver_at_spacing(10, 5.0);
        let targets = varied_targets(10);
        let solution = solver.solve(&targets).unwrap();
        // Propagating the heater phases through the crosstalk matrix must give
        // the targets plus the (non-negative) common-mode offset.
        let applied: Vec<f64> = solution.heater_phases.iter().map(|p| p.value()).collect();
        let realised = solver.matrix.mul_vec(&applied).unwrap();
        for (i, r) in realised.iter().enumerate() {
            let expected = targets[i].value() + solution.common_mode_offset.value();
            assert!(
                (r - expected).abs() < 1e-6,
                "MR {i}: realised {r}, expected {expected}"
            );
        }
    }

    #[test]
    fn heater_phases_are_non_negative() {
        for spacing in [1.0, 2.0, 5.0, 10.0, 25.0] {
            let solver = solver_at_spacing(10, spacing);
            let solution = solver.solve(&varied_targets(10)).unwrap();
            for p in &solution.heater_phases {
                assert!(p.value() >= -1e-12, "negative heater phase at {spacing} um");
            }
        }
    }

    #[test]
    fn ted_is_cheaper_than_naive_at_practical_spacings() {
        for spacing in [3.0, 5.0, 10.0, 15.0] {
            let solver = solver_at_spacing(10, spacing);
            let targets = varied_targets(10);
            let saving = solver.saving_factor(&targets).unwrap();
            assert!(
                saving > 1.0,
                "TED should save power at {spacing} um (factor {saving})"
            );
        }
    }

    #[test]
    fn ted_power_has_minimum_at_intermediate_spacing() {
        // Reproduce the Fig. 4 U-shape: power at the 5 µm operating point is
        // lower than at both much tighter and much wider spacings.
        let targets = varied_targets(10);
        let power_at = |spacing: f64| {
            solver_at_spacing(10, spacing)
                .solve(&targets)
                .unwrap()
                .total_power
                .value()
        };
        let tight = power_at(1.0);
        let optimal = power_at(5.0);
        let wide = power_at(20.0);
        assert!(
            optimal < tight,
            "5 um ({optimal}) should beat 1 um ({tight})"
        );
        assert!(
            optimal < wide,
            "5 um ({optimal}) should beat 20 um ({wide})"
        );
    }

    #[test]
    fn naive_power_grows_as_spacing_shrinks() {
        let targets = varied_targets(10);
        let naive_at = |spacing: f64| {
            solver_at_spacing(10, spacing)
                .naive_power(&targets)
                .unwrap()
                .value()
        };
        assert!(naive_at(2.0) > naive_at(5.0));
        assert!(naive_at(5.0) > naive_at(15.0));
    }

    #[test]
    fn uniform_targets_benefit_from_dense_packing() {
        // With identical targets there is no differential component, so the
        // collective solution gets cheaper as crosstalk increases.
        let targets = uniform_targets(10, 0.8);
        let dense = solver_at_spacing(10, 2.0)
            .solve(&targets)
            .unwrap()
            .total_power;
        let sparse = solver_at_spacing(10, 20.0)
            .solve(&targets)
            .unwrap()
            .total_power;
        assert!(dense.value() < sparse.value());
    }

    #[test]
    fn far_spacing_converges_to_independent_tuning() {
        let solver = solver_at_spacing(8, 100.0);
        let targets = varied_targets(8);
        let ted = solver.solve(&targets).unwrap().total_power.value();
        let independent: f64 = targets
            .iter()
            .map(|t| Microheater::table_ii().power_for_phase(*t))
            .sum();
        assert!((ted - independent).abs() / independent < 1e-3);
        let naive = solver.naive_power(&targets).unwrap().value();
        assert!((naive - independent).abs() / independent < 1e-3);
    }

    #[test]
    fn solve_with_matches_solve_and_reuses_one_workspace_across_bank_sizes() {
        let mut workspace = TedWorkspace::new();
        assert!(workspace.solution().is_none());
        for (count, spacing) in [(10usize, 2.0), (10, 5.0), (6, 8.0), (15, 5.0)] {
            let solver = solver_at_spacing(count, spacing);
            let targets = varied_targets(count);
            let expected = solver.solve(&targets).unwrap();
            let got = solver.solve_with(&targets, &mut workspace).unwrap();
            assert_eq!(*got, expected);
            assert_eq!(workspace.solution(), Some(&expected));
        }
        let solver = solver_at_spacing(4, 5.0);
        assert!(solver
            .solve_with(&varied_targets(5), &mut workspace)
            .is_err());
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let solver = solver_at_spacing(5, 5.0);
        assert!(solver.solve(&uniform_targets(4, 0.1)).is_err());
        assert!(solver.naive_power(&uniform_targets(6, 0.1)).is_err());
    }

    #[test]
    fn zero_targets_cost_nothing() {
        let solver = solver_at_spacing(6, 5.0);
        let solution = solver.solve(&uniform_targets(6, 0.0)).unwrap();
        assert!(solution.total_power.value() < 1e-9);
        assert!(solver
            .saving_factor(&uniform_targets(6, 0.0))
            .unwrap()
            .is_infinite());
    }
}
