//! # crosslight-tuning
//!
//! Tuning-circuit substrate for the CrossLight reproduction (paper §IV.B).
//!
//! Microring resonators drift away from their design resonance because of
//! fabrication-process variations and temperature changes, and they must also
//! be actively detuned to imprint weight/activation values.  This crate models
//! the circuits that do that work:
//!
//! * [`eo`] — electro-optic tuners: nanosecond latency, microwatt-per-nm
//!   power, but a limited tuning range.
//! * [`to`] — thermo-optic tuners: microsecond latency, milliwatt-scale
//!   power, full free-spectral-range reach.
//! * [`hybrid`] — the paper's hybrid policy: TO tuning for the large one-time
//!   FPV/thermal compensations, EO tuning for the fast per-value shifts.
//! * [`eigen`] — a dependency-free Jacobi eigen-solver for the symmetric
//!   thermal-crosstalk matrices.
//! * [`ted`] — Thermal Eigenmode Decomposition: collective tuning of a whole
//!   MR bank through the eigenbasis of its crosstalk matrix, cancelling
//!   thermal crosstalk at much lower power (paper Fig. 4).
//! * [`power`] — bank-level tuning-power accounting used by the architecture
//!   simulator.
//! * [`schedule`] — the boot-time / runtime tuning workflow described at the
//!   end of §IV.B.
//!
//! # Example
//!
//! ```
//! use crosslight_tuning::hybrid::HybridTuner;
//! use crosslight_photonics::units::Nanometers;
//!
//! let tuner = HybridTuner::paper();
//! // A small value-imprinting shift is handled electro-optically…
//! let fast = tuner.plan_shift(Nanometers::new(0.05));
//! assert!(fast.is_electro_optic());
//! // …while a large FPV compensation falls back to the thermo-optic heater.
//! let slow = tuner.plan_shift(Nanometers::new(3.0));
//! assert!(!slow.is_electro_optic());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod eigen;
pub mod eo;
pub mod error;
pub mod hybrid;
pub mod power;
pub mod schedule;
pub mod ted;
pub mod to;

pub use error::TuningError;
pub use hybrid::{HybridTuner, TuningPlan};
pub use ted::{TedSolver, TedWorkspace};
