//! Boot-time and runtime tuning workflow (paper §IV.B, last paragraph).
//!
//! The paper's circuit-level workflow is:
//!
//! 1. **Boot**: a one-time thermo-optic compensation of design-time FPV drift
//!    is applied to every MR (the required shifts were characterised offline
//!    during the test phase).
//! 2. **Boot**: the pre-computed crosstalk-cancelling phase offsets (TED) are
//!    applied.
//! 3. **Runtime**: vector values are imprinted electro-optically on every
//!    vector operation.
//! 4. **Runtime (rare)**: if a large ambient temperature shift is observed, a
//!    one-time TO recalibration runs again.
//!
//! [`TuningSchedule`] captures this state machine so the architecture
//! simulator can charge the right latency to the right phase (boot-time work
//! never appears in the per-inference latency).

use serde::{Deserialize, Serialize};

use crosslight_photonics::units::{Nanometers, Seconds};

use crate::hybrid::HybridTuner;

/// Threshold of ambient resonance drift beyond which a runtime TO
/// recalibration is triggered (comparable to the EO range, since anything
/// smaller can be absorbed electro-optically).
pub const RECALIBRATION_THRESHOLD_NM: f64 = 0.4;

/// Phases of the tuning lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TuningPhase {
    /// The accelerator has not been calibrated yet.
    Uncalibrated,
    /// Boot-time FPV + crosstalk calibration has completed; the accelerator is
    /// serving inferences.
    Online,
}

/// A record of one calibration or recalibration event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationEvent {
    /// Drift magnitude that was compensated.
    pub compensated_shift: Nanometers,
    /// Latency of the event (thermo-optic settling).
    pub latency: Seconds,
}

/// The tuning lifecycle state machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningSchedule {
    tuner: HybridTuner,
    phase: TuningPhase,
    calibrations: Vec<CalibrationEvent>,
}

impl TuningSchedule {
    /// Creates a schedule for the paper's hybrid tuner, still uncalibrated.
    #[must_use]
    pub fn new(tuner: HybridTuner) -> Self {
        Self {
            tuner,
            phase: TuningPhase::Uncalibrated,
            calibrations: Vec::new(),
        }
    }

    /// Returns the current lifecycle phase.
    #[must_use]
    pub fn phase(&self) -> TuningPhase {
        self.phase
    }

    /// Returns all calibration events so far.
    #[must_use]
    pub fn calibrations(&self) -> &[CalibrationEvent] {
        &self.calibrations
    }

    /// Performs the boot-time calibration: one TO settling event that absorbs
    /// the FPV drift, after which the accelerator is online.
    pub fn boot_calibrate(&mut self, fpv_drift: Nanometers) -> CalibrationEvent {
        let event = CalibrationEvent {
            compensated_shift: fpv_drift,
            latency: self.tuner.to().latency(),
        };
        self.calibrations.push(event);
        self.phase = TuningPhase::Online;
        event
    }

    /// Reports an observed ambient drift.  Returns `Some(event)` if it was
    /// large enough to require a TO recalibration, `None` if the EO circuit
    /// absorbs it for free.
    ///
    /// # Panics
    ///
    /// Panics if called before [`TuningSchedule::boot_calibrate`]; runtime
    /// drift handling only makes sense once the accelerator is online.
    pub fn observe_ambient_drift(&mut self, drift: Nanometers) -> Option<CalibrationEvent> {
        assert!(
            self.phase == TuningPhase::Online,
            "ambient drift observed before boot calibration"
        );
        if drift.abs().value() <= RECALIBRATION_THRESHOLD_NM {
            return None;
        }
        let event = CalibrationEvent {
            compensated_shift: drift,
            latency: self.tuner.to().latency(),
        };
        self.calibrations.push(event);
        Some(event)
    }

    /// Latency charged to every vector operation for value imprinting (the EO
    /// settling time) once the system is online.
    #[must_use]
    pub fn per_operation_latency(&self) -> Seconds {
        self.tuner.eo().latency()
    }

    /// Total latency spent in calibration events so far (boot + runtime).
    #[must_use]
    pub fn total_calibration_latency(&self) -> Seconds {
        self.calibrations.iter().map(|c| c.latency).sum()
    }
}

impl Default for TuningSchedule {
    fn default() -> Self {
        Self::new(HybridTuner::paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_calibration_brings_accelerator_online() {
        let mut schedule = TuningSchedule::default();
        assert_eq!(schedule.phase(), TuningPhase::Uncalibrated);
        let event = schedule.boot_calibrate(Nanometers::new(2.1));
        assert_eq!(schedule.phase(), TuningPhase::Online);
        assert!((event.latency.to_micros() - 4.0).abs() < 1e-9);
        assert_eq!(schedule.calibrations().len(), 1);
    }

    #[test]
    fn small_ambient_drift_is_absorbed_without_recalibration() {
        let mut schedule = TuningSchedule::default();
        schedule.boot_calibrate(Nanometers::new(2.1));
        assert!(schedule
            .observe_ambient_drift(Nanometers::new(0.1))
            .is_none());
        assert_eq!(schedule.calibrations().len(), 1);
    }

    #[test]
    fn large_ambient_drift_triggers_to_recalibration() {
        let mut schedule = TuningSchedule::default();
        schedule.boot_calibrate(Nanometers::new(2.1));
        let event = schedule.observe_ambient_drift(Nanometers::new(1.5));
        assert!(event.is_some());
        assert_eq!(schedule.calibrations().len(), 2);
        assert!((schedule.total_calibration_latency().to_micros() - 8.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "before boot calibration")]
    fn runtime_drift_before_boot_panics() {
        let mut schedule = TuningSchedule::default();
        let _ = schedule.observe_ambient_drift(Nanometers::new(1.0));
    }

    #[test]
    fn per_operation_latency_is_the_eo_latency() {
        let schedule = TuningSchedule::default();
        assert!((schedule.per_operation_latency().to_nanos() - 20.0).abs() < 1e-9);
    }
}
