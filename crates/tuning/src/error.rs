//! Error types for the tuning substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by tuning-circuit models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TuningError {
    /// A requested resonance shift exceeds the range of the selected tuner.
    ShiftOutOfRange {
        /// Requested shift magnitude in nanometres.
        requested_nm: f64,
        /// Maximum shift the tuner can produce in nanometres.
        max_nm: f64,
    },
    /// A matrix passed to the eigen-solver or TED was malformed.
    InvalidMatrix {
        /// Explanation of the problem.
        reason: String,
    },
    /// Mismatched vector length (e.g. phase targets vs. bank size).
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Length that was provided.
        actual: usize,
    },
    /// The Jacobi eigen-solver failed to converge within its sweep limit.
    EigenNotConverged {
        /// Off-diagonal norm remaining when the sweep limit was hit.
        off_diagonal_norm: f64,
    },
}

impl fmt::Display for TuningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShiftOutOfRange {
                requested_nm,
                max_nm,
            } => write!(
                f,
                "requested shift of {requested_nm} nm exceeds the tuner range of {max_nm} nm"
            ),
            Self::InvalidMatrix { reason } => write!(f, "invalid matrix: {reason}"),
            Self::DimensionMismatch { expected, actual } => {
                write!(f, "expected a vector of length {expected}, got {actual}")
            }
            Self::EigenNotConverged { off_diagonal_norm } => write!(
                f,
                "eigen-solver did not converge (off-diagonal norm {off_diagonal_norm})"
            ),
        }
    }
}

impl Error for TuningError {}

/// Convenience result alias for tuning operations.
pub type Result<T> = std::result::Result<T, TuningError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        let errors = [
            TuningError::ShiftOutOfRange {
                requested_nm: 3.0,
                max_nm: 1.0,
            },
            TuningError::InvalidMatrix {
                reason: "not symmetric".into(),
            },
            TuningError::DimensionMismatch {
                expected: 10,
                actual: 3,
            },
            TuningError::EigenNotConverged {
                off_diagonal_norm: 0.1,
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TuningError>();
    }
}
