//! # crosslight-runtime
//!
//! A concurrent batched evaluation service over the CrossLight simulator —
//! the serving layer that turns one-shot `CrossLightSimulator::evaluate`
//! calls into production-style request traffic for design-space sweeps and
//! repeated workloads.
//!
//! The request lifecycle is **submit → shard → evaluate/cache → collect**:
//!
//! 1. **submit** — callers hand [`EvalService::submit_batch`](pool::EvalService::submit_batch)
//!    a stream of [`EvalRequest`](request::EvalRequest)s, usually produced by
//!    the [`SweepPlanner`](planner::SweepPlanner).
//! 2. **shard** — each request is routed to a worker thread by the
//!    platform-stable fingerprint of its canonical cache key
//!    ([`CacheKey`](cache::CacheKey)), so identical requests serialize on one
//!    worker and distinct design points spread across the pool.
//! 3. **evaluate/cache** — the worker answers from the memoizing
//!    [`ShardedCache`](cache::ShardedCache) when possible; otherwise it
//!    evaluates with a per-configuration
//!    [`PreparedSimulator`](crosslight_core::simulator::PreparedSimulator)
//!    (power/area/resolution computed once per configuration) and caches the
//!    report.
//! 4. **collect** — responses return in request order, each tagged with the
//!    serving worker and hit/miss provenance.
//!
//! The service is *transparent*: reports are bit-identical to serial
//! [`CrossLightSimulator`](crosslight_core::simulator::CrossLightSimulator)
//! evaluation for every worker count, batch partitioning and cache state.
//! See `RUNTIME.md` at the repository root for the full design.
//!
//! Requests are architecture-generic: an
//! [`EvalRequest`](request::EvalRequest) carries an
//! [`ArchSpec`](crosslight_baselines::ArchSpec), so one pool serves
//! CrossLight design points and every other backend in the architecture zoo
//! (DEAP-CNN, HolyLight, electronic platforms, the symmetric MRR crossbar,
//! LiteCON) through the same cache, routing and counters.  CrossLight-only
//! traffic is unchanged: keys, fingerprints and reports are bit-identical to
//! the CrossLight-specific runtime this layer generalizes.
//!
//! # Example
//!
//! ```
//! use crosslight_runtime::prelude::*;
//! use crosslight_core::variants::CrossLightVariant;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let service = EvalService::new(RuntimeOptions::default().with_workers(4));
//! let requests = SweepPlanner::new()
//!     .variants(&CrossLightVariant::all())
//!     .repeats(2)
//!     .plan()?;
//! let responses = service.submit_batch(requests)?;
//! assert_eq!(responses.len(), 32);
//! let stats = service.stats();
//! assert_eq!(stats.cache_hits, 16); // the second repeat is free
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod error;
pub mod planner;
pub mod pool;
pub mod request;

pub use cache::{CacheKey, ShardedCache};
pub use error::RuntimeError;
pub use planner::SweepPlanner;
pub use pool::{CancelToken, EvalService, RuntimeOptions, RuntimeStats};
pub use request::{EvalRequest, EvalResponse};

/// Convenient re-exports for downstream users.
pub mod prelude {
    pub use crate::cache::CacheKey;
    pub use crate::error::RuntimeError;
    pub use crate::planner::SweepPlanner;
    pub use crate::pool::{CancelToken, EvalService, RuntimeOptions, RuntimeStats};
    pub use crate::request::{EvalRequest, EvalResponse};
}
