//! Deterministic expansion of scenario grids into request streams.
//!
//! Design-space studies (the paper's Fig. 6, Table III, and the follow-up
//! sweeps the ROADMAP targets) all have the same shape: a cartesian grid of
//! scenario axes — architecture dimensions × design variants × resolutions ×
//! models — evaluated point by point.  [`SweepPlanner`] expands such a grid
//! into a `Vec<EvalRequest>` with a fixed ordering (architectures outermost,
//! then variants, resolutions, models; the whole grid repeated `repeats`
//! times), so the same plan always produces the same stream and responses
//! can be correlated by position or sequential id.
//!
//! Cross-architecture studies add a [`backends`](SweepPlanner::backends)
//! axis: non-CrossLight [`ArchSpec`] backends appended *after* the CrossLight
//! grid of each repeat (each backend crossed with the model axis), so a plan
//! with no backends is byte-identical to a pre-zoo plan.
//!
//! Workloads are built once per model and shared across every request via
//! `Arc`, so planning a thousand-point sweep costs one workload extraction
//! per model, not per point.

use std::sync::Arc;

use crosslight_baselines::ArchSpec;
use crosslight_core::config::CrossLightConfig;
use crosslight_core::variants::CrossLightVariant;
use crosslight_neural::workload::NetworkWorkload;
use crosslight_neural::zoo::PaperModel;

use crate::error::{Result, RuntimeError};
use crate::request::EvalRequest;

/// Architecture dimensions `(N, K, n, m)` of one candidate design point.
pub type ArchDims = (usize, usize, usize, usize);

/// Builder expanding scenario grids into deterministic request streams.
///
/// # Example
///
/// ```
/// use crosslight_runtime::planner::SweepPlanner;
/// use crosslight_core::variants::CrossLightVariant;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let plan = SweepPlanner::new()
///     .variants(&CrossLightVariant::all())
///     .resolutions(&[16, 8])
///     .plan()?;
/// // 1 architecture × 4 variants × 2 resolutions × 4 models.
/// assert_eq!(plan.len(), 32);
/// assert_eq!(plan[0].id, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPlanner {
    variants: Vec<CrossLightVariant>,
    architectures: Vec<ArchDims>,
    resolutions: Vec<u32>,
    models: Vec<PaperModel>,
    backends: Vec<ArchSpec>,
    repeats: usize,
}

impl SweepPlanner {
    /// A planner covering the paper's default scenario: the best
    /// architecture, the fully optimized variant, 16-bit resolution, and all
    /// four Table I models, once.
    #[must_use]
    pub fn new() -> Self {
        Self {
            variants: vec![CrossLightVariant::OptTed],
            architectures: vec![crosslight_core::config::BEST_CONFIG],
            resolutions: vec![16],
            models: PaperModel::all().to_vec(),
            backends: Vec::new(),
            repeats: 1,
        }
    }

    /// Sets the design variants axis.
    #[must_use]
    pub fn variants(mut self, variants: &[CrossLightVariant]) -> Self {
        self.variants = variants.to_vec();
        self
    }

    /// Sets the architecture-dimension axis (`(N, K, n, m)` tuples).
    #[must_use]
    pub fn architectures(mut self, architectures: &[ArchDims]) -> Self {
        self.architectures = architectures.to_vec();
        self
    }

    /// Sets the energy-accounting resolution axis.
    #[must_use]
    pub fn resolutions(mut self, resolutions: &[u32]) -> Self {
        self.resolutions = resolutions.to_vec();
        self
    }

    /// Sets the model axis.
    #[must_use]
    pub fn models(mut self, models: &[PaperModel]) -> Self {
        self.models = models.to_vec();
        self
    }

    /// Sets the extra-backend axis: architecture-zoo specs appended after the
    /// CrossLight grid of each repeat, each crossed with the model axis.  An
    /// empty slice (the default) leaves the plan byte-identical to a
    /// CrossLight-only sweep.
    #[must_use]
    pub fn backends(mut self, backends: &[ArchSpec]) -> Self {
        self.backends = backends.to_vec();
        self
    }

    /// Replays the whole grid `repeats` times (≥ 1) — the shape of repeated
    /// production traffic, where everything after the first pass should hit
    /// the cache.
    #[must_use]
    pub fn repeats(mut self, repeats: usize) -> Self {
        self.repeats = repeats.max(1);
        self
    }

    /// Number of requests [`SweepPlanner::plan`] will produce.
    #[must_use]
    pub fn request_count(&self) -> usize {
        let crosslight_points =
            self.architectures.len() * self.variants.len() * self.resolutions.len();
        self.repeats * (crosslight_points + self.backends.len()) * self.models.len()
    }

    /// Expands the grid into requests with sequential ids, in the documented
    /// deterministic order.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Scenario`] if any axis is empty or a workload cannot
    /// be extracted; [`RuntimeError::Evaluation`] if an architecture tuple is
    /// invalid.
    pub fn plan(&self) -> Result<Vec<EvalRequest>> {
        if self.request_count() == 0 {
            return Err(RuntimeError::Scenario(
                "every scenario axis must be non-empty".into(),
            ));
        }
        let workloads: Vec<Arc<NetworkWorkload>> = self
            .models
            .iter()
            .map(|model| {
                NetworkWorkload::from_spec(&model.spec())
                    .map(Arc::new)
                    .map_err(|err| {
                        RuntimeError::Scenario(format!("workload extraction failed: {err}"))
                    })
            })
            .collect::<Result<_>>()?;

        let mut requests = Vec::with_capacity(self.request_count());
        for _ in 0..self.repeats {
            for &(n_size, k_size, n_units, m_units) in &self.architectures {
                for variant in &self.variants {
                    for &bits in &self.resolutions {
                        let config = CrossLightConfig::new(
                            n_size,
                            k_size,
                            n_units,
                            m_units,
                            variant.design(),
                        )?
                        .with_resolution_bits(bits);
                        for workload in &workloads {
                            let id = requests.len() as u64;
                            requests
                                .push(EvalRequest::new(config, Arc::clone(workload)).with_id(id));
                        }
                    }
                }
            }
            for backend in &self.backends {
                for workload in &workloads {
                    let id = requests.len() as u64;
                    requests
                        .push(EvalRequest::for_arch(*backend, Arc::clone(workload)).with_id(id));
                }
            }
        }
        Ok(requests)
    }
}

impl Default for SweepPlanner {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_covers_the_four_paper_models_once() {
        let plan = SweepPlanner::new().plan().unwrap();
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.len(), SweepPlanner::new().request_count());
        let names: Vec<&str> = plan.iter().map(|r| r.workload.name.as_str()).collect();
        assert_eq!(names.len(), 4);
        assert!(plan.iter().enumerate().all(|(i, r)| r.id == i as u64));
    }

    #[test]
    fn planning_is_deterministic() {
        let planner = SweepPlanner::new()
            .variants(&CrossLightVariant::all())
            .resolutions(&[16, 8])
            .repeats(2);
        let a = planner.plan().unwrap();
        let b = planner.plan().unwrap();
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), planner.request_count());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.key(), y.key());
        }
        // Repeats replay the same grid: second half mirrors the first.
        let half = a.len() / 2;
        for i in 0..half {
            assert_eq!(a[i].key(), a[half + i].key());
        }
    }

    #[test]
    fn workloads_are_shared_not_cloned() {
        let plan = SweepPlanner::new()
            .variants(&CrossLightVariant::all())
            .plan()
            .unwrap();
        // 4 variants × 4 models: each model's workload is one allocation
        // shared by 4 requests.
        let first = &plan[0].workload;
        let again = &plan[4].workload;
        assert!(Arc::ptr_eq(first, again));
    }

    #[test]
    fn backends_extend_the_grid_after_the_crosslight_points() {
        let zoo = ArchSpec::zoo_defaults();
        let backends: Vec<ArchSpec> = zoo
            .iter()
            .filter(|s| s.crosslight_config().is_none())
            .copied()
            .collect();
        let baseline = SweepPlanner::new().plan().unwrap();
        let planner = SweepPlanner::new().backends(&backends).repeats(2);
        let plan = planner.plan().unwrap();
        // Per repeat: 4 CrossLight points + backends × 4 models.
        let per_repeat = 4 + backends.len() * 4;
        assert_eq!(plan.len(), 2 * per_repeat);
        assert_eq!(plan.len(), planner.request_count());
        assert!(plan.iter().enumerate().all(|(i, r)| r.id == i as u64));
        // The CrossLight prefix is unchanged by the backend axis.
        for (a, b) in baseline.iter().zip(&plan) {
            assert_eq!(a.key(), b.key());
        }
        // The appended points carry the zoo specs, models innermost.
        assert_eq!(plan[4].arch, backends[0]);
        assert_eq!(plan[4].workload.name, plan[0].workload.name);
        // Repeats replay the whole extended grid.
        for i in 0..per_repeat {
            assert_eq!(plan[i].key(), plan[per_repeat + i].key());
        }
    }

    #[test]
    fn empty_axes_and_invalid_architectures_are_rejected() {
        assert!(matches!(
            SweepPlanner::new().models(&[]).plan(),
            Err(RuntimeError::Scenario(_))
        ));
        assert!(matches!(
            SweepPlanner::new()
                .architectures(&[(150, 20, 100, 60)])
                .plan(),
            Err(RuntimeError::Evaluation(_))
        ));
    }
}
