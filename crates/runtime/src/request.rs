//! The request/response vocabulary of the evaluation service.
//!
//! An [`EvalRequest`] names one `(configuration, workload)` point; the
//! service answers each with an [`EvalResponse`] carrying the full
//! [`SimulationReport`] plus provenance (which worker, cache hit or miss).
//! Workloads are shared via [`Arc`] so a sweep over thousands of
//! configurations does not clone the per-layer job lists thousands of times.

use std::sync::Arc;

use crosslight_core::config::CrossLightConfig;
use crosslight_core::simulator::SimulationReport;
use crosslight_neural::workload::NetworkWorkload;

use crate::cache::CacheKey;

/// One evaluation request: a configuration applied to a workload.
#[derive(Debug, Clone)]
pub struct EvalRequest {
    /// Caller-chosen correlation id, echoed verbatim on the response.  The
    /// service itself orders responses by submission position, so the id is
    /// purely for stream bookkeeping (the planner assigns sequential ids).
    pub id: u64,
    /// Accelerator configuration to simulate.
    pub config: CrossLightConfig,
    /// Workload to evaluate, shared across requests.
    pub workload: Arc<NetworkWorkload>,
}

impl EvalRequest {
    /// Creates a request with id 0.
    #[must_use]
    pub fn new(config: CrossLightConfig, workload: Arc<NetworkWorkload>) -> Self {
        Self {
            id: 0,
            config,
            workload,
        }
    }

    /// Returns a copy with the given correlation id.
    #[must_use]
    pub fn with_id(mut self, id: u64) -> Self {
        self.id = id;
        self
    }

    /// The canonical cache key of this request.
    #[must_use]
    pub fn key(&self) -> CacheKey {
        CacheKey::new(&self.config, Arc::clone(&self.workload))
    }
}

/// The service's answer to one [`EvalRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct EvalResponse {
    /// Correlation id copied from the request.
    pub id: u64,
    /// The simulation result — bit-identical to a direct
    /// `CrossLightSimulator::evaluate` call for the same request.
    pub report: SimulationReport,
    /// Whether the report was served from the memoizing cache.
    pub cache_hit: bool,
    /// Index of the worker that served the request.
    pub worker: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crosslight_neural::zoo::PaperModel;

    #[test]
    fn requests_share_workloads_and_carry_ids() {
        let workload =
            Arc::new(NetworkWorkload::from_spec(&PaperModel::Lenet5SignMnist.spec()).unwrap());
        let a = EvalRequest::new(CrossLightConfig::paper_best(), Arc::clone(&workload)).with_id(7);
        let b = EvalRequest::new(CrossLightConfig::paper_best(), Arc::clone(&workload));
        assert_eq!(a.id, 7);
        assert_eq!(b.id, 0);
        assert_eq!(a.key(), b.key());
        assert_eq!(Arc::strong_count(&workload), 3);
    }
}
