//! The request/response vocabulary of the evaluation service.
//!
//! An [`EvalRequest`] names one `(architecture, workload)` point; the
//! service answers each with an [`EvalResponse`] carrying the full
//! [`SimulationReport`] plus provenance (which worker, cache hit or miss).
//! The architecture is an [`ArchSpec`], so the same request stream can mix
//! CrossLight design points with any other backend in the zoo; the
//! [`EvalRequest::new`] constructor keeps the original CrossLight-only
//! calling convention working unchanged.  Workloads are shared via [`Arc`]
//! so a sweep over thousands of configurations does not clone the per-layer
//! job lists thousands of times.

use std::sync::Arc;

use crosslight_baselines::ArchSpec;
use crosslight_core::config::CrossLightConfig;
use crosslight_core::simulator::SimulationReport;
use crosslight_neural::workload::NetworkWorkload;
use crosslight_telemetry::RequestTrace;

use crate::cache::CacheKey;

/// One evaluation request: an architecture applied to a workload.
#[derive(Debug, Clone)]
pub struct EvalRequest {
    /// Caller-chosen correlation id, echoed verbatim on the response.  The
    /// service itself orders responses by submission position, so the id is
    /// purely for stream bookkeeping (the planner assigns sequential ids).
    pub id: u64,
    /// Accelerator architecture to simulate.
    pub arch: ArchSpec,
    /// Workload to evaluate, shared across requests.
    pub workload: Arc<NetworkWorkload>,
}

impl EvalRequest {
    /// Creates a CrossLight request with id 0.
    #[must_use]
    pub fn new(config: CrossLightConfig, workload: Arc<NetworkWorkload>) -> Self {
        Self::for_arch(ArchSpec::CrossLight(config), workload)
    }

    /// Creates a request for any architecture in the zoo, with id 0.
    #[must_use]
    pub fn for_arch(arch: ArchSpec, workload: Arc<NetworkWorkload>) -> Self {
        Self {
            id: 0,
            arch,
            workload,
        }
    }

    /// Returns a copy with the given correlation id.
    #[must_use]
    pub fn with_id(mut self, id: u64) -> Self {
        self.id = id;
        self
    }

    /// The CrossLight configuration of this request, when it names a
    /// CrossLight design point.
    #[must_use]
    pub fn config(&self) -> Option<CrossLightConfig> {
        self.arch.crosslight_config().copied()
    }

    /// The canonical cache key of this request.
    #[must_use]
    pub fn key(&self) -> CacheKey {
        CacheKey::for_arch(&self.arch, Arc::clone(&self.workload))
    }
}

/// The service's answer to one [`EvalRequest`].
#[derive(Debug, Clone)]
pub struct EvalResponse {
    /// Correlation id copied from the request.
    pub id: u64,
    /// The simulation result — bit-identical to a direct
    /// `CrossLightSimulator::evaluate` call for CrossLight requests, and to
    /// `ArchSpec::simulate` for every other backend.
    pub report: SimulationReport,
    /// Whether the report was served from the memoizing cache.
    pub cache_hit: bool,
    /// Index of the worker that served the request.
    pub worker: usize,
    /// The sampled phase timeline, present only when the submitter attached
    /// a trace (see `EvalService::submit_traced`).  Boxed so the untraced
    /// common case pays one pointer of space.
    pub trace: Option<Box<RequestTrace>>,
}

impl PartialEq for EvalResponse {
    /// Traces are timing provenance, not part of the result: two responses
    /// compare equal when the simulation outcome does, which keeps
    /// "traced == untraced" equivalence assertions meaningful.
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
            && self.report == other.report
            && self.cache_hit == other.cache_hit
            && self.worker == other.worker
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crosslight_neural::zoo::PaperModel;

    #[test]
    fn requests_share_workloads_and_carry_ids() {
        let workload =
            Arc::new(NetworkWorkload::from_spec(&PaperModel::Lenet5SignMnist.spec()).unwrap());
        let a = EvalRequest::new(CrossLightConfig::paper_best(), Arc::clone(&workload)).with_id(7);
        let b = EvalRequest::new(CrossLightConfig::paper_best(), Arc::clone(&workload));
        assert_eq!(a.id, 7);
        assert_eq!(b.id, 0);
        assert_eq!(a.key(), b.key());
        assert_eq!(Arc::strong_count(&workload), 3);
    }

    #[test]
    fn crosslight_requests_expose_their_config_and_zoo_requests_do_not() {
        let workload =
            Arc::new(NetworkWorkload::from_spec(&PaperModel::CnnCifar10.spec()).unwrap());
        let crosslight = EvalRequest::new(CrossLightConfig::paper_best(), Arc::clone(&workload));
        assert_eq!(crosslight.config(), Some(CrossLightConfig::paper_best()));
        // The compat constructor and the generic one agree on keys.
        let generic = EvalRequest::for_arch(
            ArchSpec::CrossLight(CrossLightConfig::paper_best()),
            Arc::clone(&workload),
        );
        assert_eq!(crosslight.key(), generic.key());

        let zoo = EvalRequest::for_arch(ArchSpec::zoo_defaults()[1], Arc::clone(&workload));
        assert_eq!(zoo.config(), None);
        assert_ne!(zoo.key(), crosslight.key());
    }
}
