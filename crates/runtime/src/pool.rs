//! The sharded worker pool behind the evaluation service.
//!
//! [`EvalService`] owns `N` OS threads, each with its own job channel.
//! Requests are dispatched to workers by the platform-stable fingerprint of
//! their cache key, so identical requests always land on the same worker —
//! within one batch the first occurrence computes and every later duplicate
//! is a cache hit, never a redundant recomputation racing on another thread.
//!
//! Two memoization layers serve the hot loop:
//!
//! 1. a pool-wide [`ShardedCache`] of finished `(config, workload)` reports;
//! 2. a pool-wide [`ModelCache`] of the workload-independent analytical
//!    models (per-unit power reports, prepared simulators, resolutions), so a
//!    report-cache miss for a configuration *or sub-configuration* any worker
//!    has seen only recomputes the per-workload inference metrics.  The cache
//!    is shared across workers — and can be shared with callers via
//!    [`EvalService::with_model_cache`] — so batched evaluation, serial
//!    sweeps and parallel sweeps all draw from one set of memoized models.
//!
//! Both layers are transparent: the simulator is deterministic, so responses
//! are bit-identical to serial `CrossLightSimulator::evaluate` calls
//! regardless of worker count, batch partitioning, or hit pattern.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crosslight_baselines::ArchSpec;
use crosslight_core::cache::ModelCache;
use crosslight_core::simulator::CrossLightSimulator;
use crosslight_telemetry::{
    Counter, Gauge, Histogram, Phase, Registry, RegistrySnapshot, RequestTrace, SpanRing,
    TraceSampler,
};

use crate::cache::{CacheKey, ShardedCache};
use crate::error::{Result, RuntimeError};
use crate::request::{EvalRequest, EvalResponse};

/// Tuning knobs of the evaluation service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeOptions {
    /// Number of worker threads (clamped to at least 1).
    pub workers: usize,
    /// Number of independent cache shards (clamped to at least 1).
    pub cache_shards: usize,
    /// Trace every `n`-th batch-submitted request's phase timeline
    /// (`0` disables sampling, `1` traces everything).  Detached
    /// submissions via `submit_traced` carry their own traces and ignore
    /// this knob.
    pub trace_sample_every: u64,
}

impl RuntimeOptions {
    /// Returns a copy with a different worker count.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Returns a copy with a different shard count.
    #[must_use]
    pub fn with_cache_shards(mut self, cache_shards: usize) -> Self {
        self.cache_shards = cache_shards;
        self
    }

    /// Returns a copy with a different trace sampling period.
    #[must_use]
    pub fn with_trace_sampling(mut self, every: u64) -> Self {
        self.trace_sample_every = every;
        self
    }
}

impl Default for RuntimeOptions {
    /// One worker per available core (falling back to 4), 16 cache shards,
    /// trace sampling off.
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4),
            cache_shards: 16,
            trace_sample_every: 0,
        }
    }
}

/// Point-in-time snapshot of the service counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Requests accepted by `submit`/`submit_batch`/`submit_detached`.
    pub submitted: u64,
    /// Requests fully answered.
    pub completed: u64,
    /// Responses served from the result cache.
    pub cache_hits: u64,
    /// Responses that required a fresh evaluation.
    pub cache_misses: u64,
    /// Distinct `(config, workload)` reports currently cached.
    pub cached_entries: usize,
    /// Distinct configurations whose workload-independent models are
    /// memoized in the pool-wide [`ModelCache`].
    pub prepared_configs: usize,
    /// Requests handled by each worker, indexed by worker id.
    pub per_worker: Vec<u64>,
    /// Jobs dispatched to each worker's channel but not yet picked up,
    /// indexed by worker id (a gauge, so the network front-end can report
    /// backlog per shard).
    pub queue_depths: Vec<u64>,
}

impl RuntimeStats {
    /// Fraction of completed lookups served from the cache (0 when idle).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Requests accepted but not yet answered.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.submitted.saturating_sub(self.completed)
    }
}

/// A shared cancellation flag travelling with detached submissions.
///
/// Cancellation is *advisory and queue-level*: a worker checks the token
/// once, at pickup.  A cancelled job is answered with
/// [`RuntimeError::Cancelled`] instead of being evaluated — the hook the
/// network front-end uses to stop burning worker time on requests whose
/// connection already died, and the cluster router's failover path uses to
/// drop re-routed work.  A job that a worker already started is never
/// interrupted (evaluations are short and side-effect-free), so results
/// remain bit-identical whether or not a token races the worker.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Flags every job carrying this token for cancellation.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether the token has been cancelled.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

struct Job {
    tag: u64,
    key: CacheKey,
    request: EvalRequest,
    reply: Sender<(u64, Result<EvalResponse>)>,
    /// Present only for sampled requests; untraced jobs pay one `None`.
    trace: Option<Box<TracedJob>>,
    /// Present only for cancellable detached submissions.
    cancel: Option<CancelToken>,
}

/// What travels down a worker's channel: either a single job or a whole
/// same-worker group from [`EvalService::submit_detached_batch`].  Grouping
/// amortizes the channel synchronization over the group — one send wakes the
/// worker once for N jobs — without changing per-job processing, routing, or
/// results.
enum Dispatch {
    One(Box<Job>),
    Many(Vec<Job>),
}

/// One request of a detached batch submission (see
/// [`EvalService::submit_detached_batch`]).
#[derive(Debug)]
pub struct BatchItem {
    /// Correlation tag echoed on the reply channel.
    pub tag: u64,
    /// The evaluation to run.
    pub request: EvalRequest,
    /// Caller-built trace; workers close queue/cache/prepare/evaluate spans
    /// on it exactly as for [`EvalService::submit_traced`].
    pub trace: Option<Box<RequestTrace>>,
    /// Advisory cancellation token, checked once at pickup.
    pub cancel: Option<CancelToken>,
}

/// A trace travelling with a job, plus the enqueue instant the worker needs
/// to close the queue-wait span.
struct TracedJob {
    trace: RequestTrace,
    enqueued: Instant,
}

/// The service's metric handles, registered once at construction; the hot
/// paths touch only the lock-free handles, never the registry.
#[derive(Debug)]
struct Telemetry {
    registry: Arc<Registry>,
    submitted: Counter,
    completed: Counter,
    cancelled: Counter,
    per_worker: Vec<Counter>,
    queued: Vec<Gauge>,
    worker_busy_ns: Vec<Counter>,
    queue_wait_ns: Histogram,
    cache_lookup_hit_ns: Histogram,
    cache_lookup_miss_ns: Histogram,
    prepare_ns: Histogram,
    evaluate_ns: Histogram,
    traces_sampled: Counter,
    // Scrape-time mirrors of state owned by layers without registry access
    // (see `EvalService::telemetry_snapshot`).
    result_cache_entries: Gauge,
    model_cache_hits: Counter,
    model_cache_misses: Counter,
    model_cache_entries: Gauge,
    spans_dropped: Counter,
    sampler: TraceSampler,
    spans: SpanRing,
}

impl Telemetry {
    fn new(workers: usize, cache: &ShardedCache, options: &RuntimeOptions) -> Self {
        let registry = Arc::new(Registry::new());
        let mut per_worker = Vec::with_capacity(workers);
        let mut queued = Vec::with_capacity(workers);
        let mut worker_busy_ns = Vec::with_capacity(workers);
        for worker in 0..workers {
            let label = worker.to_string();
            per_worker.push(registry.counter_with(
                "runtime_worker_completed_total",
                "Requests answered by each worker.",
                &[("worker", &label)],
            ));
            queued.push(registry.gauge_with(
                "runtime_queue_depth",
                "Jobs dispatched to each worker's channel but not yet picked up.",
                &[("worker", &label)],
            ));
            worker_busy_ns.push(registry.counter_with(
                "runtime_worker_busy_ns_total",
                "Nanoseconds each worker spent serving traced requests.",
                &[("worker", &label)],
            ));
        }
        registry
            .register_counter(
                "runtime_result_cache_hits_total",
                "Result-cache lookups answered from the cache.",
                &[],
                cache.hit_counter(),
            )
            .expect("static metric registration is infallible");
        registry
            .register_counter(
                "runtime_result_cache_misses_total",
                "Result-cache lookups that required a fresh evaluation.",
                &[],
                cache.miss_counter(),
            )
            .expect("static metric registration is infallible");
        registry
            .register_counter(
                "runtime_result_cache_evictions_total",
                "Result-cache evictions (always zero: the cache is unbounded today).",
                &[],
                cache.eviction_counter(),
            )
            .expect("static metric registration is infallible");
        registry
            .gauge("runtime_workers", "Number of worker threads.")
            .set(workers as i64);
        Self {
            submitted: registry.counter(
                "runtime_submitted_total",
                "Requests accepted by submit, submit_batch or submit_detached.",
            ),
            completed: registry.counter("runtime_completed_total", "Requests fully answered."),
            cancelled: registry.counter(
                "runtime_cancelled_total",
                "Jobs answered with Cancelled because their token fired before pickup.",
            ),
            per_worker,
            queued,
            worker_busy_ns,
            queue_wait_ns: registry.histogram(
                "runtime_queue_wait_ns",
                "Time traced requests spent waiting in a worker's queue.",
            ),
            cache_lookup_hit_ns: registry.histogram_with(
                "runtime_cache_lookup_ns",
                "Result-cache probe latency for traced requests, split by outcome.",
                &[("outcome", "hit")],
            ),
            cache_lookup_miss_ns: registry.histogram_with(
                "runtime_cache_lookup_ns",
                "Result-cache probe latency for traced requests, split by outcome.",
                &[("outcome", "miss")],
            ),
            prepare_ns: registry.histogram(
                "runtime_prepare_ns",
                "Analytical-model preparation time for traced cache misses.",
            ),
            evaluate_ns: registry.histogram(
                "runtime_evaluate_ns",
                "Simulator evaluation time for traced cache misses.",
            ),
            traces_sampled: registry.counter(
                "runtime_traces_sampled_total",
                "Batch-submitted requests that carried a sampled trace.",
            ),
            result_cache_entries: registry.gauge(
                "runtime_result_cache_entries",
                "Distinct (architecture, workload) reports currently cached.",
            ),
            model_cache_hits: registry.counter(
                "runtime_model_cache_hits_total",
                "Model-cache hits (mirrored from the core ModelCache at scrape time).",
            ),
            model_cache_misses: registry.counter(
                "runtime_model_cache_misses_total",
                "Model-cache misses (mirrored from the core ModelCache at scrape time).",
            ),
            model_cache_entries: registry.gauge(
                "runtime_model_cache_entries",
                "Distinct configurations with memoized analytical models.",
            ),
            spans_dropped: registry.counter(
                "runtime_trace_spans_dropped_total",
                "Trace exports evicted from the runtime span ring before being drained.",
            ),
            sampler: TraceSampler::new(options.trace_sample_every),
            spans: SpanRing::default(),
            registry,
        }
    }
}

/// The concurrent batched evaluation service.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use crosslight_runtime::pool::{EvalService, RuntimeOptions};
/// use crosslight_runtime::request::EvalRequest;
/// use crosslight_core::config::CrossLightConfig;
/// use crosslight_core::simulator::CrossLightSimulator;
/// use crosslight_neural::workload::NetworkWorkload;
/// use crosslight_neural::zoo::PaperModel;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let service = EvalService::new(RuntimeOptions::default().with_workers(2));
/// let config = CrossLightConfig::paper_best();
/// let workload = Arc::new(NetworkWorkload::from_spec(&PaperModel::Lenet5SignMnist.spec())?);
///
/// let batch = vec![
///     EvalRequest::new(config, Arc::clone(&workload)),
///     EvalRequest::new(config, Arc::clone(&workload)), // duplicate → cache hit
/// ];
/// let responses = service.submit_batch(batch)?;
///
/// let serial = CrossLightSimulator::new(config).evaluate(&workload)?;
/// assert_eq!(responses[0].report, serial); // bit-identical to serial
/// assert!(responses[1].cache_hit);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct EvalService {
    senders: Vec<Sender<Dispatch>>,
    handles: Vec<JoinHandle<()>>,
    cache: Arc<ShardedCache>,
    model_cache: Arc<ModelCache>,
    telemetry: Arc<Telemetry>,
}

impl EvalService {
    /// Spawns the worker pool with a fresh pool-wide [`ModelCache`].
    #[must_use]
    pub fn new(options: RuntimeOptions) -> Self {
        Self::with_model_cache(options, Arc::new(ModelCache::new()))
    }

    /// Spawns the worker pool around an existing [`ModelCache`], so batched
    /// evaluation shares memoized analytical models with work done outside
    /// the pool (a warm-up sweep, a sibling pool, a serial pre-pass).
    #[must_use]
    pub fn with_model_cache(options: RuntimeOptions, model_cache: Arc<ModelCache>) -> Self {
        let workers = options.workers.max(1);
        let cache = Arc::new(ShardedCache::new(options.cache_shards));
        let telemetry = Arc::new(Telemetry::new(workers, &cache, &options));
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for worker in 0..workers {
            let (tx, rx) = mpsc::channel::<Dispatch>();
            let cache = Arc::clone(&cache);
            let models = Arc::clone(&model_cache);
            let telemetry = Arc::clone(&telemetry);
            let handle = std::thread::Builder::new()
                .name(format!("crosslight-runtime-{worker}"))
                .spawn(move || worker_loop(worker, &rx, &cache, &models, &telemetry))
                .expect("spawning a runtime worker thread succeeds");
            senders.push(tx);
            handles.push(handle);
        }
        Self {
            senders,
            handles,
            cache,
            model_cache,
            telemetry,
        }
    }

    /// Spawns a pool with the default options.
    #[must_use]
    pub fn with_defaults() -> Self {
        Self::new(RuntimeOptions::default())
    }

    /// The pool-wide cache of workload-independent analytical models.
    #[must_use]
    pub fn model_cache(&self) -> &Arc<ModelCache> {
        &self.model_cache
    }

    /// The pool-wide memoized result cache.  Exposed so serving layers can
    /// snapshot it for warm-state handoff and restore a transported
    /// snapshot into a freshly started service.
    #[must_use]
    pub fn result_cache(&self) -> &Arc<ShardedCache> {
        &self.cache
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.senders.len()
    }

    /// Evaluates one request (sugar for a one-element batch).
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors; [`RuntimeError::WorkerLost`] if the
    /// pool's threads died.
    pub fn submit(&self, request: EvalRequest) -> Result<EvalResponse> {
        let mut responses = self.submit_batch(vec![request])?;
        responses.pop().ok_or(RuntimeError::WorkerLost)
    }

    /// Fans a batch across the workers and returns the responses in request
    /// order.  Results are bit-identical to evaluating each request serially
    /// with [`CrossLightSimulator::evaluate`], for any worker count and any
    /// partitioning of the stream into batches.
    ///
    /// # Errors
    ///
    /// Returns the first evaluation error, or
    /// [`RuntimeError::WorkerLost`] if a worker thread died mid-batch.
    pub fn submit_batch(&self, requests: Vec<EvalRequest>) -> Result<Vec<EvalResponse>> {
        let expected = requests.len();
        if expected == 0 {
            return Ok(Vec::new());
        }
        let (reply_tx, reply_rx) = mpsc::channel();
        for (index, request) in requests.into_iter().enumerate() {
            let trace = self.telemetry.sampler.sample().then(|| {
                self.telemetry.traces_sampled.inc();
                Box::new(RequestTrace::new(request.id))
            });
            self.dispatch(index as u64, request, &reply_tx, trace, None)?;
        }
        drop(reply_tx);

        let mut responses: Vec<Option<EvalResponse>> = vec![None; expected];
        let mut received = 0;
        while let Ok((tag, outcome)) = reply_rx.recv() {
            responses[tag as usize] = Some(outcome?);
            received += 1;
        }
        if received != expected {
            return Err(RuntimeError::WorkerLost);
        }
        let responses: Vec<EvalResponse> = responses
            .into_iter()
            .map(|r| r.expect("every index answered exactly once"))
            .collect();
        // Export the sampled timelines; batch callers rarely look at the
        // traces on the responses themselves.
        for response in &responses {
            if let Some(trace) = &response.trace {
                self.telemetry.spans.push(trace.to_json_line());
            }
        }
        Ok(responses)
    }

    /// Routes one request to its fingerprint-sharded worker without waiting
    /// for the answer: the worker will eventually send `(tag, outcome)` on
    /// `reply`.  This is the queue hook behind the network front-end
    /// (`crosslight-server`), which keeps many requests in flight per
    /// connection and correlates completions by tag; [`EvalService::submit_batch`]
    /// is a thin collector over the same path, so detached and batched
    /// submissions share routing, caching and counters exactly.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::WorkerLost`] if the target worker's channel is closed
    /// (the pool is shutting down or the worker panicked).  On error the
    /// request was not enqueued and no reply will arrive.
    pub fn submit_detached(
        &self,
        tag: u64,
        request: EvalRequest,
        reply: &Sender<(u64, Result<EvalResponse>)>,
    ) -> Result<()> {
        self.dispatch(tag, request, reply, None, None)
    }

    /// Like [`EvalService::submit_detached`], but the job carries a
    /// [`CancelToken`]: if the token is cancelled before a worker picks the
    /// job up, the job is answered with [`RuntimeError::Cancelled`] instead
    /// of being evaluated.  The front-end uses one token per connection so
    /// queued work for a dead peer is skipped, and the cluster router's
    /// failover path uses it to abandon re-routed duplicates.
    ///
    /// # Errors
    ///
    /// As [`EvalService::submit_detached`].
    pub fn submit_cancellable(
        &self,
        tag: u64,
        request: EvalRequest,
        reply: &Sender<(u64, Result<EvalResponse>)>,
        cancel: CancelToken,
    ) -> Result<()> {
        self.dispatch(tag, request, reply, None, Some(cancel))
    }

    /// Like [`EvalService::submit_detached`], but the request carries a
    /// caller-built [`RequestTrace`]: the workers close queue-wait,
    /// cache-lookup, prepare and evaluate spans on it (also feeding the
    /// runtime phase histograms) and hand it back on the response's
    /// `trace` field.  This is the hook the network front-end uses to time
    /// requests end to end across both processes' thread hops.
    ///
    /// # Errors
    ///
    /// As [`EvalService::submit_detached`]; on error the trace is dropped.
    pub fn submit_traced(
        &self,
        tag: u64,
        request: EvalRequest,
        reply: &Sender<(u64, Result<EvalResponse>)>,
        trace: Box<RequestTrace>,
    ) -> Result<()> {
        self.dispatch(tag, request, reply, Some(trace), None)
    }

    /// [`EvalService::submit_traced`] with a [`CancelToken`] attached (see
    /// [`EvalService::submit_cancellable`]).
    ///
    /// # Errors
    ///
    /// As [`EvalService::submit_detached`]; on error the trace is dropped.
    pub fn submit_traced_cancellable(
        &self,
        tag: u64,
        request: EvalRequest,
        reply: &Sender<(u64, Result<EvalResponse>)>,
        trace: Box<RequestTrace>,
        cancel: CancelToken,
    ) -> Result<()> {
        self.dispatch(tag, request, reply, Some(trace), Some(cancel))
    }

    /// Routes a whole batch of detached requests at once, grouping the jobs
    /// by their fingerprint-sharded target worker so each worker is woken by
    /// a *single* channel send per batch instead of one per request.  This
    /// is the dispatch path behind the server's cross-connection
    /// micro-batcher: routing, caching, tracing and counters are identical
    /// to per-request [`EvalService::submit_detached`], so responses stay
    /// bit-identical for any batch partitioning.
    ///
    /// Every item is answered exactly once on `reply`: by its worker, or —
    /// when the pool is shut down or a worker died — immediately here with
    /// [`RuntimeError::WorkerLost`].  Returns the number of jobs that
    /// reached a live worker's queue.
    pub fn submit_detached_batch(
        &self,
        items: Vec<BatchItem>,
        reply: &Sender<(u64, Result<EvalResponse>)>,
    ) -> usize {
        if items.is_empty() {
            return 0;
        }
        if self.senders.is_empty() {
            for item in items {
                let _ = reply.send((item.tag, Err(RuntimeError::WorkerLost)));
            }
            return 0;
        }
        let workers = self.senders.len();
        let mut groups: Vec<Vec<Job>> = (0..workers).map(|_| Vec::new()).collect();
        for item in items {
            let key = item.request.key();
            let worker = (key.fingerprint() % workers as u64) as usize;
            groups[worker].push(Job {
                tag: item.tag,
                key,
                request: item.request,
                reply: reply.clone(),
                trace: item.trace.map(|trace| {
                    Box::new(TracedJob {
                        trace: *trace,
                        enqueued: Instant::now(),
                    })
                }),
                cancel: item.cancel,
            });
        }
        let mut enqueued = 0;
        for (worker, mut group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let n = group.len();
            self.telemetry.submitted.add(n as u64);
            self.telemetry.queued[worker].add(n as i64);
            let dispatch = if n == 1 {
                Dispatch::One(Box::new(group.pop().expect("group has one job")))
            } else {
                Dispatch::Many(group)
            };
            match self.senders[worker].send(dispatch) {
                Ok(()) => enqueued += n,
                Err(mpsc::SendError(returned)) => {
                    // The group never reached the worker: roll the counters
                    // back and answer each job so the caller's accounting
                    // (admission permits, pending maps) still settles.
                    self.telemetry.queued[worker].sub(n as i64);
                    self.telemetry.submitted.sub(n as u64);
                    let jobs = match returned {
                        Dispatch::One(job) => vec![*job],
                        Dispatch::Many(jobs) => jobs,
                    };
                    for job in jobs {
                        let _ = reply.send((job.tag, Err(RuntimeError::WorkerLost)));
                    }
                }
            }
        }
        enqueued
    }

    fn dispatch(
        &self,
        tag: u64,
        request: EvalRequest,
        reply: &Sender<(u64, Result<EvalResponse>)>,
        trace: Option<Box<RequestTrace>>,
        cancel: Option<CancelToken>,
    ) -> Result<()> {
        if self.senders.is_empty() {
            // The pool has been shut down in place; there is no worker to
            // route to.
            return Err(RuntimeError::WorkerLost);
        }
        let key = request.key();
        let worker = (key.fingerprint() % self.senders.len() as u64) as usize;
        let job = Job {
            tag,
            key,
            request,
            reply: reply.clone(),
            trace: trace.map(|trace| {
                Box::new(TracedJob {
                    trace: *trace,
                    enqueued: Instant::now(),
                })
            }),
            cancel,
        };
        self.telemetry.submitted.inc();
        self.telemetry.queued[worker].add(1);
        self.senders[worker]
            .send(Dispatch::One(Box::new(job)))
            .map_err(|_| {
                // The job never reached a worker: roll the counters back so
                // the gauges cannot drift on a dying pool.
                self.telemetry.queued[worker].sub(1);
                self.telemetry.submitted.sub(1);
                RuntimeError::WorkerLost
            })
    }

    /// Snapshot of the service counters.
    ///
    /// The snapshot is *ordered*: `completed` is read before `submitted`.
    /// A request increments `completed` only after its `submitted`
    /// increment (program order on the submitting thread, then the job
    /// channel's happens-before edge to the worker), and counter reads are
    /// `Acquire`, so the later `submitted` read observes at least every
    /// submission whose completion was already counted — live-traffic
    /// snapshots always satisfy `submitted >= completed`, not just
    /// quiescent ones.
    #[must_use]
    pub fn stats(&self) -> RuntimeStats {
        let completed = self.telemetry.completed.get();
        let submitted = self.telemetry.submitted.get();
        RuntimeStats {
            submitted,
            completed,
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cached_entries: self.cache.len(),
            prepared_configs: self.model_cache.stats().prepared_configs,
            per_worker: self.telemetry.per_worker.iter().map(Counter::get).collect(),
            queue_depths: self
                .telemetry
                .queued
                .iter()
                .map(|gauge| gauge.get().max(0) as u64)
                .collect(),
        }
    }

    /// The runtime's metrics registry (live handles; see
    /// [`EvalService::telemetry_snapshot`] for the scrape path).
    #[must_use]
    pub fn registry(&self) -> &Arc<Registry> {
        &self.telemetry.registry
    }

    /// The ring of sampled trace exports from batch submissions.
    #[must_use]
    pub fn span_ring(&self) -> &SpanRing {
        &self.telemetry.spans
    }

    /// Scrape-consistent snapshot of every runtime metric family.
    ///
    /// Before snapshotting, the mirrors for state owned outside the
    /// registry (result-cache entry count, core `ModelCache` totals, span
    /// ring drops) are synced, so a scrape always sees current values.
    #[must_use]
    pub fn telemetry_snapshot(&self) -> RegistrySnapshot {
        let telemetry = &self.telemetry;
        telemetry.result_cache_entries.set(self.cache.len() as i64);
        let model_stats = self.model_cache.stats();
        telemetry.model_cache_hits.store(model_stats.hits);
        telemetry.model_cache_misses.store(model_stats.misses);
        telemetry
            .model_cache_entries
            .set(model_stats.prepared_configs as i64);
        telemetry.spans_dropped.store(telemetry.spans.dropped());
        telemetry.registry.snapshot()
    }

    /// Stops the workers and waits for them to exit.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for EvalService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn worker_loop(
    worker: usize,
    jobs: &Receiver<Dispatch>,
    cache: &ShardedCache,
    models: &ModelCache,
    telemetry: &Telemetry,
) {
    while let Ok(dispatch) = jobs.recv() {
        match dispatch {
            Dispatch::One(job) => run_job(worker, *job, cache, models, telemetry),
            Dispatch::Many(batch) => {
                for job in batch {
                    run_job(worker, job, cache, models, telemetry);
                }
            }
        }
    }
}

fn run_job(
    worker: usize,
    mut job: Job,
    cache: &ShardedCache,
    models: &ModelCache,
    telemetry: &Telemetry,
) {
    telemetry.queued[worker].sub(1);
    // Cancellation is checked exactly once, at pickup: queued work for
    // a peer that already vanished is skipped without touching the
    // simulator, and the (cheap) answer still flows through the normal
    // reply channel so completion accounting stays exact.
    if job.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
        telemetry.cancelled.inc();
        telemetry.per_worker[worker].inc();
        telemetry.completed.inc();
        let _ = job.reply.send((job.tag, Err(RuntimeError::Cancelled)));
        return;
    }
    // Untraced jobs never read the clock: the trace check is the only
    // per-job overhead on the hot path.
    let picked_up = job.trace.as_ref().map(|_| Instant::now());
    if let (Some(traced), Some(now)) = (job.trace.as_mut(), picked_up) {
        telemetry
            .queue_wait_ns
            .record(now.saturating_duration_since(traced.enqueued).as_nanos() as u64);
        traced.trace.record(Phase::Queue, traced.enqueued, now);
    }
    let outcome = serve(worker, &mut job, cache, models, telemetry);
    if let Some(picked_up) = picked_up {
        telemetry.worker_busy_ns[worker].add(picked_up.elapsed().as_nanos() as u64);
    }
    telemetry.per_worker[worker].inc();
    telemetry.completed.inc();
    // A send error means the batch collector gave up (error fast-path);
    // the remaining jobs still drain so the channel empties.
    let _ = job.reply.send((job.tag, outcome));
}

/// Moves the finished trace out of the job and into the response.
fn take_trace(job: &mut Job) -> Option<Box<RequestTrace>> {
    job.trace.take().map(|traced| Box::new(traced.trace))
}

fn serve(
    worker: usize,
    job: &mut Job,
    cache: &ShardedCache,
    models: &ModelCache,
    telemetry: &Telemetry,
) -> Result<EvalResponse> {
    let lookup_start = job.trace.as_ref().map(|_| Instant::now());
    let cached = cache.get(&job.key);
    if let Some(start) = lookup_start {
        let end = Instant::now();
        let lookup_ns = end.saturating_duration_since(start).as_nanos() as u64;
        if cached.is_some() {
            telemetry.cache_lookup_hit_ns.record(lookup_ns);
        } else {
            telemetry.cache_lookup_miss_ns.record(lookup_ns);
        }
        if let Some(traced) = job.trace.as_mut() {
            traced.trace.record(Phase::CacheLookup, start, end);
        }
    }
    if let Some(report) = cached {
        return Ok(EvalResponse {
            id: job.request.id,
            report,
            cache_hit: true,
            worker,
            trace: take_trace(job),
        });
    }
    let report = match job.request.arch {
        // The pool-wide ModelCache shares the workload-independent breakdowns
        // (and their sub-config unit reports) across all workers, so only the
        // per-workload inference metrics remain per-request work.
        ArchSpec::CrossLight(config) => {
            let prepare_start = job.trace.as_ref().map(|_| Instant::now());
            let prepared = CrossLightSimulator::new(config).prepare_with(models)?;
            let evaluate_start = prepare_start.map(|start| {
                let end = Instant::now();
                telemetry
                    .prepare_ns
                    .record(end.saturating_duration_since(start).as_nanos() as u64);
                if let Some(traced) = job.trace.as_mut() {
                    traced.trace.record(Phase::Prepare, start, end);
                }
                end
            });
            let report = prepared.evaluate(&job.request.workload)?;
            if let Some(start) = evaluate_start {
                let end = Instant::now();
                telemetry
                    .evaluate_ns
                    .record(end.saturating_duration_since(start).as_nanos() as u64);
                if let Some(traced) = job.trace.as_mut() {
                    traced.trace.record(Phase::Evaluate, start, end);
                }
            }
            report
        }
        // The zoo backends are closed-form analytical models; their
        // workload-independent parts are cheap enough that the result cache
        // alone carries the memoization.
        spec => {
            let evaluate_start = job.trace.as_ref().map(|_| Instant::now());
            let report = spec.simulate(&job.request.workload)?;
            if let Some(start) = evaluate_start {
                let end = Instant::now();
                telemetry
                    .evaluate_ns
                    .record(end.saturating_duration_since(start).as_nanos() as u64);
                if let Some(traced) = job.trace.as_mut() {
                    traced.trace.record(Phase::Evaluate, start, end);
                }
            }
            report
        }
    };
    cache.insert(job.key.clone(), report);
    Ok(EvalResponse {
        id: job.request.id,
        report,
        cache_hit: false,
        worker,
        trace: take_trace(job),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crosslight_core::config::CrossLightConfig;
    use crosslight_core::variants::CrossLightVariant;
    use crosslight_neural::workload::NetworkWorkload;
    use crosslight_neural::zoo::PaperModel;

    fn paper_requests() -> Vec<EvalRequest> {
        let mut requests = Vec::new();
        for variant in CrossLightVariant::all() {
            for model in PaperModel::all() {
                let workload = Arc::new(NetworkWorkload::from_spec(&model.spec()).unwrap());
                requests.push(EvalRequest::new(variant.config(), workload));
            }
        }
        requests
    }

    #[test]
    fn batched_responses_match_serial_evaluation_bit_for_bit() {
        let requests = paper_requests();
        let serial: Vec<_> = requests
            .iter()
            .map(|r| {
                CrossLightSimulator::new(r.config().unwrap())
                    .evaluate(&r.workload)
                    .unwrap()
            })
            .collect();
        for workers in [1, 2, 4, 7] {
            let service = EvalService::new(RuntimeOptions::default().with_workers(workers));
            let responses = service.submit_batch(requests.clone()).unwrap();
            assert_eq!(responses.len(), serial.len());
            for (response, expected) in responses.iter().zip(&serial) {
                assert_eq!(response.report, *expected);
                assert!(!response.cache_hit, "first pass must be all misses");
                assert!(response.worker < workers);
            }
            service.shutdown();
        }
    }

    #[test]
    fn duplicate_traffic_is_served_from_the_cache() {
        let service = EvalService::new(RuntimeOptions::default().with_workers(4));
        let requests = paper_requests();
        let first = service.submit_batch(requests.clone()).unwrap();
        let second = service.submit_batch(requests).unwrap();
        assert!(second.iter().all(|r| r.cache_hit));
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.report, b.report);
        }
        let stats = service.stats();
        assert_eq!(stats.submitted, 32);
        assert_eq!(stats.completed, 32);
        assert_eq!(stats.cache_hits, 16);
        assert_eq!(stats.cache_misses, 16);
        assert_eq!(stats.cached_entries, 16);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(stats.per_worker.iter().sum::<u64>(), 32);
    }

    #[test]
    fn duplicates_within_one_batch_hit_after_the_first_occurrence() {
        let service = EvalService::new(RuntimeOptions::default().with_workers(3));
        let workload =
            Arc::new(NetworkWorkload::from_spec(&PaperModel::Lenet5SignMnist.spec()).unwrap());
        let request = EvalRequest::new(CrossLightConfig::paper_best(), workload);
        let responses = service
            .submit_batch(vec![request.clone(), request.clone(), request])
            .unwrap();
        // Key-sharded dispatch serializes identical requests on one worker,
        // so exactly one response computed and two hit.
        let hits = responses.iter().filter(|r| r.cache_hit).count();
        assert_eq!(hits, 2);
        assert_eq!(responses[0].report, responses[1].report);
        assert_eq!(responses[1].report, responses[2].report);
    }

    #[test]
    fn single_submit_and_empty_batches_work() {
        let service = EvalService::new(RuntimeOptions::default().with_workers(2));
        assert!(service.submit_batch(Vec::new()).unwrap().is_empty());
        let workload =
            Arc::new(NetworkWorkload::from_spec(&PaperModel::CnnCifar10.spec()).unwrap());
        let response = service
            .submit(EvalRequest::new(CrossLightConfig::paper_best(), workload).with_id(42))
            .unwrap();
        assert_eq!(response.id, 42);
        assert!(!response.cache_hit);
        assert_eq!(service.workers(), 2);
    }

    #[test]
    fn pool_shares_one_model_cache_across_workers_and_callers() {
        let models = Arc::new(ModelCache::new());
        // Warm the cache outside the pool…
        CrossLightSimulator::new(CrossLightConfig::paper_best())
            .prepare_with(&models)
            .unwrap();
        let service =
            EvalService::with_model_cache(RuntimeOptions::default().with_workers(4), models);
        let responses = service.submit_batch(paper_requests()).unwrap();
        assert_eq!(responses.len(), 16);
        let stats = service.stats();
        // Four paper variants → four prepared configurations, one of which
        // was prepared by the caller before the pool ever ran.
        assert_eq!(stats.prepared_configs, 4);
        assert!(service.model_cache().stats().hits > 0);
    }

    #[test]
    fn detached_submission_matches_batched_and_settles_queue_gauges() {
        let service = EvalService::new(RuntimeOptions::default().with_workers(3));
        let requests = paper_requests();
        let serial: Vec<_> = requests
            .iter()
            .map(|r| {
                CrossLightSimulator::new(r.config().unwrap())
                    .evaluate(&r.workload)
                    .unwrap()
            })
            .collect();
        let (reply_tx, reply_rx) = mpsc::channel();
        for (i, request) in requests.into_iter().enumerate() {
            service
                .submit_detached(1_000 + i as u64, request, &reply_tx)
                .unwrap();
        }
        drop(reply_tx);
        let mut answered = 0;
        while let Ok((tag, outcome)) = reply_rx.recv() {
            let index = (tag - 1_000) as usize;
            assert_eq!(outcome.unwrap().report, serial[index]);
            answered += 1;
        }
        assert_eq!(answered, serial.len());
        let stats = service.stats();
        assert_eq!(stats.submitted, 16);
        assert_eq!(stats.completed, 16);
        assert_eq!(stats.in_flight(), 0);
        // Once every reply has been received, no job is waiting anywhere.
        assert_eq!(stats.queue_depths.len(), 3);
        assert!(stats.queue_depths.iter().all(|&d| d == 0));
    }

    #[test]
    fn detached_batch_dispatch_matches_serial_and_per_request_paths() {
        let requests = paper_requests();
        let serial: Vec<_> = requests
            .iter()
            .map(|r| {
                CrossLightSimulator::new(r.config().unwrap())
                    .evaluate(&r.workload)
                    .unwrap()
            })
            .collect();
        for workers in [1, 3] {
            let service = EvalService::new(RuntimeOptions::default().with_workers(workers));
            let (reply_tx, reply_rx) = mpsc::channel();
            let items: Vec<BatchItem> = requests
                .iter()
                .cloned()
                .enumerate()
                .map(|(i, request)| BatchItem {
                    tag: i as u64,
                    request,
                    trace: Some(Box::new(RequestTrace::new(i as u64))),
                    cancel: Some(CancelToken::new()),
                })
                .collect();
            let enqueued = service.submit_detached_batch(items, &reply_tx);
            assert_eq!(enqueued, requests.len());
            drop(reply_tx);
            let mut answered: Vec<Option<EvalResponse>> = vec![None; requests.len()];
            while let Ok((tag, outcome)) = reply_rx.recv() {
                answered[tag as usize] = Some(outcome.unwrap());
            }
            for (response, expected) in answered.iter().zip(&serial) {
                let response = response.as_ref().expect("every tag answered");
                assert_eq!(response.report, *expected);
                // The worker closed the queue-wait span on the carried trace.
                let trace = response.trace.as_ref().expect("trace travels with job");
                assert!(trace.phase_ns(Phase::Queue).is_some());
            }
            let stats = service.stats();
            assert_eq!(stats.submitted, 16);
            assert_eq!(stats.completed, 16);
            assert!(stats.queue_depths.iter().all(|&d| d == 0));
            service.shutdown();
        }
    }

    #[test]
    fn detached_batch_to_a_shut_down_pool_answers_every_tag() {
        let mut service = EvalService::new(RuntimeOptions::default().with_workers(2));
        service.shutdown_in_place();
        let workload =
            Arc::new(NetworkWorkload::from_spec(&PaperModel::Lenet5SignMnist.spec()).unwrap());
        let (reply_tx, reply_rx) = mpsc::channel();
        let items: Vec<BatchItem> = (0..3)
            .map(|tag| BatchItem {
                tag,
                request: EvalRequest::new(CrossLightConfig::paper_best(), Arc::clone(&workload)),
                trace: None,
                cancel: None,
            })
            .collect();
        let enqueued = service.submit_detached_batch(items, &reply_tx);
        assert_eq!(enqueued, 0);
        drop(reply_tx);
        let mut tags = Vec::new();
        while let Ok((tag, outcome)) = reply_rx.recv() {
            assert_eq!(outcome, Err(RuntimeError::WorkerLost));
            tags.push(tag);
        }
        tags.sort_unstable();
        assert_eq!(tags, [0, 1, 2]);
        let stats = service.stats();
        assert_eq!(stats.submitted, 0);
        assert!(stats.queue_depths.iter().all(|&d| d == 0));
    }

    #[test]
    fn detached_submission_to_a_shut_down_pool_is_rejected() {
        let mut service = EvalService::new(RuntimeOptions::default().with_workers(2));
        service.shutdown_in_place();
        let workload =
            Arc::new(NetworkWorkload::from_spec(&PaperModel::Lenet5SignMnist.spec()).unwrap());
        let (reply_tx, _reply_rx) = mpsc::channel();
        let err = service.submit_detached(
            0,
            EvalRequest::new(CrossLightConfig::paper_best(), workload),
            &reply_tx,
        );
        assert_eq!(err, Err(RuntimeError::WorkerLost));
        let stats = service.stats();
        assert_eq!(stats.submitted, 0);
        assert!(stats.queue_depths.iter().all(|&d| d == 0));
    }

    #[test]
    fn zoo_requests_are_served_identically_to_direct_simulation() {
        let workload =
            Arc::new(NetworkWorkload::from_spec(&PaperModel::CnnCifar10.spec()).unwrap());
        let requests: Vec<EvalRequest> = ArchSpec::zoo_defaults()
            .iter()
            .map(|spec| EvalRequest::for_arch(*spec, Arc::clone(&workload)))
            .collect();
        let direct: Vec<_> = ArchSpec::zoo_defaults()
            .iter()
            .map(|spec| spec.simulate(&workload).unwrap())
            .collect();
        for workers in [1, 3] {
            let service = EvalService::new(RuntimeOptions::default().with_workers(workers));
            let responses = service.submit_batch(requests.clone()).unwrap();
            assert_eq!(responses.len(), direct.len());
            for (response, expected) in responses.iter().zip(&direct) {
                assert_eq!(response.report, *expected);
                assert!(!response.cache_hit);
            }
            // A replay of the mixed-architecture batch is all cache hits.
            let again = service.submit_batch(requests.clone()).unwrap();
            assert!(again.iter().all(|r| r.cache_hit));
            service.shutdown();
        }
    }

    #[test]
    fn sampled_traces_cover_the_worker_phases_and_feed_the_registry() {
        let service = EvalService::new(
            RuntimeOptions::default()
                .with_workers(2)
                .with_trace_sampling(1),
        );
        let requests = paper_requests();
        let first = service.submit_batch(requests.clone()).unwrap();
        let second = service.submit_batch(requests).unwrap();
        // Every response carries a trace; misses add prepare/evaluate spans.
        for response in first.iter().chain(&second) {
            let trace = response.trace.as_ref().expect("sampling every request");
            assert!(trace.phase_ns(Phase::Queue).is_some());
            assert!(trace.phase_ns(Phase::CacheLookup).is_some());
            assert_eq!(
                trace.phase_ns(Phase::Evaluate).is_some(),
                !response.cache_hit
            );
        }
        let snapshot = service.telemetry_snapshot();
        let histogram_count = |name: &str| match snapshot.value(name) {
            Some(crosslight_telemetry::SeriesValue::Histogram(h)) => h.count(),
            other => panic!("{name}: unexpected {other:?}"),
        };
        assert_eq!(histogram_count("runtime_queue_wait_ns"), 32);
        assert_eq!(histogram_count("runtime_evaluate_ns"), 16);
        assert_eq!(histogram_count("runtime_prepare_ns"), 16);
        // The hit/miss lookup split matches the cache counters.
        let lookups = snapshot.family("runtime_cache_lookup_ns").unwrap();
        let by_outcome: Vec<(String, u64)> = lookups
            .series
            .iter()
            .map(|s| match &s.value {
                crosslight_telemetry::SeriesValue::Histogram(h) => {
                    (s.labels[0].1.clone(), h.count())
                }
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(by_outcome, [("hit".into(), 16), ("miss".into(), 16)]);
        match snapshot.value("runtime_result_cache_hits_total") {
            Some(crosslight_telemetry::SeriesValue::Counter(16)) => {}
            other => panic!("unexpected {other:?}"),
        }
        // Every sampled trace was exported to the ring.
        assert_eq!(service.span_ring().len(), 32);
        let line = service.span_ring().drain().remove(0);
        assert!(line.contains("\"phase\":\"queue\""));
        // Traced and untraced results are the same reports.
        let untraced = EvalService::new(RuntimeOptions::default().with_workers(2));
        let plain = untraced.submit_batch(paper_requests()).unwrap();
        assert_eq!(first, plain);
        assert!(plain.iter().all(|r| r.trace.is_none()));
    }

    #[test]
    fn stats_order_keeps_submitted_ahead_of_completed_under_load() {
        let service = Arc::new(EvalService::new(RuntimeOptions::default().with_workers(2)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let submitter = {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let workload = Arc::new(
                    NetworkWorkload::from_spec(&PaperModel::Lenet5SignMnist.spec()).unwrap(),
                );
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let batch: Vec<EvalRequest> = (0..8)
                        .map(|_| {
                            EvalRequest::new(CrossLightConfig::paper_best(), Arc::clone(&workload))
                        })
                        .collect();
                    service.submit_batch(batch).unwrap();
                }
            })
        };
        for _ in 0..2_000 {
            let stats = service.stats();
            assert!(
                stats.submitted >= stats.completed,
                "snapshot went backwards: {} submitted < {} completed",
                stats.submitted,
                stats.completed
            );
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        submitter.join().unwrap();
    }

    #[test]
    fn cancelled_tokens_skip_queued_jobs_and_keep_accounting_exact() {
        let service = EvalService::new(RuntimeOptions::default().with_workers(1));
        let workload =
            Arc::new(NetworkWorkload::from_spec(&PaperModel::Lenet5SignMnist.spec()).unwrap());
        let request = EvalRequest::new(CrossLightConfig::paper_best(), Arc::clone(&workload));
        let (reply_tx, reply_rx) = mpsc::channel();

        // A pre-cancelled token: every job carrying it is answered with
        // Cancelled, never evaluated.
        let cancelled = CancelToken::new();
        cancelled.cancel();
        assert!(cancelled.is_cancelled());
        for tag in 0..4 {
            service
                .submit_cancellable(tag, request.clone(), &reply_tx, cancelled.clone())
                .unwrap();
        }
        // A live token evaluates normally.
        let live = CancelToken::new();
        service
            .submit_cancellable(99, request.clone(), &reply_tx, live.clone())
            .unwrap();
        drop(reply_tx);

        let mut cancelled_seen = 0;
        let mut ok_seen = 0;
        while let Ok((tag, outcome)) = reply_rx.recv() {
            match outcome {
                Err(RuntimeError::Cancelled) => {
                    assert!(tag < 4);
                    cancelled_seen += 1;
                }
                Ok(response) => {
                    assert_eq!(tag, 99);
                    assert_eq!(
                        response.report,
                        CrossLightSimulator::new(CrossLightConfig::paper_best())
                            .evaluate(&workload)
                            .unwrap()
                    );
                    ok_seen += 1;
                }
                Err(other) => panic!("unexpected error {other}"),
            }
        }
        assert_eq!((cancelled_seen, ok_seen), (4, 1));
        assert!(!live.is_cancelled());
        let stats = service.stats();
        // Cancelled jobs still count as completed, so in_flight settles.
        assert_eq!(stats.submitted, 5);
        assert_eq!(stats.completed, 5);
        assert_eq!(stats.in_flight(), 0);
        // Nothing cancelled ever touched the caches.
        assert_eq!(stats.cache_misses, 1);
    }

    #[test]
    fn zero_workers_is_clamped_to_one() {
        let service = EvalService::new(RuntimeOptions {
            workers: 0,
            cache_shards: 0,
            trace_sample_every: 0,
        });
        assert_eq!(service.workers(), 1);
        let workload = Arc::new(NetworkWorkload::from_spec(&PaperModel::CnnStl10.spec()).unwrap());
        let response = service
            .submit(EvalRequest::new(CrossLightConfig::paper_best(), workload))
            .unwrap();
        assert_eq!(response.worker, 0);
    }
}
