//! Memoizing result cache, sharded to keep lock contention off the hot path.
//!
//! The cache key is *exact*: [`CacheKey`] pairs the bit-exact
//! [`ArchKey`](crosslight_core::canonical::ArchKey) of the architecture
//! with the full workload (compared structurally on lookup), so a hit always
//! returns the report the simulator would have computed — caching can change
//! latency, never results.  Keys also expose a platform-stable
//! [`fingerprint`](CacheKey::fingerprint) used both to pick a shard here and
//! to pick a worker in the pool, so all requests for one key land on one
//! worker and one shard deterministically.
//!
//! CrossLight keys hash exactly as they did before the architecture zoo
//! existed ([`ArchKey`] streams a bare `ConfigKey` for the CrossLight arm),
//! so fingerprints, shard indices and worker routes for CrossLight traffic
//! are bit-identical to the pre-zoo runtime.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

use crosslight_telemetry::Counter;

use crosslight_baselines::ArchSpec;
use crosslight_core::canonical::{ArchKey, ConfigKey};
use crosslight_core::config::CrossLightConfig;
use crosslight_core::simulator::SimulationReport;
use crosslight_neural::fingerprint::StableHasher;
use crosslight_neural::workload::NetworkWorkload;

/// Exact identity of one `(architecture, workload)` evaluation.
///
/// The routing fingerprint is computed once at construction; the hot path
/// (worker selection, shard selection, map lookups) only reads it.
#[derive(Debug, Clone)]
pub struct CacheKey {
    arch: ArchKey,
    workload: Arc<NetworkWorkload>,
    fingerprint: u64,
}

impl CacheKey {
    /// Builds the key for a CrossLight configuration/workload pair.
    #[must_use]
    pub fn new(config: &CrossLightConfig, workload: Arc<NetworkWorkload>) -> Self {
        Self::from_arch_key(ArchKey::CrossLight(config.canonical_key()), workload)
    }

    /// Builds the key for any architecture in the zoo.
    #[must_use]
    pub fn for_arch(arch: &ArchSpec, workload: Arc<NetworkWorkload>) -> Self {
        Self::from_arch_key(arch.canonical_key(), workload)
    }

    /// Builds the key from its canonical parts: an already-projected
    /// [`ArchKey`] plus the workload.  This is the restore-side constructor
    /// for cache snapshots — the fingerprint is recomputed from the parts,
    /// so a transported key can never carry a forged route.
    #[must_use]
    pub fn from_parts(arch: ArchKey, workload: Arc<NetworkWorkload>) -> Self {
        Self::from_arch_key(arch, workload)
    }

    fn from_arch_key(arch: ArchKey, workload: Arc<NetworkWorkload>) -> Self {
        let mut hasher = StableHasher::new();
        arch.hash(&mut hasher);
        workload.hash(&mut hasher);
        Self {
            arch,
            workload,
            fingerprint: hasher.finish(),
        }
    }

    /// The canonical architecture component of the key.
    #[must_use]
    pub fn arch_key(&self) -> &ArchKey {
        &self.arch
    }

    /// The workload component of the key.
    #[must_use]
    pub fn workload(&self) -> &Arc<NetworkWorkload> {
        &self.workload
    }

    /// The canonical CrossLight configuration component of the key, when the
    /// key names a CrossLight design point.
    #[must_use]
    pub fn config_key(&self) -> Option<ConfigKey> {
        self.arch.config_key().copied()
    }

    /// Platform-stable 64-bit routing hash of the key, identical across
    /// processes and architectures.  Used for shard and worker selection;
    /// equality still compares the full key.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

impl PartialEq for CacheKey {
    fn eq(&self, other: &Self) -> bool {
        self.fingerprint == other.fingerprint
            && self.arch == other.arch
            && *self.workload == *other.workload
    }
}

impl Eq for CacheKey {}

impl Hash for CacheKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Equal keys have equal fingerprints (the fingerprint is a pure
        // function of the contents), so hashing only the precomputed value
        // is consistent with `Eq` and keeps map lookups O(1) in key size.
        state.write_u64(self.fingerprint);
    }
}

/// A sharded `CacheKey → SimulationReport` map with hit/miss counters.
///
/// The counters are telemetry [`Counter`] handles so the service can adopt
/// them into its metrics registry without changing ownership; the cache
/// stays the single writer.  `evictions` is registered alongside them and
/// is always zero today — the cache never evicts — but reserves the family
/// name for a future bounded-capacity policy.
#[derive(Debug)]
pub struct ShardedCache {
    shards: Vec<Mutex<HashMap<CacheKey, SimulationReport>>>,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl ShardedCache {
    /// Creates a cache with `shards` independent locks (at least one).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<HashMap<CacheKey, SimulationReport>> {
        let index = (key.fingerprint() % self.shards.len() as u64) as usize;
        &self.shards[index]
    }

    /// Looks up a key, counting the outcome as a hit or miss.
    #[must_use]
    pub fn get(&self, key: &CacheKey) -> Option<SimulationReport> {
        let found = self
            .shard(key)
            .lock()
            .expect("cache shard lock poisoned")
            .get(key)
            .copied();
        match found {
            Some(_) => self.hits.inc(),
            None => self.misses.inc(),
        }
        found
    }

    /// Stores a computed report under its key.
    pub fn insert(&self, key: CacheKey, report: SimulationReport) {
        self.shard(&key)
            .lock()
            .expect("cache shard lock poisoned")
            .insert(key, report);
    }

    /// Number of cached entries across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock poisoned").len())
            .sum()
    }

    /// Returns `true` when no entries are cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Lookups that missed and required evaluation.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// The live hit counter, for adoption into a metrics registry.
    #[must_use]
    pub fn hit_counter(&self) -> &Counter {
        &self.hits
    }

    /// The live miss counter, for adoption into a metrics registry.
    #[must_use]
    pub fn miss_counter(&self) -> &Counter {
        &self.misses
    }

    /// The live eviction counter (always zero today; see the type docs).
    #[must_use]
    pub fn eviction_counter(&self) -> &Counter {
        &self.evictions
    }

    /// Exports every cached `(key, report)` pair in a deterministic order
    /// (by routing fingerprint, ties broken by the architecture key's total
    /// order), independent of shard count and insertion order, so snapshot
    /// checksums are reproducible across replicas.
    #[must_use]
    pub fn export(&self) -> Vec<(CacheKey, SimulationReport)> {
        let mut entries: Vec<(CacheKey, SimulationReport)> = self
            .shards
            .iter()
            .flat_map(|shard| {
                shard
                    .lock()
                    .expect("cache shard lock poisoned")
                    .iter()
                    .map(|(k, v)| (k.clone(), *v))
                    .collect::<Vec<_>>()
            })
            .collect();
        entries.sort_unstable_by(|(a, _), (b, _)| {
            a.fingerprint
                .cmp(&b.fingerprint)
                .then_with(|| a.arch.cmp(&b.arch))
        });
        entries
    }

    /// Restores exported entries.  Existing entries win over imported ones
    /// for equal keys, and none of the hit/miss/eviction counters move — a
    /// restore is invisible to cache statistics except for `len`.  Returns
    /// the number of entries newly inserted.
    pub fn import(&self, entries: Vec<(CacheKey, SimulationReport)>) -> usize {
        let mut inserted = 0;
        for (key, report) in entries {
            let mut shard = self.shard(&key).lock().expect("cache shard lock poisoned");
            if let std::collections::hash_map::Entry::Vacant(slot) = shard.entry(key) {
                slot.insert(report);
                inserted += 1;
            }
        }
        inserted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crosslight_core::simulator::CrossLightSimulator;
    use crosslight_core::variants::CrossLightVariant;
    use crosslight_neural::zoo::PaperModel;

    fn workload(model: PaperModel) -> Arc<NetworkWorkload> {
        Arc::new(NetworkWorkload::from_spec(&model.spec()).unwrap())
    }

    #[test]
    fn equal_pairs_collide_and_perturbed_pairs_do_not() {
        let w = workload(PaperModel::CnnCifar10);
        let a = CacheKey::new(&CrossLightConfig::paper_best(), Arc::clone(&w));
        let b = CacheKey::new(&CrossLightConfig::paper_best(), Arc::clone(&w));
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());

        let other_config = CacheKey::new(&CrossLightVariant::Base.config(), Arc::clone(&w));
        assert_ne!(a, other_config);

        let other_workload = CacheKey::new(
            &CrossLightConfig::paper_best(),
            workload(PaperModel::CnnStl10),
        );
        assert_ne!(a, other_workload);
        assert_ne!(a.fingerprint(), other_workload.fingerprint());
    }

    #[test]
    fn cache_round_trips_reports_and_counts_outcomes() {
        let cache = ShardedCache::new(4);
        let w = workload(PaperModel::Lenet5SignMnist);
        let key = CacheKey::new(&CrossLightConfig::paper_best(), Arc::clone(&w));
        assert!(cache.get(&key).is_none());
        assert!(cache.is_empty());

        let report = CrossLightSimulator::new(CrossLightConfig::paper_best())
            .evaluate(&w)
            .unwrap();
        cache.insert(key.clone(), report);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&key), Some(report));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn export_import_is_bit_identical_counter_neutral_and_shard_agnostic() {
        let warm = ShardedCache::new(4);
        for variant in CrossLightVariant::all() {
            let config = variant.config();
            let report = CrossLightSimulator::new(config)
                .evaluate(&workload(PaperModel::CnnCifar10))
                .unwrap();
            warm.insert(
                CacheKey::new(&config, workload(PaperModel::CnnCifar10)),
                report,
            );
        }
        let exported = warm.export();
        assert_eq!(exported.len(), 4);
        assert_eq!(exported, warm.export(), "export must be deterministic");

        // Restore into a cache with a *different* shard count: same
        // contents, untouched counters, identical re-export.
        let restored = ShardedCache::new(7);
        assert_eq!(restored.import(exported.clone()), 4);
        assert_eq!(restored.export(), exported);
        assert_eq!((restored.hits(), restored.misses()), (0, 0));
        // Idempotent: a second import inserts nothing and changes nothing.
        assert_eq!(restored.import(exported.clone()), 0);
        assert_eq!(restored.export(), exported);

        for (key, report) in &exported {
            assert_eq!(restored.get(key), Some(*report));
        }
    }

    #[test]
    fn from_parts_recomputes_the_route_and_matches_the_organic_key() {
        let w = workload(PaperModel::CnnStl10);
        let config = CrossLightConfig::paper_best();
        let organic = CacheKey::new(&config, Arc::clone(&w));
        let transported = CacheKey::from_parts(*organic.arch_key(), Arc::clone(organic.workload()));
        assert_eq!(transported, organic);
        assert_eq!(transported.fingerprint(), organic.fingerprint());
    }

    #[test]
    fn zero_shards_is_clamped() {
        let cache = ShardedCache::new(0);
        assert!(cache.is_empty());
    }

    #[test]
    fn crosslight_keys_are_identical_to_their_pre_zoo_hash_stream() {
        // `CacheKey::new` must keep producing the exact fingerprint the
        // pre-zoo runtime computed (ConfigKey bytes then workload bytes), so
        // shard indices and worker routes for CrossLight traffic never move.
        let w = workload(PaperModel::SiameseOmniglot);
        let config = CrossLightConfig::paper_best();
        let via_config = CacheKey::new(&config, Arc::clone(&w));
        let mut hasher = StableHasher::new();
        config.canonical_key().hash(&mut hasher);
        w.hash(&mut hasher);
        assert_eq!(via_config.fingerprint(), hasher.finish());

        // The arch-aware constructor agrees for the CrossLight arm.
        let via_arch = CacheKey::for_arch(&ArchSpec::CrossLight(config), Arc::clone(&w));
        assert_eq!(via_config, via_arch);
        assert_eq!(via_config.fingerprint(), via_arch.fingerprint());
        assert_eq!(via_arch.config_key(), Some(config.canonical_key()));
    }

    #[test]
    fn zoo_backends_get_distinct_keys_per_workload() {
        let w = workload(PaperModel::Lenet5SignMnist);
        let mut fingerprints = std::collections::HashSet::new();
        for spec in ArchSpec::zoo_defaults() {
            let key = CacheKey::for_arch(&spec, Arc::clone(&w));
            assert!(fingerprints.insert(key.fingerprint()), "{}", spec.label());
            if spec.crosslight_config().is_none() {
                assert_eq!(key.config_key(), None);
            }
        }
        // Same backend, different workload → different key.
        let a = CacheKey::for_arch(&ArchSpec::zoo_defaults()[1], Arc::clone(&w));
        let b = CacheKey::for_arch(
            &ArchSpec::zoo_defaults()[1],
            workload(PaperModel::CnnCifar10),
        );
        assert_ne!(a, b);
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
