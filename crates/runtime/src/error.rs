//! Error type of the runtime layer.

use std::error::Error;
use std::fmt;

use crosslight_core::error::ArchitectureError;

/// Errors produced by the evaluation service and sweep planner.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// The underlying simulator rejected a request (invalid configuration or
    /// model failure).
    Evaluation(ArchitectureError),
    /// A sweep scenario could not be expanded into requests.
    Scenario(String),
    /// A worker thread disappeared before answering (only possible if a
    /// worker panicked).
    WorkerLost,
    /// The request's [`CancelToken`](crate::pool::CancelToken) was cancelled
    /// before a worker picked the job up; the evaluation was skipped.
    Cancelled,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Evaluation(err) => write!(f, "evaluation failed: {err}"),
            Self::Scenario(reason) => write!(f, "invalid sweep scenario: {reason}"),
            Self::WorkerLost => write!(f, "a runtime worker exited before answering"),
            Self::Cancelled => write!(f, "the request was cancelled before evaluation"),
        }
    }
}

impl Error for RuntimeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Evaluation(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ArchitectureError> for RuntimeError {
    fn from(err: ArchitectureError) -> Self {
        Self::Evaluation(err)
    }
}

/// Convenience result alias for runtime operations.
pub type Result<T> = std::result::Result<T, RuntimeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_are_wired() {
        let inner = ArchitectureError::MappingFailed { reason: "x".into() };
        let err = RuntimeError::from(inner);
        assert!(err.to_string().contains("evaluation failed"));
        assert!(err.source().is_some());
        assert!(RuntimeError::WorkerLost.source().is_none());
        assert!(RuntimeError::Scenario("empty".into())
            .to_string()
            .contains("empty"));
        assert!(RuntimeError::Cancelled.to_string().contains("cancelled"));
        assert!(RuntimeError::Cancelled.source().is_none());
    }
}
