//! Property tests for the runtime layer.
//!
//! Two contracts are checked over randomized inputs:
//!
//! * **cache-key determinism** — independently constructed but equal
//!   `(configuration, workload)` pairs always produce colliding cache keys
//!   and fingerprints, while any single-field perturbation separates them;
//! * **batching equivalence** — any shuffle of a request set, split into any
//!   partition of batches, evaluated on any worker count, yields reports
//!   bit-identical to serial `CrossLightSimulator` evaluation.

use std::sync::Arc;

use proptest::prelude::*;

use crosslight_core::config::{CrossLightConfig, DesignChoices};
use crosslight_core::simulator::CrossLightSimulator;
use crosslight_core::variants::CrossLightVariant;
use crosslight_neural::layers::DotProductWorkload;
use crosslight_neural::workload::NetworkWorkload;
use crosslight_neural::zoo::PaperModel;
use crosslight_runtime::cache::CacheKey;
use crosslight_runtime::pool::{EvalService, RuntimeOptions};
use crosslight_runtime::request::EvalRequest;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn variant(index: usize) -> CrossLightVariant {
    CrossLightVariant::all()[index % 4]
}

fn config_from(
    dims: (usize, usize, usize, usize),
    variant_index: usize,
    bits: u32,
) -> CrossLightConfig {
    let (n_size, k_extra, n_units, m_units) = dims;
    let k_size = n_size + k_extra;
    CrossLightConfig::new(
        n_size,
        k_size,
        n_units,
        m_units,
        variant(variant_index).design(),
    )
    .expect("generated dimensions satisfy K >= N > 0")
    .with_resolution_bits(bits)
}

fn synthetic_workload(
    layers: &[(usize, usize)],
    fc_split: usize,
    towers: usize,
) -> NetworkWorkload {
    let jobs: Vec<DotProductWorkload> = layers
        .iter()
        .map(|&(dot_length, dot_count)| DotProductWorkload {
            dot_length,
            dot_count,
        })
        .collect();
    let split = fc_split % (jobs.len() + 1);
    NetworkWorkload {
        name: "synthetic".into(),
        conv_layers: jobs[..split].to_vec(),
        fc_layers: jobs[split..].to_vec(),
        towers: towers.max(1),
    }
}

proptest! {
    /// Equal config/workload pairs, built independently, always collide on
    /// key and fingerprint; perturbing any scenario axis separates them.
    #[test]
    fn cache_keys_are_deterministic_and_perturbation_sensitive(
        dims in (1usize..=25, 0usize..=200, 1usize..=150, 1usize..=90),
        variant_index in 0usize..4,
        bits in 1u32..=16,
        layers in proptest::collection::vec((1usize..=400, 1usize..=5000), 1..6),
        fc_split in 0usize..6,
        towers in 1usize..=3,
    ) {
        let config_a = config_from(dims, variant_index, bits);
        let config_b = config_from(dims, variant_index, bits);
        let workload_a = Arc::new(synthetic_workload(&layers, fc_split, towers));
        let workload_b = Arc::new(synthetic_workload(&layers, fc_split, towers));

        let key_a = CacheKey::new(&config_a, Arc::clone(&workload_a));
        let key_b = CacheKey::new(&config_b, workload_b);
        prop_assert_eq!(&key_a, &key_b);
        prop_assert_eq!(key_a.fingerprint(), key_b.fingerprint());

        // Perturb each configuration axis in turn.
        let mut bigger = config_a;
        bigger.conv_units += 1;
        prop_assert_ne!(&key_a, &CacheKey::new(&bigger, Arc::clone(&workload_a)));

        let other_bits = config_a.with_resolution_bits(if bits == 16 { 15 } else { bits + 1 });
        prop_assert_ne!(&key_a, &CacheKey::new(&other_bits, Arc::clone(&workload_a)));

        let other_variant = CrossLightConfig {
            design: DesignChoices {
                mr_spacing: crosslight_photonics::units::Micrometers::new(
                    config_a.design.mr_spacing.value() + 0.25,
                ),
                ..config_a.design
            },
            ..config_a
        };
        prop_assert_ne!(&key_a, &CacheKey::new(&other_variant, Arc::clone(&workload_a)));

        // Perturb the workload: one more tower, or one more layer.
        let mut taller = (*workload_a).clone();
        taller.towers += 1;
        prop_assert_ne!(&key_a, &CacheKey::new(&config_a, Arc::new(taller)));

        let mut deeper = (*workload_a).clone();
        deeper.fc_layers.push(DotProductWorkload { dot_length: 1, dot_count: 1 });
        prop_assert_ne!(&key_a, &CacheKey::new(&config_a, Arc::new(deeper)));
    }

    /// Any shuffle and any batch partition of a request set, on any worker
    /// count, reproduces serial evaluation bit-for-bit — with a warm cache
    /// on the second replay.
    #[test]
    fn batched_evaluation_equals_serial_evaluation(
        seed in 0u64..1_000_000,
        workers in 1usize..=8,
        subset in 1usize..=16,
    ) {
        // Deterministic request universe: 4 variants × 4 models.
        let mut universe = Vec::new();
        for v in CrossLightVariant::all() {
            for model in PaperModel::all() {
                let workload = Arc::new(
                    NetworkWorkload::from_spec(&model.spec()).expect("paper specs are valid"),
                );
                universe.push(EvalRequest::new(v.config(), workload));
            }
        }

        // Shuffle (Fisher–Yates) and truncate to a random subset.
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..universe.len()).rev() {
            let j = rng.gen_range(0usize..=i);
            universe.swap(i, j);
        }
        universe.truncate(subset);

        let serial: Vec<_> = universe
            .iter()
            .map(|r| {
                CrossLightSimulator::new(r.config().expect("CrossLight request"))
                    .evaluate(&r.workload)
                    .expect("serial evaluation succeeds")
            })
            .collect();

        let service = EvalService::new(
            RuntimeOptions::default().with_workers(workers).with_cache_shards(4),
        );

        // Random partition into consecutive batches.
        let mut responses = Vec::with_capacity(universe.len());
        let mut remaining = universe.clone();
        while !remaining.is_empty() {
            let take = rng.gen_range(1usize..=remaining.len());
            let batch: Vec<EvalRequest> = remaining.drain(..take).collect();
            responses.extend(service.submit_batch(batch).expect("batch succeeds"));
        }
        prop_assert_eq!(responses.len(), serial.len());
        for (response, expected) in responses.iter().zip(&serial) {
            prop_assert_eq!(&response.report, expected);
            prop_assert!(response.worker < workers);
        }

        // Replaying the whole stream in one batch is all cache hits and
        // still bit-identical.
        let replay = service.submit_batch(universe).expect("replay succeeds");
        for (response, expected) in replay.iter().zip(&serial) {
            prop_assert!(response.cache_hit);
            prop_assert_eq!(&response.report, expected);
        }
    }
}
