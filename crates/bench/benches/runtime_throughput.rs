//! Throughput of the runtime evaluation service vs. one-shot simulation.
//!
//! The suite is the paper's full evaluation grid — all four CrossLight
//! variants × all four Table I models — submitted as one 16-request batch.
//! Three paths are measured:
//!
//! * `serial_uncached` — the pre-runtime baseline: a fresh
//!   `CrossLightSimulator::evaluate` per request, recomputing power/area per
//!   call, single-threaded.
//! * `service_cold_pass` — a fresh 4-worker service per iteration: thread
//!   spawn + first-pass evaluation with an empty cache.
//! * `service_cached` — a warmed 4-worker service: steady-state repeated
//!   traffic, where every request is a cache hit.  The acceptance target is
//!   ≥10× the `serial_uncached` baseline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use crosslight_core::simulator::CrossLightSimulator;
use crosslight_core::variants::CrossLightVariant;
use crosslight_runtime::planner::SweepPlanner;
use crosslight_runtime::pool::{EvalService, RuntimeOptions};
use crosslight_runtime::request::EvalRequest;

const WORKERS: usize = 4;

fn paper_suite() -> Vec<EvalRequest> {
    SweepPlanner::new()
        .variants(&CrossLightVariant::all())
        .plan()
        .expect("the paper suite plans cleanly")
}

fn bench_runtime_throughput(c: &mut Criterion) {
    let suite = paper_suite();
    let mut group = c.benchmark_group("runtime_throughput");

    group.bench_function("serial_uncached_16req", |b| {
        b.iter(|| {
            let reports: Vec<_> = suite
                .iter()
                .map(|r| {
                    CrossLightSimulator::new(r.config().expect("CrossLight request"))
                        .evaluate(&r.workload)
                        .expect("evaluation succeeds")
                })
                .collect();
            black_box(reports)
        })
    });

    group.bench_function("service_cold_pass_16req", |b| {
        b.iter(|| {
            let service = EvalService::new(RuntimeOptions::default().with_workers(WORKERS));
            let responses = service.submit_batch(suite.clone()).expect("batch succeeds");
            black_box(responses)
        })
    });

    let warm = EvalService::new(RuntimeOptions::default().with_workers(WORKERS));
    warm.submit_batch(suite.clone()).expect("warm-up succeeds");
    group.bench_function("service_cached_16req", |b| {
        b.iter(|| {
            let responses = warm.submit_batch(suite.clone()).expect("batch succeeds");
            black_box(responses)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_runtime_throughput);
criterion_main!(benches);
