//! Criterion bench regenerating Table III of the CrossLight paper.

use criterion::{criterion_group, criterion_main, Criterion};

use crosslight_bench::print_table;
use crosslight_experiments::table3_summary;

fn bench_table3(c: &mut Criterion) {
    let summary = table3_summary::run().expect("summary runs");
    print_table(
        "Table III — average EPB and kFPS/W across accelerators",
        &summary.table(),
    );
    println!(
        "Cross_opt_TED vs Holylight: {:.1}x lower EPB, {:.1}x higher kFPS/W (paper: 9.5x, 15.9x)",
        summary.epb_improvement_vs_holylight, summary.ppw_improvement_vs_holylight
    );
    println!(
        "Cross_opt_TED vs DEAP-CNN: {:.0}x lower EPB (paper: 1544x)",
        summary.epb_improvement_vs_deap
    );
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.bench_function("summarise_all_platforms", |b| {
        b.iter(|| table3_summary::run().expect("summary runs"))
    });
    group.finish();
}

criterion_group!(tables, bench_table3);
criterion_main!(tables);
