//! Criterion benches regenerating every figure of the CrossLight paper.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use crosslight_bench::print_table;
use crosslight_experiments::fig5_accuracy::AccuracyStudyConfig;
use crosslight_experiments::{
    device_dse, fig4_crosstalk, fig5_accuracy, fig6_design_space, fig7_power, fig8_epb,
    resolution_analysis,
};

fn bench_device_dse(c: &mut Criterion) {
    let result = device_dse::run(5_000, 2021);
    print_table(
        "Section IV.A device design-space exploration",
        &result.table(),
    );
    println!(
        "conventional drift {:.2} nm -> optimized {:.2} nm ({:.0}% reduction; paper: 7.1 -> 2.1 nm, 70%)",
        result.conventional_drift_nm,
        result.optimized_drift_nm,
        result.reduction * 100.0
    );
    c.bench_function("device_dse_monte_carlo", |b| {
        b.iter(|| device_dse::run(black_box(2_000), black_box(7)))
    });
}

fn bench_fig4(c: &mut Criterion) {
    let sweep = fig4_crosstalk::run(&fig4_crosstalk::paper_spacings());
    print_table(
        "Fig. 4 — crosstalk ratio and tuning power vs. MR spacing",
        &sweep.table(),
    );
    println!(
        "optimal TED spacing: {} um (paper: 5 um)",
        sweep.optimal_spacing_um
    );
    c.bench_function("fig4_crosstalk_sweep", |b| {
        b.iter(|| fig4_crosstalk::run(black_box(&fig4_crosstalk::paper_spacings())))
    });
}

fn bench_fig5(c: &mut Criterion) {
    let study = fig5_accuracy::run(&AccuracyStudyConfig::quick()).expect("study runs");
    print_table(
        "Fig. 5 — accuracy (%) vs. weight/activation resolution",
        &study.table(),
    );
    // The timed loop uses a minimal configuration so the bench finishes
    // quickly; the printed table above uses the fuller quick() sweep.
    let tiny = AccuracyStudyConfig {
        bit_widths: vec![2, 16],
        samples_per_class: 6,
        epochs: 4,
        seed: 3,
    };
    let mut group = c.benchmark_group("fig5_accuracy");
    group.sample_size(10);
    group.bench_function("train_and_quantize_surrogates", |b| {
        b.iter(|| fig5_accuracy::run(black_box(&tiny)).expect("study runs"))
    });
    group.finish();
}

fn bench_resolution(c: &mut Criterion) {
    let analysis = resolution_analysis::run(20);
    print_table(
        "Section V.B — achievable resolution vs. MRs per bank",
        &analysis.table(),
    );
    c.bench_function("resolution_analysis", |b| {
        b.iter(|| resolution_analysis::run(black_box(20)))
    });
}

fn bench_fig6(c: &mut Criterion) {
    let sweep = fig6_design_space::run(&fig6_design_space::paper_candidates()).expect("sweep runs");
    print_table("Fig. 6 — FPS vs. EPB vs. area design space", &sweep.table());
    println!(
        "best in-cap configuration: (N, K, n, m) = ({}, {}, {}, {}) [paper: (20, 150, 100, 60)]",
        sweep.best.conv_unit_size,
        sweep.best.fc_unit_size,
        sweep.best.conv_units,
        sweep.best.fc_units
    );
    let reduced = vec![
        (10usize, 100usize, 50usize, 30usize),
        (20, 150, 100, 60),
        (20, 200, 100, 90),
    ];
    let mut group = c.benchmark_group("fig6_design_space");
    group.sample_size(10);
    group.bench_function("evaluate_candidates", |b| {
        b.iter(|| fig6_design_space::run(black_box(&reduced)).expect("sweep runs"))
    });
    group.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let comparison = fig7_power::run().expect("comparison runs");
    print_table("Fig. 7 — power consumption comparison", &comparison.table());
    let mut group = c.benchmark_group("fig7_power");
    group.sample_size(10);
    group.bench_function("evaluate_all_platforms", |b| {
        b.iter(|| fig7_power::run().expect("comparison runs"))
    });
    group.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let comparison = fig8_epb::run().expect("comparison runs");
    print_table(
        "Fig. 8 — per-model EPB (pJ/bit) of the photonic accelerators",
        &comparison.table(),
    );
    let mut group = c.benchmark_group("fig8_epb");
    group.sample_size(10);
    group.bench_function("evaluate_per_model_epb", |b| {
        b.iter(|| fig8_epb::run().expect("comparison runs"))
    });
    group.finish();
}

criterion_group!(
    figures,
    bench_device_dse,
    bench_fig4,
    bench_fig5,
    bench_resolution,
    bench_fig6,
    bench_fig7,
    bench_fig8
);
criterion_main!(figures);
