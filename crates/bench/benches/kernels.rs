//! Microbenchmarks of the core kernels underlying the experiments.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use crosslight_core::prelude::*;
use crosslight_neural::layers::{Conv2d, Layer};
use crosslight_neural::quant::QuantConfig;
use crosslight_neural::tensor::Tensor;
use crosslight_neural::workload::NetworkWorkload;
use crosslight_neural::zoo::PaperModel;
use crosslight_photonics::mr::{Microring, MrGeometry};
use crosslight_photonics::thermal::ThermalCrosstalkModel;
use crosslight_photonics::units::{Micrometers, Nanometers, Radians};
use crosslight_tuning::ted::TedSolver;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_mr_transmission(c: &mut Criterion) {
    let ring = Microring::new(MrGeometry::optimized(), Nanometers::new(1550.0));
    c.bench_function("mr_through_transmission_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..1_000 {
                let wl = Nanometers::new(1549.0 + 0.002 * i as f64);
                acc += ring.through_transmission(black_box(wl));
            }
            acc
        })
    });
}

fn bench_ted_solve(c: &mut Criterion) {
    let matrix = ThermalCrosstalkModel::default()
        .crosstalk_matrix(15, Micrometers::new(5.0))
        .expect("valid matrix");
    let solver = TedSolver::with_table_ii_heater(&matrix).expect("valid solver");
    let targets: Vec<Radians> = (0..15)
        .map(|i| Radians::new(0.2 + 0.1 * ((i as f64) * 1.3).sin()))
        .collect();
    c.bench_function("ted_solve_15_mr_bank", |b| {
        b.iter(|| solver.solve(black_box(&targets)).expect("solvable"))
    });
}

fn bench_conv_forward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut conv = Conv2d::new(3, 16, 3, 1, &mut rng).expect("valid layer");
    let input = Tensor::random_uniform(vec![3, 32, 32], 1.0, &mut rng);
    c.bench_function("conv2d_forward_3x32x32_to_16ch", |b| {
        b.iter(|| conv.forward(black_box(&input)).expect("valid input"))
    });
}

fn bench_quantization(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let tensor = Tensor::random_uniform(vec![4096], 1.0, &mut rng);
    let quant = QuantConfig::uniform(8);
    c.bench_function("fake_quantize_4096_values", |b| {
        b.iter(|| quant.quantize_activations(black_box(&tensor)))
    });
}

fn bench_simulator(c: &mut Criterion) {
    let simulator = CrossLightSimulator::new(CrossLightVariant::OptTed.config());
    let workload =
        NetworkWorkload::from_spec(&PaperModel::CnnCifar10.spec()).expect("valid workload");
    c.bench_function("crosslight_simulator_cifar10", |b| {
        b.iter(|| {
            simulator
                .evaluate(black_box(&workload))
                .expect("valid workload")
        })
    });
}

criterion_group!(
    kernels,
    bench_mr_transmission,
    bench_ted_solve,
    bench_conv_forward,
    bench_quantization,
    bench_simulator
);
criterion_main!(kernels);
