//! Microbenchmarks of the core kernels underlying the experiments.
//!
//! The tensor/layer benches exercise the allocation-free `_into` fast paths
//! (persistent destination buffers across iterations), mirroring how the
//! training loop drives them.  `cargo run -p crosslight-bench --bin
//! bench_kernels` runs the same workloads and emits a machine-readable
//! `BENCH_kernels.json` with speedups against the pre-refactor baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use crosslight_core::prelude::*;
use crosslight_neural::datasets::generate_synthetic;
use crosslight_neural::layers::{Conv2d, Layer};
use crosslight_neural::quant::QuantConfig;
use crosslight_neural::tensor::{im2col_into, Im2colSpec, Tensor};
use crosslight_neural::train::{evaluate_quantized, train, TrainConfig};
use crosslight_neural::workload::NetworkWorkload;
use crosslight_neural::zoo::PaperModel;
use crosslight_photonics::mr::{Microring, MrGeometry};
use crosslight_photonics::thermal::ThermalCrosstalkModel;
use crosslight_photonics::units::{Micrometers, Nanometers, Radians};
use crosslight_tuning::ted::{TedSolver, TedWorkspace};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_mr_transmission(c: &mut Criterion) {
    let ring = Microring::new(MrGeometry::optimized(), Nanometers::new(1550.0));
    c.bench_function("mr_through_transmission_sweep", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..1_000 {
                let wl = Nanometers::new(1549.0 + 0.002 * i as f64);
                acc += ring.through_transmission(black_box(wl));
            }
            acc
        })
    });
}

fn bench_ted_solve(c: &mut Criterion) {
    let matrix = ThermalCrosstalkModel::default()
        .crosstalk_matrix(15, Micrometers::new(5.0))
        .expect("valid matrix");
    let solver = TedSolver::with_table_ii_heater(&matrix).expect("valid solver");
    let targets: Vec<Radians> = (0..15)
        .map(|i| Radians::new(0.2 + 0.1 * ((i as f64) * 1.3).sin()))
        .collect();
    // The reused workspace makes every iteration allocation-free.
    let mut workspace = TedWorkspace::new();
    c.bench_function("ted_solve_15_mr_bank", |b| {
        b.iter(|| {
            solver
                .solve_with(black_box(&targets), &mut workspace)
                .expect("solvable")
                .total_power
        })
    });
}

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(42);
    let a = Tensor::random_uniform(vec![96, 288], 1.0, &mut rng);
    let b_mat = Tensor::random_uniform(vec![288, 96], 1.0, &mut rng);
    let mut out = Tensor::default();
    c.bench_function("matmul_96x288x96", |b| {
        b.iter(|| {
            a.matmul_into(black_box(&b_mat), &mut out).expect("valid");
            out.as_slice()[0]
        })
    });
}

fn bench_im2col(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(42);
    let input = Tensor::random_uniform(vec![3, 32, 32], 1.0, &mut rng);
    let spec = Im2colSpec {
        in_channels: 3,
        height: 32,
        width: 32,
        kernel: 3,
        stride: 1,
    };
    let mut out = Tensor::default();
    c.bench_function("im2col_3x32x32_k3", |b| {
        b.iter(|| {
            im2col_into(black_box(&input), &spec, &mut out).expect("valid");
            out.as_slice()[0]
        })
    });
}

fn bench_conv_forward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut conv = Conv2d::new(3, 16, 3, 1, &mut rng).expect("valid layer");
    let input = Tensor::random_uniform(vec![3, 32, 32], 1.0, &mut rng);
    let mut out = Tensor::default();
    c.bench_function("conv2d_forward_3x32x32_to_16ch", |b| {
        b.iter(|| {
            conv.forward_into(black_box(&input), &mut out)
                .expect("valid input");
            out.as_slice()[0]
        })
    });
}

fn bench_train_epoch(c: &mut Criterion) {
    let spec = PaperModel::CnnCifar10.spec();
    let mut data_rng = StdRng::seed_from_u64(7);
    let dataset = generate_synthetic(&spec.surrogate_dataset(10), &mut data_rng).expect("dataset");
    let (train_split, _) = dataset.split(0.75);
    let mut model_rng = StdRng::seed_from_u64(9);
    let mut model = spec.build_surrogate(&mut model_rng).expect("surrogate");
    let config = TrainConfig {
        epochs: 1,
        learning_rate: 0.08,
        batch_size: 8,
    };
    c.bench_function("train_epoch_cifar10_surrogate", |b| {
        b.iter(|| train(&mut model, &train_split, &config).expect("trains"))
    });
}

fn bench_fig5_cell(c: &mut Criterion) {
    let spec = PaperModel::CnnCifar10.spec();
    let mut data_rng = StdRng::seed_from_u64(7);
    let dataset = generate_synthetic(&spec.surrogate_dataset(10), &mut data_rng).expect("dataset");
    let (train_split, test_split) = dataset.split(0.75);
    let config = TrainConfig {
        epochs: 4,
        learning_rate: 0.08,
        batch_size: 8,
    };
    c.bench_function("fig5_cell_cifar10_8bit", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(11);
            let mut surrogate = spec.build_surrogate(&mut rng).expect("surrogate");
            train(&mut surrogate, &train_split, &config).expect("trains");
            evaluate_quantized(&mut surrogate, &test_split, &QuantConfig::uniform(8))
                .expect("evaluates")
        })
    });
}

fn bench_quantization(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let tensor = Tensor::random_uniform(vec![4096], 1.0, &mut rng);
    let quant = QuantConfig::uniform(8);
    c.bench_function("fake_quantize_4096_values", |b| {
        b.iter(|| quant.quantize_activations(black_box(&tensor)))
    });
}

fn bench_simulator(c: &mut Criterion) {
    let simulator = CrossLightSimulator::new(CrossLightVariant::OptTed.config());
    let workload =
        NetworkWorkload::from_spec(&PaperModel::CnnCifar10.spec()).expect("valid workload");
    c.bench_function("crosslight_simulator_cifar10", |b| {
        b.iter(|| {
            simulator
                .evaluate(black_box(&workload))
                .expect("valid workload")
        })
    });
}

criterion_group!(
    kernels,
    bench_mr_transmission,
    bench_ted_solve,
    bench_matmul,
    bench_im2col,
    bench_conv_forward,
    bench_train_epoch,
    bench_fig5_cell,
    bench_quantization,
    bench_simulator
);
criterion_main!(kernels);
