//! # crosslight-bench
//!
//! Criterion benchmark harness for the CrossLight reproduction.
//!
//! The benches do double duty: they measure how long each experiment takes to
//! regenerate, and (once per bench, outside the timed loop) they print the
//! regenerated table so `cargo bench` output contains the paper-style rows.
//!
//! * `benches/paper_figures.rs` — one bench per figure (device DSE, Fig. 4,
//!   Fig. 5, Fig. 6, Fig. 7, Fig. 8, §V.B resolution analysis).
//! * `benches/paper_tables.rs` — Table III.
//! * `benches/kernels.rs` — microbenchmarks of the core kernels (MR
//!   transmission, TED solve, conv forward, quantization, full simulator
//!   evaluation).
//!
//! The crate also hosts the shared benchmark-trajectory harness
//! ([`measure`], [`measure_once`], [`render_trajectory_json`]) behind the
//! `bench_kernels` and `bench_sim` bins: each emits a `BENCH_*.json` with
//! embedded pre-refactor baselines so every PR records a perf datapoint for
//! both the neural-kernel and the analytical-simulator trajectories.

#![warn(missing_docs)]

use std::time::Instant;

use crosslight_telemetry::Histogram;

/// Prints a named experiment table once, prefixed so it is easy to find in
/// `cargo bench` output.
pub fn print_table(title: &str, table: &crosslight_experiments::TextTable) {
    println!("\n=== {title} ===\n{}", table.render());
}

/// One measured workload of a benchmark-trajectory bin (`bench_kernels`,
/// `bench_sim`).
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Workload name (stable across PRs — the trajectory key).
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Number of timed iterations behind the mean.
    pub iterations: u64,
    /// Median per-iteration nanoseconds, from the boundary-timing
    /// histogram; `None` for single-iteration measurements.
    pub p50_ns: Option<f64>,
    /// 99th-percentile per-iteration nanoseconds; `None` for
    /// single-iteration measurements.
    pub p99_ns: Option<f64>,
}

/// Warm-up twice, then run `routine` until `window_ms` of wall clock is
/// filled — the shared measurement loop of the trajectory bins.
///
/// Per-iteration times come from *boundary timing*: the loop reads the
/// clock once per iteration (exactly as many reads as the plain
/// mean-only loop needed for its exit condition) and records successive
/// deltas into a log-linear [`Histogram`], so the report carries p50/p99
/// alongside the mean at zero extra clock cost.
pub fn measure<O, F: FnMut() -> O>(name: &str, window_ms: u64, mut routine: F) -> BenchResult {
    for _ in 0..2 {
        std::hint::black_box(routine());
    }
    let window = std::time::Duration::from_millis(window_ms);
    let histogram = Histogram::new();
    let start = Instant::now();
    let mut previous = start;
    let mut iterations = 0u64;
    let end = loop {
        std::hint::black_box(routine());
        iterations += 1;
        let now = Instant::now();
        histogram
            .record(u64::try_from(now.duration_since(previous).as_nanos()).unwrap_or(u64::MAX));
        previous = now;
        if now.duration_since(start) >= window {
            break now;
        }
    };
    let ns_per_iter = end.duration_since(start).as_nanos() as f64 / iterations as f64;
    let snapshot = histogram.snapshot();
    let (p50, p99) = (snapshot.p50(), snapshot.p99());
    println!(
        "{name:<44} {ns_per_iter:>14.1} ns/iter  (p50 {p50}, p99 {p99}, {iterations} iterations)"
    );
    BenchResult {
        name: name.to_string(),
        ns_per_iter,
        iterations,
        p50_ns: Some(p50 as f64),
        p99_ns: Some(p99 as f64),
    }
}

/// Times a single un-warmed run of `routine` — for workloads too large to
/// repeat (full dense sweeps).
pub fn measure_once<O, F: FnOnce() -> O>(name: &str, routine: F) -> (BenchResult, O) {
    let start = Instant::now();
    let output = std::hint::black_box(routine());
    let ns_per_iter = start.elapsed().as_nanos() as f64;
    println!("{name:<44} {ns_per_iter:>14.1} ns/iter  (1 iteration)");
    (
        BenchResult {
            name: name.to_string(),
            ns_per_iter,
            iterations: 1,
            p50_ns: None,
            p99_ns: None,
        },
        output,
    )
}

/// Looks up a workload's pre-refactor baseline in a `(name, ns)` table.
#[must_use]
pub fn baseline_for(baselines: &[(&str, f64)], name: &str) -> Option<f64> {
    baselines
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, ns)| ns)
}

/// Renders a benchmark-trajectory report as the `BENCH_*.json` format shared
/// by the kernel and simulator trajectories: every entry carries its
/// measurement, and entries with a recorded baseline also carry
/// `baseline_ns_per_iter`/`speedup_vs_baseline` so the before/after record
/// survives in the committed artifact.
#[must_use]
pub fn render_trajectory_json(
    schema: &str,
    mode: &str,
    baseline_commit: &str,
    baselines: &[(&str, f64)],
    results: &[BenchResult],
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema\": \"{}\",\n", json_escape(schema)));
    out.push_str(&format!("  \"mode\": \"{}\",\n", json_escape(mode)));
    out.push_str(&format!(
        "  \"baseline_commit\": \"{}\",\n",
        json_escape(baseline_commit)
    ));
    out.push_str("  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"name\": \"{}\", ", json_escape(&r.name)));
        out.push_str(&format!("\"ns_per_iter\": {:.1}, ", r.ns_per_iter));
        out.push_str(&format!("\"iterations\": {}", r.iterations));
        if let Some(p50) = r.p50_ns {
            out.push_str(&format!(", \"p50_ns\": {p50:.1}"));
        }
        if let Some(p99) = r.p99_ns {
            out.push_str(&format!(", \"p99_ns\": {p99:.1}"));
        }
        if let Some(baseline) = baseline_for(baselines, &r.name) {
            out.push_str(&format!(", \"baseline_ns_per_iter\": {baseline:.1}"));
            out.push_str(&format!(
                ", \"speedup_vs_baseline\": {:.2}",
                baseline / r.ns_per_iter
            ));
        }
        out.push('}');
        if i + 1 < results.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Prints the speedup-vs-baseline summary lines of a trajectory run.
pub fn print_speedups(baselines: &[(&str, f64)], results: &[BenchResult]) {
    for r in results {
        if let Some(baseline) = baseline_for(baselines, &r.name) {
            println!(
                "  {:<40} {:>6.2}x vs pre-refactor baseline",
                r.name,
                baseline / r.ns_per_iter
            );
        }
    }
}

/// Minimal JSON string escaping for the hand-rolled `BENCH_*.json` reports
/// (no serde_json in this offline workspace).
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crosslight_experiments::TextTable;

    #[test]
    fn print_table_does_not_panic() {
        let mut table = TextTable::new(vec!["a", "b"]);
        table.push_row(vec!["1", "2"]);
        print_table("smoke", &table);
    }

    #[test]
    fn trajectory_json_embeds_baselines_only_where_recorded() {
        let baselines = [("with_baseline", 200.0)];
        let results = vec![
            BenchResult {
                name: "with_baseline".into(),
                ns_per_iter: 100.0,
                iterations: 10,
                p50_ns: Some(95.0),
                p99_ns: Some(180.0),
            },
            BenchResult {
                name: "fresh".into(),
                ns_per_iter: 50.0,
                iterations: 3,
                p50_ns: None,
                p99_ns: None,
            },
        ];
        let json = render_trajectory_json("s/v1", "quick", "abc123", &baselines, &results);
        assert!(json.contains("\"schema\": \"s/v1\""));
        assert!(json.contains("\"speedup_vs_baseline\": 2.00"));
        assert!(json.contains("\"name\": \"fresh\", \"ns_per_iter\": 50.0, \"iterations\": 3}"));
        assert!(json.contains("\"p50_ns\": 95.0, \"p99_ns\": 180.0"));
        assert_eq!(json.matches("baseline_ns_per_iter").count(), 1);
        // Percentiles appear only where the measurement recorded them.
        assert_eq!(json.matches("p50_ns").count(), 1);
        assert_eq!(baseline_for(&baselines, "fresh"), None);
    }

    #[test]
    fn measure_reports_percentiles_from_boundary_timing() {
        let result = measure("smoke_measure", 5, || std::hint::black_box(3u64 + 4));
        let (p50, p99) = (result.p50_ns.unwrap(), result.p99_ns.unwrap());
        assert!(p50 > 0.0);
        assert!(p99 >= p50);
        assert!(result.iterations > 0);
    }

    #[test]
    fn measure_once_returns_the_routine_output() {
        let (result, value) = measure_once("smoke_once", || 7 * 6);
        assert_eq!(value, 42);
        assert_eq!(result.iterations, 1);
        assert!(result.ns_per_iter >= 0.0);
    }
}
