//! # crosslight-bench
//!
//! Criterion benchmark harness for the CrossLight reproduction.
//!
//! The benches do double duty: they measure how long each experiment takes to
//! regenerate, and (once per bench, outside the timed loop) they print the
//! regenerated table so `cargo bench` output contains the paper-style rows.
//!
//! * `benches/paper_figures.rs` — one bench per figure (device DSE, Fig. 4,
//!   Fig. 5, Fig. 6, Fig. 7, Fig. 8, §V.B resolution analysis).
//! * `benches/paper_tables.rs` — Table III.
//! * `benches/kernels.rs` — microbenchmarks of the core kernels (MR
//!   transmission, TED solve, conv forward, quantization, full simulator
//!   evaluation).

#![warn(missing_docs)]

/// Prints a named experiment table once, prefixed so it is easy to find in
/// `cargo bench` output.
pub fn print_table(title: &str, table: &crosslight_experiments::TextTable) {
    println!("\n=== {title} ===\n{}", table.render());
}

/// Minimal JSON string escaping for the hand-rolled `BENCH_*.json` reports
/// (no serde_json in this offline workspace).
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crosslight_experiments::TextTable;

    #[test]
    fn print_table_does_not_panic() {
        let mut table = TextTable::new(vec!["a", "b"]);
        table.push_row(vec!["1", "2"]);
        print_table("smoke", &table);
    }
}
