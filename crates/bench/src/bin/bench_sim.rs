//! Simulator-trajectory benchmark: runs the analytical-model hot paths and
//! emits a machine-readable `BENCH_sim.json`, the simulator-side sibling of
//! `bench_kernels`' `BENCH_kernels.json`.
//!
//! ```sh
//! cargo run --release -p crosslight-bench --bin bench_sim            # full run
//! cargo run --release -p crosslight-bench --bin bench_sim -- --quick # CI smoke
//! cargo run --release -p crosslight-bench --bin bench_sim -- --out path.json
//! ```
//!
//! Each entry carries the pre-refactor baseline (measured at commit
//! `8f45ac9`, per-candidate recomputation of every analytical model, full
//! sort for the Monte-Carlo p99.7) next to the current number, so
//! `speedup_vs_baseline` is the before/after record the acceptance criteria
//! ask for.  The `*_uncached`/`*_perpair` entries re-measure the preserved
//! uncached/per-pair paths on the *same* machine and flags, isolating the
//! memoization win from compiler/flag effects.

use std::sync::Arc;

use crosslight_bench::{measure, measure_once, print_speedups, render_trajectory_json};
use crosslight_core::cache::ModelCache;
use crosslight_core::config::CrossLightConfig;
use crosslight_core::simulator::CrossLightSimulator;
use crosslight_experiments::fig6_design_space;
use crosslight_neural::workload::NetworkWorkload;
use crosslight_neural::zoo::PaperModel;
use crosslight_photonics::crosstalk::{bank_resolution_bits, ChannelCrosstalkAnalysis};
use crosslight_photonics::fpv::{DriftWorkspace, FpvModel, ProcessCorner};
use crosslight_photonics::mr::MrGeometry;
use crosslight_photonics::units::Nanometers;
use crosslight_photonics::wdm::WdmGrid;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Pre-refactor baselines in ns/iter, measured at commit 8f45ac9 (the seed
/// of this PR) on the same machine: every configuration recomputed its unit
/// reports, the crosstalk analysis re-derived every Lorentzian coupling per
/// query, and the Fig. 6 sweep walked its grid serially and uncached.
const BASELINES_NS: &[(&str, f64)] = &[
    ("prepare_paper_best_modelcache", 135_459.0),
    ("evaluate_average_4_models_cached", 130_774.5),
    ("crosstalk_noise_15ch_matrix", 673.1),
    ("bank_resolution_bits_15", 733.3),
    ("fpv_monte_carlo_20k", 1_460_102.7),
    // Seed sweep: 9_910_361 ns / 81 candidates.
    ("fig6_cell_cached", 122_351.4),
    ("fig6_sweep_81_serial_cached", 9_910_361.0),
    ("fig6_sweep_81_parallel_cached", 9_910_361.0),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_sim.json".to_string());
    let window_ms: u64 = if quick { 60 } else { 400 };
    let mode = if quick { "quick" } else { "full" };
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);
    let mut results = Vec::new();

    let config = CrossLightConfig::paper_best();
    let simulator = CrossLightSimulator::new(config);
    let workloads: Vec<NetworkWorkload> = PaperModel::all()
        .iter()
        .map(|m| NetworkWorkload::from_spec(&m.spec()).expect("paper workloads are valid"))
        .collect();

    // --- prepare(): uncached cold path vs the memoized steady state --------
    results.push(measure("prepare_paper_best_uncached", window_ms, || {
        simulator.prepare().expect("valid configuration")
    }));
    let cache = Arc::new(ModelCache::new());
    results.push(measure("prepare_paper_best_modelcache", window_ms, || {
        simulator.prepare_with(&cache).expect("valid configuration")
    }));

    // --- evaluate_average through the shared cache -------------------------
    results.push(measure(
        "evaluate_average_4_models_cached",
        window_ms,
        || {
            simulator
                .evaluate_average_with(&workloads, &cache)
                .expect("valid workloads")
        },
    ));

    // --- crosstalk: per-pair Lorentzian re-derivation vs coupling matrix ---
    let grid = WdmGrid::c_band_grid(15, Nanometers::new(1.2)).expect("grid fits the FSR");
    let analysis = ChannelCrosstalkAnalysis::from_grid(&grid, 8000.0).expect("valid analysis");
    results.push(measure("crosstalk_noise_15ch_perpair", window_ms, || {
        analysis.worst_noise_power()
    }));
    let matrix = analysis.coupling_matrix();
    results.push(measure("crosstalk_noise_15ch_matrix", window_ms, || {
        matrix.worst_noise_power()
    }));

    // --- allocation-free uniform-bank resolution ---------------------------
    results.push(measure("bank_resolution_bits_15", window_ms, || {
        bank_resolution_bits(15, Nanometers::new(1.2), 8000.0, 16).expect("valid bank")
    }));

    // --- FPV Monte Carlo with a reused workspace + select_nth p99.7 --------
    let fpv = FpvModel::new(MrGeometry::conventional(), ProcessCorner::typical());
    let mut drift_workspace = DriftWorkspace::new();
    results.push(measure("fpv_monte_carlo_20k", window_ms, || {
        let mut rng = StdRng::seed_from_u64(42);
        fpv.monte_carlo_with(20_000, &mut rng, &mut drift_workspace)
    }));

    // --- one Fig. 6 cell in the cached steady state ------------------------
    let cell_simulator = CrossLightSimulator::new(
        CrossLightConfig::new(
            10,
            100,
            50,
            30,
            crosslight_core::config::DesignChoices::crosslight_opt_ted(),
        )
        .expect("valid candidate"),
    );
    results.push(measure("fig6_cell_cached", window_ms, || {
        cell_simulator
            .evaluate_average_with(&workloads, &cache)
            .expect("valid workloads")
    }));

    // --- the full 81-candidate Fig. 6 sweep, serial and parallel -----------
    let candidates = fig6_design_space::paper_candidates();
    results.push(measure("fig6_sweep_81_serial_cached", window_ms, || {
        fig6_design_space::run(&candidates).expect("sweep succeeds")
    }));
    results.push(measure("fig6_sweep_81_parallel_cached", window_ms, || {
        fig6_design_space::run_parallel(&candidates, workers).expect("sweep succeeds")
    }));

    // --- cross-architecture zoo sweep over the union grid ------------------
    let zoo = crosslight_experiments::arch_zoo::union_candidates();
    results.push(measure("arch_zoo_sweep_46_streaming", window_ms, || {
        crosslight_experiments::arch_zoo::run_streaming(
            &zoo,
            workers,
            8,
            crosslight_experiments::arch_zoo::DEFAULT_POWER_BUDGET_W,
        )
        .expect("sweep succeeds")
    }));

    // --- dense streaming sweep (full mode only: ~58.5k candidates) ---------
    if !quick {
        let dense = fig6_design_space::dense_candidates();
        let (result, frontier) = measure_once("fig6_dense_streaming_58k", || {
            fig6_design_space::run_streaming(&dense, workers, 10).expect("sweep succeeds")
        });
        println!(
            "  dense grid: {} evaluated, {} in cap, {} on the Pareto frontier",
            frontier.evaluated,
            frontier.in_cap,
            frontier.pareto.len()
        );
        results.push(result);
    }

    let json = render_trajectory_json(
        "crosslight-bench-sim/v1",
        mode,
        "8f45ac9 (pre memoized-model refactor: per-candidate unit reports, per-pair \
         crosstalk, serial uncached Fig. 6 sweep)",
        BASELINES_NS,
        &results,
    );
    std::fs::write(&out_path, &json).expect("writing the JSON report succeeds");
    println!("\nwrote {out_path} ({mode} mode)");
    print_speedups(BASELINES_NS, &results);
}
