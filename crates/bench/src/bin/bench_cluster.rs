//! Cluster-trajectory benchmark: measures the fingerprint-routing
//! [`Router`] front-end against serving the same cache-warm mix from a
//! single loopback `Server`, plus the routing-primitive microbenches, and
//! emits a machine-readable `BENCH_cluster.json` on the shared trajectory
//! harness.
//!
//! ```sh
//! cargo run --release -p crosslight-bench --bin bench_cluster            # full run
//! cargo run --release -p crosslight-bench --bin bench_cluster -- --quick # CI smoke
//! cargo run --release -p crosslight-bench --bin bench_cluster -- --out path.json
//! ```
//!
//! The headline comparison is per-request: `server_direct_warm_mix` is
//! what a client pays talking straight to one server, and
//! `cluster_loopback_warm_mix` is what the same client pays for the same
//! scenario stream through the router and three backends.  The routed
//! path is structurally more expensive than one extra hop: the router
//! holds a backend connection for a full request/response round trip per
//! exchange (no backend pipelining — exactly-once failover accounting
//! needs each in-flight request pinned to one connection), so routed
//! concurrency is the connection fan, while the direct client pipelines
//! freely.  The acceptance bar for this subsystem is the routed path
//! staying within 6× of direct serving on the warm mix; the measured
//! ratio is embedded in the JSON as `speedup_vs_baseline` of
//! `cluster_loopback_warm_mix` (a value ≥ 1/6 means within 6×).

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use crosslight_bench::{measure, print_speedups, render_trajectory_json, BenchResult};
use crosslight_cluster::backend::rendezvous_order;
use crosslight_cluster::{CircuitState, Router, RouterOptions};
use crosslight_server::loadgen::{Client, LoadGenOptions};
use crosslight_server::server::{Server, ServerOptions};
use crosslight_server::wire::{EvalSpec, ResponseBody};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_cluster.json".to_string());
    let window_ms: u64 = if quick { 80 } else { 500 };
    let mode = if quick { "quick" } else { "full" };
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .clamp(1, 4);
    let mut results = Vec::new();

    // The shared cache-warm scenario mix: the 64 distinct paper scenarios
    // of the loadgen's standard pool, materialized once.
    let specs: Vec<EvalSpec> = LoadGenOptions::paper_mix(1, 1, 0).scenarios.clone();

    // ---- routing-primitive microbenches -----------------------------------
    let mut key = 0u64;
    results.push(measure("rendezvous_order_3_backends", window_ms, || {
        key = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
        rendezvous_order(key, 3)
    }));

    // ---- the warm mix against one server, directly ------------------------
    let solo = Server::bind(
        "127.0.0.1:0",
        ServerOptions::default()
            .with_workers(workers)
            .with_queue_capacity(16 * 1024),
    )
    .expect("bind loopback server");
    let mut direct_client = Client::connect(solo.local_addr()).expect("connect to server");
    let direct_warm = direct_client
        .eval_pipelined(&specs, 0)
        .expect("direct warm pass succeeds");
    assert_eq!(direct_warm.len(), specs.len());

    let direct = measure("server_direct_warm_mix_batch", window_ms, || {
        direct_client
            .eval_pipelined(&specs, 0)
            .expect("pipelined mix succeeds")
    });
    let direct_per_req_ns = direct.ns_per_iter / specs.len() as f64;
    results.push(BenchResult {
        name: "server_direct_warm_mix".to_string(),
        ns_per_iter: direct_per_req_ns,
        iterations: direct.iterations,
        // Scaling a distribution by a constant scales its quantiles, so the
        // batch percentiles divided by the mix size are the per-request ones.
        p50_ns: direct.p50_ns.map(|p| p / specs.len() as f64),
        p99_ns: direct.p99_ns.map(|p| p / specs.len() as f64),
    });

    // ---- the same mix through the router over three backends --------------
    let backends: Vec<Server> = (0..3)
        .map(|_| {
            Server::bind(
                "127.0.0.1:0",
                ServerOptions::default()
                    .with_workers(workers)
                    .with_queue_capacity(16 * 1024),
            )
            .expect("bind backend")
        })
        .collect();
    let addrs: Vec<SocketAddr> = backends.iter().map(Server::local_addr).collect();
    // Each exchange occupies one backend connection for a full round
    // trip, so the connection fan bounds routed concurrency; 4 per
    // backend is the serving configuration this tier is sized for.
    let router = Router::bind(
        "127.0.0.1:0",
        &addrs,
        RouterOptions::default().with_backend_connections(4),
    )
    .expect("bind router");
    let mut routed_client = Client::connect(router.local_addr()).expect("connect to router");

    // Warm pass: warms each backend's shard of the mix and verifies the
    // routed answers against the direct ones, bit for bit.
    let routed_warm = routed_client
        .eval_pipelined(&specs, 0)
        .expect("routed warm pass succeeds");
    assert_eq!(routed_warm.len(), specs.len());
    for response in &routed_warm {
        let id = response.id.expect("ids are echoed") as usize;
        let ResponseBody::Eval(frame) = &response.body else {
            panic!("unexpected routed response {response:?}");
        };
        let ResponseBody::Eval(direct_frame) = &direct_warm[id].body else {
            panic!("unexpected direct response {:?}", direct_warm[id]);
        };
        assert_eq!(
            frame.report, direct_frame.report,
            "routed response diverged from direct serving"
        );
    }

    let routed = measure("cluster_loopback_warm_mix_batch", window_ms, || {
        routed_client
            .eval_pipelined(&specs, 0)
            .expect("pipelined mix succeeds")
    });
    let routed_per_req_ns = routed.ns_per_iter / specs.len() as f64;
    results.push(BenchResult {
        name: "cluster_loopback_warm_mix".to_string(),
        ns_per_iter: routed_per_req_ns,
        iterations: routed.iterations,
        p50_ns: routed.p50_ns.map(|p| p / specs.len() as f64),
        p99_ns: routed.p99_ns.map(|p| p / specs.len() as f64),
    });

    let stats = router.stats();
    assert_eq!(stats.shed_total, 0, "a warm loopback run must not shed");
    assert_eq!(stats.evals_failed, 0);
    println!(
        "router  : {} evals routed, {} failovers, {} retries during the measured runs",
        stats.evals_routed, stats.failovers, stats.retries
    );

    drop(routed_client);
    drop(direct_client);
    router.shutdown();
    for backend in backends {
        backend.shutdown();
    }
    solo.shutdown();

    // ---- failover recovery: cold vs warm readmission ----------------------
    // The same kill → outage → restart → readmit cycle, measured twice:
    // once with warm-state handoff disabled (the readmitted backend
    // recomputes its shards) and once enabled (its caches are restored
    // from the surviving replica before it takes traffic).  Each phase
    // records the serially-timed first post-recovery sweep with the same
    // run's steady-state serial sweep as its baseline, so the JSON's
    // `speedup_vs_baseline` is the recovery-vs-steady cost ratio; the
    // acceptance bar is warm-recovery p99 within 2× the steady warm p99.
    let mut failover_baselines: Vec<(String, f64)> = Vec::new();
    for (name, handoff) in [
        ("cluster_failover_cold_recovery", false),
        ("cluster_failover_warm_recovery", true),
    ] {
        // One cycle yields ~62 recovery samples, few enough that p99 is
        // effectively the max and dominated by scheduler noise; pooling
        // several full cycles keeps the percentiles about the protocol.
        let cycles = if quick { 1 } else { 3 };
        let (mut steady, mut recovery) = (Vec::new(), Vec::new());
        for _ in 0..cycles {
            let (s, r) = failover_recovery_samples(&specs, workers, handoff);
            steady.extend(s);
            recovery.extend(r);
        }
        let steady_result = result_from_samples(&format!("{name}_steady"), &steady);
        let recovery_result = result_from_samples(name, &recovery);
        println!(
            "{name}: steady p99 {:.0} ns/req, first post-recovery sweep p99 {:.0} ns/req \
             ({:.2}× steady)",
            steady_result.p99_ns.unwrap_or(f64::NAN),
            recovery_result.p99_ns.unwrap_or(f64::NAN),
            recovery_result.p99_ns.unwrap_or(f64::NAN) / steady_result.p99_ns.unwrap_or(f64::NAN),
        );
        failover_baselines.push((name.to_string(), steady_result.ns_per_iter));
        results.push(steady_result);
        results.push(recovery_result);
    }

    // The acceptance ratio, recorded as a same-run baseline so the JSON's
    // `speedup_vs_baseline` field *is* the ratio: routed vs direct serving
    // (≥ 1/6 ⇔ within 6×).
    let mut baselines: Vec<(&str, f64)> = vec![("cluster_loopback_warm_mix", direct_per_req_ns)];
    for (name, ns) in &failover_baselines {
        baselines.push((name.as_str(), *ns));
    }
    let ratio = routed_per_req_ns / direct_per_req_ns;
    println!(
        "\ncluster loopback {routed_per_req_ns:.0} ns/req vs direct server \
         {direct_per_req_ns:.0} ns/req → {ratio:.2}× direct cost (acceptance bar: ≤ 6×)"
    );

    let json = render_trajectory_json(
        "crosslight-bench-cluster/v1",
        mode,
        "5c1afd5 (pre-cluster seed: one server per client; the recorded baseline of \
         cluster_loopback_warm_mix is server_direct_warm_mix measured in this same run, \
         so speedup_vs_baseline is the routed-vs-direct cost ratio)",
        &baselines,
        &results,
    );
    std::fs::write(&out_path, &json).expect("writing the JSON report succeeds");
    println!("\nwrote {out_path} ({mode} mode)");
    print_speedups(&baselines, &results);
}

/// Folds per-request latency samples (nanoseconds) into a [`BenchResult`]:
/// the mean as `ns_per_iter` and the p50/p99 of the sample distribution.
fn result_from_samples(name: &str, samples: &[f64]) -> BenchResult {
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let percentile = |q: f64| -> Option<f64> {
        let last = sorted.len().checked_sub(1)?;
        Some(sorted[((last as f64) * q).round() as usize])
    };
    BenchResult {
        name: name.to_string(),
        ns_per_iter: samples.iter().sum::<f64>() / samples.len().max(1) as f64,
        iterations: samples.len() as u64,
        p50_ns: percentile(0.50),
        p99_ns: percentile(0.99),
    }
}

/// Runs one full failover cycle — warm the cluster, serially time a
/// steady-state sweep, kill one of the two replicated backends, sweep
/// through the outage, restart it, wait for readmission, and serially
/// time the first post-recovery sweep — returning the (steady, recovery)
/// per-request samples in nanoseconds.  With `handoff` the readmitted
/// backend's caches are restored from the survivor before it takes
/// traffic; without it the same sweep pays the recompute cliff.
fn failover_recovery_samples(
    specs: &[EvalSpec],
    workers: usize,
    handoff: bool,
) -> (Vec<f64>, Vec<f64>) {
    let bind_backend = || {
        Server::bind(
            "127.0.0.1:0",
            ServerOptions::default()
                .with_workers(workers)
                .with_queue_capacity(16 * 1024),
        )
        .expect("bind backend")
    };
    let wait_for = |what: &str, mut cond: Box<dyn FnMut() -> bool + '_>| {
        let deadline = Instant::now() + Duration::from_secs(10);
        while !cond() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(5));
        }
    };

    let [keeper, victim] = [bind_backend(), bind_backend()];
    let addrs = [keeper.local_addr(), victim.local_addr()];
    // One connection per backend keeps the post-recovery redial cost a
    // single, explicitly primed event instead of a smear across the sweep.
    let router = Router::bind(
        "127.0.0.1:0",
        &addrs,
        RouterOptions::default()
            .with_replication(2)
            .with_backend_connections(1)
            .with_handoff(handoff)
            .with_health(
                Duration::from_millis(10),
                Duration::from_millis(250),
                Duration::from_millis(50),
            ),
    )
    .expect("bind router");
    let mut client = Client::connect(router.local_addr()).expect("connect to router");

    // Warm both replicas of every shard, then time the steady-state sweep
    // one request at a time (per-request latency, not pipelined throughput).
    for pass in 0..2u64 {
        let warm = client
            .eval_pipelined(specs, pass * specs.len() as u64)
            .expect("warm sweep succeeds");
        assert_eq!(warm.len(), specs.len());
    }
    let mut steady = Vec::with_capacity(specs.len());
    for (i, spec) in specs.iter().enumerate() {
        let start = Instant::now();
        let response = client.eval(1_000 + i as u64, spec).expect("steady eval");
        steady.push(start.elapsed().as_nanos() as f64);
        assert!(
            matches!(response.body, ResponseBody::Eval(_)),
            "steady sweep answered {response:?}"
        );
    }

    // Kill one replica, push a sweep through the outage so the breaker
    // trips, and wait for it to open.
    victim.shutdown();
    let outage = client
        .eval_pipelined(specs, 10_000)
        .expect("outage sweep fails over to the survivor");
    assert_eq!(outage.len(), specs.len());
    wait_for(
        "the breaker to open",
        Box::new(|| router.stats().backend_states[1] == CircuitState::Open),
    );

    // Restart it at a fresh address and wait for readmission — warm
    // (handoff restores its caches first) or cold, per the flag.
    let reborn = bind_backend();
    router.update_backend_addr(1, reborn.local_addr());
    wait_for(
        "the reborn backend to be readmitted",
        Box::new(|| {
            let stats = router.stats();
            stats.backend_states[1] == CircuitState::Closed && stats.readmitted[1] >= 1
        }),
    );

    // Prime the redialed exchange connection with the first two specs so
    // the timed sweep measures serving cost, not TCP connect cost, then
    // serially time the rest as the first post-recovery sweep.
    let primer = client
        .eval_pipelined(&specs[..2.min(specs.len())], 20_000)
        .expect("connection priming succeeds");
    assert!(!primer.is_empty());
    let mut recovery = Vec::with_capacity(specs.len().saturating_sub(2));
    for (i, spec) in specs.iter().enumerate().skip(2) {
        let start = Instant::now();
        let response = client.eval(30_000 + i as u64, spec).expect("recovery eval");
        recovery.push(start.elapsed().as_nanos() as f64);
        assert!(
            matches!(response.body, ResponseBody::Eval(_)),
            "recovery sweep answered {response:?}"
        );
    }

    drop(client);
    router.shutdown();
    keeper.shutdown();
    reborn.shutdown();
    (steady, recovery)
}
