//! Server-trajectory benchmark: measures the TCP/JSON-lines front-end
//! against direct in-process `EvalService` dispatch over the same
//! cache-warm request mix, plus the wire codec microbenches, and emits a
//! machine-readable `BENCH_server.json` on the shared trajectory harness.
//!
//! ```sh
//! cargo run --release -p crosslight-bench --bin bench_server            # full run
//! cargo run --release -p crosslight-bench --bin bench_server -- --quick # CI smoke
//! cargo run --release -p crosslight-bench --bin bench_server -- --out path.json
//! ```
//!
//! The headline comparison is per-request: `direct_submit_each_warm` is
//! what an in-process caller pays per `EvalService::submit` on a warm
//! cache, and `server_loopback_warm_mix` is what a network client pays for
//! the same scenario stream (pipelined over one loopback connection,
//! including client-side encode/decode).  The acceptance bar for this
//! subsystem is the loopback path staying within 2× of direct dispatch;
//! the measured ratio is embedded in the JSON as `speedup_vs_baseline` of
//! `server_loopback_warm_mix` (a value ≥ 0.5 means within 2×).

use std::sync::Arc;

use crosslight_bench::{measure, print_speedups, render_trajectory_json, BenchResult};
use crosslight_neural::workload::NetworkWorkload;
use crosslight_neural::zoo::PaperModel;
use crosslight_runtime::pool::{EvalService, RuntimeOptions};
use crosslight_runtime::request::EvalRequest;
use crosslight_server::loadgen::{Client, LoadGenOptions};
use crosslight_server::server::{Server, ServerOptions};
use crosslight_server::wire::{
    self, EvalFrame, EvalSpec, Request, RequestBody, Response, ResponseBody,
};

/// `server_loopback_warm_mix` as measured at commit 76707dc, when the
/// front-end still ran a reader/responder/writer thread trio per
/// connection.  The reactor scenarios use it as their fixed baseline, so
/// their `speedup_vs_baseline` reads directly as "× faster than the
/// thread-trio front-end".
const THREAD_TRIO_LOOPBACK_WARM_MIX_NS: f64 = 11_837.5;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_server.json".to_string());
    let window_ms: u64 = if quick { 80 } else { 500 };
    let mode = if quick { "quick" } else { "full" };
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);
    let mut results = Vec::new();

    // The shared cache-warm scenario mix: the 64 distinct paper scenarios
    // of the loadgen's standard pool, materialized once.
    let mix_options = LoadGenOptions::paper_mix(1, 1, 0);
    let specs: Vec<EvalSpec> = mix_options.scenarios.clone();
    let workloads: [Arc<NetworkWorkload>; 4] = PaperModel::all()
        .map(|m| Arc::new(NetworkWorkload::from_spec(&m.spec()).expect("paper models are valid")));
    let requests: Vec<EvalRequest> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            spec.to_eval_request(i as u64, &workloads)
                .expect("mix scenarios are valid")
        })
        .collect();

    // ---- wire codec microbenches ------------------------------------------
    let sample_request = Request {
        id: 42,
        body: RequestBody::Eval(specs[0].clone()),
    };
    let request_line = wire::encode_request(&sample_request);
    results.push(measure("wire_encode_request", window_ms, || {
        wire::encode_request(&sample_request)
    }));
    results.push(measure("wire_decode_request", window_ms, || {
        wire::decode_request(&request_line).expect("sample line is valid")
    }));

    let direct_service = EvalService::new(RuntimeOptions::default().with_workers(workers));
    let sample_report = direct_service
        .submit(requests[0].clone())
        .expect("dispatch succeeds")
        .report;
    let sample_response = Response {
        id: Some(42),
        body: ResponseBody::Eval(EvalFrame {
            report: sample_report,
            cache_hit: true,
            worker: 0,
        }),
    };
    let response_line = wire::encode_response(&sample_response);
    results.push(measure("wire_encode_response", window_ms, || {
        wire::encode_response(&sample_response)
    }));
    results.push(measure("wire_decode_response", window_ms, || {
        wire::decode_response(&response_line).expect("sample line is valid")
    }));

    // ---- direct in-process dispatch over the warm mix ---------------------
    // Warm every scenario once so both sides measure the steady state.
    direct_service
        .submit_batch(requests.clone())
        .expect("warm-up succeeds");

    let mut cursor = 0usize;
    let direct_each = measure("direct_submit_each_warm", window_ms, || {
        let request = requests[cursor % requests.len()].clone();
        cursor += 1;
        direct_service.submit(request).expect("dispatch succeeds")
    });
    let direct_each_ns = direct_each.ns_per_iter;
    results.push(direct_each);

    let batch = measure("direct_submit_batch_warm_mix", window_ms, || {
        direct_service
            .submit_batch(requests.clone())
            .expect("dispatch succeeds")
    });
    let batch_per_req_ns = batch.ns_per_iter / requests.len() as f64;
    results.push(BenchResult {
        name: "direct_submit_batch_warm_per_req".to_string(),
        ns_per_iter: batch_per_req_ns,
        iterations: batch.iterations,
        // Scaling a distribution by a constant scales its quantiles, so the
        // batch percentiles divided by the mix size are the per-request ones.
        p50_ns: batch.p50_ns.map(|p| p / requests.len() as f64),
        p99_ns: batch.p99_ns.map(|p| p / requests.len() as f64),
    });

    // ---- tracing-enabled-but-unsampled overhead ---------------------------
    // A sampling period of u64::MAX arms the tracing machinery (the sampler
    // runs on every submit) while never actually tracing a request — the
    // steady-state cost every untraced request pays.  Its baseline is the
    // tracing-off per-request figure from this same run, so the JSON's
    // `speedup_vs_baseline` is the overhead ratio (≥ 0.98 ⇔ ≤ 2% overhead).
    let traced_service = EvalService::new(
        RuntimeOptions::default()
            .with_workers(workers)
            .with_trace_sampling(u64::MAX),
    );
    traced_service
        .submit_batch(requests.clone())
        .expect("warm-up succeeds");
    let traced_batch = measure(
        "direct_submit_batch_warm_mix_unsampled_trace",
        window_ms,
        || {
            traced_service
                .submit_batch(requests.clone())
                .expect("dispatch succeeds")
        },
    );
    let traced_per_req_ns = traced_batch.ns_per_iter / requests.len() as f64;
    results.push(BenchResult {
        name: "direct_submit_batch_warm_per_req_unsampled_trace".to_string(),
        ns_per_iter: traced_per_req_ns,
        iterations: traced_batch.iterations,
        p50_ns: traced_batch.p50_ns.map(|p| p / requests.len() as f64),
        p99_ns: traced_batch.p99_ns.map(|p| p / requests.len() as f64),
    });
    traced_service.shutdown();

    // ---- the same warm mix over loopback TCP ------------------------------
    let server = Server::bind(
        "127.0.0.1:0",
        ServerOptions::default()
            .with_workers(workers)
            .with_queue_capacity(16 * 1024),
    )
    .expect("bind loopback server");
    let mut client = Client::connect(server.local_addr()).expect("connect to loopback server");
    // Warm pass (also verifies equivalence with direct dispatch).
    let warm = client
        .eval_pipelined(&specs, 0)
        .expect("warm pass succeeds");
    assert_eq!(warm.len(), specs.len());
    for response in &warm {
        let ResponseBody::Eval(frame) = &response.body else {
            panic!("unexpected response {response:?}");
        };
        let id = response.id.expect("ids are echoed") as usize;
        let direct = direct_service
            .submit(requests[id].clone())
            .expect("dispatch succeeds");
        assert_eq!(
            frame.report, direct.report,
            "wire response diverged from direct dispatch"
        );
    }

    let loopback = measure("server_loopback_warm_mix_batch", window_ms, || {
        client
            .eval_pipelined(&specs, 0)
            .expect("pipelined mix succeeds")
    });
    let per_request_ns = loopback.ns_per_iter / specs.len() as f64;
    results.push(BenchResult {
        name: "server_loopback_warm_mix".to_string(),
        ns_per_iter: per_request_ns,
        iterations: loopback.iterations,
        p50_ns: loopback.p50_ns.map(|p| p / specs.len() as f64),
        p99_ns: loopback.p99_ns.map(|p| p / specs.len() as f64),
    });
    // The same measurement under its reactor name, judged against the
    // recorded thread-trio figure instead of this run's direct dispatch —
    // the regression gate for the reactor front-end itself.
    results.push(BenchResult {
        name: "reactor_loopback_warm_mix".to_string(),
        ns_per_iter: per_request_ns,
        iterations: loopback.iterations,
        p50_ns: loopback.p50_ns.map(|p| p / specs.len() as f64),
        p99_ns: loopback.p99_ns.map(|p| p / specs.len() as f64),
    });

    // ---- cross-connection micro-batching ----------------------------------
    // Four connections pipeline the warm mix concurrently, so the server's
    // micro-batcher can coalesce admitted evals across connections into
    // pool batches.  Reported per request across all connections.
    const MICROBATCH_CLIENTS: usize = 4;
    let mut batch_clients: Vec<Client> = (0..MICROBATCH_CLIENTS)
        .map(|_| Client::connect(server.local_addr()).expect("connect batch client"))
        .collect();
    let microbatch = measure("microbatch_warm_mix_batch", window_ms, || {
        std::thread::scope(|scope| {
            for client in batch_clients.iter_mut() {
                scope.spawn(|| {
                    client
                        .eval_pipelined(&specs, 0)
                        .expect("pipelined mix succeeds")
                });
            }
        });
    });
    let microbatch_requests = (MICROBATCH_CLIENTS * specs.len()) as f64;
    let microbatch_per_req_ns = microbatch.ns_per_iter / microbatch_requests;
    results.push(BenchResult {
        name: "microbatch_per_req".to_string(),
        ns_per_iter: microbatch_per_req_ns,
        iterations: microbatch.iterations,
        p50_ns: microbatch.p50_ns.map(|p| p / microbatch_requests),
        p99_ns: microbatch.p99_ns.map(|p| p / microbatch_requests),
    });
    drop(batch_clients);

    // Multi-connection aggregate throughput, reported for context.
    let load_options = LoadGenOptions::paper_mix(4, if quick { 64 } else { 256 }, 1);
    let load = crosslight_server::loadgen::run(server.local_addr(), &load_options)
        .expect("load run succeeds");
    assert_eq!(load.ok, load.sent);
    println!(
        "loadgen: {} clients × {} requests → {:>8.0} req/s aggregate",
        load_options.clients,
        load_options.requests_per_client,
        load.throughput_rps()
    );

    drop(client);
    server.shutdown();

    // The acceptance ratios, both recorded as same-run baselines so the
    // JSON's `speedup_vs_baseline` fields *are* the ratios: loopback vs
    // direct dispatch (≥ 0.5 ⇔ within 2×), and unsampled-trace vs
    // tracing-off dispatch (≥ 0.98 ⇔ ≤ 2% tracing overhead).
    let baselines: Vec<(&str, f64)> = vec![
        ("server_loopback_warm_mix", direct_each_ns),
        (
            "direct_submit_batch_warm_per_req_unsampled_trace",
            batch_per_req_ns,
        ),
        (
            "reactor_loopback_warm_mix",
            THREAD_TRIO_LOOPBACK_WARM_MIX_NS,
        ),
        ("microbatch_per_req", THREAD_TRIO_LOOPBACK_WARM_MIX_NS),
    ];
    let ratio = per_request_ns / direct_each_ns;
    println!(
        "\nserver loopback {per_request_ns:.0} ns/req vs direct dispatch {direct_each_ns:.0} \
         ns/req → {ratio:.2}× direct cost (acceptance bar: ≤ 2×)"
    );
    println!(
        "reactor {per_request_ns:.0} ns/req vs thread-trio front-end \
         {THREAD_TRIO_LOOPBACK_WARM_MIX_NS:.0} ns/req → {:.2}×; micro-batched \
         {microbatch_per_req_ns:.0} ns/req over {MICROBATCH_CLIENTS} connections → {:.2}×",
        THREAD_TRIO_LOOPBACK_WARM_MIX_NS / per_request_ns,
        THREAD_TRIO_LOOPBACK_WARM_MIX_NS / microbatch_per_req_ns,
    );
    let overhead = traced_per_req_ns / batch_per_req_ns;
    println!(
        "unsampled tracing {traced_per_req_ns:.0} ns/req vs tracing off {batch_per_req_ns:.0} \
         ns/req → {overhead:.3}× (acceptance bar: ≤ 1.02×)"
    );

    let json = render_trajectory_json(
        "crosslight-bench-server/v1",
        mode,
        "b2dd617 (pre-server seed: EvalService reachable in-process only; the recorded \
         baseline of server_loopback_warm_mix is direct_submit_each_warm measured in this \
         same run, so speedup_vs_baseline is the loopback-vs-direct cost ratio; \
         reactor_loopback_warm_mix and microbatch_per_req are judged against the fixed \
         thread-trio-era server_loopback_warm_mix figure from 76707dc)",
        &baselines,
        &results,
    );
    std::fs::write(&out_path, &json).expect("writing the JSON report succeeds");
    println!("\nwrote {out_path} ({mode} mode)");
    print_speedups(&baselines, &results);
}
