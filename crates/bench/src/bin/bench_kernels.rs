//! Benchmark-trajectory harness: runs the hot-kernel workloads and emits a
//! machine-readable `BENCH_kernels.json` so every PR can record a perf
//! datapoint and future sessions can track the trajectory.
//!
//! ```sh
//! cargo run --release -p crosslight-bench --bin bench_kernels            # full run
//! cargo run --release -p crosslight-bench --bin bench_kernels -- --quick # CI smoke
//! cargo run --release -p crosslight-bench --bin bench_kernels -- --out path.json
//! ```
//!
//! Each entry carries the pre-refactor baseline (measured at commit
//! `e4efd69`, naive kernels, default `target-cpu`) next to the current
//! number, so `speedup_vs_baseline` is the before/after record the
//! acceptance criteria ask for.  The `*_naive` entries re-measure the
//! preserved reference kernels on the *same* machine and flags, isolating
//! the algorithmic win from compiler/flag effects.

use crosslight_bench::{measure, print_speedups, render_trajectory_json};
use crosslight_neural::datasets::generate_synthetic;
use crosslight_neural::layers::{Conv2d, Layer};
use crosslight_neural::quant::QuantConfig;
use crosslight_neural::tensor::{im2col_into, reference, Im2colSpec, Tensor};
use crosslight_neural::train::{evaluate_quantized, train, TrainConfig};
use crosslight_neural::zoo::PaperModel;
use crosslight_photonics::thermal::ThermalCrosstalkModel;
use crosslight_photonics::units::{Micrometers, Radians};
use crosslight_tuning::ted::{TedSolver, TedWorkspace};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Pre-refactor baselines in ns/iter, measured at commit e4efd69 (the seed
/// of this PR) with the then-current naive kernels and default codegen.
const BASELINES_NS: &[(&str, f64)] = &[
    ("matmul_96x288x96", 361_468.0),
    ("im2col_3x32x32_k3", 44_469.0),
    ("conv2d_forward_3x32x32_to_16ch", 150_971.0),
    ("train_epoch_cifar10_surrogate", 5_228_967.0),
    ("fig5_cell_cifar10_8bit", 22_174_703.0),
    ("ted_solve_15_mr_bank", 991.0),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let window_ms: u64 = if quick { 60 } else { 400 };
    let mode = if quick { "quick" } else { "full" };
    let mut results = Vec::new();

    // --- blocked vs naive matmul -----------------------------------------
    let mut rng = StdRng::seed_from_u64(42);
    let a = Tensor::random_uniform(vec![96, 288], 1.0, &mut rng);
    let b = Tensor::random_uniform(vec![288, 96], 1.0, &mut rng);
    let mut out = Tensor::default();
    results.push(measure("matmul_96x288x96", window_ms, || {
        a.matmul_into(&b, &mut out).expect("valid shapes");
        out.as_slice()[0]
    }));
    results.push(measure("matmul_96x288x96_naive", window_ms, || {
        reference::matmul_naive(&a, &b).expect("valid shapes")
    }));

    // --- im2col, blocked (buffer-reusing) vs naive -----------------------
    let input = Tensor::random_uniform(vec![3, 32, 32], 1.0, &mut rng);
    let spec = Im2colSpec {
        in_channels: 3,
        height: 32,
        width: 32,
        kernel: 3,
        stride: 1,
    };
    results.push(measure("im2col_3x32x32_k3", window_ms, || {
        im2col_into(&input, &spec, &mut out).expect("valid shapes");
        out.as_slice()[0]
    }));
    results.push(measure("im2col_3x32x32_k3_naive", window_ms, || {
        reference::im2col_naive(&input, &spec).expect("valid shapes")
    }));

    // --- conv forward (allocation-free steady state) ---------------------
    let mut conv_rng = StdRng::seed_from_u64(1);
    let mut conv = Conv2d::new(3, 16, 3, 1, &mut conv_rng).expect("valid layer");
    let conv_input = Tensor::random_uniform(vec![3, 32, 32], 1.0, &mut conv_rng);
    results.push(measure("conv2d_forward_3x32x32_to_16ch", window_ms, || {
        conv.forward_into(&conv_input, &mut out)
            .expect("valid input");
        out.as_slice()[0]
    }));

    // --- one SGD epoch on the Fig. 5 CIFAR-10 surrogate ------------------
    let spec_m = PaperModel::CnnCifar10.spec();
    let mut data_rng = StdRng::seed_from_u64(7);
    let dataset =
        generate_synthetic(&spec_m.surrogate_dataset(10), &mut data_rng).expect("dataset");
    let (train_split, test_split) = dataset.split(0.75);
    let mut model_rng = StdRng::seed_from_u64(9);
    let mut model = spec_m.build_surrogate(&mut model_rng).expect("surrogate");
    let epoch_config = TrainConfig {
        epochs: 1,
        learning_rate: 0.08,
        batch_size: 8,
    };
    results.push(measure("train_epoch_cifar10_surrogate", window_ms, || {
        train(&mut model, &train_split, &epoch_config).expect("trains")
    }));

    // --- one full Fig. 5 sweep cell (train + quantized evaluate) ---------
    let cell_config = TrainConfig {
        epochs: 4,
        learning_rate: 0.08,
        batch_size: 8,
    };
    results.push(measure(
        "fig5_cell_cifar10_8bit",
        window_ms.max(200),
        || {
            let mut rng = StdRng::seed_from_u64(11);
            let mut surrogate = spec_m.build_surrogate(&mut rng).expect("surrogate");
            train(&mut surrogate, &train_split, &cell_config).expect("trains");
            evaluate_quantized(&mut surrogate, &test_split, &QuantConfig::uniform(8))
                .expect("evaluates")
        },
    ));

    // --- TED solve with a reused workspace -------------------------------
    let matrix = ThermalCrosstalkModel::default()
        .crosstalk_matrix(15, Micrometers::new(5.0))
        .expect("valid matrix");
    let solver = TedSolver::with_table_ii_heater(&matrix).expect("valid solver");
    let targets: Vec<Radians> = (0..15)
        .map(|i| Radians::new(0.2 + 0.1 * ((i as f64) * 1.3).sin()))
        .collect();
    let mut workspace = TedWorkspace::new();
    results.push(measure("ted_solve_15_mr_bank", window_ms, || {
        solver
            .solve_with(&targets, &mut workspace)
            .expect("solvable")
            .total_power
    }));

    let json = render_trajectory_json(
        "crosslight-bench-kernels/v1",
        mode,
        "e4efd69 (pre blocked-kernel refactor, naive kernels, default target-cpu)",
        BASELINES_NS,
        &results,
    );
    std::fs::write(&out_path, &json).expect("writing the JSON report succeeds");
    println!("\nwrote {out_path} ({mode} mode)");
    print_speedups(BASELINES_NS, &results);
}
