//! Collection strategies, mirroring `proptest::collection`.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// An inclusive-exclusive length range for collection strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(self, rng: &mut StdRng) -> usize {
        if self.lo + 1 >= self.hi {
            self.lo
        } else {
            rng.gen_range(self.lo..self.hi)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange {
            lo: range.start,
            hi: range.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        let (lo, hi) = range.into_inner();
        assert!(lo <= hi, "empty collection size range");
        SizeRange { lo, hi: hi + 1 }
    }
}

/// Strategy for `Vec<T>` with element strategy `S`, see [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Builds a strategy producing vectors whose elements come from `element`
/// and whose length is drawn from `size` (an exact `usize` or a range).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn exact_size_is_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            assert_eq!(vec(0.0f64..1.0, 7).new_value(&mut rng).len(), 7);
        }
    }

    #[test]
    fn ranged_size_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let strategy = vec(0u32..5, 2..9);
        for _ in 0..100 {
            let v = strategy.new_value(&mut rng);
            assert!((2..9).contains(&v.len()));
        }
    }

    #[test]
    fn zero_length_supported() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(vec(0u32..5, 0).new_value(&mut rng).is_empty());
    }
}
