//! The [`Strategy`] trait and the combinators the CrossLight tests use.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for producing random values of one type.
///
/// Unlike real proptest there is no value *tree* (and therefore no
/// shrinking); a strategy here is just a deterministic sampler driven by the
/// harness RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms every produced value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Uses each produced value to build a follow-up strategy, then samples
    /// that — the idiom for dependent sizes (e.g. a matrix and its data).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy that always yields a clone of one value, mirroring
/// `proptest::strategy::Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(f32, f64, usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn just_yields_its_value() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(Just(41).new_value(&mut rng), 41);
    }

    #[test]
    fn map_applies() {
        let mut rng = StdRng::seed_from_u64(0);
        let doubled = (1usize..10).prop_map(|v| v * 2);
        for _ in 0..50 {
            let v = doubled.new_value(&mut rng);
            assert_eq!(v % 2, 0);
            assert!((2..20).contains(&v));
        }
    }

    #[test]
    fn tuples_sample_each_component() {
        let mut rng = StdRng::seed_from_u64(3);
        let (a, b, c) = (1usize..4, -1.0f64..1.0, 0u32..2).new_value(&mut rng);
        assert!((1..4).contains(&a));
        assert!((-1.0..1.0).contains(&b));
        assert!(c < 2);
    }
}
