//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no crates.io access, so this crate reimplements
//! the strategy-combinator subset the CrossLight property tests use:
//!
//! * range strategies (`0.0f64..1.0`, `1usize..=16`, …),
//! * tuple strategies up to arity 4,
//! * [`collection::vec`] with fixed or ranged lengths,
//! * [`Strategy::prop_map`] / [`Strategy::prop_flat_map`],
//! * the [`proptest!`], [`prop_assert!`] and [`prop_assert_eq!`] macros.
//!
//! Semantics differ from real proptest in two deliberate ways: sampling is
//! plain uniform random (no integrated shrinking — a failing case prints its
//! case number and seed instead of a minimised input), and execution is
//! deterministic per test name, so failures reproduce exactly. The number of
//! cases per property defaults to 64 and can be raised with the
//! `PROPTEST_CASES` environment variable, matching the real crate's knob.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

pub mod collection;

pub mod num;

/// Number of random cases each property runs, from `PROPTEST_CASES` (default
/// 64).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Builds the deterministic RNG for one property, seeded from the test name
/// so distinct properties explore distinct streams but reruns are identical.
pub fn new_rng(test_name: &str) -> StdRng {
    // FNV-1a over the test name.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

/// Everything a property test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests. Each function parameter is drawn from its
/// strategy once per case. In test modules, write `#[test]` above each
/// property exactly as with the real crate; the attribute is re-emitted on
/// the generated zero-argument function:
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     fn addition_commutes(a in 0.0f64..1e6, b in 0.0f64..1e6) {
///         prop_assert!((a + b - (b + a)).abs() < 1e-12);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::cases();
                let mut proptest_rng = $crate::new_rng(stringify!($name));
                for proptest_case in 0..cases {
                    let run = || {
                        $(let $pat =
                            $crate::strategy::Strategy::new_value(&($strat), &mut proptest_rng);)+
                        $body
                    };
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(run),
                    );
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest: property {} failed at case {}/{} \
                             (rerun is deterministic per test name)",
                            stringify!($name),
                            proptest_case + 1,
                            cases,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

/// Asserts a property-level condition, mirroring `prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, concat!("property assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts property-level equality, mirroring `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// Asserts property-level inequality, mirroring `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Floats drawn from a range land inside it.
        #[test]
        fn range_strategy_in_bounds(x in 1.5f64..9.25) {
            prop_assert!((1.5..9.25).contains(&x));
        }

        /// Tuple + map + flat-map compose the way the repo's tests use them.
        #[test]
        fn combinators_compose(
            (rows, cols, data) in (1usize..=5, 1usize..=5).prop_flat_map(|(r, c)| {
                crate::collection::vec(-2.0f32..2.0, r * c)
                    .prop_map(move |data| (r, c, data))
            }),
        ) {
            prop_assert_eq!(data.len(), rows * cols);
            prop_assert!(data.iter().all(|v| (-2.0..2.0).contains(v)));
        }

        /// Ranged vec lengths respect their bounds.
        #[test]
        fn vec_length_ranges(values in crate::collection::vec(0u32..10, 2..6)) {
            prop_assert!((2..6).contains(&values.len()));
            prop_assert!(values.iter().all(|&v| v < 10));
        }
    }

    #[test]
    fn cases_env_default() {
        assert!(cases_is_positive());
    }

    fn cases_is_positive() -> bool {
        crate::cases() > 0
    }
}
