//! Full-range numeric strategies, mirroring `proptest::num`.
//!
//! `proptest::num::u64::ANY` samples the type's *entire* range — the way a
//! property reaches every `f64` bit pattern (NaNs, infinities, subnormals)
//! through `f64::from_bits`, which range strategies cannot express.

macro_rules! any_strategy {
    ($($mod_name:ident => $t:ty),* $(,)?) => {$(
        /// Full-range strategies over this integer type.
        pub mod $mod_name {
            use rand::rngs::StdRng;
            use rand::Rng;

            /// Uniform over the type's full range, mirroring
            /// `proptest::num::*::Any`.
            #[derive(Debug, Clone, Copy)]
            pub struct Any;

            /// The full-range strategy, mirroring `proptest::num::*::ANY`.
            pub const ANY: Any = Any;

            impl crate::strategy::Strategy for Any {
                type Value = $t;

                fn new_value(&self, rng: &mut StdRng) -> $t {
                    rng.gen::<u64>() as $t
                }
            }
        }
    )*};
}

any_strategy!(u8 => u8, u16 => u16, u32 => u32, u64 => u64);
