//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The CrossLight workspace annotates its model/config types with
//! `#[derive(Serialize, Deserialize)]` so they are wire-ready, but nothing in
//! the repository actually serializes yet (no `serde_json`/`bincode`
//! consumer). Because the build environment has no crates.io access, this
//! proc-macro crate supplies the two derive macros as no-ops: the attribute
//! positions stay valid and the annotated types compile unchanged, and the
//! real `serde` can be dropped in later by swapping one workspace dependency
//! line — no source edits required.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`. Accepts the derive position and
/// emits nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`. Accepts the derive position and
/// emits nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
