//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Implements the slice of the Criterion API the CrossLight benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`criterion_group!`], [`criterion_main!`] — as a small
//! wall-clock harness: each bench warms up briefly, then runs enough
//! iterations to fill a fixed measurement window and reports mean time per
//! iteration. Statistical machinery (outlier rejection, HTML reports) is out
//! of scope; the point is that `cargo bench` runs, prints comparable numbers,
//! and `cargo bench --no-run` keeps the perf surface compiling in CI.

#![warn(missing_docs)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under the name Criterion exposes.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Timing loop handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Calls `routine` repeatedly inside the measurement window, keeping its
    /// output alive so the optimiser cannot delete the work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: a handful of untimed calls to populate caches.
        for _ in 0..3 {
            std_black_box(routine());
        }
        let window = Duration::from_millis(200);
        let start = Instant::now();
        let mut iterations = 0u64;
        while start.elapsed() < window {
            std_black_box(routine());
            iterations += 1;
        }
        self.elapsed = start.elapsed();
        self.iterations = iterations;
    }
}

fn report(name: &str, bencher: &Bencher) {
    if bencher.iterations == 0 {
        println!("{name:<48} (no iterations)");
        return;
    }
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.iterations as f64;
    let (value, unit) = if per_iter < 1e-6 {
        (per_iter * 1e9, "ns")
    } else if per_iter < 1e-3 {
        (per_iter * 1e6, "µs")
    } else if per_iter < 1.0 {
        (per_iter * 1e3, "ms")
    } else {
        (per_iter, "s")
    };
    println!(
        "{name:<48} time: {value:>10.3} {unit}/iter  ({} iterations)",
        bencher.iterations
    );
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report(name, &bencher);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's fixed measurement window
    /// makes the requested sample count moot.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark inside this group (`group/name` in the report).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report(&format!("{}/{}", self.name, name), &bencher);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_api_is_chainable() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("inner", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
