//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The CrossLight build environment has no access to a crates.io registry, so
//! this workspace vendors the *exact* API subset the reproduction uses —
//! [`Rng::gen`], [`Rng::gen_range`], [`SeedableRng::seed_from_u64`] and
//! [`rngs::StdRng`] — backed by a deterministic xoshiro256++ generator seeded
//! through SplitMix64 (the same construction the real `rand` 0.8 uses for
//! `StdRng::seed_from_u64`-style seeding).
//!
//! Determinism matters more than statistical perfection here: every
//! experiment, property test, and bench seeds explicitly via
//! `StdRng::seed_from_u64`, so results are reproducible across runs and
//! platforms.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of uniformly distributed 64-bit values.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an [`Rng`] with no parameters
/// (the `Standard` distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample a single value from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Standard::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                // Closed-unit-interval draw so `hi` itself is reachable,
                // matching the inclusive semantics of the real crate.
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
int_sample_range!(usize, u8, u16, u32, u64);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
signed_sample_range!(i8, i16, i32, i64, isize);

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution
    /// (uniform in `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, RG: SampleRange<T>>(&mut self, range: RG) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from an integer seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, expanding it through
    /// SplitMix64 so nearby seeds give unrelated streams.
    fn seed_from_u64(state: u64) -> Self;

    /// Builds the generator from OS-independent fixed entropy. Deterministic
    /// in this offline shim (equivalent to `seed_from_u64(0)`).
    fn from_entropy() -> Self {
        Self::seed_from_u64(0)
    }
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace standard RNG: xoshiro256++ seeded via SplitMix64.
    ///
    /// Not cryptographically secure — and does not need to be; it drives
    /// Monte-Carlo process variation sweeps and weight initialisation.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_constructions() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.gen_range(-1.5f64..=1.5);
            assert!((-1.5..=1.5).contains(&x));
            let n = rng.gen_range(3usize..17);
            assert!((3..17).contains(&n));
            let s = rng.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&s));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
