//! Offline stand-in for the `libc` crate.
//!
//! The build container cannot fetch crates, so this shim provides exactly the
//! FFI subset CrossLight's poll-based reactor needs: the `pollfd` structure,
//! the `POLL*` event flags, and the `poll(2)` entry point. On Unix targets the
//! symbol resolves against the system C library that `std` already links; on
//! other targets a portable fallback reports every descriptor as ready after a
//! short sleep, which degrades the reactor to a polling loop over nonblocking
//! sockets without changing its observable behaviour.
//!
//! The declarations mirror the real `libc` crate for the `x86_64`/`aarch64`
//! Linux ABI so a future `cargo add libc` is a drop-in swap.

#![allow(non_camel_case_types)]

pub type c_int = i32;
pub type c_short = i16;
pub type c_ulong = u64;

/// Count of entries in a `pollfd` array (`nfds_t` is `c_ulong` on Linux).
pub type nfds_t = c_ulong;

/// One descriptor registration for `poll(2)`.
///
/// Layout must match `struct pollfd` from `<poll.h>`: the kernel reads
/// `fd`/`events` and writes `revents` in place.
#[repr(C)]
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct pollfd {
    pub fd: c_int,
    pub events: c_short,
    pub revents: c_short,
}

/// Data may be read without blocking.
pub const POLLIN: c_short = 0x001;
/// Urgent data may be read.
pub const POLLPRI: c_short = 0x002;
/// Data may be written without blocking.
pub const POLLOUT: c_short = 0x004;
/// An error condition is pending (output only).
pub const POLLERR: c_short = 0x008;
/// The peer hung up (output only).
pub const POLLHUP: c_short = 0x010;
/// The descriptor is not open (output only).
pub const POLLNVAL: c_short = 0x020;

#[cfg(unix)]
extern "C" {
    /// Wait for readiness on a set of descriptors. Returns the number of
    /// entries with non-zero `revents`, `0` on timeout, or `-1` on error
    /// (consult `io::Error::last_os_error()`).
    pub fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int;
}

/// Portable fallback for targets without a C-library `poll`: sleep briefly,
/// then report every registered descriptor as ready for whatever it asked
/// for. Callers already treat readiness as advisory (sockets are nonblocking
/// and `WouldBlock` is handled), so spurious readiness only costs syscalls.
#[cfg(not(unix))]
pub unsafe fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int {
    let wait_ms = if timeout < 0 { 1 } else { timeout.min(1) };
    std::thread::sleep(std::time::Duration::from_millis(wait_ms as u64));
    let mut ready = 0;
    for i in 0..nfds as usize {
        let entry = &mut *fds.add(i);
        entry.revents = entry.events & (POLLIN | POLLPRI | POLLOUT);
        if entry.revents != 0 {
            ready += 1;
        }
    }
    ready
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pollfd_layout_matches_the_kernel_abi() {
        assert_eq!(std::mem::size_of::<pollfd>(), 8);
        assert_eq!(std::mem::align_of::<pollfd>(), 4);
        let probe = pollfd {
            fd: 7,
            events: POLLIN | POLLOUT,
            revents: 0,
        };
        // Field order matters to the kernel: fd at offset 0, then events,
        // then revents.
        let base = &probe as *const pollfd as usize;
        assert_eq!(&probe.fd as *const c_int as usize - base, 0);
        assert_eq!(&probe.events as *const c_short as usize - base, 4);
        assert_eq!(&probe.revents as *const c_short as usize - base, 6);
    }

    #[cfg(unix)]
    #[test]
    fn poll_times_out_on_an_empty_set() {
        let rc = unsafe { poll(std::ptr::null_mut(), 0, 10) };
        assert_eq!(rc, 0);
    }

    #[cfg(unix)]
    #[test]
    fn poll_reports_a_writable_socket() {
        use std::net::{TcpListener, TcpStream};
        use std::os::unix::io::AsRawFd;

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let stream = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let mut fds = [pollfd {
            fd: stream.as_raw_fd(),
            events: POLLOUT,
            revents: 0,
        }];
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as nfds_t, 1000) };
        assert_eq!(rc, 1);
        assert_ne!(fds[0].revents & POLLOUT, 0);
    }
}
